"""Tab. 10 — linear regression and polynomial fitting vs GP.

Paper: over the same 290 ESVs, linear regression reaches 43.8 % and
degree-2 polynomial fitting 32.1 %, against GP's 98.3 %.  Failures come
from (i) OCR outliers the baselines are not robust to, and (ii) formula
shapes outside their hypothesis class.

Matching the LibreCAN-style baselines, the regressions consume the
*unfiltered* UI series with plain nearest-timestamp pairing (they have
neither the §3.3 OCR filter nor DP-Reverser's adaptive pairing guard),
while GP's figure is the Tab. 6 pipeline result.
"""

import pytest

from repro.core import check_formula, linear_regression, polynomial_fit
from repro.core.response_analysis import build_dataset
from repro.vehicle import CAR_SPECS

from conftest import verify_car


def baseline_scores(fleet, key):
    """(linear_correct, poly_correct, n) for one car's matched ESVs."""
    context = fleet.context(key)
    truth = fleet.ground_truth(key)
    linear_correct = poly_correct = total = 0
    for match in context.matches:
        observations = context.grouped[match.identifier]
        series = context.series_raw.get(match.label)
        if series is None or not series.is_numeric:
            continue
        name, formula, is_enum = truth[match.identifier]
        if is_enum:
            continue
        mode = "bytes" if observations[0].protocol == "kwp" else "int"
        dataset = build_dataset(observations, series, mode, adaptive_gap=False)
        if len(dataset) < 6:
            continue
        total += 1
        samples = [tuple(o.variables()) for o in observations]
        linear = linear_regression(dataset)
        if linear is not None and check_formula(linear, formula, samples):
            linear_correct += 1
        poly = polynomial_fit(dataset)
        if poly is not None and check_formula(poly, formula, samples):
            poly_correct += 1
    return linear_correct, poly_correct, total


def test_table10_baseline_precision(benchmark, report_file, bench_artifact, fleet):
    def run_all():
        rows = {}
        for key in sorted(CAR_SPECS):
            rows[key] = baseline_scores(fleet, key)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report_file("Table 10 - baseline precision per car (linear / poly / total)")
    linear_total = poly_total = total = 0
    for key, (linear_correct, poly_correct, n) in rows.items():
        report_file(
            f"  Car {key}: linear {linear_correct}/{n}, poly {poly_correct}/{n}"
        )
        linear_total += linear_correct
        poly_total += poly_correct
        total += n

    linear_precision = linear_total / total
    poly_precision = poly_total / total
    report_file(
        f"Total: linear {linear_total}/{total} = {linear_precision:.1%} "
        f"(paper 43.8%), poly {poly_total}/{total} = {poly_precision:.1%} "
        f"(paper 32.1%)"
    )

    # GP reference from the Tab. 6 pipeline.
    gp_correct = gp_total = 0
    for key in sorted(CAR_SPECS):
        report, correct, __ = verify_car(fleet, key)
        gp_correct += correct
        gp_total += len(report.formula_esvs)
    gp_precision = gp_correct / gp_total
    report_file(f"GP reference: {gp_correct}/{gp_total} = {gp_precision:.1%}")
    bench_artifact(
        {
            "linear_correct": linear_total,
            "poly_correct": poly_total,
            "baseline_total": total,
            "gp_correct": gp_correct,
            "gp_total": gp_total,
        },
        {
            "linear_correct": "count",
            "poly_correct": "count",
            "baseline_total": "count",
            "gp_correct": "count",
            "gp_total": "count",
        },
    )

    # The paper's shape: GP beats both baselines by a wide margin.
    assert gp_precision > linear_precision + 0.1
    assert gp_precision > poly_precision + 0.1
    # Both baselines fail on a large fraction of the proprietary formulas.
    assert linear_precision < 0.9
    assert poly_precision < 0.9
