"""Ablation — GP budget vs precision/time.

The paper's §4.3 closes with: *"To shorten the time, we will decrease the
maximum number of generations and the number of formulas in each
generation in future work."*  This ablation does that experiment: the same
ESV datasets are solved at three budgets — a minimal one, this
reproduction's default, and the paper's 1000×30 — reporting precision and
per-formula time for each.
"""

import time

import pytest

from repro.core import GpConfig, check_formula
from repro.core.response_analysis import infer_formula

BUDGETS = {
    "minimal (100x10)": GpConfig(population_size=100, generations=10, seed=2),
    "default (300x25)": GpConfig(population_size=300, generations=25, seed=2),
    "paper (1000x30)": GpConfig(population_size=1000, generations=30, seed=2),
}


def hard_esvs(fleet, keys=("K", "B"), limit=8):
    """KWP ESVs (two-variable shapes) — the hardest inference targets."""
    cases = []
    for key in keys:
        context = fleet.context(key)
        truth = fleet.ground_truth(key)
        for match in context.matches:
            if len(cases) >= limit:
                return cases
            name, formula, is_enum = truth[match.identifier]
            if is_enum:
                continue
            observations = context.grouped[match.identifier]
            series = context.series.get(match.label)
            if series is None or not series.is_numeric:
                continue
            cases.append((observations, series, formula))
    return cases


def test_ablation_gp_budget(benchmark, report_file, bench_artifact, fleet):
    cases = hard_esvs(fleet)
    assert len(cases) >= 6

    def run():
        results = {}
        for label, config in BUDGETS.items():
            correct = 0
            start = time.perf_counter()
            for observations, series, truth in cases:
                inferred = infer_formula(observations, series, config)
                samples = [tuple(o.variables()) for o in observations]
                if inferred is not None and check_formula(inferred, truth, samples):
                    correct += 1
            elapsed = time.perf_counter() - start
            results[label] = (correct, elapsed / len(cases))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file(f"GP budget ablation over {len(cases)} KWP ESVs:")
    metrics = {"cases": len(cases)}
    units = {"cases": "count"}
    for label, (correct, per_formula) in results.items():
        report_file(
            f"  {label}: {correct}/{len(cases)} correct, "
            f"{per_formula*1000:.0f} ms per formula"
        )
        tag = label.split(" ")[0]
        metrics[f"{tag}_correct"] = correct
        metrics[f"{tag}_ms_per_formula"] = per_formula * 1000.0
        units[f"{tag}_correct"] = "count"
        units[f"{tag}_ms_per_formula"] = "ms"
    bench_artifact(metrics, units)

    # Precision must not degrade going default -> paper budget, and the
    # paper budget must cost the most time.
    assert results["paper (1000x30)"][0] >= results["default (300x25)"][0]
    assert results["paper (1000x30)"][1] > results["minimal (100x10)"][1]
    # The default budget solves (nearly) everything — the tuned setting
    # the paper's future-work note was after.
    assert results["default (300x25)"][0] >= len(cases) - 1
