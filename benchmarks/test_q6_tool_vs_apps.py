"""§4.6 (Q6) — professional tools vs telematics apps, on real vehicles.

Paper: on the VW Passat the AUTEL 919 reads 203 ESVs across 18 ECUs while
the best app reaches none of them; on the Toyota Corolla the tool reads
242 ESVs that no app request touches.  The bench replays CANHunter-style
app-derived requests against the corresponding fleet cars (K = Passat,
L = Corolla) and counts what they reach.
"""

import pytest

from repro.apps import (
    build_corpus,
    compare_with_tool,
    extract_corpus_requests,
    extract_requests,
)
from repro.vehicle import CAR_SPECS, build_car

#: (fleet car, the paper's app for it)
PAIRS = [("K", "Carly for VAG"), ("L", "Carly for Toyota")]


def test_q6_tool_vs_app_coverage(benchmark, report_file, bench_artifact):
    apps = build_corpus()

    def run():
        results = {}
        obd_app = next(a for a in apps if a.name == "ChevroSys Scan Free")
        obd_requests = extract_requests(obd_app)
        for key, app_name in PAIRS:
            car = build_car(key)
            results[key] = compare_with_tool(car, obd_requests)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file("Q6 - professional tool vs telematics-app coverage")
    metrics = {}
    for key, comparison in results.items():
        metrics[f"car_{key}_tool_esvs"] = comparison.tool_esvs
        metrics[f"car_{key}_app_reachable"] = comparison.app_reachable_esvs
        report_file(
            f"  {CAR_SPECS[key].model}: tool reads {comparison.tool_esvs} "
            f"proprietary ESVs on {comparison.tool_ecus} ECUs; app requests "
            f"({comparison.app_requests_tried}) reach "
            f"{comparison.app_reachable_esvs} of them (+"
            f"{comparison.app_obd_esvs} legislated OBD-II values) "
            f"(paper: tool 203/242 ESVs, apps 0 proprietary)"
        )
        # The paper's finding: the proprietary surface is invisible to apps.
        assert comparison.app_reachable_esvs == 0
        assert comparison.tool_esvs > 0
    bench_artifact(metrics, {name: "count" for name in metrics})


def test_q6_request_protocol_mix(benchmark, report_file):
    """Most apps only speak OBD-II — §4.6's explanation for Tab. 12."""
    apps = build_corpus()

    def run():
        per_protocol = {}
        for app_name, requests in extract_corpus_requests(apps).items():
            for request in requests:
                per_protocol.setdefault(request.protocol, set()).add(app_name)
        return {protocol: len(names) for protocol, names in per_protocol.items()}

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file(f"Apps sending requests per protocol: {counts}")
    assert counts.get("UDS", 0) <= 5  # only the Carly family + partial tools
    assert counts.get("OBD-II", 0) >= 20
