"""Ablation — the two-stage OCR filter (§3.3) and OCR-noise sensitivity.

Two questions the paper's design raises but does not isolate:

1. How much does the two-stage incorrect-ESV filter contribute?  We run
   formula inference on Car L (AUTEL, 2.4 % frame error) with the filtered
   vs the raw series.
2. How does end-to-end precision degrade as the OCR gets worse?  We sweep
   the per-frame error rate on one car.
"""

import pytest

from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.core.response_analysis import build_dataset, infer_formula
from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import build_car


def precision_from_series(fleet, key, use_filtered):
    context = fleet.context(key)
    truth = fleet.ground_truth(key)
    correct = total = 0
    for match in context.matches:
        name, formula, is_enum = truth[match.identifier]
        if is_enum:
            continue
        series_map = context.series if use_filtered else context.series_raw
        series = series_map.get(match.label)
        if series is None or not series.is_numeric:
            continue
        observations = context.grouped[match.identifier]
        inferred = infer_formula(observations, series, GpConfig(seed=2))
        if inferred is None:
            continue
        total += 1
        samples = [tuple(o.variables()) for o in observations]
        correct += check_formula(inferred, formula, samples)
    return correct, total


def test_ablation_two_stage_filter(benchmark, report_file, bench_artifact, fleet):
    def run():
        filtered = precision_from_series(fleet, "L", use_filtered=True)
        raw = precision_from_series(fleet, "L", use_filtered=False)
        return filtered, raw

    (f_correct, f_total), (r_correct, r_total) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report_file(
        f"Car L with filter: {f_correct}/{f_total} = {f_correct/f_total:.1%}; "
        f"without: {r_correct}/{r_total} = {r_correct/max(r_total,1):.1%}"
    )
    bench_artifact(
        {
            "filtered_correct": f_correct,
            "filtered_total": f_total,
            "raw_correct": r_correct,
            "raw_total": r_total,
        },
        {
            "filtered_correct": "count",
            "filtered_total": "count",
            "raw_correct": "count",
            "raw_total": "count",
        },
    )
    # The filter never hurts; GP's own trimming absorbs some of the noise.
    assert f_correct / f_total >= r_correct / max(r_total, 1) - 1e-9


@pytest.mark.parametrize("error_rate", [0.02, 0.15, 0.40])
def test_ablation_ocr_noise_sweep(benchmark, report_file, bench_artifact, error_rate):
    """End-to-end precision for one car under increasing OCR error rates."""
    car = build_car("D")
    tool = make_tool_for_car("D", car)
    capture = DataCollector(tool, read_duration_s=30.0).collect()
    capture.tool_error_rate = error_rate

    def run():
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        truth = {}
        for ecu in car.ecus:
            for point in ecu.uds_data_points.values():
                truth[f"uds:{point.did:04X}"] = (point.formula, point.is_enum)
        correct = total = 0
        for esv in report.formula_esvs:
            formula, __ = truth[esv.identifier]
            total += 1
            correct += check_formula(esv.formula, formula, esv.samples)
        return correct, total

    correct, total = benchmark.pedantic(run, rounds=1, iterations=1)
    precision = correct / total if total else 0.0
    matched = total
    report_file(
        f"OCR frame error {error_rate:.0%}: matched {matched}/12 formula ESVs, "
        f"precision {precision:.1%}"
    )
    tag = f"ocr_err_{int(error_rate * 100)}"
    bench_artifact(
        {f"{tag}_correct": correct, f"{tag}_total": total},
        {f"{tag}_correct": "count", f"{tag}_total": "count"},
    )
    if error_rate <= 0.02:
        assert precision == 1.0 and matched == 12
    else:
        # Under heavy noise coverage/precision may degrade, but the pipeline
        # must keep working on a usable majority.
        assert matched >= 8
        assert precision >= 0.6
