"""§3.1 in-text result — nearest-neighbour planning vs random clicking.

Paper: selecting 14 ESVs on screen, the nearest-neighbour planner saves
about 7.3 % of stylus travel time versus a random click order
((80.45 - 74.6) / 80.45).
"""

import random

import pytest

from repro.cps import nearest_neighbour_route, random_route, route_length

N_TARGETS = 14
N_LAYOUTS = 200
SCREEN = (800, 600)


def test_planner_saving(benchmark, report_file, bench_artifact):
    rng = random.Random(2022)

    def measure():
        nn_total = random_total = 0.0
        for __ in range(N_LAYOUTS):
            targets = [
                (rng.randrange(SCREEN[0]), rng.randrange(SCREEN[1]))
                for __ in range(N_TARGETS)
            ]
            nn_total += route_length((0, 0), nearest_neighbour_route((0, 0), targets))
            random_total += route_length((0, 0), random_route(targets, rng))
        return nn_total, random_total

    nn_total, random_total = benchmark.pedantic(measure, rounds=1, iterations=1)
    saving = (random_total - nn_total) / random_total
    report_file(
        f"NN travel {nn_total:.0f}px vs random {random_total:.0f}px over "
        f"{N_LAYOUTS} layouts of {N_TARGETS} targets — saving {saving:.1%} "
        f"(paper: 7.3% in time)"
    )
    bench_artifact({"planner_saving": saving}, {"planner_saving": "ratio"})
    assert saving > 0.05


def test_planner_near_optimal_small_instances(benchmark, report_file, bench_artifact):
    """NN vs exhaustive optimum on small instances (quality check)."""
    from repro.cps import brute_force_route

    rng = random.Random(7)

    def measure():
        ratio_sum = 0.0
        for __ in range(50):
            targets = [
                (rng.randrange(SCREEN[0]), rng.randrange(SCREEN[1])) for __ in range(7)
            ]
            nn = route_length((0, 0), nearest_neighbour_route((0, 0), targets))
            best = route_length((0, 0), brute_force_route((0, 0), targets))
            ratio_sum += nn / best
        return ratio_sum / 50

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    report_file(f"NN / optimal travel ratio (7 targets): {ratio:.3f}")
    bench_artifact({"nn_vs_optimal": ratio}, {"nn_vs_optimal": "ratio"})
    assert ratio < 1.3  # heuristic stays close to optimal
