"""Tab. 12 — formulas extractable from telematics apps.

Paper (§4.6): of 160 apps, only 3 (the Carly family) contain UDS/KWP 2000
formulas; a set of OBD-II apps contain only the public SAE formulas; 13
apps hide their formulas from intraprocedural taint analysis; the rest do
DTC-style processing with no formulas at all.
"""

import pytest

from repro.apps import (
    N_COMPLEX_APPS,
    TABLE12_FORMULA_APPS,
    TOTAL_APPS,
    analyze_corpus,
    build_corpus,
)


def test_table12_apps(benchmark, report_file, bench_artifact):
    apps = build_corpus()

    analysis = benchmark.pedantic(
        lambda: analyze_corpus(apps), rounds=1, iterations=1
    )

    report_file("Table 12 - telematics apps containing formulas")
    for name, expected in TABLE12_FORMULA_APPS.items():
        got = analysis.per_app[name]
        for protocol, count in expected.items():
            report_file(f"  {name}: {protocol} {got.get(protocol, 0)} (paper {count})")
        assert got == expected, name

    uds_kwp_apps = {
        name
        for name, counts in analysis.per_app.items()
        if counts.get("UDS") or counts.get("KWP 2000")
    }
    report_file(f"Apps with UDS/KWP formulas: {len(uds_kwp_apps)} (paper: 3)")
    assert uds_kwp_apps == {"Carly for VAG", "Carly for Mercedes", "Carly for Toyota"}

    complex_leaks = [
        name
        for name, counts in analysis.per_app.items()
        if name.startswith("Complex") and counts
    ]
    report_file(
        f"Complex apps defeating the analysis: {N_COMPLEX_APPS} "
        f"(formulas leaked from {len(complex_leaks)})"
    )
    assert complex_leaks == []

    assert len(apps) == TOTAL_APPS
    report_file(f"Corpus size: {len(apps)} apps (paper: 160)")
    bench_artifact(
        {"apps_with_uds_kwp": len(uds_kwp_apps), "corpus_size": len(apps)},
        {"apps_with_uds_kwp": "count", "corpus_size": "count"},
    )


def test_table12_extraction_throughput(benchmark, report_file, bench_artifact):
    """Microbenchmark: Alg. 1 over the biggest app (Carly for Mercedes)."""
    apps = build_corpus()
    carly = next(a for a in apps if a.name == "Carly for Mercedes")
    from repro.apps import FormulaExtractor

    formulas = benchmark.pedantic(
        lambda: FormulaExtractor().extract(carly), rounds=1, iterations=1
    )
    report_file(
        f"Carly for Mercedes: {len(formulas)} formulas from "
        f"{carly.statement_count()} IR statements"
    )
    bench_artifact(
        {"carly_formulas": len(formulas)}, {"carly_formulas": "count"}
    )
    assert len(formulas) == 1624 + 468
