"""Tab. 4 — precision of the OCR engine per diagnostic tool.

Paper: 500 pictures per tool; 97.6 % fully-correct for AUTEL 919 and
85.0 % for LAUNCH X431 (the AUTEL's larger, higher-resolution screen).
"""

import pytest

from repro.cps import Camera, OcrEngine
from repro.simtime import SimClock
from repro.tools import TOOL_PROFILES
from repro.tools.ui import ScreenBuilder

N_PICTURES = 500

PAPER = {"AUTEL 919": 0.976, "LAUNCH X431": 0.850}


def make_frames(count):
    camera = Camera(SimClock())
    frames = []
    for index in range(count):
        builder = ScreenBuilder("live", "Engine - Data Stream")
        builder.add_pair("Engine Speed", f"{800 + index}.0 rpm")
        builder.add_pair("Coolant Temperature", f"{60 + index % 40}.5 degC")
        builder.add_pair("Battery Voltage", f"{12 + (index % 20) / 10:.2f} V")
        frames.append(camera.capture(builder.screen))
        camera.clock.advance(0.5)
    return frames


@pytest.mark.parametrize("tool_name", ["AUTEL 919", "LAUNCH X431"])
def test_table4_ocr_precision(benchmark, report_file, bench_artifact, tool_name):
    profile = TOOL_PROFILES[tool_name]
    frames = make_frames(N_PICTURES)
    ocr = OcrEngine(profile.ocr_error_rate, seed=41)

    def read_all():
        engine = OcrEngine(profile.ocr_error_rate, seed=41)
        for frame in frames:
            engine.read_frame(frame)
        return engine

    engine = benchmark.pedantic(read_all, rounds=1, iterations=1)
    correct = engine.frames_read - engine.frames_corrupted
    precision = engine.observed_precision

    report_file(f"Table 4 - OCR precision ({tool_name})")
    report_file(f"  #Total Pics : {engine.frames_read}")
    report_file(f"  #Correct    : {correct}")
    report_file(f"  Precision   : {precision:.1%} (paper: {PAPER[tool_name]:.1%})")

    tag = tool_name.split()[0].lower()
    bench_artifact(
        {f"ocr_{tag}_correct": correct, f"ocr_{tag}_total": engine.frames_read},
        {f"ocr_{tag}_correct": "count", f"ocr_{tag}_total": "count"},
        config={"n_pictures": N_PICTURES},
    )
    assert engine.frames_read == N_PICTURES
    assert precision == pytest.approx(PAPER[tool_name], abs=0.03)


def test_table4_ranking(benchmark, report_file):
    """The AUTEL's better screen must yield strictly higher OCR precision."""
    frames = make_frames(N_PICTURES)

    def run():
        precisions = {}
        for name in ("AUTEL 919", "LAUNCH X431"):
            engine = OcrEngine(TOOL_PROFILES[name].ocr_error_rate, seed=17)
            for frame in frames:
                engine.read_frame(frame)
            precisions[name] = engine.observed_precision
        return precisions

    precisions = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file(f"Ranking: {precisions}")
    assert precisions["AUTEL 919"] > precisions["LAUNCH X431"]
