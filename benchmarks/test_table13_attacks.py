"""Tab. 13 / §9.3 — attack replay on running vehicles.

Paper: reverse-engineered diagnostic messages injected into BMW i3, Lexus
NX300, Toyota Corolla and Kia all trigger their actions while the vehicle
is running (reads, component control, routine starts, ECU resets).
"""

import pytest

from repro.attacks import replay_from_report, run_table13
from repro.vehicle import CAR_SPECS, build_car

#: The paper's four attack targets: BMW i3, Lexus NX300, Toyota Corolla, Kia.
ATTACK_CARS = ("G", "D", "L", "N")


@pytest.mark.parametrize("key", ATTACK_CARS)
def test_table13_attack_set(benchmark, report_file, bench_artifact, key):
    car = build_car(key)

    results = benchmark.pedantic(lambda: run_table13(car), rounds=1, iterations=1)

    report_file(f"Car {key} ({CAR_SPECS[key].model}):")
    for result in results:
        status = "OK" if result.success else "FAILED"
        report_file(
            f"  [{status}] {result.description}: {result.messages[0]} -> "
            f"{result.observed_effect}"
        )
    bench_artifact(
        {f"car_{key}_attacks_ok": sum(r.success for r in results)},
        {f"car_{key}_attacks_ok": "count"},
    )
    assert results
    assert all(r.success for r in results)


def test_table13_replay_recovered_ecrs(benchmark, report_file, bench_artifact, fleet):
    """End to end: what DP-Reverser recovered from Car D's capture is
    injected verbatim into a *fresh* Car D and actuates the components."""
    report = fleet.report("D")
    fresh = build_car("D")

    results = benchmark.pedantic(
        lambda: replay_from_report(fresh, report), rounds=1, iterations=1
    )
    report_file(f"Replayed {len(results)} recovered ECR procedures on fresh Car D")
    for result in results:
        report_file(f"  {result.description}: {result.observed_effect}")
    bench_artifact(
        {"replayed_ecrs": len(results)}, {"replayed_ecrs": "count"}
    )
    assert len(results) == CAR_SPECS["D"].ecrs
    assert all(r.success for r in results)
