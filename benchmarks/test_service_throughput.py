"""Service throughput: many concurrent streaming sessions, bounded memory.

The service-layer acceptance bench: one in-process
:class:`~repro.service.server.DiagnosticServer` multiplexing SESSIONS
concurrent tenants, every one streaming the same capture frame-by-frame
and asking for the final report.  A barrier between handshake and
streaming guarantees every session is open *simultaneously* before the
first frame flows — ``sessions_peak`` in the artifact is the proof.

Metrics (``BENCH_service_throughput.json``):

* identity (exact-match gated by ``scripts/bench_compare.py``) —
  ``sessions_completed``, ``sessions_peak``, ``frames_total``,
  ``reports_identical``, ``frames_shed_at_bound``,
  ``backpressure_enforced``;
* timing (warn-only) — ``sessions_per_s``, ``frames_per_s``,
  ``p99_ingest_ms``, ``wall_s``.

``SERVICE_SMOKE=1`` shrinks the fleet to CI size (the committed baseline
is generated in smoke mode, like the other gated benches); the full run
drives 1000 concurrent sessions.
"""

from __future__ import annotations

import asyncio
import os
import resource
import time

import pytest

from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.service import DiagnosticServer, ServiceConfig, stream_capture_async
from repro.tools import make_tool_for_car
from repro.vehicle import build_car

SMOKE = bool(os.environ.get("SERVICE_SMOKE"))
SESSIONS = 40 if SMOKE else 1000
GP = GpConfig(seed=2, generations=4, population_size=60)

BENCH_CONFIG = {"smoke": SMOKE, "sessions": SESSIONS}


@pytest.fixture(scope="module")
def capture():
    car = build_car("A")
    return DataCollector(make_tool_for_car("A", car), read_duration_s=4.0).collect()


@pytest.fixture(scope="module")
def batch_json(capture):
    return DPReverser(ReverserConfig(gp_config=GP)).reverse_engineer(capture).to_json()


async def _run_fleet(server, capture, sessions):
    """Open every session, meet at the barrier, then stream concurrently."""
    barrier = asyncio.Barrier(sessions + 1)

    async def one_client(index):
        await barrier.wait()
        return await stream_capture_async(
            "127.0.0.1",
            server.port,
            capture,
            tenant=f"tenant-{index}",
            transport="isotp",
        )

    clients = [asyncio.create_task(one_client(i)) for i in range(sessions)]
    await barrier.wait()  # release the fleet together
    return await asyncio.gather(*clients)


async def _run_connected_fleet(server, capture, sessions):
    """Like :func:`_run_fleet` but sessions handshake *before* the barrier,
    so the peak-concurrency reading counts fully established sessions."""
    from repro.service.protocol import capture_to_wire, encode_message, read_message

    barrier = asyncio.Barrier(sessions + 1)

    async def one_client(index):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        try:
            messages = capture_to_wire(
                capture, tenant=f"tenant-{index}", transport="isotp"
            )
            writer.write(encode_message(next(messages)))
            await writer.drain()
            welcome = await read_message(reader)
            assert welcome["type"] == "welcome", welcome
            await barrier.wait()
            for message in messages:
                writer.write(encode_message(message))
                await writer.drain()
            while True:
                reply = await read_message(reader)
                assert reply is not None, "server closed before the report"
                if reply["type"] == "report":
                    return reply["report_json"]
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    clients = [asyncio.create_task(one_client(i)) for i in range(sessions)]
    await barrier.wait()
    peak = server.sessions_active
    reports = await asyncio.gather(*clients)
    return peak, reports


class TestServiceThroughput:
    def test_concurrent_sessions_throughput(
        self, capture, batch_json, bench_artifact, report_file, tmp_path
    ):
        config = ServiceConfig(
            max_sessions=SESSIONS,
            gp_config=GP,
            gp_memo_dir=str(tmp_path / "memo"),
            analysis_workers=4,
        )

        async def run():
            async with DiagnosticServer(config) as server:
                start = time.perf_counter()
                peak, reports = await _run_connected_fleet(server, capture, SESSIONS)
                wall = time.perf_counter() - start
                return server, peak, reports, wall

        server, peak, reports, wall = asyncio.run(run())
        counters = server.snapshot()["counters"]
        identical = sum(r == batch_json for r in reports)
        frames_total = counters["service.frames_ingested"]
        ingest = server.metrics.histogram("service.ingest_seconds")
        rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024

        assert peak == SESSIONS, "all sessions must be open simultaneously"
        assert identical == SESSIONS, "every streamed report must match batch"
        assert counters["service.sessions_completed"] == SESSIONS

        bench_artifact(
            {
                "sessions_completed": counters["service.sessions_completed"],
                "sessions_peak": peak,
                "frames_total": frames_total,
                "reports_identical": identical,
                "sessions_per_s": round(SESSIONS / wall, 2),
                "frames_per_s": round(frames_total / wall, 1),
                "p99_ingest_ms": round(ingest.percentile(99) * 1e3, 4),
                "wall_s": round(wall, 3),
            },
            {
                "sessions_completed": "count",
                "sessions_peak": "count",
                "frames_total": "count",
                "reports_identical": "count",
                "sessions_per_s": "x",
                "frames_per_s": "x",
                "p99_ingest_ms": "ms",
                "wall_s": "s",
            },
            config=BENCH_CONFIG,
        )
        report_file(
            f"Service throughput ({SESSIONS} concurrent sessions"
            f"{', smoke mode' if SMOKE else ''}):"
        )
        report_file(
            f"  {SESSIONS / wall:.1f} sessions/s, {frames_total / wall:.0f} "
            f"frames/s, p99 ingest {ingest.percentile(99) * 1e3:.3f} ms"
        )
        report_file(
            f"  peak concurrency {peak}, {identical}/{SESSIONS} reports "
            f"byte-identical to batch, peak RSS {rss_mb:.0f} MiB"
        )

    def test_memory_stays_bounded_under_retention_cap(
        self, capture, bench_artifact, report_file
    ):
        """A hostile/over-long stream cannot grow session memory without
        bound: frames beyond the cap are counted and shed, and the report
        still comes back (covering what was kept)."""
        bound = 64
        sessions = 8 if SMOKE else 32
        config = ServiceConfig(
            max_sessions=sessions, gp_config=GP, max_capture_frames=bound
        )

        async def run():
            async with DiagnosticServer(config) as server:
                results = await _run_fleet(server, capture, sessions)
                return server, results

        server, results = asyncio.run(run())
        counters = server.snapshot()["counters"]
        expected_shed = (len(capture.can_log) - bound) * sessions
        assert counters["service.frames_dropped"] == expected_shed
        assert counters["service.frames_ingested"] == bound * sessions
        assert all(r.report["n_frames"] == bound for r in results)

        bench_artifact(
            {"frames_shed_at_bound": expected_shed},
            {"frames_shed_at_bound": "count"},
            config=BENCH_CONFIG,
        )
        report_file(
            f"  retention bound {bound}: shed {expected_shed} frames across "
            f"{sessions} sessions, all reports delivered"
        )

    def test_sharded_batched_wire_smoke(
        self, capture, batch_json, bench_artifact, report_file, tmp_path
    ):
        """The production shape end to end: a 2-shard pre-forked fleet on
        one ``SO_REUSEPORT`` port, clients on the batched binary wire.
        Every report must still be byte-identical to the batch pipeline,
        and the merged snapshot must sum the per-shard counters."""
        from repro.service.shards import ShardSupervisor

        sessions = 6 if SMOKE else 24
        shards = 2
        config = ServiceConfig(
            gp_config=GP,
            gp_backend="serial",  # each shard is already its own process
            analysis_workers=1,
            gp_memo_dir=str(tmp_path / "memo"),
        )

        async def run_clients(port):
            return await asyncio.gather(
                *(
                    stream_capture_async(
                        "127.0.0.1",
                        port,
                        capture,
                        tenant=f"tenant-{i}",
                        transport="isotp",
                        batch_size=256,
                    )
                    for i in range(sessions)
                )
            )

        start = time.perf_counter()
        with ShardSupervisor(config, shards=shards) as supervisor:
            results = asyncio.run(run_clients(supervisor.port))
            supervisor.wait_for_sessions(sessions, timeout=120)
        wall = time.perf_counter() - start
        snapshot = supervisor.merged_snapshot()
        counters = snapshot["counters"]
        identical = sum(r.report_json == batch_json for r in results)
        stalls = sum(r.backpressure_stalls for r in results)

        assert identical == sessions
        assert counters["service.shards"] == shards
        assert counters["service.sessions_completed"] == sessions
        assert counters["service.frames_ingested"] == sessions * len(capture.can_log)

        bench_artifact(
            {
                "sharded_sessions_completed": counters["service.sessions_completed"],
                "sharded_reports_identical": identical,
                "sharded_shards": shards,
                "sharded_wall_s": round(wall, 3),
            },
            {
                "sharded_sessions_completed": "count",
                "sharded_reports_identical": "count",
                "sharded_shards": "count",
                "sharded_wall_s": "s",
            },
            config=BENCH_CONFIG,
        )
        report_file(
            f"  {shards}-shard fleet, batched wire: {identical}/{sessions} "
            f"reports byte-identical, {stalls} client stalls, "
            f"{wall:.1f}s wall"
        )

    def test_rate_limit_backpressure(self, capture, bench_artifact, report_file):
        """An over-eager client is stalled (token bucket), never buffered
        unboundedly; the stall counter proves the path engaged."""
        config = ServiceConfig(gp_config=GP, rate_limit=2000.0)

        async def run():
            async with DiagnosticServer(config) as server:
                await stream_capture_async(
                    "127.0.0.1", server.port, capture, transport="isotp"
                )
                return server

        server = asyncio.run(run())
        stalls = server.snapshot()["counters"]["service.backpressure_stalls"]
        assert stalls > 0
        bench_artifact(
            {"backpressure_enforced": 1},
            {"backpressure_enforced": "count"},
            config=BENCH_CONFIG,
        )
        report_file(f"  rate limit 2000/s: {stalls} ingest stalls recorded")
