"""Attack/defense matrix: every TP-layer adversary vs both stacks.

Each scenario runs one seeded attack from :mod:`repro.attacks` against the
same victim traffic twice — once through the unhardened decoders and once
with a :class:`~repro.transport.base.HardeningPolicy` attached — and scores
*recovery*: the fraction of the victim's payloads that still come out
intact.  The matrix is the PR's acceptance gate:

* at least one attack must break the unhardened stack (recovery < 0.9);
* the hardened stack must recover >= 0.9 under **every** attack
  (``hardened_recovery``, the floor CI enforces via ``bench_compare``);
* on a clean capture the hardened pipeline's report must be byte-identical
  to the unhardened one.

Everything is seeded and simulated-clocked, so recoveries are exact ratios
and safe to diff as identity metrics.  Set ``ATTACK_SMOKE=1`` (the CI smoke
mode) for a reduced victim count and a single clean-capture car.
"""

import os

from repro.attacks import (
    FcInjection,
    FcSpoofAttacker,
    KLineSlowloris,
    ReassemblyExhaustion,
    SequencePoisoning,
    SessionStarvation,
)
from repro.can import CanFrame, SimulatedCanBus
from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.core.assembly import StreamAssembler, assemble_with_diagnostics
from repro.simtime import SimClock
from repro.transport import (
    DEFAULT_HARDENING,
    HardeningPolicy,
    IsoTpEndpoint,
    TransportError,
    segment,
    segment_vwtp,
)
from repro.transport.bmw import segment_bmw
from repro.transport.kline import KLineByte, KLineFrameParser, frame_message

QUICK = bool(os.environ.get("ATTACK_SMOKE"))

#: Victim transfers per offline scenario (payload diversity, not duration).
TRANSFERS = 5 if QUICK else 25
#: Clean-capture cars for the byte-identical check (one per transport family
#: in full mode).
IDENTITY_CARS = ["A"] if QUICK else ["A", "C", "E"]
RECOVERY_FLOOR = 0.90

#: Deliberately small budgets so the exhaustion scenario's memory axis is
#: measurable with bench-sized captures; recovery scenarios use the default.
EXHAUSTION_POLICY = HardeningPolicy(per_stream_budget=256, global_budget=1024)

GP = GpConfig(seed=2)
VICTIM_ID = 0x7E0

BENCH_CONFIG = {
    "quick": QUICK,
    "transfers": TRANSFERS,
    "identity_cars": IDENTITY_CARS,
    "recovery_floor": RECOVERY_FLOOR,
    "exhaustion_budget": EXHAUSTION_POLICY.global_budget,
}


def victim_payload(index, length=48):
    return bytes((index + j) % 256 for j in range(length))


def stamp(frames, start, step=0.001):
    return [
        CanFrame(f.can_id, f.data, timestamp=start + i * step)
        for i, f in enumerate(frames)
    ]


def victim_capture(segmenter):
    frames = []
    for i in range(TRANSFERS):
        frames.extend(stamp(segmenter(victim_payload(i)), start=float(i)))
    return frames


def recovery_of(messages):
    """Fraction of the victim's payloads recovered intact."""
    payloads = {m.payload if hasattr(m, "payload") else m for m in messages}
    hit = sum(1 for i in range(TRANSFERS) if victim_payload(i) in payloads)
    return hit / TRANSFERS


def decode_recovery(frames, transport, hardening):
    messages, __ = assemble_with_diagnostics(frames, transport, hardening=hardening)
    return recovery_of(messages)


# ------------------------------------------------------------ offline rows


def run_starvation_isotp():
    capture = victim_capture(lambda p: segment(p, VICTIM_ID))
    return (
        decode_recovery(SessionStarvation(seed=1).apply(capture), "isotp", None),
        decode_recovery(
            SessionStarvation(seed=1).apply(capture), "isotp", DEFAULT_HARDENING
        ),
    )


def run_starvation_bmw():
    capture = victim_capture(lambda p: segment_bmw(p, 0x612, 0xF1))
    attack = SessionStarvation(seed=1, offset=1)
    return (
        decode_recovery(attack.apply(capture), "bmw", None),
        decode_recovery(
            SessionStarvation(seed=1, offset=1).apply(capture), "bmw", DEFAULT_HARDENING
        ),
    )


def run_poisoning_isotp():
    capture = victim_capture(lambda p: segment(p, VICTIM_ID))
    return (
        decode_recovery(SequencePoisoning(seed=2).apply(capture), "isotp", None),
        decode_recovery(
            SequencePoisoning(seed=2).apply(capture), "isotp", DEFAULT_HARDENING
        ),
    )


def run_poisoning_vwtp():
    frames = []
    sequence = 0  # TP 2.0 numbering runs on across messages within a channel
    for i in range(TRANSFERS):
        segmented = segment_vwtp(victim_payload(i), 0x300, start_sequence=sequence)
        transfer = stamp(segmented, start=float(i))
        alien_seq = (sequence + 2 + 8) % 16  # 8 ahead of the stream position
        alien = CanFrame(
            0x300, bytes([0x20 | alien_seq]) + b"\xcc" * 7, timestamp=float(i) + 0.0015
        )
        frames.extend(transfer[:2] + [alien] + transfer[2:])
        sequence = (sequence + len(segmented)) % 16
    return (
        decode_recovery(frames, "vwtp", None),
        decode_recovery(frames, "vwtp", DEFAULT_HARDENING),
    )


def run_exhaustion():
    """Recovery stays 1.0 on both stacks (the victim's ids are untouched);
    the damage axis is buffered bytes, returned separately.  The capture is
    sized independently of ``TRANSFERS`` so the hostile streams accumulate
    enough bytes to trip the budget even in smoke mode."""
    transfers = max(TRANSFERS, 40)
    frames = []
    for i in range(transfers):
        frames.extend(stamp(segment(victim_payload(i), VICTIM_ID), start=float(i)))
    attacked = ReassemblyExhaustion(seed=3, spoofed_ids=64, interval=1).apply(frames)
    buffered = {}
    recoveries = {}
    for label, hardening in (("unhardened", None), ("hardened", EXHAUSTION_POLICY)):
        assembler = StreamAssembler("isotp", hardening=hardening)
        completed = []
        for frame in attacked:
            completed.extend(assembler.feed(frame))
        buffered[label] = sum(
            state.reassembler.buffered_bytes for state in assembler._streams.values()
        )
        payloads = {m.payload for m in completed}
        recoveries[label] = (
            sum(1 for i in range(transfers) if victim_payload(i) in payloads)
            / transfers
        )
    return recoveries["unhardened"], recoveries["hardened"], buffered


def run_fc_flood():
    """Detection-only: offline decode screens FC, so both stacks recover;
    the hardened one additionally counts the violations."""
    capture = victim_capture(lambda p: segment(p, VICTIM_ID))
    attacked = FcInjection(seed=4).apply(capture)
    unhardened = decode_recovery(attacked, "isotp", None)
    messages, diagnostics = assemble_with_diagnostics(
        attacked, "isotp", hardening=DEFAULT_HARDENING
    )
    return unhardened, recovery_of(messages), diagnostics.stats.fc_violations


def run_kline_slowloris():
    capture = []
    now = 0.0
    for i in range(TRANSFERS):
        for value in frame_message(victim_payload(i, length=12), target=0x33, source=0xF1):
            capture.append(KLineByte(now, value))
            now += 0.0005
        now += 2.0
    attacked = KLineSlowloris(seed=5, gap_s=0.5).apply(capture)
    recoveries = []
    for hardening in (None, DEFAULT_HARDENING):
        parser = KLineFrameParser(hardening=hardening)
        recovered = []
        for byte in attacked:
            message = parser.feed(byte.timestamp, byte.value)
            if message is not None and message.checksum_ok:
                recovered.append(message.payload)
        hit = sum(
            1 for i in range(TRANSFERS) if victim_payload(i, length=12) in recovered
        )
        recoveries.append(hit / TRANSFERS)
    return tuple(recoveries)


# --------------------------------------------------------------- live rows


def live_send(mode, hardening):
    """One multi-frame send per victim payload against an FC spoofer.

    Returns (recovery, elapsed simulated seconds).  ``mode=None`` runs the
    clean baseline used to normalise latency.
    """
    bus = SimulatedCanBus(SimClock())
    received = []
    IsoTpEndpoint(bus, "server", tx_id=0x7E8, rx_id=0x7E0, on_message=received.append)
    client = IsoTpEndpoint(
        bus, "client", tx_id=0x7E0, rx_id=0x7E8, hardening=hardening
    )
    if mode is not None:
        FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode=mode)
    start = bus.clock.now()
    delivered = 0
    for i in range(TRANSFERS):
        try:
            client.send(victim_payload(i))
            delivered += 1
        except TransportError:
            pass
    return (
        sum(1 for i in range(TRANSFERS) if victim_payload(i) in received) / TRANSFERS,
        bus.clock.now() - start,
    )


def run_fc_spoof(mode):
    __, clean_elapsed = live_send(None, None)
    unhardened, __ = live_send(mode, None)
    hardened, hardened_elapsed = live_send(mode, DEFAULT_HARDENING)
    return unhardened, hardened, hardened_elapsed / clean_elapsed


# ------------------------------------------------------------------- bench


def test_attack_defense_matrix(report_file, bench_artifact):
    rows = [
        ("starvation/isotp", *run_starvation_isotp()),
        ("starvation/bmw", *run_starvation_bmw()),
        ("poisoning/isotp", *run_poisoning_isotp()),
        ("poisoning/vwtp", *run_poisoning_vwtp()),
        ("kline_slowloris", *run_kline_slowloris()),
    ]
    exh_unhardened, exh_hardened, buffered = run_exhaustion()
    rows.append(("exhaustion/isotp", exh_unhardened, exh_hardened))
    flood_unhardened, flood_hardened, fc_violations = run_fc_flood()
    rows.append(("fc_flood/isotp", flood_unhardened, flood_hardened))
    for mode in ("overflow", "strangle"):
        unhardened, hardened, latency_x = run_fc_spoof(mode)
        rows.append((f"fc_spoof/{mode}", unhardened, hardened))
        if mode == "strangle":
            strangle_latency_x = latency_x

    report_file(
        f"Attack/defense matrix ({TRANSFERS} victim transfers per scenario"
        f"{', smoke mode' if QUICK else ''}):"
    )
    report_file(f"  {'scenario':<18} {'unhardened':>10} {'hardened':>9}")
    metrics, units = {}, {}
    for name, unhardened, hardened in rows:
        report_file(f"  {name:<18} {unhardened:>10.2f} {hardened:>9.2f}")
        tag = name.replace("/", "_")
        metrics[f"{tag}_unhardened"] = round(unhardened, 4)
        metrics[f"{tag}_hardened"] = round(hardened, 4)
        units[f"{tag}_unhardened"] = "ratio"
        units[f"{tag}_hardened"] = "ratio"

    hardened_floor = min(hardened for __, __, hardened in rows)
    broken = sum(1 for __, unhardened, __ in rows if unhardened < RECOVERY_FLOOR)
    report_file(
        f"  worst hardened recovery {hardened_floor:.2f} "
        f"(floor {RECOVERY_FLOOR}); {broken} attacks break the unhardened stack"
    )
    report_file(
        f"  exhaustion buffered bytes: unhardened {buffered['unhardened']}, "
        f"hardened {buffered['hardened']} (budget {EXHAUSTION_POLICY.global_budget}); "
        f"fc_flood violations flagged: {fc_violations}; "
        f"strangle latency {strangle_latency_x:.2f}x clean"
    )
    metrics.update(
        {
            "hardened_recovery": round(hardened_floor, 4),
            "attacks_breaking_unhardened": broken,
            "exhaustion_buffered_unhardened": buffered["unhardened"],
            "exhaustion_buffered_hardened": buffered["hardened"],
            "fc_flood_violations": fc_violations,
            "strangle_latency": round(strangle_latency_x, 4),
        }
    )
    units.update(
        {
            "hardened_recovery": "ratio",
            "attacks_breaking_unhardened": "count",
            "exhaustion_buffered_unhardened": "count",
            "exhaustion_buffered_hardened": "count",
            "fc_flood_violations": "count",
            "strangle_latency": "x",
        }
    )
    bench_artifact(metrics, units, config=BENCH_CONFIG)

    # The acceptance gate, local edition (CI re-checks via bench_compare).
    assert broken >= 1, "no attack even dents the unhardened stack"
    assert hardened_floor >= RECOVERY_FLOOR
    assert buffered["unhardened"] > EXHAUSTION_POLICY.global_budget
    assert buffered["hardened"] <= EXHAUSTION_POLICY.global_budget
    assert fc_violations >= 1


def test_clean_capture_reports_byte_identical(report_file, bench_artifact, fleet):
    """Hardening on a clean capture is a no-op, to the byte."""
    identical = 0
    for key in IDENTITY_CARS:
        __, capture = fleet.capture(key)
        plain = DPReverser(ReverserConfig(gp_config=GP)).reverse_engineer(capture)
        hardened = DPReverser(
            ReverserConfig(gp_config=GP, hardening=DEFAULT_HARDENING)
        ).reverse_engineer(capture)
        assert plain.to_json() == hardened.to_json(), (
            f"car {key}: hardened report diverged on a clean capture"
        )
        identical += 1
    report_file(
        f"Clean-capture byte-identity: {identical}/{len(IDENTITY_CARS)} cars "
        "produce identical reports with hardening on"
    )
    bench_artifact(
        {"clean_reports_identical": identical},
        {"clean_reports_identical": "count"},
        config=BENCH_CONFIG,
    )
