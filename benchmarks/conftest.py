"""Shared fixtures for the experiment benches.

Every bench regenerates one table of the paper.  The heavy artefacts —
per-car captures, analysis contexts and full reverse-engineering reports —
are built lazily and cached for the whole pytest session so that e.g. the
Tab. 6, Tab. 7 and Tab. 11 benches reuse the same fleet run.

Bench output (the reproduced table rows) is written to
``benchmarks/results/<name>.txt`` so the numbers survive the run and can be
pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple

import pytest

import bench_io

from repro.core import AnalysisContext, DPReverser, GpConfig, ReverserConfig, ReverseReport, check_formula
from repro.cps import Capture, DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import CAR_SPECS, build_car

RESULTS_DIR = Path(__file__).parent / "results"

_capture_cache: Dict[str, Tuple[object, Capture]] = {}
_context_cache: Dict[str, AnalysisContext] = {}
_report_cache: Dict[str, ReverseReport] = {}


def _collect(key: str):
    if key not in _capture_cache:
        car = build_car(key)
        tool = make_tool_for_car(key, car)
        capture = DataCollector(tool, read_duration_s=30.0).collect()
        _capture_cache[key] = (car, capture)
    return _capture_cache[key]


def _analyze(key: str) -> AnalysisContext:
    if key not in _context_cache:
        __, capture = _collect(key)
        _context_cache[key] = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).analyze(capture)
    return _context_cache[key]


def _reverse(key: str) -> ReverseReport:
    if key not in _report_cache:
        context = _analyze(key)
        _report_cache[key] = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).infer(context)
    return _report_cache[key]


@pytest.fixture(scope="session")
def fleet():
    """Lazy access to per-car (vehicle, capture, context, report)."""

    class Fleet:
        keys = list(CAR_SPECS)

        @staticmethod
        def capture(key: str):
            return _collect(key)

        @staticmethod
        def context(key: str) -> AnalysisContext:
            return _analyze(key)

        @staticmethod
        def report(key: str) -> ReverseReport:
            return _reverse(key)

        @staticmethod
        def ground_truth(key: str):
            car, __ = _collect(key)
            truth = {}
            for ecu in car.ecus:
                for point in ecu.uds_data_points.values():
                    truth[f"uds:{point.did:04X}"] = (
                        point.name, point.formula, point.is_enum,
                    )
                for group in ecu.kwp_groups.values():
                    for index, m in enumerate(group.measurements):
                        truth[f"kwp:{group.local_id:02X}/{index}"] = (
                            m.name, m.formula, m.is_enum,
                        )
            return truth

    return Fleet()


_initialised_reports = set()


@pytest.fixture()
def report_file(request):
    """Append the reproduced table rows to benchmarks/results/<module>.txt.

    The file is truncated the first time a module writes to it in a
    session, so parametrised tests accumulate into one table.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    name = request.module.__name__.replace("test_", "")
    path = RESULTS_DIR / f"{name}.txt"
    lines = []

    def write(text: str = "") -> None:
        lines.append(text)

    yield write
    mode = "a" if path in _initialised_reports else "w"
    _initialised_reports.add(path)
    with path.open(mode) as handle:
        handle.write("\n".join(lines) + "\n")


_bench_accumulators: Dict[str, dict] = {}


@pytest.fixture()
def bench_artifact(request):
    """Accumulate structured metrics into benchmarks/results/BENCH_<name>.json.

    Call ``bench_artifact(metrics, units, config=...)`` any number of times
    (parametrised tests included); the artifact is rewritten after each
    test with everything the module has recorded so far, mirroring how
    :func:`report_file` accumulates the text table.  Schema and writer live
    in :mod:`bench_io`; CI uploads the artifacts and diffs them against the
    committed baselines with ``scripts/bench_compare.py``.
    """
    name = request.module.__name__.replace("test_", "")
    state = _bench_accumulators.setdefault(
        name, {"metrics": {}, "units": {}, "config": {}}
    )

    def record(
        metrics: Dict[str, float],
        units: Dict[str, str],
        config: Dict[str, object] = None,
    ) -> None:
        state["metrics"].update(metrics)
        state["units"].update(units)
        if config:
            state["config"].update(config)

    yield record
    if state["metrics"]:
        bench_io.write_bench(
            RESULTS_DIR, name, state["metrics"], state["units"], state["config"]
        )


def verify_car(fleet, key: str):
    """Score one car's report against ground truth (Tab. 6 style row)."""
    report = fleet.report(key)
    truth = fleet.ground_truth(key)
    correct = 0
    wrong = []
    for esv in report.formula_esvs:
        name, formula, __ = truth[esv.identifier]
        if check_formula(esv.formula, formula, esv.samples):
            correct += 1
        else:
            wrong.append(name)
    return report, correct, wrong
