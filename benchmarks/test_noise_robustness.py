"""Noise robustness: formula recovery vs sniffer fault rate.

The capture is corrupted with the seeded fault injector (drops, duplicates,
reordering, bit errors) at multiples of the default noise profile, then the
unchanged pipeline runs on the degraded frames.  Reported per scale:
recovered-correct formulas over the ground-truth total, plus the decoder's
own loss accounting — the curve shows graceful degradation, not a cliff.

Set ``NOISE_SMOKE=1`` (the CI smoke mode) to run a reduced car set.
"""

import os
import zlib

import pytest

from repro.can import NoiseProfile
from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.vehicle import CAR_SPECS

QUICK = bool(os.environ.get("NOISE_SMOKE"))

#: One car per transport keeps the sweep honest about decoder differences.
SWEEP_CARS = ["A", "C", "E"] if QUICK else ["A", "C", "D", "E", "K", "N"]
SWEEP_SCALES = [0.0, 1.0, 4.0] if QUICK else [0.0, 0.5, 1.0, 2.0, 4.0]

#: The acceptance bar: the full fleet at the default profile.
FLEET_CARS = SWEEP_CARS if QUICK else sorted(CAR_SPECS)
RECOVERY_FLOOR = 0.90

GP = GpConfig(seed=2)
NOISE_SEED = 7


def car_profile(key, scale):
    """Scaled default profile with a per-car fault stream (same derivation
    as ``JobSpec.noise_profile``)."""
    if scale == 0.0:
        return None
    seed = (zlib.crc32(key.encode()) ^ NOISE_SEED) & 0x7FFFFFFF
    return NoiseProfile.default(seed=seed).scaled(scale)


def recover(fleet, key, scale):
    """Run the pipeline on a noisy view of the car's capture; score it."""
    __, capture = fleet.capture(key)
    truth = fleet.ground_truth(key)
    config = ReverserConfig(gp_config=GP, noise=car_profile(key, scale))
    report = DPReverser(config).reverse_engineer(capture)
    correct = 0
    for esv in report.formula_esvs:
        expected = truth.get(esv.identifier)
        if expected is not None and check_formula(esv.formula, expected[1], esv.samples):
            correct += 1
    total = CAR_SPECS[key].formula_esvs
    lost = report.diagnostics.stats.messages_lost if report.diagnostics else 0
    return correct, total, lost


BENCH_CONFIG = {
    "quick": QUICK,
    "sweep_cars": SWEEP_CARS,
    "sweep_scales": SWEEP_SCALES,
    "noise_seed": NOISE_SEED,
}


def test_recovery_vs_noise_curve(benchmark, report_file, bench_artifact, fleet):
    def sweep():
        rows = []
        for scale in SWEEP_SCALES:
            correct = total = lost = 0
            for key in SWEEP_CARS:
                car_correct, car_total, car_lost = recover(fleet, key, scale)
                correct += car_correct
                total += car_total
                lost += car_lost
            rows.append((scale, correct, total, lost))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report_file(
        f"Formula recovery vs noise scale (cars {', '.join(SWEEP_CARS)}; "
        f"default profile = 2% drop, 1% dup, 0.5% bit errors"
        f"{', smoke mode' if QUICK else ''}):"
    )
    for scale, correct, total, lost in rows:
        rate = correct / total
        report_file(
            f"  scale {scale:3.1f}x: {correct:3d}/{total} formulas = {rate:6.1%}"
            f"  (transport messages lost: {lost})"
        )
    report_file()

    metrics = {}
    units = {}
    for scale, correct, total, lost in rows:
        tag = f"scale_{scale:g}".replace(".", "p")
        metrics[f"{tag}_correct"] = correct
        metrics[f"{tag}_total"] = total
        metrics[f"{tag}_lost"] = lost
        units[f"{tag}_correct"] = "count"
        units[f"{tag}_total"] = "count"
        units[f"{tag}_lost"] = "count"
    bench_artifact(metrics, units, config=BENCH_CONFIG)

    # Zero noise is byte-identical to the clean pipeline: no transport
    # losses, and recovery equals the Tab. 6 precision (which is itself
    # below 100% — display lag and OCR noise are part of the paper).
    scale0 = rows[0]
    assert scale0[3] == 0
    assert scale0[1] / scale0[2] >= 0.95
    # Graceful degradation, not a cliff: even 4x the default fault rate
    # costs at most a handful of formulas (GP stochasticity can also win
    # one back, so bound both directions loosely).
    assert rows[-1][1] >= RECOVERY_FLOOR * rows[-1][2]
    assert rows[-1][1] <= rows[0][1] + 2


def test_fleet_recovers_at_default_noise(benchmark, report_file, bench_artifact, fleet):
    """Acceptance: every fleet vehicle completes under the default profile
    and the fleet-wide recovery stays above the floor."""

    def run():
        correct = total = 0
        per_car = []
        for key in FLEET_CARS:
            car_correct, car_total, __ = recover(fleet, key, 1.0)
            correct += car_correct
            total += car_total
            per_car.append((key, car_correct, car_total))
        return correct, total, per_car

    correct, total, per_car = benchmark.pedantic(run, rounds=1, iterations=1)
    rate = correct / total
    worst = min(per_car, key=lambda row: row[1] / row[2] if row[2] else 1.0)
    report_file(
        f"Full fleet at default noise ({len(FLEET_CARS)} cars): "
        f"{correct}/{total} = {rate:.1%} recovered "
        f"(floor {RECOVERY_FLOOR:.0%}; worst car {worst[0]}: {worst[1]}/{worst[2]})"
    )
    bench_artifact(
        {
            "fleet_correct": correct,
            "fleet_total": total,
            "fleet_recovery": round(rate, 4),
        },
        {"fleet_correct": "count", "fleet_total": "count", "fleet_recovery": "ratio"},
        config=BENCH_CONFIG,
    )
    assert rate >= RECOVERY_FLOOR
