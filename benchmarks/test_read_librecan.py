"""§4.4 / §5 comparison — READ+LibreCAN vs DP-Reverser on diagnostic traffic.

The related-work baseline (READ's bit-flip segmentation + LibreCAN's
correlation matching) is built for periodic broadcast frames.  This bench
shows both halves of the paper's argument:

1. on *broadcast* traffic the baseline works (validating our
   re-implementation);
2. on *diagnostic* traffic (multi-frame ISO-TP) its extracted fields are
   artefacts of transport framing and match nothing, while DP-Reverser
   recovers every ESV from the same capture.
"""

import pytest

from repro.core.read_baseline import librecan_match, read_analysis
from repro.vehicle.broadcast import BroadcastEmitter, default_broadcast_vehicle


def test_read_on_broadcast_traffic(benchmark, report_file, bench_artifact):
    specs = default_broadcast_vehicle()
    log = BroadcastEmitter(specs).run(30.0)

    def run():
        results = {}
        for spec in specs:
            frames = list(log.with_id(spec.can_id))
            results[spec.can_id] = read_analysis(frames)
        return results

    fields_per_id = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file("READ on broadcast CAN traffic (its native target):")
    recovered_signals = 0
    for spec in specs:
        fields = fields_per_id[spec.can_id]
        physical = [f for f in fields if f.kind == "physical"]
        recovered_signals += len(physical)
        report_file(
            f"  id {spec.can_id:#05x}: true signals {len(spec.signals)}, "
            f"READ fields {[(f.start_bit, f.length, f.kind) for f in fields]}"
        )
    # READ recovers roughly one physical field per true signal.
    total_true = sum(len(s.signals) for s in specs)
    bench_artifact(
        {"read_recovered": recovered_signals, "read_true_signals": total_true},
        {"read_recovered": "count", "read_true_signals": "count"},
    )
    assert recovered_signals >= total_true - 2


def test_librecan_on_diagnostic_traffic(benchmark, report_file, bench_artifact, fleet):
    """LibreCAN phase-1 on DP-Reverser's input: nothing usable comes out."""
    car, capture = fleet.capture("A")
    truth = fleet.ground_truth("A")
    context = fleet.context("A")

    def run():
        # Build per-label reference series (what LibreCAN would poll via
        # OBD-II) from the tool's screen.
        references = {
            label: [(s.timestamp, s.value) for s in series.numeric_samples]
            for label, series in context.series.items()
            if series.is_numeric
        }
        matched_labels = set()
        for can_id in capture.can_log.ids():
            frames = list(capture.can_log.with_id(can_id))
            if len(frames) < 10:
                continue
            fields = read_analysis(frames)
            for match in librecan_match(frames, fields, references):
                matched_labels.add(match.reference)
        return matched_labels

    matched = benchmark.pedantic(run, rounds=1, iterations=1)
    dp_matched = len(context.matches)
    report_file(
        f"Car A diagnostic capture: LibreCAN matched {len(matched)} labels; "
        f"DP-Reverser matched {dp_matched} ESVs from the same frames"
    )
    bench_artifact(
        {"librecan_matched": len(matched), "dp_matched": dp_matched},
        {"librecan_matched": "count", "dp_matched": "count"},
    )
    # The baseline extracts at most a stray coincidence; DP-Reverser gets all.
    assert len(matched) <= dp_matched // 4
    assert dp_matched >= 28
