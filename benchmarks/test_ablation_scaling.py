"""Ablation — the Tab. 2 pre/post-scaling of the GP dataset.

The paper motivates rescaling X and Y into roughly [1, 10): very small
targets make GP collapse to a constant, very large ones breed bloated
trees.  The paper's gplearn prototype has *no* linear-scaling fitness, so
Tab. 2 carries the whole burden; our engine adds Keijzer-style linear
scaling which absorbs part of it.  The ablation therefore measures all
four quadrants:

==============================  =======================================
configuration                   expectation
==============================  =======================================
Tab. 2 ON,  linear-scaling ON   accurate (the shipped default)
Tab. 2 OFF, linear-scaling ON   still decent (a, b absorb the ranges)
Tab. 2 ON,  linear-scaling OFF  accurate (the paper's configuration)
Tab. 2 OFF, linear-scaling OFF  fails on wide-range targets (the paper's
                                motivating failure)
==============================  =======================================
"""

import random
from dataclasses import replace

import pytest

from repro.core.gp import GeneticProgrammer, GpConfig
from repro.core.response_analysis import PairedDataset, prescale


def wide_range_cases(seed=5):
    """Formula cases whose Y ranges are far outside [1, 10)."""
    rng = random.Random(seed)
    cases = []
    xs = [(rng.uniform(500, 8000),) for __ in range(50)]
    cases.append(("rpm-style, Y~5e3", xs, [0.9 * x[0] + 320 for x in xs]))
    xs2 = [(rng.uniform(10, 250),) for __ in range(50)]
    cases.append(("lambda-style, Y~1e-3", xs2, [4e-5 * x[0] for x in xs2]))
    xs3 = [(rng.uniform(10, 250), rng.uniform(10, 250)) for __ in range(50)]
    cases.append(("product, Y~5e3", xs3, [0.2 * a * b for a, b in xs3]))
    return cases


def run_quadrant(xs, ys, use_table2, use_linear_scaling):
    config = GpConfig(seed=3, linear_scaling=use_linear_scaling)
    if use_table2:
        scaled = prescale(PairedDataset(list(xs), list(ys)))
        result = GeneticProgrammer(config).fit(scaled.x_rows, scaled.y_values)
        sx, sy = scaled.x_factors, scaled.y_factor
        predict = lambda x: result.predict(tuple(v * f for v, f in zip(x, sx))) / sy
    else:
        result = GeneticProgrammer(config).fit(xs, ys)
        predict = result.predict
    errors = [abs(predict(x) - y) / max(1e-9, abs(y)) for x, y in zip(xs, ys)]
    return sum(errors) / len(errors)


def test_ablation_table2_scaling(benchmark, report_file, bench_artifact):
    cases = wide_range_cases()

    def run():
        quadrants = {}
        for table2 in (True, False):
            for linear in (True, False):
                errors = [
                    run_quadrant(xs, ys, table2, linear) for __, xs, ys in cases
                ]
                quadrants[(table2, linear)] = sum(errors) / len(errors)
        return quadrants

    quadrants = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file("Ablation - Tab. 2 scaling x linear-scaling fitness")
    report_file("  (mean relative error over 3 wide-range formula cases)")
    metrics = {}
    for (table2, linear), error in sorted(quadrants.items(), reverse=True):
        report_file(
            f"  Tab.2={'on ' if table2 else 'off'} "
            f"linear-scaling={'on ' if linear else 'off'}: {error:.2%}"
        )
        tag = f"tab2_{'on' if table2 else 'off'}_ls_{'on' if linear else 'off'}"
        metrics[f"{tag}_rel_error"] = error
    bench_artifact(metrics, {name: "ratio" for name in metrics})

    # The shipped default and the paper's configuration are both accurate.
    assert quadrants[(True, True)] < 0.02
    assert quadrants[(True, False)] < 0.10
    # Without either normalisation, wide-range targets break GP — the
    # paper's motivating observation for Tab. 2.
    assert quadrants[(False, False)] > 3 * quadrants[(True, False)]
