"""Clean-stream ingest: batched binary wire vs. per-frame JSON wire.

The tentpole number of the service fast path.  One synthetic, perfectly
clean all-single-frame ISO-TP capture is pushed through the two wire
shapes the protocol supports:

* **per-frame (v1)** — every frame is its own JSON message; the session
  takes the event-by-event :meth:`~repro.service.session.VehicleSession
  .ingest_frame` path;
* **batched (v2)** — frames travel 256 to a binary ``frame-batch``
  record; the session takes :meth:`~repro.service.session.VehicleSession
  .ingest_frames`, which rides the vectorised
  :meth:`~repro.core.assembly.StreamAssembler.feed_chunk` fast path when
  the stream is clean.

Both paths consume identical wire chunks (socket-sized, 32 KiB) through a
real :class:`~repro.service.protocol.MessageDecoder`, so the measured
time covers the full ingest stack: framing, codec, assembly.  The bench
asserts the two sessions end in identical state (same assembled
messages, same diagnostics) before reporting any timing — a fast path
that diverges is a bug, not a win.

Metrics (``BENCH_service_ingest.json``):

* identity — ``frames``, ``messages``, ``wire_bytes_per_frame``,
  ``wire_bytes_batched`` (the wire sizes are deterministic functions of
  the synthetic capture, so they gate exactly);
* timing (warn-only, except the CI floor) — ``frames_per_s_v1``,
  ``frames_per_s_batched``, ``ingest_speedup``.  CI pins
  ``--floor ingest_speedup=3.0``; the bench-host target is >= 5x.

``SERVICE_SMOKE=1`` shrinks the capture to CI size.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.can import CanFrame
from repro.service import MessageDecoder, encode_message
from repro.service.protocol import (
    arrays_from_batch,
    frame_batch_to_wire,
    frame_from_wire,
    frame_to_wire,
)
from repro.service.session import VehicleSession

SMOKE = bool(os.environ.get("SERVICE_SMOKE"))
FRAMES = 6_000 if SMOKE else 24_000
REPEATS = 3 if SMOKE else 5
BATCH_SIZE = 256
CHUNK_BYTES = 32 * 1024  # one socket read's worth of wire

BENCH_CONFIG = {
    "smoke": SMOKE,
    "frames": FRAMES,
    "batch_size": BATCH_SIZE,
    "chunk_bytes": CHUNK_BYTES,
}


def synthetic_clean_capture(n_frames: int):
    """A clean all-SF ISO-TP dialogue: request/response over four ECUs.

    Every frame is a valid single-frame with a 1..7-byte payload, so the
    batched path stays on the vectorised clean-stream branch end to end —
    the scenario the wire format was built for (a live bridge replaying a
    healthy bus).
    """
    frames = []
    for i in range(n_frames):
        ecu = (i >> 1) & 0x3
        if i & 1:  # response: 62 <did> <value...>
            can_id = 0x7E8 + ecu
            payload = bytes([0x62, ecu, (i >> 3) & 0xFF, i & 0xFF, 0x10 + ecu])
        else:  # request: 22 <did>
            can_id = 0x7E0 + ecu
            payload = bytes([0x22, ecu, (i >> 3) & 0xFF])
        data = bytes([len(payload)]) + payload
        frames.append(
            CanFrame(can_id, data.ljust(8, b"\x00"), timestamp=i * 5e-4)
        )
    return frames


def wire_chunks(wire: bytes):
    for start in range(0, len(wire), CHUNK_BYTES):
        yield wire[start : start + CHUNK_BYTES]


def run_per_frame(wire: bytes) -> "tuple[VehicleSession, float]":
    decoder = MessageDecoder()
    session = VehicleSession(1, transport="isotp")
    start = time.perf_counter()
    for chunk in wire_chunks(wire):
        for message in decoder.feed(chunk):
            session.ingest_frame(frame_from_wire(message))
    return session, time.perf_counter() - start


def run_batched(wire: bytes) -> "tuple[VehicleSession, float]":
    decoder = MessageDecoder()
    session = VehicleSession(1, transport="isotp")
    start = time.perf_counter()
    for chunk in wire_chunks(wire):
        for message in decoder.feed(chunk):
            session.ingest_frames(arrays_from_batch(message))
    return session, time.perf_counter() - start


class TestIngestFastPath:
    def test_batched_binary_wire_vs_per_frame_json(
        self, bench_artifact, report_file
    ):
        frames = synthetic_clean_capture(FRAMES)
        wire_v1 = b"".join(encode_message(frame_to_wire(f)) for f in frames)
        wire_v2 = b"".join(
            encode_message(frame_batch_to_wire(frames[i : i + BATCH_SIZE]))
            for i in range(0, len(frames), BATCH_SIZE)
        )

        # Identity before timing: the fast path must be invisible in the
        # session's final state.
        slow, __ = run_per_frame(wire_v1)
        fast, __ = run_batched(wire_v2)
        assert fast._assembler.messages == slow._assembler.messages
        assert (
            fast._assembler.diagnostics.to_dict()
            == slow._assembler.diagnostics.to_dict()
        )
        assert fast.status() == slow.status()
        assert slow.messages_assembled == FRAMES  # every SF completes

        slow_s = min(run_per_frame(wire_v1)[1] for __ in range(REPEATS))
        fast_s = min(run_batched(wire_v2)[1] for __ in range(REPEATS))
        speedup = slow_s / fast_s

        bench_artifact(
            {
                "frames": FRAMES,
                "messages": slow.messages_assembled,
                "wire_bytes_per_frame": len(wire_v1),
                "wire_bytes_batched": len(wire_v2),
                "frames_per_s_v1": round(FRAMES / slow_s, 1),
                "frames_per_s_batched": round(FRAMES / fast_s, 1),
                "ingest_speedup": round(speedup, 2),
            },
            {
                "frames": "count",
                "messages": "count",
                "wire_bytes_per_frame": "count",
                "wire_bytes_batched": "count",
                "frames_per_s_v1": "x",
                "frames_per_s_batched": "x",
                "ingest_speedup": "x",
            },
            config=BENCH_CONFIG,
        )
        report_file(
            f"Clean-stream ingest ({FRAMES} frames"
            f"{', smoke mode' if SMOKE else ''}):"
        )
        report_file(
            f"  per-frame JSON wire: {FRAMES / slow_s:,.0f} frames/s "
            f"({len(wire_v1) / FRAMES:.1f} B/frame)"
        )
        report_file(
            f"  batched binary wire: {FRAMES / fast_s:,.0f} frames/s "
            f"({len(wire_v2) / FRAMES:.1f} B/frame), {speedup:.1f}x"
        )

    def test_noisy_stream_falls_back_without_divergence(self, report_file):
        """Corrupt every 97th frame: the batched path must degrade to the
        event path for the dirtied streams and still match per-frame."""
        frames = synthetic_clean_capture(2_000)
        for i in range(0, len(frames), 97):
            f = frames[i]
            frames[i] = CanFrame(
                f.can_id, b"\x21" + f.data[1:], timestamp=f.timestamp
            )  # orphan CF: forces the reassembler out of idle
        wire_v1 = b"".join(encode_message(frame_to_wire(f)) for f in frames)
        wire_v2 = b"".join(
            encode_message(frame_batch_to_wire(frames[i : i + BATCH_SIZE]))
            for i in range(0, len(frames), BATCH_SIZE)
        )
        slow, __ = run_per_frame(wire_v1)
        fast, __ = run_batched(wire_v2)
        slow_messages, slow_diag = slow._assembler.finish()
        fast_messages, fast_diag = fast._assembler.finish()
        assert fast_messages == slow_messages
        assert fast_diag.to_dict() == slow_diag.to_dict()
        assert slow_diag.stats.errors > 0  # the noise actually bit
        report_file(
            f"  noisy fallback: {slow_diag.stats.errors} decode errors, "
            "batched == per-frame state"
        )
