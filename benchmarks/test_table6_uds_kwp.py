"""Tab. 6 — per-car precision of UDS / KWP 2000 formula inference.

Paper: 290 formula ESVs over 18 cars, 285 correct (98.3 %), plus 156 enum
ESVs without formulas.  Correctness follows the paper's criterion: numeric
agreement with ground truth over the raw values observed in traffic.
"""

import pytest

from repro.vehicle import CAR_SPECS

from conftest import verify_car

PAPER_TOTAL_PRECISION = 0.983


@pytest.mark.parametrize("key", sorted(CAR_SPECS))
def test_table6_per_car(benchmark, report_file, bench_artifact, fleet, key):
    spec = CAR_SPECS[key]

    report, correct, wrong = benchmark.pedantic(
        lambda: verify_car(fleet, key), rounds=1, iterations=1
    )
    n_formula = len(report.formula_esvs)
    n_enum = len(report.enum_esvs)
    precision = correct / n_formula if n_formula else 1.0

    report_file(
        f"Car {key} ({spec.model}): #ESV(formula)={n_formula} "
        f"(paper {spec.formula_esvs}), correct={correct}, "
        f"precision={precision:.1%}, #ESV(enum)={n_enum} "
        f"(paper {spec.enum_esvs})"
        + (f"  wrong: {wrong}" if wrong else "")
    )

    bench_artifact(
        {f"car_{key}_correct": correct, f"car_{key}_formulas": n_formula},
        {f"car_{key}_correct": "count", f"car_{key}_formulas": "count"},
    )

    # Coverage: every ESV the tool displayed must be reversed.
    assert n_formula == spec.formula_esvs
    assert n_enum == spec.enum_esvs
    # Precision: the paper's per-car pattern is at most ~2 misses (its
    # worst rows: B 7/8, G 4/5, I 9/11, L 28/29).  Small-N cars can dip
    # below a ratio floor on a single display-lag miss, so bound the
    # absolute number of wrong formulas instead.
    assert len(wrong) <= max(1, round(0.2 * n_formula))


def test_table6_total(benchmark, report_file, bench_artifact, fleet):
    def total():
        total_correct = total_formulas = 0
        for key in sorted(CAR_SPECS):
            report, correct, __ = verify_car(fleet, key)
            total_correct += correct
            total_formulas += len(report.formula_esvs)
        return total_correct, total_formulas

    total_correct, total_formulas = benchmark.pedantic(total, rounds=1, iterations=1)
    precision = total_correct / total_formulas
    report_file(
        f"Total: {total_correct}/{total_formulas} = {precision:.1%} "
        f"(paper: 285/290 = {PAPER_TOTAL_PRECISION:.1%})"
    )
    bench_artifact(
        {
            "total_correct": total_correct,
            "total_formulas": total_formulas,
            "total_precision": round(precision, 4),
        },
        {
            "total_correct": "count",
            "total_formulas": "count",
            "total_precision": "ratio",
        },
    )
    assert total_formulas == 290
    assert precision >= PAPER_TOTAL_PRECISION - 0.02
