"""Extension experiment — the pipeline generalises to K-Line KWP 2000.

Tab. 1 lists ISO 14230 (K-Line) as KWP 2000's other carrier; the paper's
prototype only captured CAN.  This bench drives a K-Line vehicle, de-frames
the sniffed byte stream, and shows DP-Reverser recovering every measuring
block with the same machinery — demonstrating that only the
payload-assembly stage is carrier specific.
"""

import pytest

from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.tools import KLineDiagnosticSession, build_kline_vehicle


def test_kline_pipeline(benchmark, report_file, bench_artifact):
    vehicle = build_kline_vehicle()
    session = KLineDiagnosticSession(vehicle)
    capture, messages = session.collect(duration_per_ecu_s=30.0)

    def run():
        reverser = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2)))
        return reverser.infer(reverser.analyze(capture, messages=messages))

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    truth = {}
    for ecu in vehicle.ecus.values():
        for group in ecu.kwp_groups.values():
            for index, measurement in enumerate(group.measurements):
                truth[f"kwp:{group.local_id:02X}/{index}"] = (
                    measurement.name,
                    measurement.formula,
                )

    correct = 0
    for esv in report.formula_esvs:
        name, formula = truth[esv.identifier]
        ok = check_formula(esv.formula, formula, esv.samples)
        correct += ok

    report_file(
        f"K-Line KWP 2000: {len(vehicle.bus.capture)} wire bytes, "
        f"{len(messages)} messages; reversed {len(report.formula_esvs)}/"
        f"{len(truth)} ESVs, {correct} correct"
    )
    bench_artifact(
        {
            "kline_correct": correct,
            "kline_total": len(truth),
            "kline_wire_bytes": len(vehicle.bus.capture),
        },
        {
            "kline_correct": "count",
            "kline_total": "count",
            "kline_wire_bytes": "count",
        },
    )
    assert len(report.formula_esvs) == len(truth)
    assert correct == len(truth)
    assert report.transport == "kline"
