"""Tab. 11 — ECRs extracted per vehicle, and the 3-message procedure.

Paper: 124 ECRs over 10 vehicles; five use UDS IO control (0x2F) and five
the KWP input-output-control-by-local-identifier service (0x30).  Every
component is controlled by freeze (0x02) → short-term adjustment (0x03 +
control state) → return control (0x00).
"""

import pytest

from repro.vehicle import CAR_SPECS, expected_ecr_counts


@pytest.mark.parametrize("key", sorted(expected_ecr_counts()))
def test_table11_per_car(benchmark, report_file, fleet, key):
    spec = CAR_SPECS[key]

    report = benchmark.pedantic(lambda: fleet.report(key), rounds=1, iterations=1)
    complete = [p for p in report.ecrs if p.complete]
    distinct = {p.identifier for p in complete}
    service = {f"{p.service:02X}" for p in complete}

    report_file(
        f"Car {key} ({spec.model}): #ECR={len(distinct)} "
        f"(paper {spec.ecrs}), service {sorted(service)} "
        f"(paper {spec.ecr_service:02X})"
    )
    assert len(distinct) == spec.ecrs
    assert service == {f"{spec.ecr_service:02X}"}


def test_table11_total_and_procedure(benchmark, report_file, bench_artifact, fleet):
    def run():
        total = 0
        labelled = 0
        patterns = []
        for key in sorted(expected_ecr_counts()):
            report = fleet.report(key)
            complete = {p.identifier: p for p in report.ecrs if p.complete}
            total += len(complete)
            labelled += sum(1 for p in complete.values() if p.label)
            patterns.extend(p.request_pattern for p in complete.values())
        return total, labelled, patterns

    total, labelled, patterns = benchmark.pedantic(run, rounds=1, iterations=1)
    report_file(f"Total distinct ECRs: {total} (paper: 124)")
    report_file(f"ECRs with recovered semantics: {labelled}/{total}")
    report_file(f"Example procedure: {patterns[0]}")
    bench_artifact(
        {"ecr_total": total, "ecr_labelled": labelled},
        {"ecr_total": "count", "ecr_labelled": "count"},
    )

    assert total == 124
    # Nearly every procedure gets its on-screen actuator name (a few may be
    # blurred by OCR label noise).
    assert labelled >= int(0.9 * total)
    # Every procedure is the paper's 3-message pattern.
    for pattern in patterns:
        freeze, adjust, release = pattern.split(" | ")
        assert freeze.endswith("02")
        assert " 03" in adjust
        assert release.endswith("00")
