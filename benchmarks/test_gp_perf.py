"""GP inference-engine performance: compiled vs interpreted, serial vs
parallel backends, cold vs warm formula memo.

The perf features are exactness-preserving (compiled evaluation applies
the same primitives in the same order; the fitness cache returns the float
the evaluation produced; worker pools only reorder independent per-ESV
work and merge in slot order; the memo replays the exact stored result),
so this bench *asserts* result identity and *reports* the measured
speedups — wall-clock ratios vary with the machine, the correctness
contract does not.

Set ``GP_PERF_QUICK=1`` (the CI smoke mode) to run a reduced case set at a
small GP budget with 2-worker pools.  Timing *assertions* (the >=2.5x
process-pool target, the warm-memo floor) additionally require
``GP_PERF_ASSERT_TIMING=1``: they are only meaningful on a multi-core,
lightly loaded host, so CI opts in explicitly instead of flaking.
"""

import os
import time
from dataclasses import replace

from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.core.response_analysis import infer_formula

QUICK = bool(os.environ.get("GP_PERF_QUICK"))
ASSERT_TIMING = bool(os.environ.get("GP_PERF_ASSERT_TIMING"))

#: Pool width for the backend comparison (kept small in CI smoke mode).
WORKERS = 2 if QUICK else 4

#: Timing rounds per engine; the minimum total is reported, which filters
#: container scheduling noise without changing what is measured.
ROUNDS = 1 if QUICK else 5

FAST = GpConfig(seed=2)  # the default engine: compiled + cached
if QUICK:
    FAST = replace(FAST, population_size=100, generations=8)
SLOW = replace(FAST, compiled=False, fitness_cache=False)


def formula_cases(fleet, keys=("K", "B"), limit=2 if QUICK else 8):
    """The hardest inference targets: two-variable KWP ESVs."""
    cases = []
    for key in keys:
        context = fleet.context(key)
        truth = fleet.ground_truth(key)
        for match in context.matches:
            if len(cases) >= limit:
                return cases
            __, __, is_enum = truth[match.identifier]
            if is_enum:
                continue
            observations = context.grouped[match.identifier]
            series = context.series.get(match.label)
            if series is None or not series.is_numeric:
                continue
            cases.append((match.identifier, observations, series))
    return cases


def _time_engine(cases, config):
    """Best-of-ROUNDS total inference time + the per-case results."""
    results = None
    best = float("inf")
    for __ in range(ROUNDS):
        start = time.perf_counter()
        round_results = [
            infer_formula(observations, series, config)
            for __, observations, series in cases
        ]
        best = min(best, time.perf_counter() - start)
        if results is None:
            results = round_results
    return best, results


#: Knobs that shape every artifact this module writes (the comparer flags
#: artifacts produced under a different fingerprint as non-comparable).
#: ``cpu_count`` is part of the fingerprint because every parallel-backend
#: ratio below is meaningless to compare across hosts with different core
#: counts.
BENCH_CONFIG = {
    "quick": QUICK,
    "workers": WORKERS,
    "rounds": ROUNDS,
    "cpu_count": os.cpu_count(),
}


def test_compiled_vs_interpreted(benchmark, report_file, bench_artifact, fleet):
    cases = formula_cases(fleet)
    assert len(cases) >= 2

    def run():
        fast_s, fast_results = _time_engine(cases, FAST)
        slow_s, slow_results = _time_engine(cases, SLOW)
        return fast_s, slow_s, fast_results, slow_results

    fast_s, slow_s, fast_results, slow_results = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Correctness is the assertion: identical inferred expressions and
    # fitness at equal seeds, engine by engine.
    for (identifier, *_), fast, slow in zip(cases, fast_results, slow_results):
        assert (fast is None) == (slow is None), identifier
        if fast is not None:
            assert fast.description == slow.description, identifier
            assert fast.fitness == slow.fitness, identifier

    speedup = slow_s / fast_s if fast_s else float("inf")
    report_file(
        f"Per-formula engine ({len(cases)} KWP ESVs, best of {ROUNDS} round(s)"
        f"{', quick mode' if QUICK else ''}):"
    )
    report_file(f"  interpreted (compiled=False, cache=False): {slow_s/len(cases)*1000:7.0f} ms/formula")
    report_file(f"  compiled + fitness cache (default):        {fast_s/len(cases)*1000:7.0f} ms/formula")
    report_file(f"  speedup: {speedup:.2f}x, identical formulas on all {len(cases)} ESVs")
    report_file()
    bench_artifact(
        {
            "engine_cases": len(cases),
            "compiled_ms_per_formula": round(fast_s / len(cases) * 1000, 3),
            "interpreted_ms_per_formula": round(slow_s / len(cases) * 1000, 3),
            "compiled_speedup": round(speedup, 3),
        },
        {
            "engine_cases": "count",
            "compiled_ms_per_formula": "ms",
            "interpreted_ms_per_formula": "ms",
            "compiled_speedup": "x",
        },
        config=BENCH_CONFIG,
    )


def test_serial_vs_parallel_esvs(benchmark, report_file, bench_artifact, fleet):
    from repro.core.gp.islands import shared_pool

    context = fleet.context("K")

    def reverse(workers, backend, batch=False):
        reverser = DPReverser(
            ReverserConfig(
                gp_config=FAST,
                gp_workers=workers,
                gp_backend=backend,
                gp_batch=batch,
            )
        )
        start = time.perf_counter()
        report = reverser.infer(context)
        return time.perf_counter() - start, report

    # The island pool persists across infer calls by design, so its spawn
    # and warm-up cost belongs outside the timed region — a fleet or
    # service run pays it once, not per capture.
    shared_pool(WORKERS).warm()

    def run():
        timings = {}
        reports = {}
        for name, backend, workers, batch in (
            ("serial", "serial", 1, False),
            ("batch", "serial", 1, True),
            ("thread", "thread", WORKERS, False),
            ("process_per_esv", "process", WORKERS, False),
            ("island", "island", WORKERS, False),
        ):
            timings[name], reports[name] = reverse(workers, backend, batch)
        return timings, reports

    timings, reports = benchmark.pedantic(run, rounds=1, iterations=1)

    serial_report = reports["serial"]
    for name in ("batch", "thread", "process_per_esv", "island"):
        assert serial_report.to_dict() == reports[name].to_dict(), name

    n = len(serial_report.formula_esvs)
    batch_x = timings["serial"] / timings["batch"]
    thread_x = timings["serial"] / timings["thread"]
    per_esv_x = timings["serial"] / timings["process_per_esv"]
    island_x = timings["serial"] / timings["island"]
    report_file(
        f"Per-ESV inference backends (car K, {n} formula ESVs, "
        f"{WORKERS} workers{', quick mode' if QUICK else ''}):"
    )
    report_file(f"  serial:                {timings['serial']:6.2f} s")
    report_file(
        f"  serial + cross-ESV batch: {timings['batch']:6.2f} s = {batch_x:.2f}x"
    )
    report_file(
        f"  thread pool:           {timings['thread']:6.2f} s = {thread_x:.2f}x "
        "(GIL-bound evolution limits scaling)"
    )
    report_file(
        f"  process, task per ESV: {timings['process_per_esv']:6.2f} s = "
        f"{per_esv_x:.2f}x (pays pool spawn + per-task dataset pickling)"
    )
    report_file(
        f"  island (persistent workers + shm datasets): {timings['island']:6.2f} s "
        f"= {island_x:.2f}x (scales with physical cores; this host has "
        f"{os.cpu_count()})"
    )
    report_file("  identical report asserted on every backend")
    bench_artifact(
        {
            "backend_formula_esvs": n,
            "serial_s": round(timings["serial"], 3),
            "batch_s": round(timings["batch"], 3),
            "thread_s": round(timings["thread"], 3),
            "process_per_esv_s": round(timings["process_per_esv"], 3),
            "island_s": round(timings["island"], 3),
            "batch_speedup": round(batch_x, 3),
            "thread_speedup": round(thread_x, 3),
            "process_per_esv_speedup": round(per_esv_x, 3),
            # The headline process-parallelism number CI floors on: the
            # island backend (persistent workers, batched islands, shm
            # datasets) against serial.
            "process_speedup": round(island_x, 3),
        },
        {
            "backend_formula_esvs": "count",
            "serial_s": "s",
            "batch_s": "s",
            "thread_s": "s",
            "process_per_esv_s": "s",
            "island_s": "s",
            "batch_speedup": "x",
            "thread_speedup": "x",
            "process_per_esv_speedup": "x",
            "process_speedup": "x",
        },
        config=BENCH_CONFIG,
    )
    if ASSERT_TIMING:
        if (os.cpu_count() or 1) < 4:
            report_file(
                f"  NOTE: process_speedup assertion skipped — only "
                f"{os.cpu_count()} CPU core(s); parallel backends cannot "
                "beat serial without cores to scale onto"
            )
        else:
            assert island_x >= 2.0, (
                f"island backend only {island_x:.2f}x over serial "
                f"(GP_PERF_ASSERT_TIMING demands >=2.0x at {WORKERS} workers)"
            )


def test_memo_cold_vs_warm(benchmark, report_file, bench_artifact, fleet, tmp_path):
    context = fleet.context("K")
    memo_dir = str(tmp_path / "memo")

    def reverse():
        reverser = DPReverser(
            ReverserConfig(gp_config=FAST, gp_memo_dir=memo_dir)
        )
        start = time.perf_counter()
        report = reverser.infer(context)
        return time.perf_counter() - start, report, reverser.memo_stats

    def run():
        baseline = DPReverser(ReverserConfig(gp_config=FAST)).infer(context)
        cold_s, cold_report, cold_stats = reverse()
        warm_s, warm_report, warm_stats = reverse()
        return baseline, cold_s, cold_report, cold_stats, warm_s, warm_report, warm_stats

    baseline, cold_s, cold_report, cold_stats, warm_s, warm_report, warm_stats = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    n = len(baseline.formula_esvs)
    # The memo must change wall-clock only: identical reports, every ESV
    # solved exactly once (cold) then recalled without GP (warm).
    assert cold_report.to_dict() == baseline.to_dict()
    assert warm_report.to_dict() == baseline.to_dict()
    assert cold_stats == {"hits": 0, "misses": n}
    assert warm_stats == {"hits": n, "misses": 0}
    assert warm_s < cold_s, "warm memo run should never be slower than cold"

    report_file(
        f"Formula memo (car K, {n} formula ESVs"
        f"{', quick mode' if QUICK else ''}):"
    )
    report_file(f"  cold (solve + store): {cold_s:6.2f} s ({n} misses)")
    report_file(
        f"  warm (recall only):   {warm_s:6.2f} s ({n} hits, "
        f"{cold_s / warm_s:.0f}x faster, identical report asserted)"
    )
    bench_artifact(
        {
            "memo_formula_esvs": n,
            "memo_cold_s": round(cold_s, 3),
            "memo_warm_s": round(warm_s, 3),
            "memo_speedup": round(cold_s / warm_s, 3),
            "memo_warm_hits": warm_stats["hits"],
        },
        {
            "memo_formula_esvs": "count",
            "memo_cold_s": "s",
            "memo_warm_s": "s",
            "memo_speedup": "x",
            "memo_warm_hits": "count",
        },
        config=BENCH_CONFIG,
    )
    if ASSERT_TIMING:
        assert warm_s < cold_s / 3, (
            f"warm memo run {warm_s:.2f} s not well under cold {cold_s:.2f} s"
        )
