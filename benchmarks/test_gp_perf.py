"""GP inference-engine performance: compiled vs interpreted, serial vs
parallel.

The perf features are exactness-preserving (compiled evaluation applies
the same primitives in the same order; the fitness cache returns the float
the evaluation produced; per-ESV threads only reorder independent work),
so this bench *asserts* result identity and *reports* the measured
speedups — wall-clock ratios vary with the machine, the correctness
contract does not.

Set ``GP_PERF_QUICK=1`` (the CI smoke mode) to run a reduced case set at a
small GP budget.
"""

import os
import time
from dataclasses import replace

from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.core.response_analysis import infer_formula

QUICK = bool(os.environ.get("GP_PERF_QUICK"))

#: Timing rounds per engine; the minimum total is reported, which filters
#: container scheduling noise without changing what is measured.
ROUNDS = 1 if QUICK else 5

FAST = GpConfig(seed=2)  # the default engine: compiled + cached
if QUICK:
    FAST = replace(FAST, population_size=100, generations=8)
SLOW = replace(FAST, compiled=False, fitness_cache=False)


def formula_cases(fleet, keys=("K", "B"), limit=2 if QUICK else 8):
    """The hardest inference targets: two-variable KWP ESVs."""
    cases = []
    for key in keys:
        context = fleet.context(key)
        truth = fleet.ground_truth(key)
        for match in context.matches:
            if len(cases) >= limit:
                return cases
            __, __, is_enum = truth[match.identifier]
            if is_enum:
                continue
            observations = context.grouped[match.identifier]
            series = context.series.get(match.label)
            if series is None or not series.is_numeric:
                continue
            cases.append((match.identifier, observations, series))
    return cases


def _time_engine(cases, config):
    """Best-of-ROUNDS total inference time + the per-case results."""
    results = None
    best = float("inf")
    for __ in range(ROUNDS):
        start = time.perf_counter()
        round_results = [
            infer_formula(observations, series, config)
            for __, observations, series in cases
        ]
        best = min(best, time.perf_counter() - start)
        if results is None:
            results = round_results
    return best, results


def test_compiled_vs_interpreted(benchmark, report_file, fleet):
    cases = formula_cases(fleet)
    assert len(cases) >= 2

    def run():
        fast_s, fast_results = _time_engine(cases, FAST)
        slow_s, slow_results = _time_engine(cases, SLOW)
        return fast_s, slow_s, fast_results, slow_results

    fast_s, slow_s, fast_results, slow_results = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Correctness is the assertion: identical inferred expressions and
    # fitness at equal seeds, engine by engine.
    for (identifier, *_), fast, slow in zip(cases, fast_results, slow_results):
        assert (fast is None) == (slow is None), identifier
        if fast is not None:
            assert fast.description == slow.description, identifier
            assert fast.fitness == slow.fitness, identifier

    speedup = slow_s / fast_s if fast_s else float("inf")
    report_file(
        f"Per-formula engine ({len(cases)} KWP ESVs, best of {ROUNDS} round(s)"
        f"{', quick mode' if QUICK else ''}):"
    )
    report_file(f"  interpreted (compiled=False, cache=False): {slow_s/len(cases)*1000:7.0f} ms/formula")
    report_file(f"  compiled + fitness cache (default):        {fast_s/len(cases)*1000:7.0f} ms/formula")
    report_file(f"  speedup: {speedup:.2f}x, identical formulas on all {len(cases)} ESVs")
    report_file()


def test_serial_vs_parallel_esvs(benchmark, report_file, fleet):
    context = fleet.context("K")

    def reverse(workers):
        reverser = DPReverser(ReverserConfig(gp_config=FAST, gp_workers=workers))
        start = time.perf_counter()
        report = reverser.infer(context)
        return time.perf_counter() - start, report

    def run():
        serial_s, serial_report = reverse(1)
        parallel_s, parallel_report = reverse(4)
        return serial_s, parallel_s, serial_report, parallel_report

    serial_s, parallel_s, serial_report, parallel_report = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    assert serial_report.to_dict() == parallel_report.to_dict()

    n = len(serial_report.formula_esvs)
    report_file(f"Per-ESV parallel inference (car K, {n} formula ESVs):")
    report_file(f"  gp_workers=1: {serial_s:6.2f} s")
    report_file(f"  gp_workers=4: {parallel_s:6.2f} s (thread pool; GIL-bound"
                " evolution limits scaling — identical report asserted)")
