"""Tab. 8 — average time cost of formula inference per algorithm.

Paper: GP ≈ 201 s (UDS) / 192 s (KWP 2000) at 1000 individuals x 30
generations, vs < 2 ms for linear regression and polynomial fitting.  Our
GP defaults are tuned smaller, so the absolute numbers differ; the *shape*
to preserve is GP being orders of magnitude slower than both baselines.
"""

import time

import pytest

from repro.core import GpConfig, linear_regression, polynomial_fit
from repro.core.response_analysis import PairedDataset, build_dataset, infer_formula

from conftest import verify_car


def sample_datasets(fleet, key, limit=5):
    """Paired datasets for the first ``limit`` matched ESVs of one car."""
    context = fleet.context(key)
    datasets = []
    for match in context.matches[:limit]:
        observations = context.grouped[match.identifier]
        series = context.series.get(match.label)
        if series is None or not series.is_numeric:
            continue
        mode = "bytes" if observations[0].protocol == "kwp" else "int"
        dataset = build_dataset(observations, series, mode)
        if len(dataset) >= 6:
            datasets.append((observations, series, dataset))
    return datasets


@pytest.mark.parametrize("key,protocol", [("A", "UDS"), ("K", "KWP 2000")])
def test_table8_time_cost(benchmark, report_file, bench_artifact, fleet, key, protocol):
    datasets = sample_datasets(fleet, key)
    assert datasets

    def time_algorithms():
        times = {"gp": 0.0, "linear": 0.0, "poly": 0.0}
        for observations, series, dataset in datasets:
            start = time.perf_counter()
            infer_formula(observations, series, GpConfig(seed=2))
            times["gp"] += time.perf_counter() - start
            start = time.perf_counter()
            linear_regression(dataset)
            times["linear"] += time.perf_counter() - start
            start = time.perf_counter()
            polynomial_fit(dataset)
            times["poly"] += time.perf_counter() - start
        return {name: total / len(datasets) for name, total in times.items()}

    times = benchmark.pedantic(time_algorithms, rounds=1, iterations=1)
    report_file(
        f"Table 8 ({protocol}): per-formula time — "
        f"GP {times['gp']*1000:.1f} ms, "
        f"linear regression {times['linear']*1000:.3f} ms, "
        f"polynomial {times['poly']*1000:.3f} ms "
        f"(paper: ~200 s vs <2 ms at 1000x30 GP budget)"
    )
    tag = key.lower()
    bench_artifact(
        {
            f"gp_ms_{tag}": round(times["gp"] * 1000, 3),
            f"linear_ms_{tag}": round(times["linear"] * 1000, 4),
            f"poly_ms_{tag}": round(times["poly"] * 1000, 4),
        },
        {
            f"gp_ms_{tag}": "ms",
            f"linear_ms_{tag}": "ms",
            f"poly_ms_{tag}": "ms",
        },
    )
    # Shape: GP orders of magnitude slower than both closed-form baselines.
    assert times["gp"] > 50 * times["linear"]
    assert times["gp"] > 50 * times["poly"]


def test_table8_paper_scale_budget(benchmark, report_file, bench_artifact, fleet):
    """One GP run at the paper's 1000x30 budget, for the scale comparison."""
    observations, series, __ = sample_datasets(fleet, "A", limit=1)[0]
    config = GpConfig(population_size=1000, generations=30, seed=2)

    start = time.perf_counter()
    result = benchmark.pedantic(
        lambda: infer_formula(observations, series, config), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start
    report_file(
        f"Paper-scale GP (1000x30): {elapsed:.1f} s for one formula "
        f"(paper: ~200 s on their hardware/dataset sizes)"
    )
    bench_artifact({"paper_scale_gp_s": round(elapsed, 3)}, {"paper_scale_gp_s": "s"})
    assert result is not None
