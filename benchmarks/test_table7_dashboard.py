"""Tab. 7 — validating recovered formulas against the vehicle dashboard.

Paper: for Cars F, K, L and R one ESV is also shown on the instrument
cluster; combining sniffed messages with the inferred formula must predict
the dashboard value.  The paper's four rows (with their exact formulas) are
pinned into the fleet, so this bench also checks the recovered formula has
the right *shape* family.
"""

import pytest

from conftest import verify_car

#: car -> (dashboard label, paper's recovered formula)
TABLE7 = {
    "F": ("Engine Speed", "Y = X"),
    "K": ("Engine Speed", "Y = X0*X1/5"),
    "L": ("Coolant Temperature", "Y = 0.5X"),
    "R": ("Engine Speed", "Y = 64.1X0 + 0.241X1"),
}


@pytest.mark.parametrize("key", sorted(TABLE7))
def test_table7_dashboard_validation(benchmark, report_file, bench_artifact, fleet, key):
    label, paper_formula = TABLE7[key]

    def run():
        report = fleet.report(key)
        car, __ = fleet.capture(key)
        return report, car

    report, car = benchmark.pedantic(run, rounds=1, iterations=1)
    esv = report.esv_by_label(label)
    assert esv is not None, f"{label} not reversed on Car {key}"
    assert esv.formula is not None

    # Ground truth: the dashboard shows formula(raw) for the same ESV.
    truth = fleet.ground_truth(key)[esv.identifier][1]
    matches = sum(
        1
        for sample in esv.samples
        if abs(esv.formula(sample) - truth(sample))
        <= max(1.0, 0.05 * abs(truth(sample)))
    )
    agreement = matches / len(esv.samples)

    report_file(
        f"Car {key}: {label}: inferred {esv.formula.description} "
        f"(paper: {paper_formula}) — dashboard agreement "
        f"{matches}/{len(esv.samples)} = {agreement:.1%}"
    )
    bench_artifact(
        {f"car_{key}_agreement": round(agreement, 4)},
        {f"car_{key}_agreement": "ratio"},
    )
    assert agreement >= 0.95
