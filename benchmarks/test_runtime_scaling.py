"""Runtime bench — serial vs parallel fleet wall-clock.

The paper's sweep is embarrassingly parallel per vehicle: nothing a
capture rig learns from Car A changes what it does to Car B.  This bench
measures what :mod:`repro.runtime`'s worker pools buy over the seed's
serial loop on a 4-car fleet, and asserts the scheduler's core guarantee —
the parallel run's ESV/ECR results are byte-identical to the serial run's
(same ``RunReport`` digest).

Two scenarios:

1. *capture-rig* — each job carries ``live_latency_s`` of real bus-wait
   time (on hardware the rig idles for hours while the tool reads the live
   bus; :class:`~repro.simtime.SimClock` otherwise compresses that wait to
   nothing).  Workers overlap the waits, so the speedup here is what a
   real multi-vehicle rig gets and must exceed 1.5x regardless of host
   core count.
2. *cpu-only* — pure inference compute over a process pool.  Scales with
   physical cores, so the number is recorded but not asserted (this
   container may have a single core).  The pool is persistent
   (``SchedulerConfig(persistent_pool=True)``) and the fleet is run twice
   through it, so the artifact separates the cold cost (spawn + import per
   run) from the warm steady state a repeated sweep actually sees.
"""

import os
import time

from repro.runtime import JobSpec, Scheduler, SchedulerConfig

from conftest import verify_car  # noqa: F401  (conftest import keeps bench style uniform)

CARS = ("B", "C", "E", "P")
GP = (("generations", 8), ("population_size", 100))
WORKERS = 4
LIVE_LATENCY_S = 3.0


def specs(live_latency_s=0.0):
    return [
        JobSpec(
            car_key=key,
            read_duration_s=8.0,
            gp_overrides=GP,
            live_latency_s=live_latency_s,
        )
        for key in CARS
    ]


def timed_run(config, jobs):
    start = time.perf_counter()
    report = Scheduler(config).run(jobs)
    return report, time.perf_counter() - start


def timed_scheduler_run(scheduler, jobs):
    start = time.perf_counter()
    report = scheduler.run(jobs)
    return report, time.perf_counter() - start


def test_runtime_scaling(benchmark, report_file, bench_artifact):
    def compare():
        serial, t_serial = timed_run(
            SchedulerConfig(pool="serial"), specs(LIVE_LATENCY_S)
        )
        parallel, t_parallel = timed_run(
            SchedulerConfig(pool="thread", workers=WORKERS), specs(LIVE_LATENCY_S)
        )
        cpu_serial, t_cpu_serial = timed_run(SchedulerConfig(pool="serial"), specs())
        # Persistent pool: the first run pays process spawn + warm-up, the
        # second reuses the live workers — the cost profile a repeated
        # sweep (benchmark sizing, service re-runs) actually sees.
        with Scheduler(
            SchedulerConfig(pool="process", workers=WORKERS, persistent_pool=True)
        ) as scheduler:
            cpu_parallel, t_cpu_parallel = timed_scheduler_run(scheduler, specs())
            cpu_warm, t_cpu_warm = timed_scheduler_run(scheduler, specs())
        return {
            "serial": serial,
            "parallel": parallel,
            "t_serial": t_serial,
            "t_parallel": t_parallel,
            "cpu_equal": (
                cpu_serial.results_digest()
                == cpu_parallel.results_digest()
                == cpu_warm.results_digest()
            ),
            "t_cpu_serial": t_cpu_serial,
            "t_cpu_parallel": t_cpu_parallel,
            "t_cpu_warm": t_cpu_warm,
        }

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    serial, parallel = out["serial"], out["parallel"]
    assert len(serial.ok) == len(parallel.ok) == len(CARS)
    assert serial.results_digest() == parallel.results_digest()
    assert out["cpu_equal"]

    speedup = out["t_serial"] / out["t_parallel"]
    cpu_speedup = out["t_cpu_serial"] / out["t_cpu_parallel"]
    pool_reuse = out["t_cpu_parallel"] / out["t_cpu_warm"]
    report_file(
        f"Runtime scaling ({len(CARS)}-car fleet, {WORKERS} workers, "
        f"{LIVE_LATENCY_S:g} s bus latency/car):"
    )
    report_file(
        f"  capture-rig: serial {out['t_serial']:.1f} s -> "
        f"parallel {out['t_parallel']:.1f} s = {speedup:.2f}x speedup"
    )
    report_file(
        f"  cpu-only (process pool): serial {out['t_cpu_serial']:.1f} s -> "
        f"parallel {out['t_cpu_parallel']:.1f} s = {cpu_speedup:.2f}x "
        f"(core-count dependent, not asserted; this host has "
        f"{os.cpu_count()} core(s))"
    )
    report_file(
        f"  persistent pool reuse: cold {out['t_cpu_parallel']:.1f} s -> "
        f"warm {out['t_cpu_warm']:.1f} s = {pool_reuse:.2f}x "
        "(spawn + warm-up amortised across runs)"
    )
    report_file(
        f"  results digest (serial == parallel): {serial.results_digest()[:16]}..."
    )
    bench_artifact(
        {
            "rig_serial_s": out["t_serial"],
            "rig_parallel_s": out["t_parallel"],
            "rig_speedup": speedup,
            "cpu_serial_s": out["t_cpu_serial"],
            "cpu_parallel_s": out["t_cpu_parallel"],
            "cpu_warm_s": out["t_cpu_warm"],
            "pool_reuse_speedup": pool_reuse,
            "digests_equal": int(out["cpu_equal"]),
        },
        {
            "rig_serial_s": "s",
            "rig_parallel_s": "s",
            "rig_speedup": "x",
            "cpu_serial_s": "s",
            "cpu_parallel_s": "s",
            "cpu_warm_s": "s",
            "pool_reuse_speedup": "x",
            "digests_equal": "count",
        },
        # cpu_count fingerprints the host: cross-host comparison of the
        # process-pool ratios is meaningless without it.
        config={"cars": len(CARS), "workers": WORKERS, "cpu_count": os.cpu_count()},
    )
    assert speedup > 1.5, f"parallel fleet run only {speedup:.2f}x faster than serial"
