"""Machine-readable benchmark artifacts.

Every bench module writes, next to its human-readable ``results/<name>.txt``
table, a structured ``results/BENCH_<name>.json`` artifact that CI uploads
and :mod:`scripts.bench_compare` diffs against the committed baselines in
``benchmarks/results/baseline/``.

Artifact schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "name": "gp_perf",                # bench name (module minus test_)
      "config": {...},                  # knobs that shaped the run
      "config_fingerprint": "9f3a...",  # sha256 of the canonical config
      "commit": "abc123",               # git commit of the producing tree
      "metrics": {"precision": 0.94, "wall_s": 12.3},
      "units": {"precision": "ratio", "wall_s": "s"}
    }

``metrics`` values are numbers (or NaN); ``units`` gives each metric's unit
string, which is also how the comparer classifies it — timing units
(``"s"``, ``"ms"``, ``"x"``) regress with tolerance and warn by default,
everything else ("count", "ratio", ...) is an identity metric compared
exactly and failed hard on mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

BENCH_SCHEMA_VERSION = 1

#: Units the comparer treats as timing (tolerant, warn-only by default).
TIMING_UNITS = frozenset({"s", "ms", "us", "x"})


def config_fingerprint(config: Mapping[str, object]) -> str:
    """Stable digest of the bench configuration knobs."""
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def current_commit() -> str:
    """The producing commit: ``$GITHUB_SHA`` in CI, ``git rev-parse`` locally,
    empty string when neither is available (artifact stays writable)."""
    sha = os.environ.get("GITHUB_SHA", "")
    if sha:
        return sha
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            ).stdout.strip()
        )
    except OSError:
        return ""


def build_artifact(
    name: str,
    metrics: Mapping[str, float],
    units: Mapping[str, str],
    config: Optional[Mapping[str, object]] = None,
) -> dict:
    """Assemble one artifact dict (validated, not yet written)."""
    missing = sorted(set(metrics) - set(units))
    if missing:
        raise ValueError(f"metrics without units in bench {name!r}: {missing}")
    config = dict(config or {})
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "config": config,
        "config_fingerprint": config_fingerprint(config),
        "commit": current_commit(),
        "metrics": {key: metrics[key] for key in sorted(metrics)},
        "units": {key: units[key] for key in sorted(units)},
    }


def write_bench(
    directory: Union[str, Path],
    name: str,
    metrics: Mapping[str, float],
    units: Mapping[str, str],
    config: Optional[Mapping[str, object]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` into ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    artifact = build_artifact(name, metrics, units, config)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


def read_bench(path: Union[str, Path]) -> dict:
    """Load and schema-check one artifact."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: bench schema {version!r}, expected {BENCH_SCHEMA_VERSION}"
        )
    for key in ("name", "metrics", "units"):
        if key not in payload:
            raise ValueError(f"{path}: artifact missing {key!r}")
    return payload


def load_artifact_dir(directory: Union[str, Path]) -> Dict[str, dict]:
    """Every ``BENCH_*.json`` under ``directory``, keyed by bench name."""
    artifacts: Dict[str, dict] = {}
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        artifact = read_bench(path)
        artifacts[artifact["name"]] = artifact
    return artifacts
