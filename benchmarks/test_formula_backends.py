"""Formula-inference backend ablation: ``gp`` vs ``linear`` vs ``hybrid``.

The claim behind the :class:`~repro.core.inference.InferenceBackend` seam
is a *free lunch on the easy majority*: most dashboard formulas are affine
or pure rescales that the closed-form linear dictionary solves in
microseconds, so ``hybrid`` (linear first, GP only for the hard tail)
recovers the **identical formula set** as pure GP at a fraction of the
wall-clock.  This bench asserts the identity half fleet-wide — same
found-ESV set, byte-identical GP-tail formula descriptions, every
linear-accepted formula exact against ground truth — and *reports* the
wall-clock half (``hybrid_speedup``, floored at 1.5x in CI via
``bench_compare --floor``).

Set ``FORMULA_BACKEND_QUICK=1`` (the CI smoke mode) to run a two-car
subset at a small GP budget; the committed baseline is produced in quick
mode so CI identity metrics compare like for like.
"""

import os
import time
from dataclasses import replace

from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula

from conftest import verify_car  # noqa: F401  (fleet fixture helper family)

QUICK = bool(os.environ.get("FORMULA_BACKEND_QUICK"))

#: Car subset: quick mode keeps one car with a genuine GP tail (A) and one
#: fully linear-solvable car (E); full mode sweeps the whole fleet.
CARS = ("A", "E") if QUICK else None

GP_CONFIG = GpConfig(seed=2)
if QUICK:
    GP_CONFIG = replace(GP_CONFIG, population_size=100, generations=8)

BENCH_CONFIG = {
    "quick": QUICK,
    "cars": list(CARS) if CARS else "fleet",
    "population_size": GP_CONFIG.population_size,
    "generations": GP_CONFIG.generations,
    "seed": GP_CONFIG.seed,
}


def _infer(context, backend):
    reverser = DPReverser(
        ReverserConfig(gp_config=GP_CONFIG, formula_backend=backend)
    )
    start = time.perf_counter()
    report = reverser.infer(context)
    return report, reverser, time.perf_counter() - start


def test_backend_ablation(fleet, report_file, bench_artifact):
    keys = list(CARS) if CARS else fleet.keys
    totals = {"gp": 0.0, "linear": 0.0, "hybrid": 0.0}
    found = {"gp": 0, "linear": 0, "hybrid": 0}
    n_fallbacks = n_linear_checked = 0

    report_file("Formula-inference backend ablation")
    report_file(f"(cars: {', '.join(keys)}; GP budget: "
                f"{GP_CONFIG.population_size}x{GP_CONFIG.generations})")
    report_file("")
    report_file(f"{'Car':<5}{'gp_s':>8}{'linear_s':>10}{'hybrid_s':>10}"
                f"{'#gp':>5}{'#lin':>6}{'#hyb':>6}{'fallbacks':>11}")

    for key in keys:
        context = fleet.context(key)
        truth = fleet.ground_truth(key)
        reports = {}
        times = {}
        reversers = {}
        for backend in ("gp", "linear", "hybrid"):
            reports[backend], reversers[backend], times[backend] = _infer(
                context, backend
            )
            totals[backend] += times[backend]
            found[backend] += sum(
                1 for esv in reports[backend].formula_esvs if esv.formula is not None
            )

        # --- identity: hybrid recovers exactly what pure GP recovers.
        gp_esvs = {e.identifier: e for e in reports["gp"].formula_esvs}
        gp_found = {i for i, e in gp_esvs.items() if e.formula is not None}
        hybrid_found = set()
        fallbacks = 0
        for esv in reports["hybrid"].formula_esvs:
            if esv.formula is None:
                continue
            hybrid_found.add(esv.identifier)
            if esv.formula.backend == "gp":
                # GP tail: byte-identical to the pure-GP run.
                fallbacks += 1
                assert (
                    esv.formula.description
                    == gp_esvs[esv.identifier].formula.description
                ), f"{key}/{esv.identifier}: hybrid GP tail diverged from pure GP"
            else:
                # Linear-accepted: exact against ground truth.
                __, truth_formula, __ = truth[esv.identifier]
                assert check_formula(esv.formula, truth_formula, esv.samples), (
                    f"{key}/{esv.identifier}: linear formula wrong vs truth"
                )
                n_linear_checked += 1
        assert hybrid_found == gp_found, f"{key}: hybrid ESV set != gp ESV set"
        n_fallbacks += fallbacks

        report_file(
            f"{key:<5}{times['gp']:>8.2f}{times['linear']:>10.3f}"
            f"{times['hybrid']:>10.2f}"
            f"{sum(1 for e in reports['gp'].formula_esvs if e.formula):>5}"
            f"{sum(1 for e in reports['linear'].formula_esvs if e.formula):>6}"
            f"{len(hybrid_found):>6}{fallbacks:>11}"
        )

    hybrid_speedup = totals["gp"] / totals["hybrid"] if totals["hybrid"] else 0.0
    linear_speedup = totals["gp"] / totals["linear"] if totals["linear"] else 0.0
    linear_hit_rate = found["linear"] / found["gp"] if found["gp"] else 0.0

    report_file("")
    report_file(f"hybrid speedup over pure GP: {hybrid_speedup:.2f}x")
    report_file(f"linear-only speedup:         {linear_speedup:.1f}x")
    report_file(
        f"linear hit rate: {found['linear']}/{found['gp']} = {linear_hit_rate:.1%}"
        f" (hybrid falls back to GP for {n_fallbacks})"
    )

    bench_artifact(
        metrics={
            "gp_s": round(totals["gp"], 3),
            "linear_s": round(totals["linear"], 3),
            "hybrid_s": round(totals["hybrid"], 3),
            "hybrid_speedup": round(hybrid_speedup, 3),
            "linear_speedup": round(linear_speedup, 3),
            "gp_formula_esvs": found["gp"],
            "linear_formula_esvs": found["linear"],
            "hybrid_formula_esvs": found["hybrid"],
            "hybrid_gp_fallbacks": n_fallbacks,
            "linear_exact_vs_truth": n_linear_checked,
            "linear_hit_rate": round(linear_hit_rate, 4),
        },
        units={
            "gp_s": "s",
            "linear_s": "s",
            "hybrid_s": "s",
            "hybrid_speedup": "x",
            "linear_speedup": "x",
            "gp_formula_esvs": "count",
            "linear_formula_esvs": "count",
            "hybrid_formula_esvs": "count",
            "hybrid_gp_fallbacks": "count",
            "linear_exact_vs_truth": "count",
            "linear_hit_rate": "ratio",
        },
        config=BENCH_CONFIG,
    )

    # The wall-clock claim CI floors (--floor hybrid_speedup=1.5); asserted
    # loosely here too so a local full run can't silently lose the win.
    assert hybrid_speedup > 1.0, "hybrid must beat pure GP"
