"""Tab. 9 — single- vs multi-frame mix, and the necessity of reassembly.

Paper: UDS traffic (Car A) is 55.1 % single frames / 32.0 % multi-frame
(rest flow control); KWP 2000 over VW TP 2.0 (Cars B+C) is 24.8 % last
packets vs 75.2 % frames that must wait for successors.  The claim to
preserve: a large share of frames is unusable without payload reassembly.
"""

import pytest

from repro.core import assemble, multiframe_statistics
from repro.core.fields import extract_fields


def test_table9_uds_mix(benchmark, report_file, bench_artifact, fleet):
    __, capture = fleet.capture("A")

    stats = benchmark.pedantic(
        lambda: multiframe_statistics(list(capture.can_log)), rounds=1, iterations=1
    )
    total = stats["total"]
    single_pct = stats["single"] / total
    multi_pct = stats["multi"] / total
    report_file(
        f"UDS (Car A): {total} frames — single {stats['single']} "
        f"({single_pct:.1%}, paper 55.1%), multi {stats['multi']} "
        f"({multi_pct:.1%}, paper 32.0%), control {stats['control']}"
    )
    bench_artifact(
        {
            "uds_single": stats["single"],
            "uds_multi": stats["multi"],
            "uds_control": stats["control"],
            "uds_total": total,
        },
        {
            "uds_single": "count",
            "uds_multi": "count",
            "uds_control": "count",
            "uds_total": "count",
        },
    )
    # Shape: both kinds are a substantial share of traffic.
    assert multi_pct > 0.15
    assert single_pct > 0.15


def test_table9_kwp_mix(benchmark, report_file, bench_artifact, fleet):
    def merged_stats():
        totals = {"single": 0, "multi": 0, "control": 0, "total": 0}
        for key in ("B", "C"):
            __, capture = fleet.capture(key)
            stats = multiframe_statistics(list(capture.can_log))
            for name in totals:
                totals[name] += stats[name]
        return totals

    stats = benchmark.pedantic(merged_stats, rounds=1, iterations=1)
    # The paper's accounting (3,425 + 1,131 = 4,556) splits *all* captured
    # frames into "last frames" vs "needs to wait for the next frames".
    total = stats["total"]
    last_pct = stats["single"] / total
    waiting_pct = 1.0 - last_pct
    report_file(
        f"KWP 2000 (Cars B+C): {total} frames — "
        f"last frames {stats['single']} ({last_pct:.1%}, paper 24.8%), "
        f"waiting for next {total - stats['single']} "
        f"({waiting_pct:.1%}, paper 75.2%)"
    )
    bench_artifact(
        {"kwp_last_frames": stats["single"], "kwp_total": total},
        {"kwp_last_frames": "count", "kwp_total": "count"},
    )
    # Shape: the large majority of KWP frames cannot be decoded alone.
    assert waiting_pct > 0.55


def test_table9_reassembly_necessity(benchmark, report_file, bench_artifact, fleet):
    """Without reassembly, multi-frame payloads are unreadable.

    Field extraction over raw per-frame 'payloads' (the LibreCAN/READ view)
    must find strictly fewer ESVs than extraction over assembled messages.
    """
    __, capture = fleet.capture("A")

    def compare():
        frames = list(capture.can_log)
        messages = assemble(frames)
        with_assembly = len(extract_fields(messages).observations)
        # Naive view: treat every frame's data field as a complete payload.
        from repro.core.assembly import AssembledMessage

        naive = [
            AssembledMessage(f.data, f.can_id, f.timestamp, f.timestamp, 1)
            for f in frames
        ]
        without_assembly = len(extract_fields(naive).observations)
        return with_assembly, without_assembly

    with_assembly, without_assembly = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    report_file(
        f"ESV observations with reassembly: {with_assembly}; "
        f"treating frames as payloads: {without_assembly}"
    )
    bench_artifact(
        {
            "obs_with_assembly": with_assembly,
            "obs_without_assembly": without_assembly,
        },
        {"obs_with_assembly": "count", "obs_without_assembly": "count"},
    )
    assert with_assembly > 2 * without_assembly
