"""Tab. 5 — reverse engineering the OBD-II formulas (ground truth check).

Paper (§4.2): a vehicle simulator + the "ChevroSys Scan Free" app; the
seven mode-01 ESV types are recovered with 100 % precision — recovered
formulas may differ textually but must agree numerically over the observed
raw range (e.g. Y=1.7X-22 vs Y=1.8X-40).
"""

import pytest

from repro.can import Sniffer
from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.cps import Capture, VideoRecorder
from repro.diagnostics import obd2
from repro.tools import IMPERIAL_PIDS, ObdTelematicsApp
from repro.vehicle import ObdVehicleSimulator

READ_SECONDS = 40.0


def collect_obd_capture():
    simulator = ObdVehicleSimulator()
    sniffer = Sniffer().attach_to(simulator.bus)
    app = ObdTelematicsApp(simulator)
    video = VideoRecorder(simulator.clock)
    start = simulator.clock.now()
    while simulator.clock.now() - start < READ_SECONDS:
        app.tick()
        video.record(app.screen)
    return Capture(
        model="OBD-II simulator",
        tool_name=app.name,
        can_log=sniffer.log,
        video=video.frames,
        clicks=[],
        segments=[],
        tool_error_rate=0.02,
    )


def test_table5_obd2_formulas(benchmark, report_file, bench_artifact):
    capture = collect_obd_capture()

    def run():
        return DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    report_file("Table 5 - OBD-II formula recovery (7 ESV types)")
    correct = 0
    for pid in obd2.TABLE5_PIDS:
        definition = obd2.pid_definition(pid)
        esv = next(
            (e for e in report.formula_esvs if e.identifier == f"obd2:{pid:02X}"),
            None,
        )
        assert esv is not None, f"PID {pid:#04x} ({definition.name}) not reversed"
        truth = definition.formula
        if pid in IMPERIAL_PIDS and definition.alt_formula is not None:
            truth = definition.alt_formula
        ok = check_formula(esv.formula, truth, esv.samples)
        correct += ok
        report_file(
            f"  [01 {pid:02X}] {definition.name}: "
            f"{esv.formula.description}  "
            f"(truth: {truth.describe()})  {'OK' if ok else 'WRONG'}"
        )
    precision = correct / len(obd2.TABLE5_PIDS)
    report_file(f"  Precision: {precision:.0%} (paper: 100%)")
    bench_artifact(
        {"obd2_correct": correct, "obd2_pids": len(obd2.TABLE5_PIDS)},
        {"obd2_correct": "count", "obd2_pids": "count"},
        config={"read_seconds": READ_SECONDS},
    )
    assert precision == 1.0

    # Semantics: the app's PID names must be recovered from the screen.
    labels = {e.label for e in report.formula_esvs}
    assert "Engine Speed" in labels
    assert "Vehicle Speed" in labels
