#!/usr/bin/env python3
"""Robotic-clicker planning demo (§3.1).

Shows the travelling-salesman planning of on-screen click targets: the
nearest-neighbour heuristic against a random order and (for small target
sets) the exhaustive optimum, plus the travel time the arm model spends.

Usage::

    python examples/planner_demo.py
"""

import random

from repro.cps import (
    RoboticClicker,
    brute_force_route,
    nearest_neighbour_route,
    random_route,
    route_length,
)
from repro.simtime import SimClock


def main() -> None:
    rng = random.Random(14)
    targets = [(rng.randrange(800), rng.randrange(600)) for __ in range(14)]
    print("14 click targets (the paper's experiment size):")
    print(f"  {targets}")

    nn = nearest_neighbour_route((0, 0), targets)
    rand = random_route(targets, rng)
    nn_len = route_length((0, 0), nn)
    rand_len = route_length((0, 0), rand)
    print(f"\nnearest-neighbour travel: {nn_len:.0f} px")
    print(f"random-order travel:      {rand_len:.0f} px")
    print(f"saving: {(rand_len - nn_len) / rand_len:.1%} (paper: 7.3% in time)")

    small = targets[:7]
    optimal = brute_force_route((0, 0), small)
    print(
        f"\n7-target optimum {route_length((0,0), optimal):.0f} px vs "
        f"NN {route_length((0,0), nearest_neighbour_route((0,0), small)):.0f} px"
    )

    print("\nArm execution (400 px/s stylus):")
    clock = SimClock()
    arm = RoboticClicker(clock)
    for x, y in nn:
        arm.click(x, y, lambda _x, _y: True)
    print(f"  visited {len(arm.log)} targets in {clock.now():.2f} simulated seconds")
    print(f"  total travel {arm.total_travel_px:.0f} px")


if __name__ == "__main__":
    main()
