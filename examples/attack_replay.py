#!/usr/bin/env python3
"""The attacker's workflow (§2.1 threat model + §9.3 / Tab. 13).

1. "Rent a vehicle of the same type" — build Car D and reverse engineer
   its diagnostic protocol with DP-Reverser.
2. Inject the recovered messages into a *different* vehicle of the same
   model (a fresh Car D) through a compromised OBD dongle, while it runs.
3. Also run the Tab. 13 scenario set against the paper's four targets.

Usage::

    python examples/attack_replay.py
"""

from repro.attacks import replay_from_report, run_table13
from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import CAR_SPECS, build_car


def main() -> None:
    print("Step 1: reverse engineering a rented Car D (Lexus NX300)...")
    rented = build_car("D")
    tool = make_tool_for_car("D", rented)
    capture = DataCollector(tool, read_duration_s=30.0).collect()
    report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
    complete = [p for p in report.ecrs if p.complete]
    print(f"  recovered {len(report.esvs)} ESVs and {len(complete)} control procedures")
    for procedure in complete:
        print(f"    {procedure.label}: {procedure.request_pattern}")

    print("\nStep 2: injecting recovered messages into the victim's Car D...")
    victim = build_car("D")
    for result in replay_from_report(victim, report):
        status = "OK" if result.success else "FAILED"
        print(f"  [{status}] {result.description}: {result.observed_effect}")

    print("\nStep 3: Tab. 13 attack set on the paper's four targets...")
    for key in ("G", "D", "L", "N"):
        car = build_car(key)
        results = run_table13(car)
        ok = sum(r.success for r in results)
        print(f"  {CAR_SPECS[key].model}: {ok}/{len(results)} attacks succeeded")
        for result in results:
            print(f"     {result.description}: {result.messages[0]} -> {result.observed_effect}")


if __name__ == "__main__":
    main()
