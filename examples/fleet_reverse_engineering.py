#!/usr/bin/env python3
"""Reproduce the paper's Tab. 6 evaluation over the 18-vehicle fleet.

For every car: collect a capture, run DP-Reverser, verify each inferred
formula against the (hidden) manufacturer ground truth by numeric
equivalence, and print the per-car precision table.

Usage::

    python examples/fleet_reverse_engineering.py           # all 18 cars
    python examples/fleet_reverse_engineering.py A K R     # a subset
"""

import sys
import time

from repro.core import DPReverser, GpConfig, check_formula
from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import CAR_SPECS, build_car


def evaluate_car(key: str):
    car = build_car(key)
    tool = make_tool_for_car(key, car)
    capture = DataCollector(tool, read_duration_s=30.0).collect()
    report = DPReverser(GpConfig(seed=2)).reverse_engineer(capture)

    truth = {}
    for ecu in car.ecus:
        for point in ecu.uds_data_points.values():
            truth[f"uds:{point.did:04X}"] = point.formula
        for group in ecu.kwp_groups.values():
            for index, measurement in enumerate(group.measurements):
                truth[f"kwp:{group.local_id:02X}/{index}"] = measurement.formula

    correct = sum(
        check_formula(esv.formula, truth[esv.identifier], esv.samples)
        for esv in report.formula_esvs
    )
    return report, correct


def main() -> None:
    keys = [k.upper() for k in sys.argv[1:]] or sorted(CAR_SPECS)
    print(f"{'Car':<6}{'Model':<22}{'#ESV(f)':>8}{'Correct':>8}{'Prec':>8}{'#Enum':>7}{'#ECR':>6}{'sec':>7}")
    total_formulas = total_correct = 0
    for key in keys:
        start = time.perf_counter()
        report, correct = evaluate_car(key)
        elapsed = time.perf_counter() - start
        n = len(report.formula_esvs)
        total_formulas += n
        total_correct += correct
        ecrs = len({p.identifier for p in report.ecrs if p.complete})
        print(
            f"{key:<6}{CAR_SPECS[key].model:<22}{n:>8}{correct:>8}"
            f"{correct / n if n else 1:>8.1%}{len(report.enum_esvs):>7}"
            f"{ecrs:>6}{elapsed:>7.1f}"
        )
    if total_formulas:
        print(
            f"\nTotal: {total_correct}/{total_formulas} = "
            f"{total_correct / total_formulas:.1%} (paper: 285/290 = 98.3%)"
        )


if __name__ == "__main__":
    main()
