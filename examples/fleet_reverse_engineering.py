#!/usr/bin/env python3
"""Reproduce the paper's Tab. 6 evaluation over the 18-vehicle fleet.

Runs through :mod:`repro.runtime`: every car's collect→reverse→verify
pipeline becomes one job, fanned out over a worker pool with retries and
(optionally) checkpointed so an interrupted sweep resumes where it left
off.  The per-car precision table and totals come from the
:class:`~repro.runtime.report.RunReport`.

Usage::

    python examples/fleet_reverse_engineering.py              # all 18 cars
    python examples/fleet_reverse_engineering.py A K R        # a subset
    python examples/fleet_reverse_engineering.py --workers 4  # process pool
    python examples/fleet_reverse_engineering.py --resume out/sweep

A serial run and a ``--workers 4`` run produce byte-identical ESV/ECR
results — compare the printed digests.
"""

import argparse
from pathlib import Path

from repro.runtime import (
    CheckpointStore,
    EventLog,
    Scheduler,
    SchedulerConfig,
    fleet_job_specs,
)
from repro.vehicle import CAR_SPECS


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cars", nargs="*", help="fleet keys A..R (default: all)")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--pool", choices=("serial", "thread", "process"))
    parser.add_argument("--resume", metavar="DIR", help="checkpoint directory")
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    try:
        specs = fleet_job_specs(args.cars, seed=args.seed, read_duration_s=args.duration)
    except ValueError as error:
        parser.error(str(error))

    checkpoint = events = None
    if args.resume:
        resume_dir = Path(args.resume)
        checkpoint = CheckpointStore(resume_dir)
        events = EventLog(resume_dir / "events.jsonl")

    pool = args.pool or ("process" if args.workers > 1 else "serial")
    scheduler = Scheduler(
        SchedulerConfig(workers=args.workers, pool=pool),
        checkpoint=checkpoint,
        events=events,
    )
    report = scheduler.run(specs)

    print(f"{'Car':<6}{'Model':<22}{'#ESV(f)':>8}{'Correct':>8}{'Prec':>8}{'#Enum':>7}{'#ECR':>6}{'sec':>7}")
    for result in report.results:
        resumed = "*" if result.job_id in report.skipped else ""
        print(
            f"{result.car_key + resumed:<6}{CAR_SPECS[result.car_key].model:<22}"
            f"{result.n_formula_esvs:>8}{result.n_correct:>8}{result.precision:>8.1%}"
            f"{result.n_enum_esvs:>7}{result.n_ecrs:>6}{result.wall_seconds:>7.1f}"
        )
    totals = report.totals()
    if totals["n_formula_esvs"]:
        print(
            f"\nTotal: {totals['n_correct']}/{totals['n_formula_esvs']} = "
            f"{totals['precision']:.1%} (paper: 285/290 = 98.3%)"
        )
    if report.skipped:
        print(f"(* = {len(report.skipped)} cars resumed from checkpoint)")
    print(f"Wall clock: {report.wall_seconds:.1f} s [{report.pool} pool, {report.workers} worker(s)]")
    print(f"Results digest: {report.results_digest()}")
    if events is not None:
        events.close()
    if args.resume:
        report.save(Path(args.resume) / "run_report.json")
    return 0 if not report.failed else 1


if __name__ == "__main__":
    raise SystemExit(main())
