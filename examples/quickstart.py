#!/usr/bin/env python3
"""Quickstart: reverse engineer one simulated vehicle end to end.

Builds a fleet car, attaches the diagnostic tool, runs the cyber-physical
data-collection loop (robot clicker + cameras + OBD sniffer), then feeds
the capture to DP-Reverser and prints everything it recovered.

Usage::

    python examples/quickstart.py [CAR]     # CAR in A..R, default D
"""

import sys

from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import CAR_SPECS, build_car


def main() -> None:
    key = sys.argv[1].upper() if len(sys.argv) > 1 else "D"
    if key not in CAR_SPECS:
        raise SystemExit(f"unknown car {key!r}; pick one of {', '.join(CAR_SPECS)}")
    spec = CAR_SPECS[key]
    print(f"Building {spec.name} ({spec.model}) with tool {spec.tool}...")
    car = build_car(key)
    tool = make_tool_for_car(key, car)

    print("Collecting: driving the tool with the robotic clicker...")
    collector = DataCollector(tool, read_duration_s=30.0)
    capture = collector.collect()
    print(
        f"  captured {len(capture.can_log)} CAN frames, "
        f"{len(capture.video)} video frames, {len(capture.clicks)} clicks"
    )

    print("Reverse engineering...")
    report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
