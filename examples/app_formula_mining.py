#!/usr/bin/env python3
"""Mine formulas from the 160-app telematics corpus (§4.6 / Tab. 12).

Runs the Alg. 1 taint-based extractor over every synthetic app and prints
the per-app formula counts, a couple of extracted formulas with their
trigger conditions, and the comparison the paper draws: professional
diagnostic tools expose far more than telematics apps.

Usage::

    python examples/app_formula_mining.py
"""

from repro.apps import FormulaExtractor, analyze_corpus, build_corpus


def main() -> None:
    print("Generating the 160-app corpus...")
    apps = build_corpus()
    total_statements = sum(a.statement_count() for a in apps)
    print(f"  {len(apps)} apps, {total_statements} MiniJimple statements")

    print("Running forward-taint formula extraction (Alg. 1)...")
    analysis = analyze_corpus(apps)

    print("\nApps containing formulas:")
    for name, counts in sorted(
        analysis.per_app.items(), key=lambda item: -sum(item[1].values())
    ):
        if counts:
            summary = ", ".join(f"{k}: {v}" for k, v in counts.items())
            print(f"  {name:<32} {summary}")

    uds_kwp = [
        n for n, c in analysis.per_app.items() if c.get("UDS") or c.get("KWP 2000")
    ]
    print(f"\nApps with UDS/KWP 2000 formulas: {len(uds_kwp)} of {len(apps)} (paper: 3)")

    print("\nExample extracted formulas (expression + trigger condition):")
    shown = 0
    for formula in analysis.formulas:
        if formula.protocol in ("UDS", "KWP 2000") and shown < 3:
            print(f"  [{formula.protocol}] {formula.app_name}:")
            print(f"     when {formula.condition}: Y = {formula.expression}")
            shown += 1

    print("\nWhy intraprocedural analysis misses some apps (the paper's 13):")
    complex_app = next(a for a in apps if a.name.startswith("Complex"))
    found = FormulaExtractor().extract(complex_app)
    print(
        f"  {complex_app.name}: response read in one method, processed in "
        f"another -> {len(found)} formulas extracted"
    )


if __name__ == "__main__":
    main()
