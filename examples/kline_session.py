#!/usr/bin/env python3
"""Reverse engineer a KWP 2000 vehicle over the K-Line (ISO 14230).

KWP 2000's original physical layer is the single-wire K-Line (Tab. 1 of
the paper).  This example fast-inits each ECU, polls its measuring blocks
like VCDS would, parses the sniffed byte stream back into diagnostic
messages, and runs the DP-Reverser pipeline on the result.

Usage::

    python examples/kline_session.py
"""

from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.tools import KLineDiagnosticSession, build_kline_vehicle


def main() -> None:
    print("Building a K-Line KWP 2000 vehicle (two ECUs, 10400 baud)...")
    vehicle = build_kline_vehicle()
    session = KLineDiagnosticSession(vehicle)

    print("Running the diagnostic session (fast init + measuring blocks)...")
    capture, messages = session.collect(duration_per_ecu_s=30.0)
    print(
        f"  {len(vehicle.bus.capture)} bytes on the wire, "
        f"{len(messages)} de-framed messages, {len(capture.video)} screenshots"
    )

    print("Reverse engineering...")
    reverser = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2)))
    report = reverser.infer(reverser.analyze(capture, messages=messages))

    truth = {}
    for ecu in vehicle.ecus.values():
        for group in ecu.kwp_groups.values():
            for index, measurement in enumerate(group.measurements):
                truth[f"kwp:{group.local_id:02X}/{index}"] = measurement.formula

    print()
    correct = 0
    for esv in report.formula_esvs:
        ok = check_formula(esv.formula, truth[esv.identifier], esv.samples)
        correct += ok
        print(
            f"  [{esv.request_format}] {esv.label}: {esv.formula.description}"
            f"  {'OK' if ok else 'WRONG'}"
        )
    print(f"\nPrecision: {correct}/{len(report.formula_esvs)}")


if __name__ == "__main__":
    main()
