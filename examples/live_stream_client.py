#!/usr/bin/env python3
"""Live streaming client: an ELM327-style dongle feeding the service.

Spins up the diagnostic service in-process, then plays the role of a
cheap OBD dongle that forwards bus traffic as it happens: hello
handshake, CAN frames one by one in timestamp order, camera frames and
clicks interleaved, finish.  The server assembles transport messages
incrementally, re-runs staged analysis as evidence accumulates (the
interim ``status`` messages printed below), and ships the final report
— byte-identical to what the batch pipeline produces from the same
capture.

Usage::

    python examples/live_stream_client.py [CAR]     # CAR in A..R, default A
"""

import asyncio
import hashlib
import sys

from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.service import DiagnosticServer, ServiceConfig, stream_capture_async
from repro.tools import make_tool_for_car
from repro.vehicle import CAR_SPECS, build_car

GP = GpConfig(seed=2, generations=8, population_size=100)


def on_status(status: dict) -> None:
    print(
        f"  status: {status['frames']} frames -> "
        f"{status['messages']} messages, {len(status['esvs'])} ESVs so far"
    )


async def stream(capture):
    config = ServiceConfig(gp_config=GP, status_interval=200)
    async with DiagnosticServer(config) as server:
        print(f"Service listening on 127.0.0.1:{server.port}")
        print("Streaming the capture like a live dongle...")
        return await stream_capture_async(
            "127.0.0.1",
            server.port,
            capture,
            tenant="dongle-demo",
            transport="auto",
            on_status=on_status,
        )


def main() -> None:
    key = sys.argv[1].upper() if len(sys.argv) > 1 else "A"
    if key not in CAR_SPECS:
        raise SystemExit(f"unknown car {key!r}; pick one of {', '.join(CAR_SPECS)}")
    spec = CAR_SPECS[key]

    print(f"Recording {spec.name} ({spec.model}) with tool {spec.tool}...")
    car = build_car(key)
    capture = DataCollector(make_tool_for_car(key, car), read_duration_s=8.0).collect()
    print(f"  {len(capture.can_log)} CAN frames, {len(capture.video)} video frames")

    result = asyncio.run(stream(capture))

    digest = hashlib.sha256(result.report_json.encode("utf-8")).hexdigest()
    assert digest == result.digest, "report digest mismatch"

    print()
    print(f"Report for session {result.session_id}:")
    report = result.report
    print(f"  transport: {report['transport']}, ESVs reversed: {len(report['esvs'])}")

    batch = DPReverser(ReverserConfig(gp_config=GP)).reverse_engineer(capture)
    if batch.to_json() == result.report_json:
        print("Streamed report is byte-identical to the batch pipeline.")
    else:
        raise SystemExit("streamed report diverged from batch output")


if __name__ == "__main__":
    main()
