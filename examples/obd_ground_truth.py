#!/usr/bin/env python3
"""Validate formula recovery against the public OBD-II standard (§4.2).

Drives the "ChevroSys Scan Free"-style telematics app against the OBD-II
vehicle simulator, records screen + traffic, and checks every recovered
formula against the SAE J1979 ground truth — the paper's Tab. 5.

Usage::

    python examples/obd_ground_truth.py
"""

from repro.can import Sniffer
from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.cps import Capture, VideoRecorder
from repro.diagnostics import obd2
from repro.tools import IMPERIAL_PIDS, ObdTelematicsApp
from repro.vehicle import ObdVehicleSimulator


def main() -> None:
    print("Starting OBD-II vehicle simulator + telematics app...")
    simulator = ObdVehicleSimulator()
    sniffer = Sniffer().attach_to(simulator.bus)
    app = ObdTelematicsApp(simulator)
    video = VideoRecorder(simulator.clock)

    start = simulator.clock.now()
    while simulator.clock.now() - start < 40.0:
        app.tick()
        video.record(app.screen)
    print(f"  captured {len(sniffer.log)} frames, {len(video)} screenshots")

    capture = Capture(
        model="OBD-II simulator",
        tool_name=app.name,
        can_log=sniffer.log,
        video=video.frames,
        clicks=[],
        segments=[],
        tool_error_rate=0.02,
    )
    report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)

    print(f"\n{'ESV':<34}{'Request':<10}{'Recovered formula':<44}{'Correct'}")
    correct = 0
    for pid in obd2.TABLE5_PIDS:
        definition = obd2.pid_definition(pid)
        esv = report.esv_by_label(definition.name)
        truth = definition.formula
        if pid in IMPERIAL_PIDS and definition.alt_formula is not None:
            truth = definition.alt_formula
        ok = esv is not None and esv.formula is not None and check_formula(
            esv.formula, truth, esv.samples
        )
        correct += ok
        recovered = esv.formula.description if esv and esv.formula else "<missing>"
        print(f"{definition.name:<34}01 {pid:02X}{'':<5}{recovered[:42]:<44}{'yes' if ok else 'NO'}")
    print(f"\nPrecision: {correct}/{len(obd2.TABLE5_PIDS)} (paper: 7/7 = 100%)")


if __name__ == "__main__":
    main()
