"""Property tests for graceful degradation of the transport decoders.

The contract under noise: a lenient decoder (``strict=False``) never raises
on *any* stream content — faults surface as ``error``/``resync`` events and
as ``DecoderStats`` counters, and the decoder recovers on the next clean
message boundary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can import CanFrame
from repro.transport import (
    EVENT_PAYLOAD,
    IsoTpReassembler,
    VwTpReassembler,
    segment,
    segment_vwtp,
)


def payloads_of(reassembler, frames):
    """Feed every frame leniently; collect completed payloads."""
    payloads = []
    for frame in frames:
        for event in reassembler.feed(frame):
            if event.kind == EVENT_PAYLOAD:
                payloads.append(event.payload)
    return payloads


def mutate(frames, index, fault):
    frames = list(frames)
    if fault == "drop":
        del frames[index]
    elif fault == "duplicate":
        frames.insert(index, frames[index])
    elif fault == "reorder":
        other = (index + 1) % len(frames)
        frames[index], frames[other] = frames[other], frames[index]
    elif fault == "corrupt":
        frame = frames[index]
        frames[index] = CanFrame(
            frame.can_id,
            bytes([frame.data[0] ^ 0x40]) + frame.data[1:],
            timestamp=frame.timestamp,
        )
    return frames


FAULTS = ["drop", "duplicate", "reorder", "corrupt"]

CLEAN_TAIL = b"\xaa\xbb\xcc"


@settings(max_examples=120, deadline=None)
@given(
    payload=st.binary(min_size=8, max_size=120),
    index=st.integers(0, 1_000_000),
    fault=st.sampled_from(FAULTS),
)
def test_isotp_single_fault_never_raises_and_recovers(payload, index, fault):
    """Any single drop/dup/reorder/bit-flip in a multi-frame ISO-TP message
    must not raise, must be visible in the stats, and must not poison the
    next message."""
    frames = segment(payload, 0x7E8)
    assert len(frames) > 1  # multi-frame by construction (>= 8 bytes)
    faulty = mutate(frames, index % len(frames), fault)
    reassembler = IsoTpReassembler(strict=False)
    payloads_of(reassembler, faulty)  # must not raise
    tail = payloads_of(reassembler, segment(CLEAN_TAIL, 0x7E8))
    assert tail and tail[-1] == CLEAN_TAIL
    stats = reassembler.stats
    # The tail decoded cleanly, so any payload loss is already accounted.
    assert stats.payloads >= 1
    assert (
        stats.payloads >= 2  # fault was survivable (e.g. an ignored duplicate)
        or stats.errors + stats.resyncs >= 1  # or it was reported
    )


@settings(max_examples=120, deadline=None)
@given(
    payload=st.binary(min_size=15, max_size=120),
    index=st.integers(0, 1_000_000),
    fault=st.sampled_from(FAULTS),
)
def test_vwtp_single_fault_never_raises_and_recovers(payload, index, fault):
    frames = segment_vwtp(payload, 0x740)
    assert len(frames) > 1
    faulty = mutate(frames, index % len(frames), fault)
    reassembler = VwTpReassembler(strict=False)
    payloads_of(reassembler, faulty)  # must not raise
    # TP 2.0 has no start-of-message marker, so a fresh message whose
    # sequence lands exactly one behind the expected counter is
    # indistinguishable from a duplicate and is (correctly) suppressed.
    # Two tails with distant start sequences cannot both collide.
    tail = payloads_of(reassembler, segment_vwtp(CLEAN_TAIL, 0x740, start_sequence=0))
    tail += payloads_of(reassembler, segment_vwtp(CLEAN_TAIL, 0x740, start_sequence=8))
    assert tail and tail[-1] == CLEAN_TAIL
    stats = reassembler.stats
    assert stats.payloads >= 2 or stats.errors + stats.resyncs >= 1


class TestAssemblyDiagnostics:
    def frames(self, *messages):
        out = []
        t = 0.0
        for payload in messages:
            for frame in segment(payload, 0x7E8):
                out.append(frame.with_timestamp(t))
                t += 0.001
        return out

    def test_clean_stream_reports_clean(self):
        from repro.core import assemble_with_diagnostics

        frames = self.frames(b"\x62\x01\x02", bytes(range(20)))
        messages, diagnostics = assemble_with_diagnostics(frames, "isotp")
        assert len(messages) == 2
        assert diagnostics.clean
        assert diagnostics.stats.payloads == 2

    def test_faulty_stream_reports_losses_per_stream(self):
        from repro.core import assemble_with_diagnostics

        frames = self.frames(bytes(range(30)), b"\x62\x01\x02")
        del frames[1]  # lose one consecutive frame of the first message
        messages, diagnostics = assemble_with_diagnostics(frames, "isotp")
        assert [m.payload for m in messages] == [b"\x62\x01\x02"]
        assert not diagnostics.clean
        assert diagnostics.stats.messages_lost == 1
        assert 0x7E8 in diagnostics.streams
        assert diagnostics.details  # human-readable fault trail
