"""Tests for the 18-car evaluation fleet (Tab. 3 / 6 / 11 structure)."""

import pytest

from repro.diagnostics.messages import Protocol
from repro.vehicle import (
    CAR_SPECS,
    TransportKind,
    build_car,
    expected_ecr_counts,
    expected_esv_counts,
)


class TestFleetStructure:
    def test_eighteen_cars(self):
        assert len(CAR_SPECS) == 18
        assert sorted(CAR_SPECS) == [chr(ord("A") + i) for i in range(18)]

    def test_table6_totals(self):
        counts = expected_esv_counts()
        assert sum(f for f, __ in counts.values()) == 290
        assert sum(e for __, e in counts.values()) == 156

    def test_table11_total(self):
        assert sum(expected_ecr_counts().values()) == 124
        assert len(expected_ecr_counts()) == 10

    def test_kwp_cars_use_vwtp(self):
        for spec in CAR_SPECS.values():
            if spec.protocol == Protocol.KWP2000:
                assert spec.transport == TransportKind.VWTP

    def test_bmw_and_mini_use_extended_addressing(self):
        for key in ("E", "F", "G", "J"):
            assert CAR_SPECS[key].transport == TransportKind.BMW


@pytest.mark.parametrize("key", sorted(CAR_SPECS))
class TestPerCarCounts:
    def test_esv_counts_match_table6(self, key):
        car = build_car(key)
        formulas = enums = 0
        for ecu in car.ecus:
            for point in ecu.uds_data_points.values():
                enums += point.is_enum
                formulas += not point.is_enum
            for group in ecu.kwp_groups.values():
                for measurement in group.measurements:
                    enums += measurement.is_enum
                    formulas += not measurement.is_enum
        spec = CAR_SPECS[key]
        assert formulas == spec.formula_esvs
        assert enums == spec.enum_esvs

    def test_ecr_counts_match_table11(self, key):
        car = build_car(key)
        actuators = sum(len(e.actuators) for e in car.ecus)
        assert actuators == CAR_SPECS[key].ecrs

    def test_deterministic_construction(self, key):
        first = build_car(key)
        second = build_car(key)
        dids_a = sorted(d for e in first.ecus for d in e.uds_data_points)
        dids_b = sorted(d for e in second.ecus for d in e.uds_data_points)
        assert dids_a == dids_b


class TestPinnedDashboardEsvs:
    """Tab. 7's validation ESVs carry the paper's exact formulas."""

    def test_car_f_engine_speed_identity(self):
        car = build_car("F")
        point = next(
            p
            for ecu in car.ecus
            for p in ecu.uds_data_points.values()
            if p.on_dashboard
        )
        assert point.name == "Engine Speed"
        assert point.formula((1234,)) == 1234.0

    def test_car_k_engine_speed_type_01(self):
        car = build_car("K")
        measurement = next(
            m
            for ecu in car.ecus
            for g in ecu.kwp_groups.values()
            for m in g.measurements
            if m.on_dashboard
        )
        assert measurement.name == "Engine Speed"
        assert measurement.formula_type == 0x01

    def test_car_l_coolant_half(self):
        car = build_car("L")
        point = next(
            p
            for ecu in car.ecus
            for p in ecu.uds_data_points.values()
            if p.on_dashboard
        )
        assert point.name == "Coolant Temperature"
        assert point.formula((100,)) == 50.0

    def test_car_r_two_variable_engine_speed(self):
        car = build_car("R")
        point = next(
            p
            for ecu in car.ecus
            for p in ecu.uds_data_points.values()
            if p.on_dashboard
        )
        assert point.formula.arity == 2
        assert point.formula((10, 100)) == pytest.approx(64.1 * 10 + 0.241 * 100)

    def test_car_k_constant_speed_variable(self):
        """§4.3's vehicle-speed example: X0 is the constant 100 in traffic."""
        car = build_car("K")
        measurement = next(
            m
            for ecu in car.ecus
            for g in ecu.kwp_groups.values()
            for m in g.measurements
            if m.name == "Vehicle Speed"
        )
        assert measurement.x0.sample(0) == measurement.x0.sample(100) == 100


class TestBmwRoutines:
    def test_bmw_cars_have_routines(self):
        for key in ("E", "F", "G", "J"):
            car = build_car(key)
            assert any(ecu.routines for ecu in car.ecus)
