"""Tests for frame screening, transport detection and payload assembly."""

import pytest

from repro.can import CanFrame
from repro.core import (
    TRANSPORT_BMW,
    TRANSPORT_ISOTP,
    TRANSPORT_VWTP,
    assemble,
    detect_transport,
    multiframe_statistics,
    screen,
)
from repro.transport import segment, segment_bmw, segment_vwtp


def stamp(frames, start=1.0):
    return [f.with_timestamp(start + i * 0.001) for i, f in enumerate(frames)]


class TestDetection:
    def test_detects_isotp(self):
        frames = stamp(segment(bytes(30), 0x7E0))
        assert detect_transport(frames) == TRANSPORT_ISOTP

    def test_detects_vwtp_by_setup(self):
        setup = CanFrame(0x200, bytes([0x01, 0xC0, 0x41, 0x07, 0x00, 0x03, 0x01]))
        frames = [setup] + stamp(segment_vwtp(bytes(20), 0x740))
        assert detect_transport(frames) == TRANSPORT_VWTP

    def test_detects_bmw_by_address_prefix(self):
        frames = stamp(
            segment_bmw(bytes(30), 0x6F1, ecu_address=0x43)
            + segment_bmw(bytes(10), 0x643, ecu_address=0xF1)
        )
        assert detect_transport(frames) == TRANSPORT_BMW

    def test_empty_capture_defaults_isotp(self):
        assert detect_transport([]) == TRANSPORT_ISOTP


class TestScreening:
    def test_isotp_drops_flow_control(self):
        frames = stamp(segment(bytes(30), 0x7E0)) + [
            CanFrame(0x7E8, b"\x30\x00\x00", timestamp=99.0)
        ]
        kept = screen(frames, TRANSPORT_ISOTP)
        assert all(f.data[0] >> 4 != 0x3 for f in kept)
        assert len(kept) == len(frames) - 1

    def test_vwtp_keeps_only_data(self):
        frames = [
            CanFrame(0x200, bytes([0x01, 0xC0, 0x41, 0x07, 0x00, 0x03, 0x01])),
            CanFrame(0x740, bytes([0xA0, 0x0F, 0x8A, 0xFF, 0x32, 0xFF])),
            CanFrame(0x740, b"\xb1"),
        ] + segment_vwtp(b"\x21\x01", 0x740)
        kept = screen(frames, TRANSPORT_VWTP)
        assert len(kept) == 1

    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError):
            screen([], "carrier-pigeon")


class TestAssembly:
    def test_isotp_roundtrip(self):
        payload = bytes(range(40))
        messages = assemble(stamp(segment(payload, 0x7E0)), TRANSPORT_ISOTP)
        assert len(messages) == 1
        assert messages[0].payload == payload
        assert messages[0].n_frames == len(segment(payload, 0x7E0))

    def test_interleaved_streams_demultiplexed(self):
        request = stamp(segment(b"\x22\xf4\x0d", 0x7E0), start=1.0)
        response = stamp(segment(bytes(range(30)), 0x7E8), start=2.0)
        mixed = sorted(request + response, key=lambda f: f.timestamp)
        messages = assemble(mixed, TRANSPORT_ISOTP)
        assert [m.can_id for m in messages] == [0x7E0, 0x7E8]

    def test_vwtp_roundtrip(self):
        payload = bytes(range(25))
        messages = assemble(stamp(segment_vwtp(payload, 0x740)), TRANSPORT_VWTP)
        assert messages[0].payload == payload

    def test_bmw_roundtrip_strips_address(self):
        payload = b"\x62\xf4\x00\x11\x22\x33\x44\x55\x66\x77"
        messages = assemble(
            stamp(segment_bmw(payload, 0x643, ecu_address=0x43)), TRANSPORT_BMW
        )
        assert messages[0].payload == payload
        assert messages[0].ecu_address == 0x43

    def test_timestamps_span_message(self):
        frames = stamp(segment(bytes(50), 0x7E0))
        message = assemble(frames, TRANSPORT_ISOTP)[0]
        assert message.t_first == frames[0].timestamp
        assert message.t_last == frames[-1].timestamp

    def test_messages_sorted_by_completion(self):
        a = stamp(segment(bytes(30), 0x700), start=1.0)
        b = stamp(segment(b"\x01\x02", 0x701), start=1.0005)
        messages = assemble(sorted(a + b, key=lambda f: f.timestamp), TRANSPORT_ISOTP)
        assert messages[0].can_id == 0x701  # single frame completes first


class TestStatistics:
    def test_isotp_mix(self):
        frames = stamp(
            segment(b"\x22\xf4\x0d", 0x7E0)  # 1 single
            + segment(bytes(30), 0x7E8)  # 1 FF + CFs
        ) + [CanFrame(0x7E0, b"\x30\x00\x00", timestamp=9.0)]
        stats = multiframe_statistics(frames, TRANSPORT_ISOTP)
        assert stats["single"] == 1
        assert stats["multi"] == len(segment(bytes(30), 0x7E8))
        assert stats["control"] == 1
        assert stats["total"] == len(frames)

    def test_vwtp_mix_counts_last_packets_as_single(self):
        frames = stamp(segment_vwtp(bytes(20), 0x740))  # 3 frames, 1 last
        stats = multiframe_statistics(frames, TRANSPORT_VWTP)
        assert stats["single"] == 1
        assert stats["multi"] == 2
