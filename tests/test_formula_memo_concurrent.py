"""Concurrent FormulaMemo writers (S4).

Island workers racing on byte-identical datasets memoise the same key at
the same time.  The store's guarantee is last-writer-wins atomicity: any
number of concurrent ``put`` calls leave exactly one valid JSON entry,
and a reader polling throughout never sees a torn or partial file — every
read is either a miss (file not yet present) or a fully valid hit.
"""

import json
import multiprocessing
import os

import pytest

from repro.core import FormulaMemo, ScaledTreeFormula
from repro.core.gp import Node
from repro.core.response_analysis import InferredFormula

KEY = "deadbeef" * 8


def _balanced(depth):
    if depth == 0:
        return Node.const(1.0)
    return Node.call("add", _balanced(depth - 1), _balanced(depth - 1))


def make_inferred(depth=9):
    """A deterministic memoisable result, padded so writes aren't tiny.

    A one-byte JSON file can't tear; a formula whose tree serialises to
    several kilobytes can, which is what the reader checks for.  The
    padding tree is balanced (2^depth leaves) to stay well inside the
    recursion limit.
    """
    tree = Node.call("mul", Node.var(0), _balanced(depth))
    formula = ScaledTreeFormula(tree, (0.1,), 10.0)
    return InferredFormula(
        formula=formula,
        description=formula.describe(),
        fitness=0.125,
        interpretation="int",
        n_samples=64,
        generations=8,
    )


def hammer_put(directory, rounds):
    memo = FormulaMemo(directory)
    inferred = make_inferred()
    for __ in range(rounds):
        memo.put(KEY, inferred)


class TestConcurrentWriters:
    def test_two_writers_leave_one_valid_entry(self, tmp_path):
        context = multiprocessing.get_context()
        writers = [
            context.Process(target=hammer_put, args=(str(tmp_path), 40))
            for __ in range(2)
        ]
        for writer in writers:
            writer.start()

        # The third party: read continuously while both writers race.
        reader = FormulaMemo(tmp_path)
        expected = make_inferred()
        observed_hit = False
        while any(writer.is_alive() for writer in writers):
            hit, recalled = reader.get(KEY)
            if hit:
                observed_hit = True
                assert recalled.description == expected.description
                assert repr(recalled.fitness) == repr(expected.fitness)
        for writer in writers:
            writer.join()
            assert writer.exitcode == 0

        # No torn reads: every hit above decoded cleanly.
        assert reader.stats()["invalid"] == 0
        assert observed_hit or reader.stats()["misses"] >= 0

        # Exactly one entry file, fully valid, and no temp-file litter.
        assert len(reader) == 1
        entries = [name for name in os.listdir(tmp_path)]
        assert entries == [f"formula-{KEY}.json"]
        payload = json.loads((tmp_path / entries[0]).read_text())
        assert payload["found"] is True

        hit, recalled = FormulaMemo(tmp_path).get(KEY)
        assert hit
        assert recalled.description == expected.description
        assert repr(recalled([4.0])) == repr(expected([4.0]))

    def test_writer_overwrite_of_corrupt_entry_heals(self, tmp_path):
        memo = FormulaMemo(tmp_path)
        memo._path(KEY).write_text('{"torn')
        hit, __ = memo.get(KEY)
        assert not hit and memo.stats()["invalid"] == 1
        memo.put(KEY, make_inferred(depth=2))
        hit, recalled = memo.get(KEY)
        assert hit and recalled is not None


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
