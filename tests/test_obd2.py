"""Tests for the OBD-II (SAE J1979) codec and PID table."""

import pytest

from repro.diagnostics import DiagnosticError, obd2


class TestPidTable:
    def test_table5_pids_all_defined(self):
        for pid in obd2.TABLE5_PIDS:
            assert pid in obd2.STANDARD_PIDS

    def test_rpm_formula(self):
        """PID 0x0C: (256*A + B) / 4."""
        assert obd2.physical_value(0x0C, b"\x1a\xf8") == pytest.approx(
            (256 * 0x1A + 0xF8) / 4
        )

    def test_coolant_metric_and_imperial(self):
        assert obd2.physical_value(0x05, b"\x87") == pytest.approx(0x87 - 40)
        assert obd2.physical_value(0x05, b"\x87", imperial=True) == pytest.approx(
            1.8 * 0x87 - 40  # the paper writes the Fahrenheit form as 1.8X-40
        )

    def test_throttle_percent(self):
        assert obd2.physical_value(0x11, b"\xff") == pytest.approx(100.0)
        assert obd2.physical_value(0x11, b"\x00") == 0.0

    def test_speed_imperial(self):
        assert obd2.physical_value(0x0D, b"\x64", imperial=True) == pytest.approx(62.14, abs=0.01)

    def test_insufficient_bytes_rejected(self):
        with pytest.raises(DiagnosticError):
            obd2.physical_value(0x0C, b"\x1a")

    def test_unknown_pid_rejected(self):
        with pytest.raises(DiagnosticError):
            obd2.pid_definition(0xEE)


class TestCodec:
    def test_request(self):
        assert obd2.encode_request(0x0C) == b"\x01\x0c"

    def test_response_roundtrip(self):
        payload = obd2.encode_response(0x0C, b"\x1a\xf8")
        mode, pid, data = obd2.decode_response(payload)
        assert (mode, pid, data) == (0x01, 0x0C, b"\x1a\xf8")

    def test_decode_rejects_request(self):
        with pytest.raises(DiagnosticError):
            obd2.decode_response(b"\x01\x0c")


class TestSupportedPids:
    def test_bitmap_roundtrip(self):
        supported = [0x04, 0x05, 0x0C, 0x0D, 0x11, 0x1F]
        bitmap = obd2.encode_supported_pids(supported, 0x00)
        assert obd2.decode_supported_pids(0x00, bitmap) == sorted(supported)

    def test_window_boundaries(self):
        bitmap = obd2.encode_supported_pids([0x21, 0x40], 0x20)
        decoded = obd2.decode_supported_pids(0x20, bitmap)
        assert decoded == [0x21, 0x40]

    def test_out_of_window_pids_excluded(self):
        bitmap = obd2.encode_supported_pids([0x04, 0x45], 0x20)
        assert obd2.decode_supported_pids(0x20, bitmap) == []

    def test_wrong_length_rejected(self):
        with pytest.raises(DiagnosticError):
            obd2.decode_supported_pids(0x00, b"\x01")
