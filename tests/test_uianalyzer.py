"""Tests for the UI analyzer (keyword filtering, icons, row pairing)."""

from repro.cps import Camera, OcrEngine, UIAnalyzer, fuzzy_match, text_similarity
from repro.simtime import SimClock
from repro.tools.ui import ScreenBuilder, WidgetKind


def analyze(screen, analyzer=None):
    frame = Camera(SimClock()).capture(screen)
    ocr_frame = OcrEngine(error_rate=0.0).read_frame(frame)
    return (analyzer or UIAnalyzer()).analyze(ocr_frame)


def menu_screen():
    builder = ScreenBuilder("ecu_menu", "Engine - Functions")
    builder.add_row(WidgetKind.BUTTON, "Read Data Stream")
    builder.add_row(WidgetKind.BUTTON, "Active Test")
    builder.add_row(WidgetKind.BUTTON, "Read Trouble Codes")
    builder.add_row(WidgetKind.BUTTON, "Clear Trouble Codes")
    builder.add_row(WidgetKind.BUTTON, "ECU Coding")
    builder.add_row(WidgetKind.BUTTON, "Back")
    builder.add_row(WidgetKind.ICON_BUTTON, "", icon="settings-gear")
    return builder.screen


class TestTextMatching:
    def test_similarity_symmetric_range(self):
        assert text_similarity("abc", "abc") == 1.0
        assert 0 < text_similarity("Read Data Stream", "Read Data Strea") < 1.0

    def test_fuzzy_match_survives_char_drop(self):
        assert fuzzy_match("Read Data Strea", "Read Data Stream")
        assert not fuzzy_match("Clear Trouble Codes", "Read Data Stream")


class TestClassification:
    def test_function_buttons_found(self):
        analysis = analyze(menu_screen())
        assert set(analysis.function_buttons) == {"Read Data Stream", "Active Test"}

    def test_ignore_list_filters_decoys(self):
        analysis = analyze(menu_screen())
        texts = [r.text for r in analysis.plain_buttons]
        assert "Clear Trouble Codes" not in texts
        assert "ECU Coding" not in texts

    def test_nav_buttons(self):
        analysis = analyze(menu_screen())
        assert "Back" in analysis.nav_buttons

    def test_unknown_icons_not_clickable(self):
        analysis = analyze(menu_screen())
        assert analysis.icon_buttons == []

    def test_known_icon_template_matched(self):
        analyzer = UIAnalyzer(icon_templates={"settings-gear": "open-settings"})
        analysis = analyze(menu_screen(), analyzer)
        assert len(analysis.icon_buttons) == 1
        __, action, score = analysis.icon_buttons[0]
        assert action == "open-settings" and score >= 0.8

    def test_selectable_rows(self):
        builder = ScreenBuilder("sel", "Engine - Read Data Stream (1/2)")
        builder.add_row(WidgetKind.BUTTON, "[ ] Engine Speed")
        builder.add_row(WidgetKind.BUTTON, "[x] Coolant Temperature")
        builder.add_row(WidgetKind.BUTTON, "Start")
        analysis = analyze(builder.screen)
        assert len(analysis.selectable_rows) == 2
        assert len(UIAnalyzer.unchecked_rows(analysis)) == 1
        assert UIAnalyzer.row_label(analysis.selectable_rows[0]) == "Engine Speed"

    def test_page_indicator_parsed(self):
        builder = ScreenBuilder("sel", "Engine - Read Data Stream (2/3)")
        analysis = analyze(builder.screen)
        assert (analysis.page, analysis.pages) == (2, 3)

    def test_value_rows_paired_by_geometry(self):
        builder = ScreenBuilder("live", "Engine - Data Stream")
        builder.add_pair("Engine Speed", "800 rpm")
        builder.add_pair("Coolant Temperature", "90.0 degC")
        analysis = analyze(builder.screen)
        pairs = {label.text: value.text for label, value in analysis.value_rows}
        assert pairs == {
            "Engine Speed": "800 rpm",
            "Coolant Temperature": "90.0 degC",
        }
