"""Tests for BMW/Mini extended-addressed transport."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can import CanFrame, SimulatedCanBus
from repro.simtime import SimClock
from repro.transport import (
    EVENT_ERROR,
    BmwEndpoint,
    BmwReassembler,
    TransportError,
    segment_bmw,
)


class TestSegmentation:
    def test_address_byte_prefixed(self):
        frames = segment_bmw(b"\x22\xdb\xe5", 0x6F1, ecu_address=0x29)
        assert all(f.data[0] == 0x29 for f in frames)

    def test_frames_never_exceed_eight_bytes(self):
        frames = segment_bmw(bytes(100), 0x6F1, ecu_address=0x12)
        assert all(len(f.data) <= 8 for f in frames)

    def test_exactly_seven_bytes_uses_multiframe(self):
        # 7 payload bytes don't fit the 6-byte extended-addressing SF.
        frames = segment_bmw(bytes(7), 0x6F1, ecu_address=0x12)
        assert len(frames) > 1

    def test_invalid_address_rejected(self):
        with pytest.raises(TransportError):
            segment_bmw(b"\x01", 0x6F1, ecu_address=0x100)


class TestReassembly:
    def test_roundtrip(self):
        payload = bytes(range(30))
        reassembler = BmwReassembler()
        result = None
        for frame in segment_bmw(payload, 0x6F1, ecu_address=0x43):
            result = reassembler.feed_payloads(frame)
        assert result == payload
        assert reassembler.last_address == 0x43
        assert reassembler.stats.payloads == 1

    def test_first_byte_ignored_in_payload(self):
        """The paper: "we ignore the first byte and put the remaining
        bytes together"."""
        payload = b"\x62\xf4\x00\x10"
        reassembler = BmwReassembler()
        for frame in segment_bmw(payload, 0x6F1, ecu_address=0x60):
            result = reassembler.feed_payloads(frame)
        assert result == payload  # no 0x60 inside

    def test_short_frame_rejected(self):
        with pytest.raises(TransportError):
            BmwReassembler().feed_payloads(CanFrame(0x6F1, b"\x29"))

    def test_short_frame_lenient_emits_error_event(self):
        reassembler = BmwReassembler(strict=False)
        events = reassembler.feed(CanFrame(0x6F1, b"\x29"))
        assert [e.kind for e in events] == [EVENT_ERROR]
        assert reassembler.stats.errors == 1


class TestEndpoint:
    def test_request_response(self):
        bus = SimulatedCanBus(SimClock())
        ecu = BmwEndpoint(
            bus, "ecu", tx_id=0x600, rx_id=0x6F0, ecu_address=0xF1,
            on_message=lambda p: ecu.send(b"\x62" + p[1:]),
        )
        tool = BmwEndpoint(bus, "tool", tx_id=0x6F0, rx_id=0x600, ecu_address=0x12)
        tool.send(b"\x22\xf4\x00")
        assert tool.receive() == b"\x62\xf4\x00"

    def test_long_exchange(self):
        bus = SimulatedCanBus(SimClock())
        big = bytes(range(80))
        ecu = BmwEndpoint(
            bus, "ecu", tx_id=0x600, rx_id=0x6F0, ecu_address=0xF1,
            on_message=lambda p: ecu.send(big),
        )
        tool = BmwEndpoint(bus, "tool", tx_id=0x6F0, rx_id=0x600, ecu_address=0x12)
        tool.send(b"\x22\x01\x02")
        assert tool.receive() == big


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(min_size=1, max_size=300), address=st.integers(0, 255))
def test_bmw_roundtrip_property(payload, address):
    reassembler = BmwReassembler()
    result = None
    for frame in segment_bmw(payload, 0x6F1, ecu_address=address):
        result = reassembler.feed_payloads(frame)
    assert result == payload
    assert reassembler.last_address == address
