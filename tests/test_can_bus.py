"""Tests for the simulated CAN bus."""

import pytest

from repro.can import BusNode, CanFrame, SimulatedCanBus, Sniffer
from repro.simtime import SimClock


def make_bus():
    return SimulatedCanBus(SimClock())


class TestAttachment:
    def test_attach_and_send(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        b = bus.attach(BusNode("b"))
        a.send(CanFrame(0x100, b"\x01"))
        assert len(b.received) == 1
        assert b.received[0].data == b"\x01"

    def test_sender_does_not_receive_own_frame(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        bus.attach(BusNode("b"))
        a.send(CanFrame(0x100, b"\x01"))
        assert a.received == []

    def test_duplicate_name_rejected(self):
        bus = make_bus()
        bus.attach(BusNode("a"))
        with pytest.raises(ValueError):
            bus.attach(BusNode("a"))

    def test_detached_node_stops_receiving(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        b = bus.attach(BusNode("b"))
        bus.detach("b")
        a.send(CanFrame(0x100, b"\x01"))
        assert b.received == []

    def test_unattached_send_raises(self):
        node = BusNode("floating")
        with pytest.raises(RuntimeError):
            node.send(CanFrame(0x1, b""))


class TestTiming:
    def test_timestamps_strictly_increase(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        bus.attach(BusNode("b"))
        first = a.send(CanFrame(0x100, b"\x01"))
        second = a.send(CanFrame(0x100, b"\x02"))
        assert second.timestamp > first.timestamp

    def test_frame_time_advances_clock(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        before = bus.clock.now()
        a.send(CanFrame(0x100, b"\x01"))
        assert bus.clock.now() > before


class TestArbitration:
    def test_lower_id_transmits_first(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        bus.attach(BusNode("b"))
        bus.enqueue("a", CanFrame(0x700, b"\x01"))
        bus.enqueue("a", CanFrame(0x100, b"\x02"))
        bus.enqueue("a", CanFrame(0x300, b"\x03"))
        sent = bus.arbitrate()
        assert [f.can_id for f in sent] == [0x100, 0x300, 0x700]

    def test_equal_ids_fifo(self):
        bus = make_bus()
        bus.attach(BusNode("a"))
        bus.enqueue("a", CanFrame(0x100, b"\x01"))
        bus.enqueue("a", CanFrame(0x100, b"\x02"))
        sent = bus.arbitrate()
        assert [f.data for f in sent] == [b"\x01", b"\x02"]


class TestTaps:
    def test_sniffer_sees_all_frames(self):
        bus = make_bus()
        a = bus.attach(BusNode("a"))
        b = bus.attach(BusNode("b"))
        sniffer = Sniffer().attach_to(bus)
        a.send(CanFrame(0x100, b"\x01"))
        b.send(CanFrame(0x200, b"\x02"))
        assert len(sniffer.log) == 2
        assert [f.can_id for f in sniffer.log] == [0x100, 0x200]

    def test_tap_sees_frame_before_receiver_reacts(self):
        """Wire order: a nested response must be logged after its trigger."""
        bus = make_bus()
        sniffer = Sniffer().attach_to(bus)
        responder = BusNode("responder")

        def respond(frame):
            if frame.can_id == 0x100:
                responder.send(CanFrame(0x200, b"\xff"))

        responder._handler = respond
        bus.attach(responder)
        requester = bus.attach(BusNode("requester"))
        requester.send(CanFrame(0x100, b"\x01"))
        assert [f.can_id for f in sniffer.log] == [0x100, 0x200]
        assert sniffer.log[0].timestamp < sniffer.log[1].timestamp
