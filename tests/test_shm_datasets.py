"""Shared-memory dataset lifecycle for the island GP backend (S3).

The contract under test: every ``/dev/shm`` segment the parent creates for
an infer call is unlinked no matter how the call ends — normal completion,
a worker SIGKILLed mid-island (the pool surfaces ``BrokenProcessPool``),
or a ``KeyboardInterrupt`` racing the submits — and the ``atexit`` hook
reaps whatever a dying interpreter leaves registered.
"""

import os
import signal
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path

import pytest

from repro.runtime import shm
from repro.runtime.shm import SHM_PREFIX, SharedBlobs, create_blobs, shm_usable

pytestmark = pytest.mark.skipif(
    not shm_usable(), reason="POSIX shared memory unavailable on this platform"
)

DEV_SHM = Path("/dev/shm")


def orphans():
    """This process's leftover segments (by the pid baked into the name)."""
    if not DEV_SHM.exists():  # non-Linux: fall back to the live registry
        return sorted(shm._LIVE)
    return sorted(
        p.name for p in DEV_SHM.glob(f"{SHM_PREFIX}_{os.getpid()}_*")
    )


class TestSharedBlobs:
    def test_round_trip_and_unlink(self):
        blobs = [b"alpha", b"", b"b" * 4096]
        store = SharedBlobs.create(blobs)
        assert store.name.startswith(SHM_PREFIX)
        assert store.name in shm._LIVE
        for blob, (offset, length) in zip(blobs, store.slices):
            assert SharedBlobs.read(store.name, offset, length) == blob
        store.unlink()
        assert store.name not in shm._LIVE
        assert orphans() == []

    def test_unlink_is_idempotent(self):
        store = SharedBlobs.create([b"x"])
        store.unlink()
        store.unlink()
        assert orphans() == []

    def test_context_manager_unlinks(self):
        with SharedBlobs.create([b"payload"]) as store:
            name = store.name
            assert name in shm._LIVE
        assert name not in shm._LIVE
        assert orphans() == []

    def test_atexit_hook_reaps_registered_segments(self):
        store = SharedBlobs.create([b"left behind"])
        assert store.name in shm._LIVE
        shm._cleanup_live()  # what interpreter exit / KeyboardInterrupt runs
        assert store.name not in shm._LIVE
        assert orphans() == []

    def test_create_blobs_falls_back_to_none_without_shm(self, monkeypatch):
        monkeypatch.setattr(shm, "HAVE_SHM", False)
        assert create_blobs([b"x"]) is None


def _kill_self(descriptor):
    """Stand-in island body: die the way a segfaulting worker does."""
    os.kill(os.getpid(), signal.SIGKILL)


def _raise_interrupt(*args, **kwargs):
    raise KeyboardInterrupt


class TestIslandPoolLifecycle:
    def fresh_pool(self, workers=1):
        from repro.core.gp.islands import IslandPool

        return IslandPool(workers=workers)

    def test_normal_run_leaves_no_orphans(self):
        from repro.core import DPReverser, ReverserConfig
        from repro.core.gp import GpConfig
        from repro.cps import DataCollector
        from repro.tools import make_tool_for_car
        from repro.vehicle import build_car

        car = build_car("C")
        capture = DataCollector(make_tool_for_car("C", car), read_duration_s=8.0).collect()
        reverser = DPReverser(
            ReverserConfig(
                gp_config=GpConfig(seed=2, generations=8, population_size=100),
                gp_backend="island",
                gp_workers=2,
            )
        )
        report = reverser.reverse_engineer(capture)
        assert report.formula_esvs
        assert orphans() == []

    def test_worker_crash_mid_island_still_unlinks(self, monkeypatch):
        from repro.core.gp import islands

        monkeypatch.setattr(islands, "_run_island", _kill_self)
        pool = self.fresh_pool()
        try:
            with pytest.raises(BrokenProcessPool):
                pool.run([("task", i) for i in range(3)])
            assert orphans() == []
        finally:
            pool.shutdown()

    def test_keyboard_interrupt_during_submit_still_unlinks(self, monkeypatch):
        pool = self.fresh_pool()
        try:
            monkeypatch.setattr(pool._executor, "submit", _raise_interrupt)
            with pytest.raises(KeyboardInterrupt):
                pool.run([("task", 0)])
            assert orphans() == []
        finally:
            pool.shutdown()

    def test_inline_fallback_used_when_shm_unavailable(self, monkeypatch):
        from repro.core.gp import islands

        received = []

        def record_submit(fn, descriptor):
            received.append(descriptor)

            class Done:
                @staticmethod
                def result():
                    return []

            return Done()

        monkeypatch.setattr(islands, "create_blobs", lambda blobs: None)
        pool = self.fresh_pool()
        try:
            monkeypatch.setattr(pool._executor, "submit", record_submit)
            pool.run([("task", 0)])
            assert received and all(d[0] == "inline" for d in received)
        finally:
            pool.shutdown()
