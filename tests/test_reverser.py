"""Integration tests: the full DP-Reverser pipeline on simulated captures."""

import pytest

from repro.attacks import replay_from_report
from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import build_car


def ground_truth(car):
    truth = {}
    for ecu in car.ecus:
        for point in ecu.uds_data_points.values():
            truth[f"uds:{point.did:04X}"] = (point.name, point.formula, point.is_enum)
        for group in ecu.kwp_groups.values():
            for index, measurement in enumerate(group.measurements):
                truth[f"kwp:{group.local_id:02X}/{index}"] = (
                    measurement.name,
                    measurement.formula,
                    measurement.is_enum,
                )
    return truth


@pytest.fixture(scope="module")
def report_d():
    car = build_car("D")
    tool = make_tool_for_car("D", car)
    capture = DataCollector(tool, read_duration_s=30.0).collect()
    report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
    return car, capture, report


class TestPipelineOnCarD:
    def test_every_esv_reversed(self, report_d):
        car, __, report = report_d
        truth = ground_truth(car)
        assert len(report.esvs) == len(truth)

    def test_semantics_all_correct(self, report_d):
        car, __, report = report_d
        truth = ground_truth(car)
        for esv in report.esvs:
            assert truth[esv.identifier][0] == esv.label

    def test_formulas_all_correct(self, report_d):
        car, __, report = report_d
        truth = ground_truth(car)
        for esv in report.formula_esvs:
            __, formula, __ = truth[esv.identifier]
            assert check_formula(esv.formula, formula, esv.samples), esv.label

    def test_enums_identified(self, report_d):
        car, __, report = report_d
        truth = ground_truth(car)
        expected_enums = {k for k, (_, __, is_enum) in truth.items() if is_enum}
        assert {e.identifier for e in report.enum_esvs} == expected_enums

    def test_enum_states_labelled(self, report_d):
        __, __, report = report_d
        for esv in report.enum_esvs:
            assert esv.enum_states  # raw value -> on-screen text

    def test_ecr_procedures_recovered_with_semantics(self, report_d):
        car, __, report = report_d
        complete = [p for p in report.ecrs if p.complete]
        actuator_names = {
            a.name for ecu in car.ecus for a in ecu.actuators.values()
        }
        assert len({p.identifier for p in complete}) == len(actuator_names)
        assert {p.label for p in complete} <= actuator_names | {""}

    def test_request_format_strings(self, report_d):
        __, __, report = report_d
        esv = report.esvs[0]
        assert esv.request_format.startswith(("22 ", "21 ", "01 "))

    def test_summary_renders(self, report_d):
        __, __, report = report_d
        text = report.summary()
        assert "Car D" in text and "ESVs reversed" in text

    def test_recovered_ecrs_replayable(self, report_d):
        """End-to-end attack story: replay recovered ECRs on a fresh car."""
        __, __, report = report_d
        fresh = build_car("D")
        results = replay_from_report(fresh, report)
        assert results
        assert all(r.success for r in results)


class TestPipelineOnKwpCar:
    def test_car_c_full_run(self):
        car = build_car("C")
        tool = make_tool_for_car("C", car)
        capture = DataCollector(tool, read_duration_s=30.0).collect()
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        truth = ground_truth(car)
        assert report.transport == "vwtp"
        assert len(report.formula_esvs) == 5
        for esv in report.formula_esvs:
            name, formula, __ = truth[esv.identifier]
            assert check_formula(esv.formula, formula, esv.samples), name


class TestCameraOffsetCorrection:
    def test_obd_anchor_recovers_offset(self):
        """§9.4 method (2): OBD-II reads anchor the camera clock."""
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        capture = DataCollector(
            tool, read_duration_s=20.0, camera_offset_s=2.0
        ).collect()
        # Without OBD anchors in this capture the offset stays None, so the
        # matching must fail or degrade; with estimate_alignment disabled
        # semantics collapse entirely.  This documents the failure mode.
        reverser = DPReverser(
            ReverserConfig(gp_config=GpConfig(seed=2), estimate_alignment=False)
        )
        report = reverser.reverse_engineer(capture)
        aligned = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        # Correct pairing needs alignment; the offset capture must reverse
        # at most as many ESVs as the synchronised pipeline on Car D.
        assert len(report.esvs) <= len(aligned.esvs) + 1


class TestObdAnchorAlignment:
    """§9.4 method (2): the pre-session OBD-II reads anchor the clocks."""

    def test_offset_recovered_and_coverage_kept(self):
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        capture = DataCollector(
            tool, read_duration_s=20.0, camera_offset_s=2.0
        ).collect()
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        # The estimate includes the camera's snap delay (~0.15 s).
        assert report.camera_offset_estimate == pytest.approx(2.0, abs=0.3)
        assert len(report.formula_esvs) == 12  # full Car D coverage

    def test_anchor_segment_recorded(self):
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        capture = DataCollector(tool, read_duration_s=8.0).collect()
        kinds = [s.kind for s in capture.segments]
        assert kinds[0] == "obd_anchor"

    def test_anchor_disabled(self):
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        capture = DataCollector(
            tool, read_duration_s=8.0, obd_anchor_rounds=0
        ).collect()
        assert all(s.kind != "obd_anchor" for s in capture.segments)

    def test_obd_mode01_served_by_engine(self):
        car = build_car("A")
        endpoint = car.tester_endpoint("Engine")
        endpoint.send(b"\x01\x0d")
        response = endpoint.receive()
        assert response is not None and response[:2] == b"\x41\x0d"

    def test_obd_supported_bitmap(self):
        car = build_car("A")
        endpoint = car.tester_endpoint("Engine")
        endpoint.send(b"\x01\x00")
        response = endpoint.receive()
        from repro.diagnostics import obd2
        supported = obd2.decode_supported_pids(0x00, response[2:6])
        assert set(supported) == {0x05, 0x0C, 0x0D}
