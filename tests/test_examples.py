"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "P")
        assert result.returncode == 0, result.stderr
        assert "ESVs reversed" in result.stdout

    def test_quickstart_rejects_unknown_car(self):
        result = run_example("quickstart.py", "Z")
        assert result.returncode != 0

    def test_planner_demo(self):
        result = run_example("planner_demo.py")
        assert result.returncode == 0, result.stderr
        assert "saving" in result.stdout

    def test_obd_ground_truth(self):
        result = run_example("obd_ground_truth.py")
        assert result.returncode == 0, result.stderr
        assert "Precision: 7/7" in result.stdout

    def test_kline_session(self):
        result = run_example("kline_session.py")
        assert result.returncode == 0, result.stderr
        assert "Precision: 9/9" in result.stdout

    def test_app_formula_mining(self):
        result = run_example("app_formula_mining.py")
        assert result.returncode == 0, result.stderr
        assert "Carly for VAG" in result.stdout
        assert "0 formulas extracted" in result.stdout

    def test_fleet_subset(self):
        result = run_example("fleet_reverse_engineering.py", "C", timeout=300)
        assert result.returncode == 0, result.stderr
        assert "Total:" in result.stdout

    def test_live_stream_client(self):
        result = run_example("live_stream_client.py", "A", timeout=300)
        assert result.returncode == 0, result.stderr
        assert "ESVs so far" in result.stdout
        assert "byte-identical to the batch pipeline" in result.stdout

    def test_attack_replay(self):
        result = run_example("attack_replay.py", timeout=600)
        assert result.returncode == 0, result.stderr
        assert "attacks succeeded" in result.stdout
