"""Tests for the diagnostic-tool simulator (screen-and-stylus interface)."""

import pytest

from repro.vehicle import build_car
from repro.tools import TOOL_PROFILES, make_tool_for_car


@pytest.fixture()
def tool_a():
    car = build_car("A")
    return make_tool_for_car("A", car), car


def tap(tool, text):
    widget = tool.screen.find(text)
    assert widget is not None, f"widget {text!r} not on screen {tool.screen.name}"
    assert tool.tap(*widget.center)


class TestProfiles:
    def test_four_tools_defined(self):
        assert set(TOOL_PROFILES) == {"AUTEL 919", "LAUNCH X431", "VCDS", "Techstream"}

    def test_handhelds_noisier_than_laptops(self):
        assert TOOL_PROFILES["LAUNCH X431"].ocr_error_rate > TOOL_PROFILES["VCDS"].ocr_error_rate


class TestNavigation:
    def test_home_lists_ecus(self, tool_a):
        tool, car = tool_a
        texts = [w.text for w in tool.screen.buttons()]
        for ecu in car.ecus:
            assert ecu.name in texts

    def test_enter_ecu_menu(self, tool_a):
        tool, __ = tool_a
        tap(tool, "Engine")
        assert tool.state == "ecu_menu"
        assert tool.screen.find("Read Data Stream") is not None
        # Decoy entries exist, matching real tool menus.
        assert tool.screen.find("Clear Trouble Codes") is not None

    def test_back_returns_home(self, tool_a):
        tool, __ = tool_a
        tap(tool, "Engine")
        tap(tool, "Back")
        assert tool.state == "home"

    def test_active_test_only_on_ecus_with_actuators(self, tool_a):
        tool, car = tool_a
        tap(tool, "Engine")
        assert tool.screen.find("Active Test") is None
        tap(tool, "Back")
        tap(tool, "Body Control")
        assert tool.screen.find("Active Test") is not None

    def test_tap_missing_widget_returns_false(self, tool_a):
        tool, __ = tool_a
        assert not tool.tap(799, 599)


class TestDataStream:
    def select_first_items(self, tool, count):
        tap(tool, "Engine")
        tap(tool, "Read Data Stream")
        toggled = 0
        for widget in list(tool.screen.buttons()):
            if widget.text.startswith("[ ] ") and toggled < count:
                tool.tap(*widget.center)
                toggled += 1
        return toggled

    def test_toggle_marks_selection(self, tool_a):
        tool, __ = tool_a
        self.select_first_items(tool, 2)
        checked = [w for w in tool.screen.buttons() if w.text.startswith("[x] ")]
        assert len(checked) == 2

    def test_toggle_twice_unselects(self, tool_a):
        tool, __ = tool_a
        self.select_first_items(tool, 1)
        widget = next(w for w in tool.screen.buttons() if w.text.startswith("[x] "))
        tool.tap(*widget.center)
        assert not any(w.text.startswith("[x] ") for w in tool.screen.buttons())

    def test_start_without_selection_stays(self, tool_a):
        tool, __ = tool_a
        tap(tool, "Engine")
        tap(tool, "Read Data Stream")
        tap(tool, "Start")
        assert tool.state == "datastream_select"

    def test_live_values_update(self, tool_a):
        tool, __ = tool_a
        self.select_first_items(tool, 2)
        tap(tool, "Start")
        assert tool.state == "live"
        # Values pass through the rendering pipeline: whoever paces the
        # session advances time and flushes (the collector's job).
        tool.clock.advance(0.5)
        tool.flush_display()
        values = [w.text for w in tool.screen.widgets if w.kind.value == "value"]
        assert all(v != "---" for v in values)

    def test_live_values_change_over_ticks(self, tool_a):
        tool, __ = tool_a
        self.select_first_items(tool, 2)
        tap(tool, "Start")
        def snapshot():
            return [w.text for w in tool.screen.widgets if w.kind.value == "value"]
        seen = set()
        for __ in range(8):
            tool.clock.advance(0.5)
            tool.tick()
            tool.clock.advance(0.3)
            tool.flush_display()
            seen.add(tuple(snapshot()))
        assert len(seen) > 1

    def test_pagination_for_long_lists(self):
        car = build_car("K")  # 41 ESVs in blocks
        tool = make_tool_for_car("K", car)
        tap(tool, "Engine")
        tap(tool, "Read Data Stream")
        assert "(" in tool.screen.widgets[0].text  # page indicator in title


class TestActiveTest:
    def test_run_test_performs_three_messages(self, tool_a):
        tool, car = tool_a
        tap(tool, "Body Control")
        tap(tool, "Active Test")
        target = next(
            w for w in tool.screen.buttons() if w.text not in ("Back",)
        )
        name = target.text
        tool.tap(*target.center)
        actuator = next(
            a for e in car.ecus for a in e.actuators.values() if a.name == name
        )
        assert [a.action for a in actuator.actions] == ["freeze", "adjust", "return"]
        label = next(w.text for w in tool.screen.labels() if w.text.startswith("Last test"))
        assert "OK" in label

    def test_security_unlocked_automatically(self, tool_a):
        tool, car = tool_a
        body = car.ecu("Body Control")
        assert body.security.required and not body.security.unlocked
        tap(tool, "Body Control")
        tap(tool, "Active Test")
        target = next(w for w in tool.screen.buttons() if w.text != "Back")
        tool.tap(*target.center)
        assert body.security.unlocked
