"""Tests for the seeded fault-injection layer (`repro.can.noise`).

The noise model is the tentpole of the robustness work: every fault is
drawn from a seeded PRNG, so a (profile, input) pair must always produce
the same corrupted capture — noisy runs are as reproducible as clean ones.
"""

import pytest

from repro.can import (
    FOREIGN_IDS,
    CanFrame,
    FaultCounts,
    FaultInjector,
    NoiseProfile,
    SimulatedCanBus,
    apply_noise,
)
from repro.simtime import SimClock


def make_frames(n=400, can_id=0x7E8):
    return [
        CanFrame(can_id, bytes([i & 0xFF] * 8), timestamp=0.001 * i)
        for i in range(n)
    ]


class TestNoiseProfile:
    @pytest.mark.parametrize("spec", ["", "off", "none", "0"])
    def test_null_specs_parse_to_none(self, spec):
        assert NoiseProfile.parse(spec) is None

    def test_default_spec(self):
        profile = NoiseProfile.parse("default", seed=9)
        assert profile.seed == 9
        assert profile.p_drop == NoiseProfile.DEFAULT_RATES["p_drop"]
        assert profile.p_duplicate == NoiseProfile.DEFAULT_RATES["p_duplicate"]
        assert profile.p_bit_error == NoiseProfile.DEFAULT_RATES["p_bit_error"]

    def test_key_value_spec(self):
        profile = NoiseProfile.parse("drop=0.1,dup=0.05,bit=0.01,window=5")
        assert profile.p_drop == 0.1
        assert profile.p_duplicate == 0.05
        assert profile.p_bit_error == 0.01
        assert profile.reorder_window == 5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            NoiseProfile.parse("garble=0.5")

    def test_dict_roundtrip(self):
        profile = NoiseProfile.default(seed=3).scaled(0.5)
        assert NoiseProfile.from_dict(profile.to_dict()) == profile

    def test_from_dict_unknown_key_named_and_valid_listed(self):
        with pytest.raises(ValueError) as excinfo:
            NoiseProfile.from_dict({"p_drop": 0.1, "p_garble": 0.5})
        message = str(excinfo.value)
        assert "'p_garble'" in message
        assert "p_drop" in message  # the valid keys are listed

    def test_is_null(self):
        assert NoiseProfile().is_null
        assert not NoiseProfile.default().is_null
        assert NoiseProfile.default().scaled(0.0).is_null

    def test_with_seed(self):
        assert NoiseProfile.default(seed=1).with_seed(2) == NoiseProfile.default(seed=2)


class TestFaultInjector:
    def test_seeded_runs_identical(self):
        frames = make_frames()
        profile = NoiseProfile.default(seed=11)
        first = apply_noise(frames, profile)
        second = apply_noise(frames, profile)
        assert first == second

    def test_different_seeds_differ(self):
        frames = make_frames()
        assert apply_noise(frames, NoiseProfile.default(seed=1)) != apply_noise(
            frames, NoiseProfile.default(seed=2)
        )

    def test_null_profile_is_identity(self):
        frames = make_frames()
        assert apply_noise(frames, None) == frames
        assert apply_noise(frames, NoiseProfile()) == frames

    def test_timestamps_stay_monotone_under_reordering(self):
        frames = make_frames()
        profile = NoiseProfile(seed=5, p_reorder=0.3, reorder_window=4)
        noisy = apply_noise(frames, profile)
        stamps = [f.timestamp for f in noisy]
        assert stamps == sorted(stamps)

    def test_counts_reconcile(self):
        frames = make_frames()
        counts = FaultCounts()
        noisy = apply_noise(frames, NoiseProfile.default(seed=4), counts)
        assert counts.frames_in == len(frames)
        assert counts.frames_out == len(noisy)
        assert counts.frames_out == (
            counts.frames_in - counts.dropped + counts.duplicated + counts.foreign
        )

    def test_foreign_frames_use_foreign_ids(self):
        frames = make_frames()
        noisy = apply_noise(frames, NoiseProfile(seed=2, p_foreign=0.2))
        foreign = [f for f in noisy if f.can_id != 0x7E8]
        assert foreign
        assert {f.can_id for f in foreign} <= set(FOREIGN_IDS)

    def test_capture_fraction_truncates(self):
        frames = make_frames(100)
        noisy = apply_noise(frames, NoiseProfile(seed=0, capture_fraction=0.25))
        assert len(noisy) == 25

    def test_flush_drains_reorder_window(self):
        profile = NoiseProfile(seed=1, p_reorder=1.0, reorder_window=3)
        injector = FaultInjector(profile)
        emitted = []
        for frame in make_frames(10):
            emitted.extend(injector.feed(frame))
        emitted.extend(injector.flush())
        assert len(emitted) == 10


class TestNoisyBus:
    def run_bus(self, noise):
        bus = SimulatedCanBus(SimClock(), noise=noise)
        tapped = []
        bus.add_tap(tapped.append)
        from repro.can.bus import BusNode

        receiver = bus.attach(BusNode("receiver"))
        sender = bus.attach(BusNode("sender"))
        for i in range(200):
            sender.send(CanFrame(0x7E0, bytes([i & 0xFF] * 8)))
        bus.flush_noise()
        return bus, tapped, receiver

    def test_nodes_receive_faithfully_while_tap_degrades(self):
        noise = NoiseProfile(seed=3, p_drop=0.5)
        bus, tapped, receiver = self.run_bus(noise)
        assert len(receiver.received) == 200  # the bus itself is healthy
        assert len(tapped) < 200  # the sniffer's view is lossy
        assert bus.noise_counts.dropped == 200 - len(tapped)

    def test_clean_bus_has_no_injector(self):
        bus, tapped, receiver = self.run_bus(None)
        assert len(tapped) == 200
        assert bus.noise_counts is None
        assert bus.flush_noise() == 0

    def test_null_profile_equivalent_to_clean(self):
        __, clean, __ = self.run_bus(None)
        __, null, __ = self.run_bus(NoiseProfile())
        assert [(f.can_id, f.data) for f in clean] == [
            (f.can_id, f.data) for f in null
        ]


class TestJobNoiseIdentity:
    """Zero-noise specs must not perturb job identity or payloads."""

    def test_job_id_unchanged_without_noise(self):
        from repro.runtime import fleet_job_specs

        plain = fleet_job_specs(["A"])[0]
        explicit = fleet_job_specs(["A"], noise_spec="", noise_seed=0)[0]
        assert plain.job_id == explicit.job_id
        assert plain.noise_profile() is None

    def test_noise_spec_changes_job_id_and_derives_per_car_seed(self):
        from repro.runtime import fleet_job_specs

        noisy_a, noisy_b = fleet_job_specs(
            ["A", "B"], noise_spec="default", noise_seed=7
        )
        plain = fleet_job_specs(["A"])[0]
        assert noisy_a.job_id != plain.job_id
        # Per-car seed derivation: different cars get different fault streams.
        assert noisy_a.noise_profile().seed != noisy_b.noise_profile().seed

    def test_spec_dict_roundtrip_keeps_noise(self):
        from repro.runtime import JobSpec

        spec = JobSpec(car_key="A", noise_spec="drop=0.1", noise_seed=3)
        restored = JobSpec.from_dict(spec.to_dict())
        assert restored.noise_spec == "drop=0.1"
        assert restored.noise_seed == 3
        assert restored.job_id == spec.job_id
