"""Tests for response analysis: pairing, Tab. 2 scaling, GP inference."""

import pytest

from repro.core.fields import EsvObservation
from repro.core.response_analysis import (
    PairedDataset,
    build_dataset,
    infer_formula,
    prescale,
    table2_factor,
)
from repro.core.gp import GpConfig
from repro.core.screenshot import UiSample, UiSeries


def make_obs(identifier, raws, dt=0.5, protocol="uds"):
    return [
        EsvObservation(
            protocol,
            identifier,
            bytes(raw) if isinstance(raw, tuple) else bytes([raw]),
            i * dt,
        )
        for i, raw in enumerate(raws)
    ]


def make_series(label, values, dt=0.5):
    return UiSeries(
        label, [UiSample(i * dt, f"{v}", float(v)) for i, v in enumerate(values)]
    )


class TestTable2Factor:
    @pytest.mark.parametrize(
        "magnitude,expected",
        [
            (5e4, 1e-4),
            (5e3, 1e-3),
            (500, 1e-2),
            (50, 1e-1),
            (5, 1.0),
            (0.5, 10.0),
            (0.05, 1e2),
            (0.005, 1e3),
            (0.0005, 1e4),
        ],
    )
    def test_y_factors_follow_table2(self, magnitude, expected):
        assert table2_factor(magnitude, allow_enlarge=True) == expected

    def test_x_never_enlarged(self):
        """X values are raw integers >= 1 — the paper only reduces them."""
        assert table2_factor(0.5, allow_enlarge=False) == 1.0
        assert table2_factor(500, allow_enlarge=False) == 1e-2


class TestPrescale:
    def test_values_land_near_unit_range(self):
        dataset = PairedDataset([(2000.0,), (3000.0,), (4000.0,)], [0.002, 0.003, 0.004])
        scaled = prescale(dataset)
        assert all(1.0 <= x[0] < 10.0 for x in scaled.x_rows)
        assert all(1.0 <= y < 10.0 for y in scaled.y_values)
        assert scaled.x_factors == (1e-3,)
        assert scaled.y_factor == 1e3


class TestBuildDataset:
    def test_pairs_by_nearest_time(self):
        observations = make_obs("uds:F400", [10, 20, 30])
        series = make_series("X", [100, 200, 300])
        dataset = build_dataset(observations, series)
        assert dataset.x_rows == [(10.0,), (20.0,), (30.0,)]
        assert dataset.y_values == [100.0, 200.0, 300.0]

    def test_observation_without_nearby_frame_skipped(self):
        observations = make_obs("uds:F400", [10, 20, 30, 40, 50, 60], dt=0.5)
        # Frames stop at t=1.5; later observations have no frame within the
        # adaptive gap (0.6 * frame spacing) and must be dropped rather
        # than mispaired with the last frame.
        series = make_series("X", [100, 200, 300, 400], dt=0.5)
        dataset = build_dataset(observations, series)
        assert len(dataset) == 4

    def test_kwp_uses_two_variables(self):
        observations = make_obs("kwp:01/0", [(10, 20), (30, 40)], protocol="kwp")
        series = make_series("X", [1, 2])
        dataset = build_dataset(observations, series)
        assert dataset.x_rows[0] == (10.0, 20.0)

    def test_bytes_interpretation(self):
        observations = make_obs("uds:F400", [(1, 244), (2, 200)])
        series = make_series("X", [1, 2])
        as_int = build_dataset(observations, series, "int")
        per_byte = build_dataset(observations, series, "bytes")
        assert as_int.x_rows[0] == (500.0,)
        assert per_byte.x_rows[0] == (1.0, 244.0)


class TestInference:
    def test_affine_formula_recovered(self):
        raws = [20, 60, 100, 140, 180, 220, 40, 80, 120, 160]
        observations = make_obs("uds:F400", raws)
        series = make_series("Temp", [0.75 * r - 48 for r in raws])
        inferred = infer_formula(observations, series, GpConfig(seed=1))
        for raw in raws:
            assert inferred((raw,)) == pytest.approx(0.75 * raw - 48, abs=0.5)

    def test_kwp_product_recovered(self):
        pairs = [
            (40, 20), (40, 60), (40, 120), (40, 200), (40, 240),
            (40, 90), (40, 150), (40, 30), (40, 180), (40, 250),
        ]
        observations = make_obs("kwp:01/0", pairs, protocol="kwp")
        series = make_series("RPM", [0.2 * a * b for a, b in pairs])
        inferred = infer_formula(observations, series, GpConfig(seed=1))
        for a, b in pairs:
            assert inferred((a, b)) == pytest.approx(0.2 * a * b, rel=0.02, abs=1.0)

    def test_two_byte_value_as_integer(self):
        raws = [(h, l) for h, l in [(1, 0), (2, 50), (3, 100), (5, 200), (8, 30), (11, 99), (14, 220), (9, 12)]]
        observations = make_obs("uds:F400", raws)
        series = make_series("RPM", [0.25 * (256 * h + l) for h, l in raws])
        inferred = infer_formula(observations, series, GpConfig(seed=1))
        assert inferred.interpretation in ("int", "bytes")
        for h, l in raws:
            xs = (256 * h + l,) if inferred.interpretation == "int" else (h, l)
            assert inferred(xs) == pytest.approx(0.25 * (256 * h + l), rel=0.02, abs=1.0)

    def test_too_few_samples_returns_none(self):
        observations = make_obs("uds:F400", [1, 2])
        series = make_series("X", [1, 2])
        assert infer_formula(observations, series, GpConfig(seed=1)) is None

    def test_outlier_in_ui_values_tolerated(self):
        """GP robustness (§4.4): one OCR-corrupted Y must not break the fit."""
        raws = [20, 40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240]
        ys = [2.0 * r for r in raws]
        ys[5] = ys[5] * 10  # decimal-point-drop style corruption
        observations = make_obs("uds:F400", raws)
        series = make_series("Pressure", ys)
        inferred = infer_formula(observations, series, GpConfig(seed=1))
        clean = [r for i, r in enumerate(raws) if i != 5]
        for raw in clean:
            assert inferred((raw,)) == pytest.approx(2.0 * raw, rel=0.05, abs=1.0)
