"""Tests for the READ/LibreCAN baseline and the broadcast substrate."""

import pytest

from repro.can import CanFrame
from repro.core.read_baseline import (
    ReadField,
    bit_statistics,
    librecan_match,
    read_analysis,
    segment_fields,
)
from repro.vehicle.broadcast import (
    BroadcastEmitter,
    BroadcastFrameSpec,
    SignalSpec,
    crc8,
    default_broadcast_vehicle,
)
from repro.vehicle.signals import SineSignal


@pytest.fixture(scope="module")
def broadcast_log():
    specs = default_broadcast_vehicle()
    return specs, BroadcastEmitter(specs).run(30.0)


class TestBroadcastEmitter:
    def test_periods_respected(self, broadcast_log):
        specs, log = broadcast_log
        engine = list(log.with_id(0x280))
        gaps = [b.timestamp - a.timestamp for a, b in zip(engine, engine[1:])]
        assert all(abs(gap - 0.01) < 1e-9 for gap in gaps)

    def test_counter_increments(self, broadcast_log):
        __, log = broadcast_log
        brakes = list(log.with_id(0x1A0))
        counters = [
            (int.from_bytes(f.data, "big") >> (64 - 32 - 8)) & 0xFF for f in brakes
        ]
        assert counters[:5] == [0, 1, 2, 3, 4]

    def test_crc_byte_valid(self, broadcast_log):
        __, log = broadcast_log
        for frame in list(log.with_id(0x280))[:20]:
            others = bytes(b for i, b in enumerate(frame.data) if i != 7)
            assert frame.data[7] == crc8(others)


class TestBitStatistics:
    def test_constant_bits_never_flip(self, broadcast_log):
        __, log = broadcast_log
        stats = bit_statistics(list(log.with_id(0x4A8)))
        assert all(rate == 0.0 for rate in stats.flip_rate[:16])  # config word

    def test_counter_lsb_flips_every_frame(self, broadcast_log):
        __, log = broadcast_log
        stats = bit_statistics(list(log.with_id(0x1A0)))
        assert stats.flip_rate[39] == pytest.approx(1.0)  # counter LSB

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            bit_statistics([CanFrame(0x1, bytes(8))])


class TestReadSegmentation:
    def test_finds_signal_counter_crc(self, broadcast_log):
        __, log = broadcast_log
        fields = read_analysis(list(log.with_id(0x280)))
        kinds = {f.kind for f in fields}
        assert "physical" in kinds and "crc" in kinds
        # The three physical signals occupy the first three data bytes.
        physical = [f for f in fields if f.kind == "physical"]
        assert any(f.start_bit < 16 for f in physical)

    def test_counter_detected(self, broadcast_log):
        __, log = broadcast_log
        fields = read_analysis(list(log.with_id(0x1A0)))
        counters = [f for f in fields if f.kind == "counter"]
        assert len(counters) == 1
        assert counters[0].start_bit == 32 and counters[0].length == 8

    def test_constant_word_detected(self, broadcast_log):
        __, log = broadcast_log
        fields = read_analysis(list(log.with_id(0x4A8)))
        assert fields[0].kind == "constant" and fields[0].length >= 16

    def test_extract_field_values(self, broadcast_log):
        __, log = broadcast_log
        frames = list(log.with_id(0x1A0))
        field = ReadField(0, 16, "physical")
        values = {field.extract(f) for f in frames[:100]}
        assert len(values) > 10  # the speed signal sweeps


class TestLibreCanMatching:
    def test_matches_reference_signal(self, broadcast_log):
        specs, log = broadcast_log
        frames = list(log.with_id(0x280))
        fields = read_analysis(frames)
        rpm = specs[0].signals[0]
        references = {
            "engine_rpm": [(f.timestamp, rpm.raw(f.timestamp) * 0.25) for f in frames],
            "unrelated": [(f.timestamp, (i * 37) % 100) for i, f in enumerate(frames)],
        }
        matches = librecan_match(frames, fields, references)
        assert matches
        best = max(matches, key=lambda m: m.correlation)
        assert best.reference == "engine_rpm"
        assert best.correlation > 0.95

    def test_no_match_below_threshold(self, broadcast_log):
        __, log = broadcast_log
        frames = list(log.with_id(0x280))
        fields = read_analysis(frames)
        references = {"noise": [(f.timestamp, (i * 37) % 100) for i, f in enumerate(frames)]}
        assert librecan_match(frames, fields, references) == []


class TestReadOnDiagnosticTraffic:
    """The paper's §4.4 point: READ cannot handle transport-layer traffic."""

    def test_fields_cut_across_transport_frames(self):
        from repro.transport import segment

        # A long diagnostic response split over ISO-TP frames on one id.
        frames = []
        t = 0.0
        for i in range(200):
            payload = bytes([0x62, 0xF4, 0x0D, i % 251, (i * 7) % 251, i % 17])
            for frame in segment(payload + bytes(10), 0x7E8):
                frames.append(frame.with_timestamp(t))
                t += 0.001
        fields = read_analysis(frames)
        # The PCI nibble region (bits 0..8) flips between SF/FF/CF opcodes,
        # so READ sees "signal" activity in what is pure protocol framing.
        protocol_region = [f for f in fields if f.start_bit < 8 and f.kind != "constant"]
        assert protocol_region, "READ mistakes transport framing for signal bits"
