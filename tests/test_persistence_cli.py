"""Tests for capture persistence and the CLI."""

import json

import pytest

from repro.cli import main
from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.persistence import load_capture, save_capture
from repro.tools import make_tool_for_car
from repro.vehicle import build_car


@pytest.fixture(scope="module")
def capture_d():
    car = build_car("D")
    tool = make_tool_for_car("D", car)
    return DataCollector(tool, read_duration_s=10.0).collect()


class TestPersistence:
    def test_roundtrip_preserves_everything(self, capture_d, tmp_path):
        directory = save_capture(capture_d, tmp_path / "cap")
        loaded = load_capture(directory)
        assert loaded.model == capture_d.model
        assert loaded.tool_name == capture_d.tool_name
        assert loaded.tool_error_rate == capture_d.tool_error_rate
        assert len(loaded.can_log) == len(capture_d.can_log)
        for saved, original in zip(loaded.can_log, capture_d.can_log):
            assert (saved.can_id, saved.data) == (original.can_id, original.data)
            # candump serialisation keeps microsecond resolution.
            assert saved.timestamp == pytest.approx(original.timestamp, abs=1e-6)
        assert len(loaded.video) == len(capture_d.video)
        assert loaded.video[0].regions == capture_d.video[0].regions
        assert len(loaded.clicks) == len(capture_d.clicks)
        assert [s.label for s in loaded.segments] == [
            s.label for s in capture_d.segments
        ]

    def test_loaded_capture_reverses_identically(self, capture_d, tmp_path):
        directory = save_capture(capture_d, tmp_path / "cap")
        loaded = load_capture(directory)
        original = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture_d)
        reloaded = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(loaded)
        assert {e.identifier: e.label for e in original.esvs} == {
            e.identifier: e.label for e in reloaded.esvs
        }

    def test_unsupported_version_rejected(self, capture_d, tmp_path):
        directory = save_capture(capture_d, tmp_path / "cap")
        meta = json.loads((directory / "meta.json").read_text())
        meta["format_version"] = 99
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="unsupported capture format"):
            load_capture(directory)

    def test_nonexistent_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="not a capture directory"):
            load_capture(tmp_path / "nope")

    @pytest.mark.parametrize(
        "missing", ["meta.json", "can.log", "video.jsonl", "segments.json"]
    )
    def test_missing_file_named_in_error(self, capture_d, tmp_path, missing):
        directory = save_capture(capture_d, tmp_path / "cap")
        (directory / missing).unlink()
        with pytest.raises(ValueError, match=missing.replace(".", r"\.")):
            load_capture(directory)

    def test_missing_clicks_log_is_tolerated(self, capture_d, tmp_path):
        directory = save_capture(capture_d, tmp_path / "cap")
        (directory / "clicks.jsonl").unlink()
        assert load_capture(directory).clicks == []

    def test_corrupt_meta_rejected(self, capture_d, tmp_path):
        directory = save_capture(capture_d, tmp_path / "cap")
        (directory / "meta.json").write_text("{not json")
        with pytest.raises(ValueError, match="corrupt JSON"):
            load_capture(directory)


class TestCli:
    def test_list_cars(self, capsys):
        assert main(["list-cars"]) == 0
        out = capsys.readouterr().out
        assert "Skoda Octavia" in out and "Audi A4L" in out

    def test_collect_then_reverse(self, tmp_path, capsys):
        assert (
            main(
                ["collect", "--car", "P", "--out", str(tmp_path / "cap"),
                 "--duration", "8"]
            )
            == 0
        )
        report_path = tmp_path / "report.txt"
        assert (
            main(["reverse", str(tmp_path / "cap"), "--report", str(report_path)])
            == 0
        )
        text = report_path.read_text()
        assert "Car P" in text and "ESVs reversed" in text

    def test_fleet_run_with_resume(self, tmp_path, capsys):
        resume = tmp_path / "sweep"
        args = ["fleet-run", "--cars", "C", "--duration", "8", "--resume", str(resume)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "Results digest:" in first and "1/1 jobs ok" in first
        assert (resume / "run_report.json").exists()
        assert (resume / "events.jsonl").exists()

        # Second invocation resumes from the checkpoint: same digest, no re-run.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "1 resumed from checkpoint" in second
        digest = [l for l in first.splitlines() if l.startswith("Results digest:")]
        assert digest[0] in second

    def test_fleet_run_rejects_unknown_car(self, capsys):
        assert main(["fleet-run", "--cars", "Z"]) == 2

    def test_collect_unknown_car(self, capsys):
        assert main(["collect", "--car", "Z", "--out", "/tmp/nope"]) == 2

    def test_attack_command(self, capsys):
        assert main(["attack", "--car", "L"]) == 0
        out = capsys.readouterr().out
        assert "attacks succeeded" in out

    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "Carly for VAG" in out

    def test_fleet_subset(self, capsys):
        assert main(["fleet", "--cars", "C", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "Total precision" in out


class TestCliExtended:
    def test_scan_command(self, capsys):
        assert main(["scan", "--car", "P"]) == 0
        out = capsys.readouterr().out
        assert "identifiers" in out

    def test_reverse_json_format(self, tmp_path):
        assert (
            main(["collect", "--car", "C", "--out", str(tmp_path / "cap"),
                  "--duration", "10"]) == 0
        )
        report_path = tmp_path / "report.json"
        assert (
            main(["reverse", str(tmp_path / "cap"), "--format", "json",
                  "--report", str(report_path)]) == 0
        )
        import json as json_module
        data = json_module.loads(report_path.read_text())
        assert data["model"] == "Car C"
        assert data["esvs"]

    def test_reverse_markdown_format(self, tmp_path, capsys):
        assert (
            main(["collect", "--car", "C", "--out", str(tmp_path / "cap"),
                  "--duration", "10"]) == 0
        )
        assert main(["reverse", str(tmp_path / "cap"), "--format", "markdown"]) == 0
        out = capsys.readouterr().out
        assert "## ECU signal values" in out
