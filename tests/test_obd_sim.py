"""Tests for the standalone OBD-II vehicle simulator."""

import pytest

from repro.diagnostics import obd2
from repro.vehicle import ObdVehicleSimulator


class TestObdSimulator:
    def test_answers_table5_pids(self):
        simulator = ObdVehicleSimulator()
        app = simulator.tester_endpoint()
        for pid in obd2.TABLE5_PIDS:
            app.send(obd2.encode_request(pid))
            response = app.receive()
            assert response is not None
            mode, got_pid, data = obd2.decode_response(response)
            assert (mode, got_pid) == (0x01, pid)
            assert len(data) >= obd2.pid_definition(pid).num_bytes

    def test_supported_pid_bitmap(self):
        simulator = ObdVehicleSimulator(pids=[0x04, 0x0C])
        app = simulator.tester_endpoint()
        app.send(obd2.encode_request(0x00))
        __, __, bitmap = obd2.decode_response(app.receive())
        assert obd2.decode_supported_pids(0x00, bitmap) == [0x04, 0x0C]

    def test_unsupported_pid_not_answered(self):
        simulator = ObdVehicleSimulator(pids=[0x04])
        app = simulator.tester_endpoint()
        app.send(obd2.encode_request(0x0C))
        assert app.receive() is None

    def test_ground_truth_matches_sae_formula(self):
        simulator = ObdVehicleSimulator()
        t = 3.0
        raw = simulator.raw_values(0x0D, t)
        assert simulator.ground_truth(0x0D, t) == obd2.physical_value(0x0D, raw)

    def test_values_change_over_time(self):
        simulator = ObdVehicleSimulator()
        values = {simulator.raw_values(0x0C, t * 1.7) for t in range(20)}
        assert len(values) > 5
