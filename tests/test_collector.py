"""Tests for the data-collection orchestrator (full CPS loop)."""

import pytest

from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import build_car


@pytest.fixture(scope="module")
def capture_a():
    car = build_car("A")
    tool = make_tool_for_car("A", car)
    collector = DataCollector(tool, read_duration_s=8.0)
    return collector.collect(), car


class TestCaptureContents:
    def test_can_frames_collected(self, capture_a):
        capture, __ = capture_a
        assert len(capture.can_log) > 100

    def test_video_recorded_during_live(self, capture_a):
        capture, __ = capture_a
        live_frames = [f for f in capture.video if f.screen_name == "live"]
        assert len(live_frames) >= 10

    def test_clicks_logged_with_labels(self, capture_a):
        capture, __ = capture_a
        labels = [c.label for c in capture.clicks]
        assert any("Read Data Stream" in l for l in labels)
        assert any(l == "Start" for l in labels)

    def test_segments_cover_live_and_active(self, capture_a):
        capture, __ = capture_a
        kinds = {s.kind for s in capture.segments}
        assert kinds == {"obd_anchor", "live", "active_test"}

    def test_segment_windows_ordered(self, capture_a):
        capture, __ = capture_a
        for segment in capture.segments:
            assert segment.t_end >= segment.t_start

    def test_all_ecus_with_data_visited(self, capture_a):
        capture, car = capture_a
        visited = {s.ecu for s in capture.segments if s.kind == "live"}
        expected = {
            e.name for e in car.ecus if e.uds_data_points or e.kwp_groups
        }
        assert visited == expected

    def test_every_actuator_tested(self, capture_a):
        capture, car = capture_a
        for ecu in car.ecus:
            for actuator in ecu.actuators.values():
                assert actuator.adjustments(), f"{actuator.name} never actuated"

    def test_tool_error_rate_recorded(self, capture_a):
        capture, __ = capture_a
        assert capture.tool_error_rate == pytest.approx(0.15)  # LAUNCH X431

    def test_video_between(self, capture_a):
        capture, __ = capture_a
        segment = next(s for s in capture.segments if s.kind == "live")
        frames = capture.video_between(segment.t_start, segment.t_end)
        assert frames
        assert all(segment.t_start <= f.timestamp < segment.t_end for f in frames)


class TestCameraOffset:
    def test_offset_shifts_video_timestamps(self):
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        collector = DataCollector(tool, read_duration_s=5.0, camera_offset_s=3.0)
        capture = collector.collect()
        assert capture.camera_offset_s == 3.0
        segment = next(s for s in capture.segments if s.kind == "live")
        live = [
            f
            for f in capture.video
            if f.screen_name == "live"
            and segment.t_start <= f.timestamp - 3.0 < segment.t_end
        ]
        # Frames are stamped 3 s ahead of the CAN/sniffer clock.
        assert live
        assert min(f.timestamp for f in live) >= segment.t_start + 2.5
