"""Tests for the widget/screen UI model."""

from repro.tools.ui import Screen, ScreenBuilder, Widget, WidgetKind


class TestWidget:
    def test_center_and_contains(self):
        widget = Widget(WidgetKind.BUTTON, "OK", x=10, y=20, width=100, height=40)
        cx, cy = widget.center
        assert widget.contains(cx, cy)
        assert not widget.contains(9, 20)
        assert not widget.contains(110, 20)

    def test_tappable(self):
        assert Widget(WidgetKind.BUTTON, "B", 0, 0).tappable
        assert Widget(WidgetKind.ICON_BUTTON, "", 0, 0).tappable
        assert not Widget(WidgetKind.LABEL, "L", 0, 0).tappable
        assert not Widget(WidgetKind.VALUE, "1.0", 0, 0).tappable


class TestScreen:
    def test_widget_at_finds_topmost_tappable(self):
        screen = Screen("s", "title")
        label = screen.add(Widget(WidgetKind.LABEL, "L", 0, 0, 200, 200))
        button = screen.add(Widget(WidgetKind.BUTTON, "B", 50, 50, 40, 40))
        assert screen.widget_at(60, 60) is button
        assert screen.widget_at(10, 10) is None  # label is not tappable

    def test_find_by_text(self):
        screen = Screen("s", "t")
        widget = screen.add(Widget(WidgetKind.BUTTON, "Start", 0, 0))
        assert screen.find("Start") is widget
        assert screen.find("Missing") is None

    def test_buttons_and_labels_partition(self):
        screen = Screen("s", "t")
        screen.add(Widget(WidgetKind.BUTTON, "B", 0, 0))
        screen.add(Widget(WidgetKind.LABEL, "L", 0, 50))
        assert len(screen.buttons()) == 1
        assert len(screen.labels()) == 1


class TestScreenBuilder:
    def test_title_is_first_label(self):
        builder = ScreenBuilder("s", "My Title")
        assert builder.screen.widgets[0].text == "My Title"

    def test_rows_do_not_overlap(self):
        builder = ScreenBuilder("s", "t")
        first = builder.add_row(WidgetKind.BUTTON, "A")
        second = builder.add_row(WidgetKind.BUTTON, "B")
        assert second.y >= first.y + first.height

    def test_add_pair_aligns_value_with_label(self):
        builder = ScreenBuilder("s", "t")
        label, value = builder.add_pair("Engine Speed", "800 rpm")
        assert label.y == value.y
        assert value.x > label.x
        assert value.kind == WidgetKind.VALUE
