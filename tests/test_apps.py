"""Tests for the telematics-app analysis stack (IR, taint, Alg. 1)."""

import random

import pytest

from repro.apps import (
    App,
    AssignStmt,
    BinopExpr,
    DoubleConst,
    FormulaExtractor,
    FormulaSpec,
    InvokeExpr,
    Local,
    Method,
    ReturnStmt,
    analyze_corpus,
    build_corpus,
    make_complex_app,
    make_dtc_app,
    make_formula_app,
    obd2_spec_pool,
    taint_method,
)
from repro.apps.appgen import RESULT_API
from repro.apps.taint import control_dependencies, data_dependencies


def simple_app():
    """One formula block: Y = v0 * 0.25 + 64 * v1 behind prefix 41 0C."""
    spec = FormulaSpec("41 0C", "affine2", (64.0, 0.25, 0.0))
    return make_formula_app("test-app", [spec])


class TestTaint:
    def test_source_taints_result(self):
        app = simple_app()
        method = app.methods[0]
        tainted, statements = taint_method(method)
        assert tainted  # the response local and everything derived
        assert statements

    def test_taint_propagates_through_string_ops(self):
        app = simple_app()
        method = app.methods[0]
        tainted, __ = taint_method(method)
        # split() results and parseInt() outputs must all be tainted.
        assert len(tainted) > 5

    def test_untainted_method_clean(self):
        method = Method("pure")
        method.statements = [
            AssignStmt(Local("$a"), BinopExpr("*", DoubleConst(2.0), DoubleConst(3.0))),
            ReturnStmt(),
        ]
        tainted, statements = taint_method(method)
        assert not tainted and not statements


class TestDependencies:
    def test_data_dependency_slice_reaches_parseint(self):
        app = simple_app()
        method = app.methods[0]
        extractor = FormulaExtractor()
        formulas = extractor.extract(app)
        assert formulas  # proves the slice reached the parseInt boundary

    def test_control_dependency_finds_guard(self):
        app = simple_app()
        method = app.methods[0]
        last_math = max(
            i
            for i, s in enumerate(method.statements)
            if isinstance(s, AssignStmt) and isinstance(s.expr, BinopExpr)
        )
        guards = control_dependencies(method, last_math)
        assert len(guards) == 1


class TestExtractor:
    def test_formula_expression(self):
        formulas = FormulaExtractor().extract(simple_app())
        assert len(formulas) == 1
        formula = formulas[0]
        assert "v0" in formula.expression and "v1" in formula.expression
        assert "64" in formula.expression and "0.25" in formula.expression

    def test_condition_recovered(self):
        formula = FormulaExtractor().extract(simple_app())[0]
        assert formula.condition == 'response.startsWith("41 0C")'
        assert formula.response_prefix == "41 0C"

    def test_protocol_classification(self):
        assert FormulaExtractor().extract(simple_app())[0].protocol == "OBD-II"
        uds_app = make_formula_app(
            "uds", [FormulaSpec("62 F4 0D", "affine1", (0.5, 0.0))]
        )
        assert FormulaExtractor().extract(uds_app)[0].protocol == "UDS"
        kwp_app = make_formula_app(
            "kwp", [FormulaSpec("61 07", "prod", (0.2,))]
        )
        assert FormulaExtractor().extract(kwp_app)[0].protocol == "KWP 2000"

    def test_one_formula_per_block(self):
        rng = random.Random(1)
        specs = obd2_spec_pool(rng, 17)
        app = make_formula_app("many", specs)
        assert len(FormulaExtractor().extract(app)) == 17

    def test_intermediate_math_not_double_counted(self):
        """Fig. 9: lines 11/13 feed line 14 — only line 14 is the formula."""
        spec = FormulaSpec("41 0C", "affine2", (64.0, 0.25, 0.0))
        app = make_formula_app("x", [spec])
        assert len(FormulaExtractor().extract(app)) == 1

    def test_complex_app_defeats_intraprocedural_taint(self):
        app = make_complex_app("hard", [FormulaSpec("41 0C", "affine1", (1.0, 0.0))])
        assert FormulaExtractor().extract(app) == []

    def test_dtc_app_has_no_formulas(self):
        assert FormulaExtractor().extract(make_dtc_app("dtc")) == []


class TestCorpus:
    @pytest.fixture(scope="class")
    def analysis(self):
        apps = build_corpus()
        return apps, analyze_corpus(apps)

    def test_one_hundred_sixty_apps(self, analysis):
        apps, __ = analysis
        assert len(apps) == 160

    def test_only_three_apps_with_uds_or_kwp(self, analysis):
        """Tab. 12 / Q6: exactly the Carly family."""
        __, result = analysis
        names = {
            n
            for n, counts in result.per_app.items()
            if counts.get("UDS") or counts.get("KWP 2000")
        }
        assert names == {"Carly for VAG", "Carly for Mercedes", "Carly for Toyota"}

    def test_carly_vag_counts(self, analysis):
        __, result = analysis
        assert result.per_app["Carly for VAG"] == {"UDS": 90, "KWP 2000": 137}

    def test_carly_mercedes_counts(self, analysis):
        __, result = analysis
        assert result.per_app["Carly for Mercedes"] == {"UDS": 1624, "KWP 2000": 468}

    def test_obd_app_counts(self, analysis):
        __, result = analysis
        assert result.per_app["ChevroSys Scan Free"] == {"OBD-II": 40}
        assert result.per_app["inCarDoc"] == {"OBD-II": 82}

    def test_complex_apps_yield_nothing(self, analysis):
        __, result = analysis
        for name, counts in result.per_app.items():
            if name.startswith("Complex"):
                assert counts == {}

    def test_determinism(self):
        a = analyze_corpus(build_corpus(seed=5))
        b = analyze_corpus(build_corpus(seed=5))
        assert a.per_app == b.per_app


class TestCanHunterExtraction:
    def test_requests_extracted_from_formula_app(self):
        from repro.apps import extract_requests, make_formula_app, FormulaSpec

        app = make_formula_app(
            "x",
            [
                FormulaSpec("41 0C", "affine1", (0.25, 0.0)),
                FormulaSpec("62 F4 0D", "affine1", (1.0, 0.0)),
            ],
        )
        requests = extract_requests(app)
        assert {r.message for r in requests} == {"01 0C", "22 F4 0D"}

    def test_request_protocol_classification(self):
        from repro.apps import extract_requests, make_formula_app, FormulaSpec

        app = make_formula_app(
            "x",
            [
                FormulaSpec("41 0C", "affine1", (1.0, 0.0)),
                FormulaSpec("62 F4 0D", "affine1", (1.0, 0.0)),
                FormulaSpec("61 07", "prod", (0.2,)),
            ],
        )
        protocols = {r.message: r.protocol for r in extract_requests(app)}
        assert protocols["01 0C"] == "OBD-II"
        assert protocols["22 F4 0D"] == "UDS"
        assert protocols["21 07"] == "KWP 2000"

    def test_duplicates_deduplicated(self):
        from repro.apps import extract_requests, make_formula_app, FormulaSpec

        specs = [FormulaSpec("41 0C", "affine1", (1.0, 0.0))] * 3
        assert len(extract_requests(make_formula_app("x", specs))) == 1

    def test_app_requests_cannot_reach_proprietary_esvs(self):
        """Q6: OBD-II-only apps read nothing from a KWP vehicle."""
        from repro.apps import build_corpus, compare_with_tool, extract_requests
        from repro.vehicle import build_car

        apps = build_corpus()
        obd_app = next(a for a in apps if a.name == "ChevroSys Scan Free")
        comparison = compare_with_tool(build_car("K"), extract_requests(obd_app))
        assert comparison.app_reachable_esvs == 0  # no proprietary reach
        assert comparison.app_obd_esvs >= 1  # "ordinary information" only
        assert comparison.tool_esvs == 41

    def test_carly_requests_do_reach_matching_protocol(self):
        """An app that *does* speak UDS can reach UDS DIDs it knows."""
        from repro.apps import compare_with_tool, extract_requests, make_formula_app, FormulaSpec
        from repro.vehicle import build_car

        car = build_car("D")
        engine_did = sorted(car.ecu("Engine").uds_data_points)[0]
        prefix = f"62 {engine_did >> 8:02X} {engine_did & 0xFF:02X}"
        app = make_formula_app("uds-app", [FormulaSpec(prefix, "affine1", (1.0, 0.0))])
        comparison = compare_with_tool(car, extract_requests(app))
        assert comparison.app_reachable_esvs >= 1
