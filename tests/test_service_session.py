"""The streaming invariant: frame-by-frame == batch, byte for byte.

The property the whole service rests on — streaming a capture through a
:class:`~repro.service.session.VehicleSession` one record at a time must
produce a :class:`~repro.core.reverser.ReverseReport` byte-identical to
``repro reverse`` on the same capture — checked for every transport
family (ISO-TP, VW TP 2.0, BMW, K-Line), with auto-detection, and under
the default noise profile.  Plus the K-Line event-decoder conformance to
the :class:`~repro.transport.base.TransportDecoder` API.
"""

import pytest

from repro.can import CanFrame, CanLog, FaultCounts, NoiseProfile, apply_noise
from repro.core import DPReverser, ReverserConfig
from repro.core.assembly import StreamAssembler, assemble_with_diagnostics
from repro.core.gp import GpConfig
from repro.cps import DataCollector
from repro.cps.collector import Capture
from repro.service import SessionError, VehicleSession
from repro.service.protocol import capture_to_wire
from repro.tools import make_tool_for_car
from repro.tools.kline_logger import KLineDiagnosticSession, build_kline_vehicle
from repro.transport.base import DecoderStats, EVENT_PAYLOAD
from repro.transport.kline import KLineEventDecoder, parse_capture
from repro.vehicle import build_car

GP = GpConfig(seed=2, generations=8, population_size=100)

#: One car per CAN transport family.
TRANSPORT_CARS = {"isotp": "A", "vwtp": "B", "bmw": "E"}


def make_reverser():
    return DPReverser(ReverserConfig(gp_config=GP))


@pytest.fixture(scope="module")
def captures():
    collected = {}
    for transport, key in TRANSPORT_CARS.items():
        car = build_car(key)
        tool = make_tool_for_car(key, car)
        collected[transport] = DataCollector(tool, read_duration_s=8.0).collect()
    return collected


@pytest.fixture(scope="module")
def batch_reports(captures):
    return {
        transport: make_reverser().reverse_engineer(capture).to_json()
        for transport, capture in captures.items()
    }


def stream_session(capture, transport="auto", kline_bytes=None, batch_size=0, **kwargs):
    """Feed a capture through a session the way the server would."""
    from repro.service.protocol import (
        click_from_wire,
        frame_from_wire,
        frames_from_batch,
        kline_byte_from_wire,
        segment_from_wire,
        video_from_wire,
    )

    session = None
    for message in capture_to_wire(
        capture, transport=transport, kline_bytes=kline_bytes, batch_size=batch_size
    ):
        kind = message["type"]
        if kind == "hello":
            session = VehicleSession(
                session_id=0,
                tenant="test",
                transport=message["transport"],
                meta=message["meta"],
                **kwargs,
            )
        elif kind == "frame":
            session.ingest_frame(frame_from_wire(message))
        elif kind == "frame-batch":
            session.ingest_frames(frames_from_batch(message))
        elif kind == "kbyte":
            session.ingest_kline_byte(kline_byte_from_wire(message))
        elif kind == "video":
            session.ingest_video(video_from_wire(message))
        elif kind == "click":
            session.ingest_click(click_from_wire(message))
        elif kind == "segment":
            session.ingest_segment(segment_from_wire(message))
    return session


class TestStreamAssemblerMatchesBatch:
    @pytest.mark.parametrize("transport", sorted(TRANSPORT_CARS))
    def test_messages_and_diagnostics_identical(self, captures, transport):
        frames = list(captures[transport].can_log)
        batch_messages, batch_diag = assemble_with_diagnostics(frames, transport)
        assembler = StreamAssembler(transport)
        for frame in frames:
            assembler.feed(frame)
        messages, diag = assembler.finish()
        assert messages == batch_messages
        assert diag.to_dict() == batch_diag.to_dict()

    @pytest.mark.parametrize("transport", sorted(TRANSPORT_CARS))
    def test_identical_under_default_noise(self, captures, transport):
        noisy = apply_noise(
            list(captures[transport].can_log),
            NoiseProfile.default(seed=7),
            FaultCounts(),
        )
        batch_messages, batch_diag = assemble_with_diagnostics(noisy, transport)
        assembler = StreamAssembler(transport)
        for frame in noisy:
            assembler.feed(frame)
        messages, diag = assembler.finish()
        assert messages == batch_messages
        assert diag.to_dict() == batch_diag.to_dict()

    @pytest.mark.parametrize("transport", ["isotp", "bmw"])
    @pytest.mark.parametrize("noisy", [False, True])
    def test_feed_chunk_identical_to_per_frame(self, captures, transport, noisy):
        frames = list(captures[transport].can_log)
        if noisy:
            frames = apply_noise(frames, NoiseProfile.default(seed=5), FaultCounts())
        per_frame = StreamAssembler(transport)
        for frame in frames:
            per_frame.feed(frame)
        chunked = StreamAssembler(transport)
        for start in range(0, len(frames), 113):
            chunked.feed_chunk(frames[start : start + 113])
        assert chunked.finish()[0] == per_frame.finish()[0]
        assert chunked.diagnostics.to_dict() == per_frame.diagnostics.to_dict()

    def test_feed_chunk_on_vwtp_falls_back_to_event_path(self, captures):
        frames = list(captures["vwtp"].can_log)
        per_frame = StreamAssembler("vwtp")
        for frame in frames:
            per_frame.feed(frame)
        chunked = StreamAssembler("vwtp")
        chunked.feed_chunk(frames)
        assert chunked.finish()[0] == per_frame.finish()[0]
        assert chunked.diagnostics.to_dict() == per_frame.diagnostics.to_dict()

    def test_finish_is_idempotent(self, captures):
        assembler = StreamAssembler("isotp")
        for frame in captures["isotp"].can_log:
            assembler.feed(frame)
        first = assembler.finish()
        second = assembler.finish()
        assert first[0] is second[0]
        assert first[1] is second[1]


class TestStreamedReportByteIdentity:
    @pytest.mark.parametrize("transport", sorted(TRANSPORT_CARS))
    def test_declared_transport(self, captures, batch_reports, transport):
        session = stream_session(captures[transport], transport=transport)
        report = session.finalize(make_reverser())
        assert report.to_json() == batch_reports[transport]

    @pytest.mark.parametrize("transport", sorted(TRANSPORT_CARS))
    def test_auto_detected_transport(self, captures, batch_reports, transport):
        session = stream_session(captures[transport], transport="auto")
        report = session.finalize(make_reverser())
        assert session.transport == transport
        assert report.to_json() == batch_reports[transport]

    def test_under_default_noise(self, captures):
        # Noise is applied to the frame stream *before* it reaches either
        # path (a lossy tap corrupts what both consumers see), so batch
        # analyses the noisy capture directly and the stream carries the
        # same noisy frames.
        clean = captures["isotp"]
        noisy_frames = apply_noise(
            list(clean.can_log), NoiseProfile.default(seed=11), FaultCounts()
        )
        noisy = Capture(
            model=clean.model,
            tool_name=clean.tool_name,
            can_log=CanLog(noisy_frames),
            video=clean.video,
            clicks=clean.clicks,
            segments=clean.segments,
            tool_error_rate=clean.tool_error_rate,
            camera_offset_s=clean.camera_offset_s,
        )
        batch = make_reverser().reverse_engineer(noisy).to_json()
        session = stream_session(noisy, transport="isotp")
        assert session.finalize(make_reverser()).to_json() == batch

    @pytest.mark.parametrize("transport", sorted(TRANSPORT_CARS))
    def test_batched_wire_declared_transport(
        self, captures, batch_reports, transport
    ):
        session = stream_session(
            captures[transport], transport=transport, batch_size=256
        )
        report = session.finalize(make_reverser())
        assert report.to_json() == batch_reports[transport]

    @pytest.mark.parametrize("transport", sorted(TRANSPORT_CARS))
    def test_batched_wire_auto_detected(self, captures, batch_reports, transport):
        session = stream_session(captures[transport], transport="auto", batch_size=64)
        report = session.finalize(make_reverser())
        assert session.transport == transport
        assert report.to_json() == batch_reports[transport]

    def test_batched_wire_under_noise(self, captures):
        clean = captures["isotp"]
        noisy_frames = apply_noise(
            list(clean.can_log), NoiseProfile.default(seed=11), FaultCounts()
        )
        noisy = Capture(
            model=clean.model,
            tool_name=clean.tool_name,
            can_log=CanLog(noisy_frames),
            video=clean.video,
            clicks=clean.clicks,
            segments=clean.segments,
            tool_error_rate=clean.tool_error_rate,
            camera_offset_s=clean.camera_offset_s,
        )
        batch = make_reverser().reverse_engineer(noisy).to_json()
        session = stream_session(noisy, transport="isotp", batch_size=128)
        assert session.finalize(make_reverser()).to_json() == batch

    def test_kline_declared_and_auto(self):
        vehicle = build_kline_vehicle()
        capture, messages = KLineDiagnosticSession(vehicle).collect(
            duration_per_ecu_s=10.0
        )
        reverser = make_reverser()
        batch = reverser.infer(
            reverser.analyze(capture, messages=messages)
        ).to_json()
        for transport in ("kline", "auto"):
            # batch_size=64 exercises the fourth transport with batching
            # enabled: K-Line bytes are never batched, so the wire (and
            # the report) must come out identical.
            for batch_size in (0, 64):
                session = stream_session(
                    capture,
                    transport=transport,
                    kline_bytes=vehicle.bus.capture,
                    batch_size=batch_size,
                )
                assert session.transport == "kline"
                assert session.finalize(make_reverser()).to_json() == batch


class TestKLineEventDecoder:
    def fed_decoder(self):
        vehicle = build_kline_vehicle()
        KLineDiagnosticSession(vehicle).collect(duration_per_ecu_s=10.0)
        decoder = KLineEventDecoder()
        payloads = []
        for byte in vehicle.bus.capture:
            for event in decoder.feed(CanFrame(0, bytes([byte.value]), byte.timestamp)):
                if event.kind == EVENT_PAYLOAD:
                    payloads.append(event.payload)
        return vehicle, decoder, payloads

    def test_payload_events_match_parse_capture(self):
        vehicle, decoder, payloads = self.fed_decoder()
        stats = DecoderStats()
        messages = parse_capture(vehicle.bus.capture, stats)
        assert payloads == [m.payload for m in messages if m.checksum_ok]
        decoder.finish()
        assert decoder.stats.to_dict() == stats.to_dict()

    def test_conforms_to_event_api(self):
        from repro.transport.base import TransportDecoder

        decoder = KLineEventDecoder()
        assert isinstance(decoder, TransportDecoder)
        assert decoder.KIND == "kline"
        assert decoder.stats.frames == 0


class TestSessionGuards:
    def test_mixing_can_and_kline_rejected(self):
        session = VehicleSession(0, transport="auto")
        session.ingest_frame(CanFrame(1, b"\x02\x01\x0c", 0.0))
        from repro.transport.kline import KLineByte

        with pytest.raises(SessionError, match="K-Line byte on a CAN"):
            session.ingest_kline_byte(KLineByte(0.1, 0x80))

    def test_ingest_after_finalize_rejected(self):
        session = VehicleSession(0, transport="isotp")
        session.ingest_frame(CanFrame(1, b"\x02\x01\x0c", 0.0))
        session.finalize(make_reverser())
        with pytest.raises(SessionError, match="already finished"):
            session.ingest_frame(CanFrame(1, b"\x02\x01\x0c", 0.1))

    def test_retention_bound_drops_and_counts(self):
        session = VehicleSession(0, transport="isotp", max_capture_frames=5)
        for i in range(9):
            session.ingest_frame(CanFrame(1, b"\x02\x01\x0c", float(i)))
        assert session.frames_received == 5
        assert session.frames_dropped == 4

    def test_batched_retention_bound_drops_and_counts(self):
        session = VehicleSession(0, transport="isotp", max_capture_frames=5)
        frames = [CanFrame(1, b"\x02\x01\x0c", float(i)) for i in range(9)]
        completed, dropped = session.ingest_frames(frames)
        assert (session.frames_received, session.frames_dropped) == (5, 4)
        assert dropped == 4
        assert completed == session.messages_assembled == 5

    def test_batched_counters_match_per_frame(self, captures):
        capture = captures["isotp"]
        per_frame = stream_session(capture, transport="auto")
        batched = stream_session(capture, transport="auto", batch_size=100)
        assert batched.status() == per_frame.status()

    def test_ingest_frames_after_finalize_rejected(self):
        session = VehicleSession(0, transport="isotp")
        session.finalize(make_reverser())
        with pytest.raises(SessionError, match="already finished"):
            session.ingest_frames([CanFrame(1, b"\x02\x01\x0c", 0.0)])

    def test_status_counts(self, captures):
        session = stream_session(captures["isotp"], transport="isotp")
        status = session.status()
        assert status["frames"] == len(captures["isotp"].can_log)
        assert status["messages"] == session.messages_assembled > 0

    def test_interim_snapshot_lists_esvs(self, captures):
        session = stream_session(captures["isotp"], transport="isotp")
        snapshot = session.interim_snapshot()
        assert snapshot["esvs"], "expected ESV observations mid-stream"
        for esv in snapshot["esvs"]:
            assert esv["observations"] > 0
            assert esv["protocol"]
