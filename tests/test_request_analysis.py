"""Tests for request-semantics matching (§3.4)."""

import math

import pytest

from repro.core.fields import EsvObservation
from repro.core.request_analysis import (
    change_time_score,
    correlation_score,
    match_semantics,
)
from repro.core.screenshot import UiSample, UiSeries


def obs_series(identifier, values, dt=0.5, protocol="uds", formula_type=0):
    out = []
    for i, value in enumerate(values):
        if isinstance(value, tuple):
            raw = bytes(value)
        else:
            raw = bytes([value & 0xFF])
        out.append(
            EsvObservation(protocol, identifier, raw, i * dt, formula_type=formula_type)
        )
    return out


def ui_series(label, values, dt=0.5, texts=None):
    samples = []
    for i, value in enumerate(values):
        text = texts[i] if texts else f"{value}"
        numeric = None if texts else float(value)
        samples.append(UiSample(i * dt, text, numeric))
    return UiSeries(label, samples)


class TestCorrelation:
    def test_perfect_linear_relation(self):
        raw = [10, 20, 30, 40, 50, 60]
        observations = obs_series("uds:F400", raw)
        series = ui_series("Speed", [2 * v + 5 for v in raw])
        assert correlation_score(observations, series) == pytest.approx(1.0)

    def test_unrelated_series_low(self):
        observations = obs_series("uds:F400", [10, 200, 15, 180, 20, 160, 25])
        series = ui_series("Noise", [5, 5, 5, 5.5, 5, 5, 5])
        assert correlation_score(observations, series) < 0.5

    def test_product_feature_captures_kwp(self):
        pairs = [(a, b) for a, b in zip([10, 40, 70, 100, 20, 90], [5, 80, 30, 120, 200, 60])]
        observations = obs_series("kwp:01/0", pairs, protocol="kwp")
        series = ui_series("Engine Speed", [0.2 * a * b for a, b in pairs])
        assert correlation_score(observations, series) > 0.95


class TestChangeTimes:
    def test_synchronised_flips_score_high(self):
        observations = obs_series("uds:0940", [0, 0, 1, 1, 0, 0, 1, 1])
        texts = ["Off", "Off", "On", "On", "Off", "Off", "On", "On"]
        series = ui_series("Door", [0] * 8, texts=texts)
        assert change_time_score(observations, series) == pytest.approx(1.0)

    def test_unrelated_flips_score_low(self):
        observations = obs_series("uds:0940", [0, 1, 0, 1, 0, 1, 0, 1], dt=1.0)
        texts = ["Off"] * 7 + ["On"]
        series = ui_series("Door", [0] * 8, dt=1.0, texts=texts)
        assert change_time_score(observations, series) < 0.5

    def test_no_changes_scores_zero(self):
        observations = obs_series("uds:0940", [1] * 6)
        series = ui_series("Door", [0] * 6, texts=["On"] * 6)
        assert change_time_score(observations, series) == 0.0


class TestMatching:
    def test_two_numeric_identifiers_assigned_correctly(self):
        raw_a = [10, 30, 50, 70, 90, 110]
        raw_b = [200, 150, 100, 80, 60, 40]
        grouped = {
            "uds:F400": obs_series("uds:F400", raw_a),
            "uds:F401": obs_series("uds:F401", raw_b),
        }
        series = {
            "Speed": ui_series("Speed", [v * 0.5 for v in raw_a]),
            "Pressure": ui_series("Pressure", [v * 3 for v in raw_b]),
        }
        matches = {m.identifier: m.label for m in match_semantics(grouped, series)}
        assert matches == {"uds:F400": "Speed", "uds:F401": "Pressure"}

    def test_enum_matched_by_change_times(self):
        grouped = {
            "uds:0940": obs_series("uds:0940", [0, 0, 1, 1, 0, 0, 1, 1]),
        }
        texts = ["Closed", "Closed", "Open", "Open", "Closed", "Closed", "Open", "Open"]
        series = {"Driver Door": ui_series("Driver Door", [0] * 8, texts=texts)}
        matches = match_semantics(grouped, series)
        assert matches[0].label == "Driver Door"
        assert matches[0].method == "change-times"

    def test_window_restricts_candidates(self):
        raw = [10, 20, 30, 40, 50, 60]
        grouped = {"uds:F400": obs_series("uds:F400", raw)}
        series = {"Speed": ui_series("Speed", raw)}
        matches = match_semantics(grouped, series, window=(100.0, 200.0))
        assert matches == []

    def test_identifier_matched_at_most_once(self):
        raw = [10, 20, 30, 40, 50, 60]
        grouped = {"uds:F400": obs_series("uds:F400", raw)}
        series = {
            "Label A": ui_series("Label A", raw),
            "Label B": ui_series("Label B", [v + 0.5 for v in raw]),
        }
        matches = match_semantics(grouped, series)
        assert len(matches) == 1
