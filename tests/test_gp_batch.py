"""Cross-ESV batched GP evaluation: the merged matrix pass and the
generator lock-step driver.

The invariant everything here defends: batching is an *execution policy*,
never a math change.  A merged (ΣP×N) pass answers each member request
with bit-exactly the floats the member's own (P×N) pass produces, the
lock-step :class:`BatchEvaluator` finishes every generator with the same
return value the serial :func:`drive` produces, and a full reverse run
with ``gp_batch``/the island backend emits a byte-identical report.
"""

import json

import numpy as np
import pytest

from repro.core import DPReverser, ReverserConfig
from repro.core.gp import GpConfig
from repro.core.gp.batch import BatchEvaluator, MaesRequest, batched_maes, drive

GP = GpConfig(seed=2, generations=8, population_size=100)

RNG = np.random.default_rng(11)


def request(rows, n, linear_scaling, mutate=None, seed=None):
    rng = np.random.default_rng(seed) if seed is not None else RNG
    F = rng.normal(size=(rows, n)) * 10.0
    y = rng.normal(size=n) * 5.0
    if mutate:
        mutate(F)
    return MaesRequest(F.copy(), y, linear_scaling)


def adversarial_requests(n, linear_scaling):
    """Same-shape requests covering the branches a merged pass must hit."""

    def nan_row(F):
        F[0, :] = np.nan

    def inf_cell(F):
        F[1, 2] = np.inf

    def constant_rows(F):
        F[2, :] = 7.25  # zero-variance: the a=0, b=y_mean branch

    return [
        request(5, n, linear_scaling),
        request(3, n, linear_scaling, mutate=nan_row),
        request(4, n, linear_scaling, mutate=inf_cell),
        request(6, n, linear_scaling, mutate=constant_rows),
    ]


class TestMergedPass:
    """One stacked batched_maes call == each request's own call, bitwise."""

    @pytest.mark.parametrize("linear_scaling", [False, True])
    @pytest.mark.parametrize("n", [6, 40])  # below / above the trim threshold
    def test_merged_equals_per_request(self, linear_scaling, n):
        requests = adversarial_requests(n, linear_scaling)
        merged = BatchEvaluator._merged_pass(requests)
        for req, rows in zip(requests, merged):
            alone = req.evaluate()
            assert alone.tobytes() == rows.tobytes()

    @pytest.mark.parametrize("linear_scaling", [False, True])
    def test_two_dimensional_target_matches_shared_vector(self, linear_scaling):
        req = request(8, 40, linear_scaling, seed=3)
        shared = batched_maes(req.matrix, req.y, linear_scaling)
        per_row = batched_maes(
            req.matrix, np.broadcast_to(req.y, req.matrix.shape).copy(), linear_scaling
        )
        assert shared.tobytes() == per_row.tobytes()

    def test_all_invalid_rows_go_inf(self):
        req = request(3, 12, True, mutate=lambda F: F.fill(np.nan))
        assert np.isinf(req.evaluate()).all()

    def test_group_key_separates_incompatible_requests(self):
        a = request(2, 10, True)
        b = request(2, 10, False)
        c = request(2, 11, True)
        assert a.group_key != b.group_key  # scaling changes the math
        assert a.group_key != c.group_key  # sample count changes the shape
        assert a.group_key == request(9, 10, True).group_key  # rows don't


def _steps(matrices, y, linear_scaling):
    """A minimal evaluation-step generator: yield requests, return answers."""
    answers = []
    for matrix in matrices:
        maes = yield MaesRequest(matrix, y, linear_scaling)
        answers.append(maes)
    return answers


class TestBatchEvaluator:
    def make_generators(self):
        gens, clones = [], []
        for seed, (n, scaling) in enumerate(
            [(20, True), (20, True), (20, False), (13, True), (20, True)]
        ):
            rng = np.random.default_rng(seed)
            matrices = [rng.normal(size=(4, n)) for __ in range(3)]
            y = rng.normal(size=n)
            gens.append(_steps(matrices, y, scaling))
            clones.append(_steps([m.copy() for m in matrices], y.copy(), scaling))
        return gens, clones

    def test_lock_step_equals_serial_drive(self):
        gens, clones = self.make_generators()
        batched = BatchEvaluator().run(gens)
        serial = [drive(gen) for gen in clones]
        for batch_answers, serial_answers in zip(batched, serial):
            for b, s in zip(batch_answers, serial_answers):
                assert b.tobytes() == s.tobytes()

    def test_single_generator_is_the_serial_path(self):
        gens, clones = self.make_generators()
        (only,) = BatchEvaluator().run(gens[:1])
        for b, s in zip(only, drive(clones[0])):
            assert b.tobytes() == s.tobytes()

    def test_empty_and_instant_generators(self):
        def instant():
            return "done"
            yield  # pragma: no cover

        assert BatchEvaluator().run([]) == []
        assert BatchEvaluator().run([instant()]) == ["done"]


def car_capture(key="C"):
    from repro.cps import DataCollector
    from repro.tools import make_tool_for_car
    from repro.vehicle import build_car

    car = build_car(key)
    return DataCollector(make_tool_for_car(key, car), read_duration_s=8.0).collect()


def reverse_capture(capture, **kwargs):
    reverser = DPReverser(ReverserConfig(gp_config=GP, **kwargs))
    return json.dumps(reverser.reverse_engineer(capture).to_dict(), sort_keys=True)


@pytest.mark.slow
class TestBatchedBackendsByteIdentical:
    def test_batch_and_island_match_serial(self):
        capture = car_capture()
        serial = reverse_capture(capture)
        assert reverse_capture(capture, gp_batch=True) == serial
        assert (
            reverse_capture(capture, gp_backend="island", gp_workers=2) == serial
        )


class TestSharedPool:
    def test_pool_persists_across_calls(self):
        from repro.core.gp.islands import shared_pool

        assert shared_pool(2) is shared_pool(2)
        assert shared_pool(2) is not shared_pool(2, memo_dir="/tmp/other")

    def test_shutdown_forgets_cached_pools(self):
        from repro.core.gp.islands import shared_pool, shutdown_shared_pools

        first = shared_pool(2)
        shutdown_shared_pools()
        assert shared_pool(2) is not first


class TestJobSpecGpBatch:
    def test_gp_batch_excluded_from_job_id(self):
        from repro.runtime import JobSpec

        assert (
            JobSpec(car_key="C", gp_batch=True).job_id
            == JobSpec(car_key="C").job_id
        )

    def test_gp_batch_round_trips_and_defaults_off(self):
        from repro.runtime import JobSpec

        spec = JobSpec(car_key="C", gp_batch=True)
        assert JobSpec.from_dict(spec.to_dict()) == spec
        payload = JobSpec(car_key="C").to_dict()
        del payload["gp_batch"]
        assert JobSpec.from_dict(payload).gp_batch is False
