"""Tests for CAN capture logs."""

import pytest

from repro.can import CanFrame, CanLog


def frame(can_id, data, t):
    return CanFrame(can_id, data, timestamp=t)


class TestCanLog:
    def test_append_and_len(self):
        log = CanLog()
        log.append(frame(0x100, b"\x01", 1.0))
        log.append(frame(0x200, b"\x02", 2.0))
        assert len(log) == 2

    def test_out_of_order_rejected(self):
        log = CanLog()
        log.append(frame(0x100, b"", 2.0))
        with pytest.raises(ValueError):
            log.append(frame(0x100, b"", 1.0))

    def test_equal_timestamps_allowed(self):
        log = CanLog()
        log.append(frame(0x100, b"", 1.0))
        log.append(frame(0x200, b"", 1.0))
        assert len(log) == 2

    def test_between_is_half_open(self):
        log = CanLog([frame(0x1, b"", t) for t in (1.0, 2.0, 3.0)])
        window = log.between(1.0, 3.0)
        assert [f.timestamp for f in window] == [1.0, 2.0]

    def test_with_id(self):
        log = CanLog([frame(0x1, b"", 1.0), frame(0x2, b"", 2.0), frame(0x1, b"", 3.0)])
        assert len(log.with_id(0x1)) == 2

    def test_ids_first_seen_order(self):
        log = CanLog([frame(0x5, b"", 1.0), frame(0x2, b"", 2.0), frame(0x5, b"", 3.0)])
        assert log.ids() == [0x5, 0x2]

    def test_save_load_roundtrip(self, tmp_path):
        log = CanLog(
            [frame(0x7E0, b"\x02\x10\x03", 1.5), frame(0x7E8, b"\x06\x50\x03", 1.6)]
        )
        path = tmp_path / "capture.log"
        log.save(path)
        loaded = CanLog.load(path)
        assert list(loaded) == list(log)

    def test_empty_save_load(self, tmp_path):
        path = tmp_path / "empty.log"
        CanLog().save(path)
        assert len(CanLog.load(path)) == 0
