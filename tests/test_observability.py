"""The observability layer: tracing, metrics export, and the invariant
that observing the pipeline never changes what it computes.

Covers the PR's acceptance criteria directly:

* span nesting, attributes, and the disabled-tracer fast path (one shared
  null context object, zero spans recorded);
* Chrome-trace export validity (JSON round-trip, required event keys) and
  Prometheus text-format escaping;
* cross-process span transport — every GP backend (serial, thread,
  process) yields the same ``gp_formula`` span count;
* byte-identical :class:`~repro.core.reverser.ReverseReport` with tracing
  on vs off;
* the :class:`~repro.runtime.metrics.MetricsRegistry` counter/histogram
  name-collision guard.
"""

import json
import math

import pytest

from repro.core import DPReverser, ReverserConfig
from repro.core.gp import GpConfig
from repro.observability import (
    CHROME_EVENT_KEYS,
    NULL_TRACER,
    SPAN_KEYS,
    Tracer,
    activated,
    build_snapshot,
    escape_label_value,
    get_active,
    metric_name,
    profile_table,
    prometheus_text,
    snapshot_json,
)
from repro.observability.trace import _NULL_CONTEXT
from repro.runtime.metrics import MetricsRegistry

GP = GpConfig(seed=2, generations=8, population_size=100)


def car_capture(key="C", read_duration_s=8.0):
    from repro.cps import DataCollector
    from repro.tools import make_tool_for_car
    from repro.vehicle import build_car

    car = build_car(key)
    return DataCollector(
        make_tool_for_car(key, car), read_duration_s=read_duration_s
    ).collect()


# ------------------------------------------------------------------- tracer


class TestTracer:
    def test_span_nesting_and_attributes(self):
        tracer = Tracer()
        with tracer.span("outer", car="A") as outer:
            with tracer.span("inner") as inner:
                inner.set(hits=3)
        assert [span.name for span in tracer.spans] == ["inner", "outer"]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.attrs == {"hits": 3}
        assert outer.attrs == {"car": "A"}
        assert inner.duration >= 0.0

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_disabled_tracer_shares_one_null_context(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", x=1)
        second = tracer.span("b")
        assert first is second is _NULL_CONTEXT
        with first as span:
            assert span.set(anything=True) is span
        assert tracer.spans == []
        assert NULL_TRACER.span("c") is _NULL_CONTEXT

    def test_span_records_have_required_keys(self):
        tracer = Tracer()
        with tracer.span("stage", n=1):
            pass
        (record,) = tracer.export_payload()
        assert tuple(record) == SPAN_KEYS

    def test_absorb_reallocates_ids_and_reparents(self):
        worker = Tracer()
        with worker.span("job"):
            with worker.span("gp_formula", esv="uds:F40D"):
                pass
        parent = Tracer()
        with parent.span("fleet_run") as root:
            absorbed = parent.absorb(
                worker.export_payload(), parent_id=root.span_id, tid=7
            )
        assert absorbed == 2
        by_name = parent.by_name()
        job = by_name["job"][0]
        formula = by_name["gp_formula"][0]
        assert job.parent_id == root.span_id
        assert formula.parent_id == job.span_id
        assert formula.tid == job.tid == 7
        assert formula.attrs == {"esv": "uds:F40D"}
        # Worker ids were re-allocated into the parent's id space.
        assert len({span.span_id for span in parent.spans}) == 3

    def test_absorb_into_disabled_tracer_is_a_noop(self):
        worker = Tracer()
        with worker.span("job"):
            pass
        assert NULL_TRACER.absorb(worker.export_payload()) == 0
        assert NULL_TRACER.spans == []

    def test_chrome_trace_round_trips_and_has_required_keys(self, tmp_path):
        tracer = Tracer()
        with tracer.span("assemble", transport="isotp"):
            with tracer.span("decode_stream", can_id="0x7e8"):
                pass
        chrome_path, jsonl_path = tracer.save(tmp_path)
        document = json.loads(chrome_path.read_text())
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            for key in CHROME_EVENT_KEYS:
                assert key in event
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        lines = jsonl_path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert set(record) == set(SPAN_KEYS)

    def test_active_tracer_scoping(self):
        tracer = Tracer()
        assert get_active() is NULL_TRACER
        with activated(tracer):
            assert get_active() is tracer
            with activated(NULL_TRACER):
                assert get_active() is NULL_TRACER
            assert get_active() is tracer
        assert get_active() is NULL_TRACER


# ------------------------------------------------------------------- export


class TestExport:
    def test_metric_name_mapping(self):
        assert metric_name("transport.errors") == "repro_transport_errors"
        assert metric_name("stage.gp-formula") == "repro_stage_gp_formula"
        assert metric_name("9lives", prefix="") == "_9lives"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_prometheus_text_escapes_span_labels(self):
        tracer = Tracer()
        with tracer.span('we"ird\nname'):
            pass
        text = prometheus_text(build_snapshot(tracer=tracer))
        assert 'repro_span_count{span="we\\"ird\\nname"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed").inc(3)
        histogram = registry.histogram("stage.assemble_seconds")
        histogram.extend([0.1, 0.2, 0.3])
        text = prometheus_text(build_snapshot(registry=registry))
        assert "# TYPE repro_jobs_completed counter" in text
        assert "repro_jobs_completed 3" in text
        assert "# TYPE repro_stage_assemble_seconds summary" in text
        assert "repro_stage_assemble_seconds_count 3" in text
        assert 'repro_stage_assemble_seconds{quantile="0.5"}' in text

    def test_format_value_handles_non_finite(self):
        from repro.observability.export import _format_value

        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(3) == "3"

    def test_snapshot_merges_all_sources(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed").inc()
        tracer = Tracer()
        with tracer.span("match"):
            pass
        snapshot = build_snapshot(
            registry=registry,
            memo_stats={"hits": 4, "misses": 1},
            tracer=tracer,
            extra_counters={"cars": 2},
        )
        assert snapshot["counters"]["jobs_completed"] == 1
        assert snapshot["counters"]["memo.hits"] == 4
        assert snapshot["counters"]["cars"] == 2
        assert snapshot["spans"]["match"]["count"] == 1
        # Canonical JSON is stable under re-serialisation.
        assert snapshot_json(snapshot) == snapshot_json(
            json.loads(snapshot_json(snapshot))
        )

    def test_snapshot_ignores_disabled_tracer_spans(self):
        snapshot = build_snapshot(tracer=NULL_TRACER)
        assert snapshot["spans"] == {}

    def test_snapshot_splits_anomaly_counters(self):
        from repro.core.assembly import assemble_with_diagnostics
        from repro.transport import DEFAULT_HARDENING, segment

        from repro.attacks import SessionStarvation

        frames = SessionStarvation(seed=1).apply(segment(bytes(range(48)), 0x7E0))
        __, diagnostics = assemble_with_diagnostics(
            frames, "isotp", hardening=DEFAULT_HARDENING
        )
        snapshot = build_snapshot(diagnostics=diagnostics)
        counters = snapshot["counters"]
        # Detection counters live under their own prefix...
        assert counters["transport.anomaly.suspected_starvation"] >= 1
        assert "transport.anomaly.fc_violations" in counters
        # ...and are not duplicated under the plain transport stats.
        assert "transport.suspected_starvation" not in counters
        assert counters["transport.payloads"] == 1

    def test_profile_table_lists_span_names(self):
        tracer = Tracer()
        with tracer.span("assemble"):
            pass
        table = profile_table(tracer)
        assert "assemble" in table
        assert "count" in table.splitlines()[0]
        assert "(no spans recorded)" in profile_table(Tracer())


# ------------------------------------------------------------------ metrics


class TestMetricsCollision:
    def test_counter_then_histogram_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("jobs_completed")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.histogram("jobs_completed")

    def test_histogram_then_counter_collision_raises(self):
        registry = MetricsRegistry()
        registry.histogram("stage.gp_seconds")
        with pytest.raises(ValueError, match="already registered as a histogram"):
            registry.counter("stage.gp_seconds")

    def test_same_type_re_registration_is_fine(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("y") is registry.histogram("y")


# ----------------------------------------------------- pipeline integration


@pytest.mark.slow
class TestPipelineTracing:
    def test_report_byte_identical_with_tracing_on_and_off(self):
        capture = car_capture()
        plain = DPReverser(ReverserConfig(gp_config=GP)).reverse_engineer(capture)
        tracer = Tracer()
        traced = DPReverser(
            ReverserConfig(gp_config=GP, trace=tracer)
        ).reverse_engineer(capture)
        assert json.dumps(traced.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )
        by_name = tracer.by_name()
        # The pipeline's stage taxonomy is present.
        for stage in ("assemble", "match", "infer_formulas", "gp_formula"):
            assert stage in by_name, f"missing {stage} spans"
        assert len(by_name["gp_formula"]) == len(traced.formula_esvs)

    def test_span_counts_equal_across_gp_backends(self):
        capture = car_capture()
        counts = {}
        reports = {}
        for backend, workers in (("serial", 1), ("thread", 4), ("process", 4)):
            tracer = Tracer()
            report = DPReverser(
                ReverserConfig(
                    gp_config=GP,
                    gp_backend=backend,
                    gp_workers=workers,
                    trace=tracer,
                )
            ).reverse_engineer(capture)
            by_name = tracer.by_name()
            counts[backend] = {
                name: len(group)
                for name, group in by_name.items()
                if name in ("gp_formula", "infer_formulas", "assemble")
            }
            reports[backend] = json.dumps(report.to_dict(), sort_keys=True)
        assert counts["serial"] == counts["thread"] == counts["process"]
        assert reports["serial"] == reports["thread"] == reports["process"]

    def test_fleet_digest_identical_with_tracing(self):
        from repro.runtime import Scheduler, SchedulerConfig, fleet_job_specs

        overrides = (("generations", 8), ("population_size", 100))
        plain_specs = fleet_job_specs(
            keys=["C"], read_duration_s=8.0, gp_overrides=overrides
        )
        traced_specs = fleet_job_specs(
            keys=["C"], read_duration_s=8.0, gp_overrides=overrides, trace=True
        )
        # Tracing does not change job identity.
        assert [s.job_id for s in traced_specs] == [s.job_id for s in plain_specs]
        plain = Scheduler(SchedulerConfig(pool="serial")).run(plain_specs)
        tracer = Tracer()
        scheduler = Scheduler(SchedulerConfig(pool="serial"), tracer=tracer)
        traced = scheduler.run(traced_specs)
        assert traced.results_digest() == plain.results_digest()
        by_name = tracer.by_name()
        assert len(by_name["fleet_run"]) == 1
        job = by_name["job"][0]
        stage_names = {span.name for span in tracer.children_of(job.span_id)}
        # Acceptance: at least five pipeline stages nested under each job.
        assert len(stage_names) >= 5
