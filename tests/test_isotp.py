"""Tests for ISO 15765-2 segmentation, reassembly and the bus endpoint."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can import CanFrame, SimulatedCanBus
from repro.simtime import SimClock
from repro.transport import (
    EVENT_ERROR,
    EVENT_PAYLOAD,
    EVENT_RESYNC,
    FlowControl,
    FlowStatus,
    IsoTpEndpoint,
    IsoTpReassembler,
    PciType,
    TransportError,
    classify_frames,
    pci_type,
    segment,
)


class TestSegmentation:
    def test_single_frame_for_short_payload(self):
        frames = segment(b"\x22\xf4\x00", 0x7E0)
        assert len(frames) == 1
        assert frames[0].data[0] == 0x03
        assert frames[0].data[1:4] == b"\x22\xf4\x00"

    def test_padding_to_eight_bytes(self):
        frames = segment(b"\x01", 0x7E0, padding=0xAA)
        assert len(frames[0].data) == 8
        assert frames[0].data[2:] == b"\xaa" * 6

    def test_no_padding_when_disabled(self):
        frames = segment(b"\x01", 0x7E0, padding=None)
        assert len(frames[0].data) == 2

    def test_multi_frame_structure(self):
        payload = bytes(range(20))
        frames = segment(payload, 0x7E0)
        assert pci_type(frames[0].data) == PciType.FIRST
        assert all(pci_type(f.data) == PciType.CONSECUTIVE for f in frames[1:])
        length = ((frames[0].data[0] & 0x0F) << 8) | frames[0].data[1]
        assert length == 20

    def test_sequence_numbers_wrap_mod_16(self):
        payload = bytes(130)  # 6 + 18*7 > needs seq wrap past 15
        frames = segment(payload, 0x7E0)
        sequences = [f.data[0] & 0x0F for f in frames[1:]]
        assert sequences[:15] == list(range(1, 16))
        assert sequences[15] == 0

    def test_empty_payload_rejected(self):
        with pytest.raises(TransportError):
            segment(b"", 0x7E0)

    def test_oversized_payload_rejected(self):
        with pytest.raises(TransportError):
            segment(bytes(0x1000), 0x7E0)

    def test_reduced_capacity_for_extended_addressing(self):
        frames = segment(bytes(7), 0x7E0, frame_capacity=7)
        # 7 bytes don't fit a 7-capacity SF (max 6): must be multi-frame.
        assert pci_type(frames[0].data) == PciType.FIRST
        assert all(len(f.data) <= 7 for f in frames)


class TestReassembly:
    def test_single_frame(self):
        reassembler = IsoTpReassembler()
        payload = reassembler.feed_payloads(
            CanFrame(0x7E0, b"\x02\x10\x03\x00\x00\x00\x00\x00")
        )
        assert payload == b"\x10\x03"

    def test_multi_frame_roundtrip(self):
        payload = bytes(range(50))
        reassembler = IsoTpReassembler()
        results = [reassembler.feed_payloads(f) for f in segment(payload, 0x7E0)]
        assert results[-1] == payload
        assert all(r is None for r in results[:-1])

    def test_feed_emits_payload_events(self):
        payload = bytes(range(50))
        reassembler = IsoTpReassembler()
        events = []
        for frame in segment(payload, 0x7E0):
            events.extend(reassembler.feed(frame))
        assert [e.kind for e in events] == [EVENT_PAYLOAD]
        assert events[0].payload == payload
        assert reassembler.stats.payloads == 1
        assert reassembler.stats.errors == 0

    def test_flow_control_ignored(self):
        reassembler = IsoTpReassembler()
        assert reassembler.feed(CanFrame(0x7E0, b"\x30\x00\x00")) == []

    def test_sequence_gap_strict_raises(self):
        frames = segment(bytes(30), 0x7E0)
        reassembler = IsoTpReassembler(strict=True)
        reassembler.feed_payloads(frames[0])
        with pytest.raises(TransportError):
            reassembler.feed_payloads(frames[2])  # skipped frames[1]

    def test_sequence_gap_lenient_resyncs(self):
        frames = segment(bytes(30), 0x7E0)
        reassembler = IsoTpReassembler(strict=False)
        reassembler.feed_payloads(frames[0])
        events = reassembler.feed(frames[2])
        assert [e.kind for e in events] == [EVENT_RESYNC]
        assert reassembler.stats.resyncs == 1
        assert reassembler.stats.messages_lost == 1
        # A fresh message still works afterwards.
        for frame in segment(b"\x01\x02", 0x7E0):
            result = reassembler.feed_payloads(frame)
        assert result == b"\x01\x02"

    def test_duplicate_consecutive_ignored(self):
        payload = bytes(range(30))
        frames = segment(payload, 0x7E0)
        reassembler = IsoTpReassembler(strict=False)
        result = None
        for frame in frames:
            result = reassembler.feed_payloads(frame)
            if frame is frames[1]:
                # Replay the frame we just consumed: error event, no reset.
                events = reassembler.feed(frame)
                assert [e.kind for e in events] == [EVENT_ERROR]
        assert result == payload

    def test_consecutive_without_first_strict_raises(self):
        reassembler = IsoTpReassembler(strict=True)
        with pytest.raises(TransportError):
            reassembler.feed_payloads(
                CanFrame(0x7E0, b"\x21\x01\x02\x03\x04\x05\x06\x07")
            )

    def test_zero_length_single_frame_rejected(self):
        reassembler = IsoTpReassembler()
        with pytest.raises(TransportError):
            reassembler.feed_payloads(CanFrame(0x7E0, b"\x00\x01"))

    def test_back_to_back_messages(self):
        reassembler = IsoTpReassembler()
        first = segment(bytes(range(10)), 0x7E0)
        second = segment(b"\xaa\xbb", 0x7E0)
        for frame in first:
            result = reassembler.feed_payloads(frame)
        assert result == bytes(range(10))
        for frame in second:
            result = reassembler.feed_payloads(frame)
        assert result == b"\xaa\xbb"


class TestFlowControlCodec:
    def test_roundtrip(self):
        control = FlowControl(FlowStatus.CONTINUE, block_size=4, st_min_ms=10)
        decoded = FlowControl.decode(control.encode())
        assert decoded == control

    def test_decode_rejects_non_fc(self):
        with pytest.raises(TransportError):
            FlowControl.decode(b"\x02\x10\x03")


class TestEndpoint:
    def make_pair(self):
        bus = SimulatedCanBus(SimClock())
        received = []
        server = IsoTpEndpoint(
            bus, "server", tx_id=0x7E8, rx_id=0x7E0,
            on_message=lambda p: server.send(b"\x50" + p),
        )
        client = IsoTpEndpoint(bus, "client", tx_id=0x7E0, rx_id=0x7E8)
        return bus, server, client

    def test_short_exchange(self):
        __, __, client = self.make_pair()
        client.send(b"\x10\x03")
        assert client.receive() == b"\x50\x10\x03"

    def test_long_message_with_flow_control(self):
        __, __, client = self.make_pair()
        payload = bytes(range(60))
        client.send(payload)
        response = client.receive()
        assert response == b"\x50" + payload

    def test_long_response_reassembled(self):
        bus = SimulatedCanBus(SimClock())
        big = bytes(range(100))
        server = IsoTpEndpoint(
            bus, "server", tx_id=0x7E8, rx_id=0x7E0,
            on_message=lambda p: server.send(big),
        )
        client = IsoTpEndpoint(bus, "client", tx_id=0x7E0, rx_id=0x7E8)
        client.send(b"\x22\x01\x02")
        assert client.receive() == big

    def test_receive_empty_returns_none(self):
        __, __, client = self.make_pair()
        assert client.receive() is None


class TestClassifyFrames:
    def test_counts(self):
        frames = segment(bytes(30), 0x7E0) + [CanFrame(0x7E8, b"\x30\x00\x00")]
        counts = classify_frames(frames)
        assert counts["first"] == 1
        assert counts["consecutive"] == len(frames) - 2
        assert counts["flow_control"] == 1


@settings(max_examples=60, deadline=None)
@given(payload=st.binary(min_size=1, max_size=500))
def test_segment_reassemble_roundtrip(payload):
    """Property: any payload survives segmentation + reassembly."""
    reassembler = IsoTpReassembler()
    result = None
    for frame in segment(payload, 0x7E0):
        result = reassembler.feed_payloads(frame)
    assert result == payload


@settings(max_examples=30, deadline=None)
@given(payload=st.binary(min_size=1, max_size=200), capacity=st.integers(7, 8))
def test_roundtrip_any_capacity(payload, capacity):
    """Property: roundtrip holds for both normal and extended capacity."""
    reassembler = IsoTpReassembler()
    result = None
    for frame in segment(payload, 0x700, frame_capacity=capacity):
        result = reassembler.feed_payloads(frame)
    assert result == payload
