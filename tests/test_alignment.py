"""Tests for message/screenshot time alignment (§9.4)."""

import pytest

from repro.core.alignment import (
    estimate_offset_via_obd,
    obd_ground_truth_values,
    shift_series,
)
from repro.core.fields import EsvObservation
from repro.core.screenshot import UiSample, UiSeries


def obd_observation(pid, data, t):
    return EsvObservation("obd2", f"obd2:{pid:02X}", data, t)


class TestGroundTruth:
    def test_metric_and_imperial_candidates(self):
        obs = obd_observation(0x0D, b"\x64", 1.0)  # 100 km/h
        values = obd_ground_truth_values(obs)
        assert 100.0 in values
        assert any(abs(v - 62.14) < 0.01 for v in values)

    def test_non_obd_rejected(self):
        with pytest.raises(ValueError):
            obd_ground_truth_values(EsvObservation("uds", "uds:F400", b"\x01", 0.0))

    def test_unknown_pid_empty(self):
        assert obd_ground_truth_values(obd_observation(0xEE, b"\x01", 0.0)) == []


class TestOffsetEstimation:
    def make_ui(self, values_at):
        samples = [UiSample(t, f"{v}", float(v)) for t, v in values_at]
        return {"Vehicle Speed": UiSeries("Vehicle Speed", samples)}

    def test_recovers_constant_offset(self):
        observations = [
            obd_observation(0x0D, bytes([speed]), t)
            for t, speed in [(1.0, 50), (2.0, 60), (3.0, 70)]
        ]
        # Camera clock runs 2.5 s ahead of the sniffer clock.
        ui = self.make_ui([(3.5, 50), (4.5, 60), (5.5, 70)])
        offset = estimate_offset_via_obd(observations, ui)
        assert offset == pytest.approx(2.5, abs=0.01)

    def test_no_anchor_returns_none(self):
        observations = [
            EsvObservation("uds", "uds:F400", b"\x01", 1.0)
        ]
        assert estimate_offset_via_obd(observations, self.make_ui([(1.0, 99)])) is None

    def test_no_matching_value_returns_none(self):
        observations = [obd_observation(0x0D, b"\x64", 1.0)]
        ui = self.make_ui([(1.2, 250)])  # 250 matches neither 100 nor 62.1
        assert estimate_offset_via_obd(observations, ui) is None


class TestShift:
    def test_shift_series(self):
        ui = {"X": UiSeries("X", [UiSample(10.0, "1", 1.0)])}
        shifted = shift_series(ui, 2.5)
        assert shifted["X"].samples[0].timestamp == 7.5
