"""Tests for the virtual cameras and the OCR error model."""

import pytest

from repro.cps import Camera, OcrEngine, VideoRecorder
from repro.simtime import SimClock, SkewedClock
from repro.tools.ui import Screen, ScreenBuilder, Widget, WidgetKind


def make_screen():
    builder = ScreenBuilder("live", "Engine - Data Stream")
    builder.add_pair("Engine Speed", "771.2 rpm")
    builder.add_pair("Coolant Temperature", "25.00 degC")
    builder.add_row(WidgetKind.BUTTON, "Back")
    builder.add_row(WidgetKind.ICON_BUTTON, "", icon="home")
    return builder.screen


class TestCamera:
    def test_capture_preserves_text_and_geometry(self):
        camera = Camera(SimClock(5.0))
        frame = camera.capture(make_screen())
        texts = frame.texts()
        assert "Engine Speed" in texts and "771.2 rpm" in texts
        assert frame.timestamp == 5.0

    def test_icon_buttons_captured_without_text(self):
        frame = Camera(SimClock()).capture(make_screen())
        icons = [r for r in frame.regions if r.kind == "icon_button"]
        assert len(icons) == 1 and icons[0].icon == "home"

    def test_skewed_clock_offsets_timestamps(self):
        base = SimClock(10.0)
        camera = Camera(SkewedClock(base, offset=2.5))
        assert Camera(base).capture(make_screen()).timestamp == 10.0
        assert camera.capture(make_screen()).timestamp == 12.5

    def test_video_recorder_accumulates(self):
        clock = SimClock()
        recorder = VideoRecorder(clock)
        screen = make_screen()
        recorder.record(screen)
        clock.advance(0.5)
        recorder.record(screen)
        assert len(recorder) == 2
        assert recorder.frames[1].timestamp > recorder.frames[0].timestamp


class TestOcrEngine:
    def test_zero_error_rate_is_faithful(self):
        camera = Camera(SimClock())
        ocr = OcrEngine(error_rate=0.0)
        frame = ocr.read_frame(camera.capture(make_screen()))
        assert not frame.corrupted
        assert "771.2 rpm" in frame.texts()

    def test_full_error_rate_corrupts_every_frame(self):
        camera = Camera(SimClock())
        ocr = OcrEngine(error_rate=1.0, seed=3)
        corrupted = 0
        for __ in range(20):
            frame = ocr.read_frame(camera.capture(make_screen()))
            corrupted += frame.corrupted
        assert corrupted >= 18  # corruption may no-op when text unchanged

    def test_observed_precision_tracks_error_rate(self):
        camera = Camera(SimClock())
        ocr = OcrEngine(error_rate=0.15, seed=5)
        for __ in range(500):
            ocr.read_frame(camera.capture(make_screen()))
        assert ocr.observed_precision == pytest.approx(0.85, abs=0.05)

    def test_corruption_prefers_value_regions(self):
        camera = Camera(SimClock())
        ocr = OcrEngine(error_rate=1.0, seed=11)
        frame = ocr.read_frame(camera.capture(make_screen()))
        if frame.corrupted:
            original = {r.text for r in camera.capture(make_screen()).regions}
            changed = [r for r in frame.regions if r.text not in original]
            assert all(r.kind == "value" for r in changed)

    def test_invalid_error_rate_rejected(self):
        with pytest.raises(ValueError):
            OcrEngine(error_rate=1.5)

    def test_deterministic_given_seed(self):
        camera = Camera(SimClock())
        frames = [camera.capture(make_screen()) for __ in range(10)]
        a = [f.texts() for f in OcrEngine(0.5, seed=9).read_video(frames)]
        b = [f.texts() for f in OcrEngine(0.5, seed=9).read_video(frames)]
        assert a == b

    def test_decimal_drop_error_class_reachable(self):
        """The §3.3 example: "25.00" can become "2500"."""
        camera = Camera(SimClock())
        seen = set()
        for seed in range(60):
            ocr = OcrEngine(error_rate=1.0, seed=seed)
            frame = ocr.read_frame(camera.capture(make_screen()))
            seen.update(frame.texts())
        assert any("2500" in text.replace(" ", "") for text in seen)
