"""Tests for the GP performance engine: compiled evaluation, fitness
caching, and the parallel per-ESV inference path.

The engine's contract is *exact* equivalence: compilation, caching and
parallelism are pure performance features, so every test here asserts
bit-identical results against the reference interpreter / serial path —
not approximate agreement.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gp import (
    DEFAULT_FUNCTION_NAMES,
    CompiledProgram,
    FitnessCache,
    GeneticProgrammer,
    GpConfig,
    Node,
    compile_tree,
    random_tree,
    tree_key,
)


def _random_columns(rng: random.Random, n_variables: int, n: int, special: bool):
    """Dataset columns, optionally salted with NaN/inf/zero specials."""
    columns = []
    for __ in range(n_variables):
        values = [rng.uniform(-50.0, 50.0) for __ in range(n)]
        if special:
            for value in (float("nan"), float("inf"), float("-inf"), 0.0, -0.0):
                values[rng.randrange(n)] = value
        columns.append(np.asarray(values, dtype=float))
    return columns


class TestCompiledEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10_000), special=st.booleans())
    def test_compiled_matches_recursive_bit_for_bit(self, seed, special):
        """Property: execute() ≡ Node.evaluate on random trees, including
        datasets containing NaN/±inf/±0.0 (the protected primitives see the
        same operands in the same order, so even the NaN payload bits
        agree — compared via tobytes)."""
        rng = random.Random(seed)
        tree = random_tree(rng, 3, DEFAULT_FUNCTION_NAMES, max_depth=5)
        columns = _random_columns(rng, 3, 17, special)
        program = compile_tree(tree)
        reference = tree.evaluate(columns)
        compiled = program.execute(columns)
        assert np.asarray(compiled).tobytes() == np.asarray(reference).tobytes()
        # A shared const cache must not change results either.
        cached = program.execute(columns, const_cache={})
        assert np.asarray(cached).tobytes() == np.asarray(reference).tobytes()

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_evaluate_point_matches_vectorised(self, seed):
        """The scalar fast path agrees with the array path per row."""
        rng = random.Random(seed)
        tree = random_tree(rng, 2, DEFAULT_FUNCTION_NAMES, max_depth=4)
        columns = _random_columns(rng, 2, 9, special=False)
        vectorised = tree.evaluate(columns)
        if np.isscalar(vectorised) or np.ndim(vectorised) == 0:
            vectorised = np.full_like(columns[0], float(vectorised))
        for row in range(9):
            xs = [float(column[row]) for column in columns]
            assert tree.evaluate_point(xs) == vectorised[row]

    def test_program_metadata_matches_tree(self):
        rng = random.Random(7)
        for __ in range(200):
            tree = random_tree(rng, 3, DEFAULT_FUNCTION_NAMES, max_depth=5)
            program = compile_tree(tree)
            assert isinstance(program, CompiledProgram)
            assert program.size == tree.size()
            assert program.depth == tree.depth()


class TestTreeKey:
    def test_key_stable_across_copies(self):
        tree = Node.call("add", Node.call("mul", Node.var(0), Node.const(2.5)), Node.var(1))
        assert tree_key(tree) == tree_key(tree.copy())

    def test_key_distinguishes_structure(self):
        a = Node.call("add", Node.var(0), Node.var(1))
        b = Node.call("add", Node.var(1), Node.var(0))
        c = Node.call("sub", Node.var(0), Node.var(1))
        d = Node.call("add", Node.var(0), Node.const(1.0))
        keys = {tree_key(t) for t in (a, b, c, d)}
        assert len(keys) == 4

    def test_key_injective_on_random_trees(self):
        """Distinct infix renderings imply distinct keys (spot check)."""
        rng = random.Random(13)
        by_key = {}
        for __ in range(1500):
            tree = random_tree(rng, 2, DEFAULT_FUNCTION_NAMES, max_depth=4)
            key = tree_key(tree)
            rendered = tree.to_infix()
            assert by_key.setdefault(key, rendered) == rendered

    def test_interned_instructions_are_shared(self):
        a = compile_tree(Node.call("add", Node.var(0), Node.const(3.25)))
        b = compile_tree(Node.call("add", Node.var(0), Node.const(3.25)))
        assert a.key == b.key
        assert all(left is right for left, right in zip(a.code, b.code))


class TestFitnessCache:
    def test_hit_miss_accounting(self):
        cache = FitnessCache()
        assert cache.get(("k",)) is None
        cache.put(("k",), 1.5)
        assert cache.get(("k",)) == 1.5
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5
        assert cache.stats()["entries"] == 1

    def test_epoch_eviction(self):
        cache = FitnessCache(max_entries=2)
        cache.put(("a",), 1.0)
        cache.put(("b",), 2.0)
        cache.put(("c",), 3.0)  # table full: epoch flush, then insert
        assert cache.evictions == 1
        assert len(cache) == 1
        assert cache.get(("c",)) == 3.0


class TestFitEquivalence:
    def dataset(self, seed=5, n=60):
        rng = random.Random(seed)
        xs = [(rng.uniform(1, 10), rng.uniform(1, 10)) for __ in range(n)]
        ys = [0.2 * x[0] * x[1] + 1.3 for x in xs]
        return xs, ys

    def fit(self, **overrides):
        xs, ys = self.dataset()
        return GeneticProgrammer(GpConfig(seed=9, **overrides)).fit(xs, ys)

    def test_compiled_and_cached_match_reference_interpreter(self):
        """Tentpole invariant: the full evolution is identical with the
        perf features on (default) and off — same expression, fitness and
        generation count at equal seeds."""
        fast = self.fit()  # compiled=True, fitness_cache=True defaults
        slow = self.fit(compiled=False, fitness_cache=False)
        assert fast.expression == slow.expression
        assert fast.fitness == slow.fitness
        assert fast.generations_run == slow.generations_run

    def test_each_feature_is_independently_neutral(self):
        reference = self.fit(compiled=False, fitness_cache=False)
        for overrides in ({"compiled": True, "fitness_cache": False},
                          {"compiled": False, "fitness_cache": True}):
            result = self.fit(**overrides)
            assert result.expression == reference.expression
            assert result.fitness == reference.fitness

    def test_cache_stats_reported(self):
        result = self.fit()
        assert result.cache_stats is not None
        assert result.cache_stats["hits"] > 0
        assert self.fit(fitness_cache=False).cache_stats is None

    def test_shared_cache_across_engines(self):
        xs, ys = self.dataset()
        cache = FitnessCache()
        GeneticProgrammer(GpConfig(seed=9), cache=cache).fit(xs, ys)
        hits_before = cache.hits
        repeat = GeneticProgrammer(GpConfig(seed=9), cache=cache).fit(xs, ys)
        assert cache.hits > hits_before  # second run reuses the first's work
        assert repeat.expression == self.fit().expression

    def test_subsample_mode_runs_and_converges(self):
        """Subsample-then-escalate is opt-in and approximate by design;
        assert it works, not that it matches the exact path."""
        result = self.fit(subsample_size=20)
        assert np.isfinite(result.fitness)
        assert result.fitness < 0.1


@pytest.mark.slow
class TestReverserParallelism:
    """Per-ESV thread fan-out must leave the report byte-identical."""

    GP = GpConfig(seed=2, generations=8, population_size=100)

    def capture(self):
        from repro.cps import DataCollector
        from repro.tools import make_tool_for_car
        from repro.vehicle import build_car

        car = build_car("C")
        return DataCollector(make_tool_for_car("C", car), read_duration_s=8.0).collect()

    def test_parallel_report_identical_and_timed(self):
        from repro.core import DPReverser, ReverserConfig

        capture = self.capture()
        serial_stages = []
        serial = DPReverser(
            ReverserConfig(
                gp_config=self.GP, stage_hook=lambda s, e: serial_stages.append(s)
            )
        ).reverse_engineer(capture)
        parallel_stages = []
        parallel = DPReverser(
            ReverserConfig(
                gp_config=self.GP,
                stage_hook=lambda s, e: parallel_stages.append(s),
                gp_workers=4,
            )
        ).reverse_engineer(capture)
        assert serial.to_dict() == parallel.to_dict()
        n_formulas = len(serial.formula_esvs)
        assert serial_stages.count("gp_formula") == n_formulas
        assert parallel_stages.count("gp_formula") == n_formulas

    def test_gp_workers_validation(self):
        from repro.core import DPReverser, ReverserConfig

        with pytest.raises(ValueError):
            DPReverser(ReverserConfig(gp_workers=0))


@pytest.mark.slow
class TestFleetDigest:
    """Fleet-level invariants of the perf features."""

    GP = (("generations", 8), ("population_size", 100))

    def test_gp_workers_leaves_results_digest_unchanged(self):
        from repro.runtime import Scheduler, SchedulerConfig, fleet_job_specs

        serial = Scheduler(SchedulerConfig()).run(
            fleet_job_specs(["C"], read_duration_s=8.0, gp_overrides=self.GP)
        )
        threaded = Scheduler(SchedulerConfig()).run(
            fleet_job_specs(
                ["C"], read_duration_s=8.0, gp_overrides=self.GP, gp_workers=4
            )
        )
        # gp_workers is excluded from the job id, so the digests are
        # directly comparable — and must be equal.
        assert serial.results_digest() == threaded.results_digest()
        hists = threaded.metrics["histograms"]
        assert hists["stage.gp_formula_call_seconds"]["count"] > 1

    def test_interpreter_fallback_matches_compiled_payload(self):
        from repro.runtime import Scheduler, SchedulerConfig, fleet_job_specs

        def payload_without_id(report):
            rows = []
            for result in report.results:
                row = result.deterministic_payload()
                row.pop("job_id")  # differs only because gp_overrides differ
                rows.append(row)
            return rows

        compiled = Scheduler(SchedulerConfig()).run(
            fleet_job_specs(["C"], read_duration_s=8.0, gp_overrides=self.GP)
        )
        interpreted = Scheduler(SchedulerConfig()).run(
            fleet_job_specs(
                ["C"],
                read_duration_s=8.0,
                gp_overrides=self.GP + (("compiled", False), ("fitness_cache", False)),
            )
        )
        assert payload_without_id(compiled) == payload_without_id(interpreted)
