"""Tests for ECR procedure extraction (§4.5)."""

from repro.core.ecr_analysis import attach_semantics, extract_procedures
from repro.core.fields import IoControlEvent
from repro.cps.collector import Segment


def event(param, t, state=b"", service=0x2F, identifier=0x0950, positive=True):
    return IoControlEvent(service, identifier, param, state, t, positive)


class TestExtraction:
    def test_complete_procedure(self):
        events = [
            event(0x02, 1.0),
            event(0x03, 2.0, b"\x05\x01\x00\x00"),
            event(0x00, 3.0),
        ]
        procedures = extract_procedures(events)
        assert len(procedures) == 1
        procedure = procedures[0]
        assert procedure.complete
        assert procedure.control_state == b"\x05\x01\x00\x00"
        assert (procedure.t_start, procedure.t_end) == (1.0, 3.0)

    def test_request_pattern_format(self):
        procedure = extract_procedures(
            [event(0x02, 1.0), event(0x03, 2.0, b"\x05\x01"), event(0x00, 3.0)]
        )[0]
        assert procedure.request_pattern == (
            "2F 09 50 02 | 2F 09 50 03 05 01 | 2F 09 50 00"
        )

    def test_kwp_pattern_format(self):
        procedure = extract_procedures(
            [
                event(0x02, 1.0, service=0x30, identifier=0x15),
                event(0x03, 2.0, b"\x00\x40", service=0x30, identifier=0x15),
                event(0x00, 3.0, service=0x30, identifier=0x15),
            ]
        )[0]
        assert procedure.request_pattern == "30 15 02 | 30 15 03 00 40 | 30 15 00"

    def test_negative_response_marks_incomplete(self):
        events = [
            event(0x02, 1.0),
            event(0x03, 2.0, b"\x01", positive=False),
            event(0x00, 3.0),
        ]
        assert not extract_procedures(events)[0].complete

    def test_missing_return_control_incomplete(self):
        events = [event(0x02, 1.0), event(0x03, 2.0, b"\x01")]
        assert not extract_procedures(events)[0].complete

    def test_multiple_targets_grouped(self):
        events = []
        for i, identifier in enumerate((0x0950, 0x0951)):
            base = i * 10.0
            events += [
                event(0x02, base + 1, identifier=identifier),
                event(0x03, base + 2, b"\x01", identifier=identifier),
                event(0x00, base + 3, identifier=identifier),
            ]
        procedures = extract_procedures(events)
        assert len(procedures) == 2
        assert {p.identifier for p in procedures} == {0x0950, 0x0951}

    def test_repeated_tests_of_same_actuator(self):
        events = []
        for base in (0.0, 10.0):
            events += [
                event(0x02, base + 1),
                event(0x03, base + 2, b"\x01"),
                event(0x00, base + 3),
            ]
        assert len(extract_procedures(events)) == 2


class TestSemantics:
    def test_label_from_segment_window(self):
        procedures = extract_procedures(
            [event(0x02, 5.0), event(0x03, 6.0, b"\x01"), event(0x00, 7.0)]
        )
        segments = [
            Segment("active_test", "Body Control", "Fog Light Left", 4.5, 8.0),
            Segment("live", "Engine", "Read Data Stream", 0.0, 4.0),
        ]
        attach_semantics(procedures, segments)
        assert procedures[0].label == "Fog Light Left"

    def test_no_matching_segment_leaves_empty(self):
        procedures = extract_procedures(
            [event(0x02, 50.0), event(0x03, 51.0, b"\x01"), event(0x00, 52.0)]
        )
        attach_semantics(procedures, [])
        assert procedures[0].label == ""
