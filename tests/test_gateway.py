"""Tests for the gateway-segmented vehicle topology."""

import pytest

from repro.can import CanFrame
from repro.diagnostics import uds
from repro.formulas import AffineFormula
from repro.vehicle import SimulatedEcu, UdsDataPoint
from repro.vehicle.gateway import GatewayVehicle
from repro.vehicle.signals import ConstantSignal, SineSignal


def make_gateway_car():
    vehicle = GatewayVehicle("GwCar")
    ecu = SimulatedEcu("Engine", vehicle.clock)
    ecu.add_data_point(
        UdsDataPoint(0xF400, "Engine Speed", [SineSignal(10, 250, 11.0)], AffineFormula(10.0))
    )
    vehicle.add_ecu(ecu, ecu_tx_id=0x7E8, ecu_rx_id=0x7E0)
    return vehicle, ecu


class TestGatewayForwarding:
    def test_diagnostic_round_trip_through_gateway(self):
        vehicle, __ = make_gateway_car()
        endpoint = vehicle.tester_endpoint("Engine")
        endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
        response = endpoint.receive()
        assert response is not None and response[0] == 0x62

    def test_sniffer_sees_diagnostic_frames(self):
        vehicle, __ = make_gateway_car()
        sniffer = vehicle.attach_sniffer()
        endpoint = vehicle.tester_endpoint("Engine")
        endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
        endpoint.receive()
        ids = set(sniffer.log.ids())
        assert 0x7E0 in ids and 0x7E8 in ids

    def test_internal_chatter_never_reaches_obd_port(self):
        vehicle, __ = make_gateway_car()
        sniffer = vehicle.attach_sniffer()
        for index in range(50):
            vehicle.broadcast_internal(CanFrame(0x280, bytes([index % 256] * 8)))
        assert 0x280 not in set(sniffer.log.ids())
        assert vehicle.gateway.dropped >= 50

    def test_gateway_adds_latency(self):
        vehicle, __ = make_gateway_car()
        direct = GatewayVehicle("Direct")
        # Compare to a request on a plain vehicle sharing frame timing.
        from repro.vehicle import Vehicle, TransportKind

        plain = Vehicle("Plain", transport=TransportKind.ISOTP)
        ecu = SimulatedEcu("Engine", plain.clock)
        ecu.add_data_point(
            UdsDataPoint(0xF400, "X", [ConstantSignal(5)], AffineFormula(1.0))
        )
        plain.add_ecu(ecu, 0x7E8, 0x7E0)

        def elapsed(vehicle_obj):
            endpoint = vehicle_obj.tester_endpoint("Engine")
            start = vehicle_obj.clock.now()
            endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
            endpoint.receive()
            return vehicle_obj.clock.now() - start

        assert elapsed(vehicle) > elapsed(plain)

    def test_forward_counters(self):
        vehicle, __ = make_gateway_car()
        endpoint = vehicle.tester_endpoint("Engine")
        endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
        endpoint.receive()
        assert vehicle.gateway.forwarded >= 2  # request + response


class TestGatewayPipeline:
    def test_reverse_engineering_through_gateway(self):
        """The pipeline's view from the OBD port is unchanged by the
        gateway, so everything still reverses."""
        from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
        from repro.core.fields import extract_fields
        from repro.core.assembly import assemble

        vehicle, ecu = make_gateway_car()
        sniffer = vehicle.attach_sniffer()
        endpoint = vehicle.tester_endpoint("Engine")
        for __ in range(30):
            endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
            endpoint.receive()
            vehicle.clock.advance(0.5)
        fields = extract_fields(assemble(list(sniffer.log)))
        assert len(fields.observations) == 30
        values = {o.as_int() for o in fields.observations}
        assert len(values) > 5  # live signal visible through the gateway


class TestGatewayFullPipeline:
    def test_collector_and_reverser_through_gateway(self):
        """The complete CPS loop works unchanged on a gateway topology."""
        from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
        from repro.cps import DataCollector
        from repro.formulas import AffineFormula, ProductFormula
        from repro.tools import TOOL_PROFILES
        from repro.tools.diagtool import DiagnosticTool
        from repro.vehicle import SimulatedEcu, UdsDataPoint
        from repro.vehicle.signals import RampSignal, SineSignal

        vehicle = GatewayVehicle("GwFull")
        engine = SimulatedEcu("Engine", vehicle.clock)
        engine.add_data_point(
            UdsDataPoint(
                0xF400, "Engine Speed", [SineSignal(10, 250, 11.0)],
                AffineFormula(32.0),
            )
        )
        engine.add_data_point(
            UdsDataPoint(
                0xF401, "Coolant Temperature", [RampSignal(40, 240, 23.0)],
                AffineFormula(0.75, -48.0),
            )
        )
        vehicle.add_ecu(engine, ecu_tx_id=0x7E8, ecu_rx_id=0x7E0)

        tool = DiagnosticTool(TOOL_PROFILES["AUTEL 919"], vehicle)
        tool.load_vehicle_database()
        tool._show_home()
        capture = DataCollector(tool, read_duration_s=25.0).collect()
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)

        assert len(report.formula_esvs) == 2
        truth = {
            "uds:F400": engine.uds_data_points[0xF400].formula,
            "uds:F401": engine.uds_data_points[0xF401].formula,
        }
        for esv in report.formula_esvs:
            assert check_formula(esv.formula, truth[esv.identifier], esv.samples)
        assert vehicle.gateway.forwarded > 100
