"""Tests for the simulated ECU: services, actuator FSM, security, routines."""

import pytest

from repro.diagnostics import Nrc, kwp2000, uds
from repro.formulas import AffineFormula
from repro.simtime import SimClock
from repro.vehicle.ecu import (
    Actuator,
    ActuatorState,
    KwpDataGroup,
    KwpMeasurement,
    Routine,
    SecurityAccessPolicy,
    SimulatedEcu,
    UdsDataPoint,
)
from repro.vehicle.signals import ConstantSignal, SineSignal


def make_ecu(ecr_service=uds.UdsService.IO_CONTROL_BY_IDENTIFIER, security=None):
    return SimulatedEcu("Engine", SimClock(), ecr_service=ecr_service, security=security)


def make_point(did=0xF400, value=100):
    return UdsDataPoint(
        did=did,
        name="Coolant Temperature",
        signals=[ConstantSignal(value)],
        formula=AffineFormula(1.0, -40.0),
    )


class TestReadDataByIdentifier:
    def test_positive_response(self):
        ecu = make_ecu()
        ecu.add_data_point(make_point())
        response = ecu.handle_request(b"\x22\xf4\x00")
        assert response == b"\x62\xf4\x00\x64"

    def test_multi_did(self):
        ecu = make_ecu()
        ecu.add_data_point(make_point(0xF400, 10))
        ecu.add_data_point(
            UdsDataPoint(0xF401, "Speed", [ConstantSignal(20)], AffineFormula(1.0))
        )
        response = ecu.handle_request(b"\x22\xf4\x00\xf4\x01")
        pairs = uds.decode_read_response([0xF400, 0xF401], response)
        assert pairs == [(0xF400, b"\x0a"), (0xF401, b"\x14")]

    def test_unknown_did_out_of_range(self):
        ecu = make_ecu()
        response = ecu.handle_request(b"\x22\xde\xad")
        assert response == bytes([0x7F, 0x22, Nrc.REQUEST_OUT_OF_RANGE])

    def test_two_byte_point_encoding(self):
        ecu = make_ecu()
        ecu.add_data_point(
            UdsDataPoint(
                0xF400, "RPM", [ConstantSignal(3000)], AffineFormula(1.0), bytes_per_var=2
            )
        )
        response = ecu.handle_request(b"\x22\xf4\x00")
        assert response == b"\x62\xf4\x00" + (3000).to_bytes(2, "big")

    def test_duplicate_did_rejected(self):
        ecu = make_ecu()
        ecu.add_data_point(make_point())
        with pytest.raises(ValueError):
            ecu.add_data_point(make_point())


class TestKwpRead:
    def test_measuring_block(self):
        ecu = make_ecu()
        group = KwpDataGroup(0x07, "Block 07")
        group.measurements = [
            KwpMeasurement("Engine Speed", 0x01, ConstantSignal(0xF1), ConstantSignal(0x10))
        ]
        ecu.add_kwp_group(group)
        response = ecu.handle_request(b"\x21\x07")
        local_id, records = kwp2000.decode_read_response(response)
        assert local_id == 0x07
        assert records[0].value() == pytest.approx(771.2)

    def test_unknown_local_id(self):
        ecu = make_ecu()
        response = ecu.handle_request(b"\x21\x99")
        assert response[0] == 0x7F


class TestSessionAndReset:
    def test_session_control(self):
        ecu = make_ecu()
        response = ecu.handle_request(b"\x10\x03")
        assert response[0] == 0x50
        assert ecu.session == uds.SessionType.EXTENDED

    def test_ecu_reset_counts_and_resets_session(self):
        ecu = make_ecu()
        ecu.handle_request(b"\x10\x03")
        response = ecu.handle_request(b"\x11\x01")
        assert response[0] == 0x51
        assert ecu.reset_count == 1
        assert ecu.session == uds.SessionType.DEFAULT

    def test_tester_present(self):
        ecu = make_ecu()
        assert ecu.handle_request(b"\x3e\x00")[0] == 0x7E

    def test_tester_present_suppressed(self):
        ecu = make_ecu()
        assert ecu.handle_request(b"\x3e\x80") is None

    def test_unsupported_service(self):
        ecu = make_ecu()
        response = ecu.handle_request(b"\x99")
        assert response == bytes([0x7F, 0x99, Nrc.SERVICE_NOT_SUPPORTED])


class TestActuatorFsm:
    def make_actuated_ecu(self):
        ecu = make_ecu()
        ecu.add_actuator(Actuator(0x0950, "Fog Light Left"))
        return ecu

    def test_full_procedure(self):
        """The paper's three-message procedure (§4.5)."""
        ecu = self.make_actuated_ecu()
        freeze = ecu.handle_request(b"\x2f\x09\x50\x02")
        adjust = ecu.handle_request(b"\x2f\x09\x50\x03\x05\x01\x00\x00")
        release = ecu.handle_request(b"\x2f\x09\x50\x00")
        assert freeze[0] == adjust[0] == release[0] == 0x6F
        actuator = ecu.actuators[0x0950]
        assert [a.action for a in actuator.actions] == ["freeze", "adjust", "return"]
        assert actuator.adjustments()[0].control_state == b"\x05\x01\x00\x00"
        assert actuator.state == ActuatorState.IDLE

    def test_adjust_without_freeze_rejected(self):
        ecu = self.make_actuated_ecu()
        response = ecu.handle_request(b"\x2f\x09\x50\x03\x05\x01")
        assert response == bytes([0x7F, 0x2F, Nrc.CONDITIONS_NOT_CORRECT])

    def test_unknown_actuator(self):
        ecu = self.make_actuated_ecu()
        response = ecu.handle_request(b"\x2f\x11\x11\x02")
        assert response == bytes([0x7F, 0x2F, Nrc.REQUEST_OUT_OF_RANGE])

    def test_kwp_service_30(self):
        ecu = make_ecu(ecr_service=kwp2000.KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER)
        ecu.add_actuator(Actuator(0x15, "Light"))
        freeze = ecu.handle_request(b"\x30\x15\x02")
        adjust = ecu.handle_request(b"\x30\x15\x03\x00\x40\x00")
        assert freeze[0] == adjust[0] == 0x70
        assert ecu.actuators[0x15].adjustments()[0].control_state == b"\x00\x40\x00"

    def test_wrong_service_rejected(self):
        """An ECU implementing 0x2F refuses 0x30 and vice versa."""
        ecu = self.make_actuated_ecu()
        response = ecu.handle_request(b"\x30\x15\x02")
        assert response == bytes([0x7F, 0x30, Nrc.SERVICE_NOT_SUPPORTED])


class TestSecurityAccess:
    def make_locked_ecu(self):
        security = SecurityAccessPolicy(mask=0x5A5A, required=True)
        ecu = make_ecu(security=security)
        ecu.add_actuator(Actuator(0x0950, "Lock"))
        return ecu

    def test_io_control_denied_when_locked(self):
        ecu = self.make_locked_ecu()
        response = ecu.handle_request(b"\x2f\x09\x50\x02")
        assert response == bytes([0x7F, 0x2F, Nrc.SECURITY_ACCESS_DENIED])

    def test_seed_key_unlock(self):
        ecu = self.make_locked_ecu()
        seed_response = ecu.handle_request(b"\x27\x01")
        assert seed_response[0] == 0x67
        seed = int.from_bytes(seed_response[2:4], "big")
        key = (seed ^ 0x5A5A) & 0xFFFF
        key_response = ecu.handle_request(b"\x27\x02" + key.to_bytes(2, "big"))
        assert key_response[0] == 0x67
        assert ecu.handle_request(b"\x2f\x09\x50\x02")[0] == 0x6F

    def test_wrong_key_rejected(self):
        ecu = self.make_locked_ecu()
        seed_response = ecu.handle_request(b"\x27\x01")
        seed = int.from_bytes(seed_response[2:4], "big")
        wrong = ((seed ^ 0x5A5A) + 1) & 0xFFFF
        response = ecu.handle_request(b"\x27\x02" + wrong.to_bytes(2, "big"))
        assert response == bytes([0x7F, 0x27, Nrc.INVALID_KEY])

    def test_seeds_change_between_requests(self):
        ecu = self.make_locked_ecu()
        seed1 = ecu.handle_request(b"\x27\x01")[2:4]
        seed2 = ecu.handle_request(b"\x27\x01")[2:4]
        assert seed1 != seed2


class TestRoutines:
    def test_start_routine_short_form(self):
        """BMW-style 1-byte routine ids (Tab. 13's "31 01 03")."""
        ecu = make_ecu()
        ecu.add_routine(Routine(0x03, "High Beam Test"))
        response = ecu.handle_request(b"\x31\x01\x03")
        assert response == b"\x71\x01\x03"
        assert ecu.routines[0x03].runs[0].action == "start"

    def test_start_routine_two_byte_id(self):
        ecu = make_ecu()
        ecu.add_routine(Routine(0x0203, "Test"))
        response = ecu.handle_request(b"\x31\x01\x02\x03")
        assert response[0] == 0x71
        assert ecu.routines[0x0203].runs

    def test_unknown_routine(self):
        ecu = make_ecu()
        response = ecu.handle_request(b"\x31\x01\x99")
        assert response == bytes([0x7F, 0x31, Nrc.REQUEST_OUT_OF_RANGE])


class TestDashboard:
    def test_dashboard_values(self):
        ecu = make_ecu()
        point = UdsDataPoint(
            0xF400, "Engine Speed", [ConstantSignal(100)], AffineFormula(10.0),
            on_dashboard=True,
        )
        ecu.add_data_point(point)
        ecu.add_data_point(
            UdsDataPoint(0xF401, "Hidden", [ConstantSignal(1)], AffineFormula(1.0))
        )
        assert ecu.dashboard_values(0.0) == {"Engine Speed": 1000.0}
