"""Tests for CAN frame primitives."""

import pytest

from repro.can import (
    CanFrame,
    InvalidFrameError,
    frame_from_candump,
    frame_to_candump,
)


class TestCanFrame:
    def test_basic_construction(self):
        frame = CanFrame(0x7E0, b"\x02\x10\x03")
        assert frame.can_id == 0x7E0
        assert frame.data == b"\x02\x10\x03"
        assert frame.dlc == 3

    def test_data_normalised_to_bytes(self):
        frame = CanFrame(0x100, bytearray([1, 2, 3]))
        assert isinstance(frame.data, bytes)

    def test_standard_id_upper_bound(self):
        CanFrame(0x7FF, b"")
        with pytest.raises(InvalidFrameError):
            CanFrame(0x800, b"")

    def test_extended_id_allows_29_bits(self):
        CanFrame(0x1FFFFFFF, b"", extended=True)
        with pytest.raises(InvalidFrameError):
            CanFrame(0x20000000, b"", extended=True)

    def test_negative_id_rejected(self):
        with pytest.raises(InvalidFrameError):
            CanFrame(-1, b"")

    def test_data_length_limit(self):
        CanFrame(0x100, bytes(8))
        with pytest.raises(InvalidFrameError):
            CanFrame(0x100, bytes(9))

    def test_priority_lower_id_wins(self):
        high = CanFrame(0x100, b"")
        low = CanFrame(0x700, b"")
        assert high.priority_beats(low)
        assert not low.priority_beats(high)

    def test_with_timestamp_preserves_fields(self):
        frame = CanFrame(0x123, b"\xab", extended=False, channel="can1")
        stamped = frame.with_timestamp(42.5)
        assert stamped.timestamp == 42.5
        assert stamped.can_id == frame.can_id
        assert stamped.data == frame.data
        assert stamped.channel == "can1"

    def test_hex_data(self):
        assert CanFrame(0x1, b"\x02\x10\x03").hex_data() == "02 10 03"

    def test_frames_are_immutable(self):
        frame = CanFrame(0x100, b"\x01")
        with pytest.raises(Exception):
            frame.can_id = 0x200


class TestCandumpFormat:
    def test_roundtrip(self):
        frame = CanFrame(0x7E8, b"\x03\x41\x0c\x1f", timestamp=1.5, channel="can0")
        line = frame_to_candump(frame)
        parsed = frame_from_candump(line)
        assert parsed == frame

    def test_extended_id_roundtrip(self):
        frame = CanFrame(0x18DAF110, b"\x01", timestamp=2.0, extended=True)
        parsed = frame_from_candump(frame_to_candump(frame))
        assert parsed.extended
        assert parsed.can_id == 0x18DAF110

    def test_empty_data(self):
        parsed = frame_from_candump("(1.000000) can0 123#")
        assert parsed.data == b""

    def test_malformed_line_raises(self):
        with pytest.raises(InvalidFrameError):
            frame_from_candump("not a candump line")

    def test_empty_line_raises(self):
        with pytest.raises(InvalidFrameError):
            frame_from_candump("   ")
