"""Tests for the genetic-programming engine: trees, evolution, folding."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gp import (
    DEFAULT_FUNCTION_NAMES,
    FUNCTION_SET,
    GeneticProgrammer,
    GpConfig,
    Node,
    fold_constants,
    pretty,
    random_tree,
)


class TestFunctionSet:
    def test_exactly_fourteen_functions(self):
        """§6: the prototype supports 14 kinds of functions."""
        assert len(FUNCTION_SET) == 14

    def test_paper_named_functions_present(self):
        for name in ("add", "sub", "mul", "div", "sqrt", "log", "abs", "neg", "max"):
            assert name in FUNCTION_SET

    def test_protected_division(self):
        div = FUNCTION_SET["div"].func
        assert div(np.array([1.0]), np.array([0.0]))[0] == 1.0
        assert div(np.array([6.0]), np.array([2.0]))[0] == 3.0

    def test_protected_sqrt_and_log(self):
        assert FUNCTION_SET["sqrt"].func(np.array([-4.0]))[0] == 2.0
        assert FUNCTION_SET["log"].func(np.array([0.0]))[0] == 0.0


class TestTree:
    def test_evaluate_point(self):
        tree = Node.call("add", Node.call("mul", Node.var(0), Node.const(2.0)), Node.const(1.0))
        assert tree.evaluate_point([3.0]) == 7.0

    def test_vectorised_evaluation(self):
        tree = Node.call("mul", Node.var(0), Node.var(1))
        columns = [np.array([1.0, 2.0]), np.array([10.0, 20.0])]
        assert list(tree.evaluate(columns)) == [10.0, 40.0]

    def test_size_and_depth(self):
        tree = Node.call("add", Node.var(0), Node.call("neg", Node.const(1.0)))
        assert tree.size() == 4
        assert tree.depth() == 3

    def test_copy_is_deep(self):
        tree = Node.call("add", Node.var(0), Node.const(1.0))
        clone = tree.copy()
        clone.children[1].constant = 99.0
        assert tree.children[1].constant == 1.0

    def test_variables_used(self):
        tree = Node.call("add", Node.var(0), Node.call("mul", Node.var(1), Node.var(1)))
        assert tree.variables_used() == {0, 1}

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            Node.call("add", Node.var(0))

    def test_random_tree_respects_depth(self):
        rng = random.Random(3)
        for __ in range(50):
            tree = random_tree(rng, 2, DEFAULT_FUNCTION_NAMES, max_depth=4)
            assert tree.depth() <= 4

    def test_infix_rendering(self):
        tree = Node.call("div", Node.var(0), Node.const(2.55))
        assert tree.to_infix() == "(X0 / 2.55)"


class TestFolding:
    def test_constant_subtree_folds(self):
        tree = Node.call("add", Node.const(2.0), Node.const(3.0))
        assert fold_constants(tree).constant == 5.0

    def test_identity_rules(self):
        x = Node.var(0)
        assert fold_constants(Node.call("mul", x, Node.const(1.0))).var_index == 0
        assert fold_constants(Node.call("add", Node.const(0.0), x)).var_index == 0
        assert fold_constants(Node.call("mul", x, Node.const(0.0))).constant == 0.0

    def test_pretty(self):
        tree = Node.call("mul", Node.const(0.2), Node.call("mul", Node.var(0), Node.var(1)))
        assert pretty(tree) == "Y = (0.2 * (X0 * X1))"


class TestEvolution:
    def fit(self, func, n_vars, n=60, seed=5, **config_kwargs):
        rng = random.Random(seed)
        xs = [tuple(rng.uniform(1, 10) for __ in range(n_vars)) for __ in range(n)]
        ys = [func(x) for x in xs]
        result = GeneticProgrammer(GpConfig(seed=seed, **config_kwargs)).fit(xs, ys)
        return result, xs, ys

    def test_linear_converges_immediately(self):
        result, xs, ys = self.fit(lambda x: 1.8 * x[0] - 4.0, 1)
        assert result.fitness < 1e-6

    def test_product_recovered(self):
        result, xs, ys = self.fit(lambda x: 0.2 * x[0] * x[1], 2)
        assert result.fitness < 1e-3

    def test_quadratic_recovered(self):
        result, xs, ys = self.fit(lambda x: 0.5 * x[0] ** 2, 1)
        assert result.fitness < 1e-3

    def test_shifted_product_recovered(self):
        result, __, __ = self.fit(lambda x: 0.1 * x[0] * (x[1] - 1.28), 2)
        assert result.fitness < 0.02

    def test_stops_on_threshold(self):
        result, *_ = self.fit(lambda x: x[0], 1)
        assert result.generations_run < 25  # converged before the budget

    def test_deterministic_given_seed(self):
        a, *_ = self.fit(lambda x: 3 * x[0] + 1, 1, seed=9)
        b, *_ = self.fit(lambda x: 3 * x[0] + 1, 1, seed=9)
        assert a.expression == b.expression

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            GeneticProgrammer().fit([], [])

    def test_trimmed_fitness_ignores_outliers(self):
        rng = random.Random(11)
        xs = [(rng.uniform(1, 10),) for __ in range(60)]
        ys = [2.0 * x[0] for x in xs]
        ys[7] *= 10  # one corrupted target
        result = GeneticProgrammer(GpConfig(seed=11)).fit(xs, ys)
        clean = [(x, y) for i, (x, y) in enumerate(zip(xs, ys)) if i != 7]
        errors = [abs(result.predict(x) - y) for x, y in clean]
        assert max(errors) < 0.5

    def test_predict_matches_tree(self):
        result, xs, ys = self.fit(lambda x: x[0] + 2, 1)
        assert result.predict((5.0,)) == pytest.approx(7.0, abs=0.01)
