"""Tests for the K-Line (ISO 14230) transport and diagnostic sessions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DPReverser, GpConfig, ReverserConfig, check_formula
from repro.simtime import SimClock
from repro.tools import KLineDiagnosticSession, build_kline_vehicle
from repro.transport import TransportError
from repro.transport.kline import (
    KLineBus,
    KLineEndpoint,
    KLineFrameParser,
    KLineTester,
    checksum,
    frame_message,
    parse_capture,
)


class TestFraming:
    def test_short_message_layout(self):
        framed = frame_message(b"\x21\x07", target=0x10, source=0xF1)
        assert framed[0] == 0x80 | 2  # format byte with length
        assert framed[1] == 0x10 and framed[2] == 0xF1
        assert framed[3:5] == b"\x21\x07"
        assert framed[5] == checksum(framed[:-1])

    def test_long_message_uses_length_byte(self):
        payload = bytes(range(100))
        framed = frame_message(payload, target=0x10, source=0xF1)
        assert framed[0] == 0x80  # no length in format byte
        assert framed[3] == 100

    def test_empty_payload_rejected(self):
        with pytest.raises(TransportError):
            frame_message(b"", 0x10, 0xF1)

    def test_oversized_payload_rejected(self):
        with pytest.raises(TransportError):
            frame_message(bytes(300), 0x10, 0xF1)


class TestParser:
    def feed_all(self, parser, data, t0=0.0):
        messages = []
        for index, value in enumerate(data):
            message = parser.feed(t0 + index * 0.001, value)
            if message is not None:
                messages.append(message)
        return messages

    def test_roundtrip(self):
        framed = frame_message(b"\x61\x07\x01\xf1\x10", 0xF1, 0x10)
        messages = self.feed_all(KLineFrameParser(), framed)
        assert len(messages) == 1
        assert messages[0].payload == b"\x61\x07\x01\xf1\x10"
        assert messages[0].checksum_ok

    def test_back_to_back_messages(self):
        data = frame_message(b"\x21\x07", 0x10, 0xF1) + frame_message(
            b"\x21\x08", 0x10, 0xF1
        )
        messages = self.feed_all(KLineFrameParser(), data)
        assert [m.payload for m in messages] == [b"\x21\x07", b"\x21\x08"]

    def test_corrupted_checksum_flagged(self):
        framed = bytearray(frame_message(b"\x21\x07", 0x10, 0xF1))
        framed[-1] ^= 0xFF
        messages = self.feed_all(KLineFrameParser(), bytes(framed))
        assert len(messages) == 1
        assert not messages[0].checksum_ok

    def test_resynchronises_after_garbage(self):
        garbage = b"\x00\x13\x22"  # no address-mode bit set
        data = garbage + frame_message(b"\x21\x07", 0x10, 0xF1)
        messages = self.feed_all(KLineFrameParser(), data)
        assert len(messages) == 1
        assert messages[0].payload == b"\x21\x07"

    def test_timestamps_span_message(self):
        framed = frame_message(b"\x21\x07", 0x10, 0xF1)
        messages = self.feed_all(KLineFrameParser(), framed, t0=5.0)
        assert messages[0].t_first == 5.0
        assert messages[0].t_last == pytest.approx(5.0 + (len(framed) - 1) * 0.001)


class TestBusAndEndpoints:
    def make_pair(self):
        bus = KLineBus(SimClock())
        ecu = KLineEndpoint(
            bus, "ecu", 0x10,
            on_message=lambda m: ecu.send(b"\x61" + m.payload[1:], target=m.source),
        )
        tester = KLineTester(bus)
        return bus, ecu, tester

    def test_fast_init(self):
        bus, ecu, tester = self.make_pair()
        assert tester.fast_init(0x10)
        assert ecu.communication_started
        assert bus.init_events  # the wake-up pulse was seen on the wire

    def test_request_response(self):
        __, __, tester = self.make_pair()
        tester.fast_init(0x10)
        assert tester.request(b"\x21\x07", 0x10) == b"\x61\x07"

    def test_byte_timing(self):
        bus, __, tester = self.make_pair()
        start = bus.clock.now()
        tester.send(b"\x21\x07", target=0x10)
        framed_length = len(frame_message(b"\x21\x07", 0x10, 0xF1))
        # plus the ECU's response bytes; at least the request's time passed
        assert bus.clock.now() - start >= framed_length * bus.byte_time_s

    def test_wrong_address_ignored(self):
        bus = KLineBus(SimClock())
        responses = []
        KLineEndpoint(bus, "ecu", 0x10, on_message=responses.append)
        tester = KLineTester(bus)
        tester.send(b"\x21\x07", target=0x99)
        assert responses == []

    def test_capture_contains_both_directions(self):
        bus, __, tester = self.make_pair()
        tester.fast_init(0x10)
        tester.request(b"\x21\x07", 0x10)
        messages = parse_capture(bus.capture)
        payload_heads = [m.payload[0] for m in messages]
        assert 0x21 in payload_heads and 0x61 in payload_heads


class TestKLineSession:
    def test_full_reverse_engineering(self):
        vehicle = build_kline_vehicle()
        session = KLineDiagnosticSession(vehicle)
        capture, messages = session.collect(duration_per_ecu_s=30.0)
        reverser = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2)))
        report = reverser.infer(reverser.analyze(capture, messages=messages))
        truth = {}
        for ecu in vehicle.ecus.values():
            for group in ecu.kwp_groups.values():
                for index, m in enumerate(group.measurements):
                    truth[f"kwp:{group.local_id:02X}/{index}"] = (m.name, m.formula)
        assert len(report.formula_esvs) == len(truth)
        for esv in report.formula_esvs:
            name, formula = truth[esv.identifier]
            assert name == esv.label
            assert check_formula(esv.formula, formula, esv.samples), name
        assert report.transport == "kline"


@settings(max_examples=50, deadline=None)
@given(
    payload=st.binary(min_size=1, max_size=200),
    target=st.integers(0, 255),
    source=st.integers(0, 255),
)
def test_kline_framing_roundtrip(payload, target, source):
    parser = KLineFrameParser()
    framed = frame_message(payload, target, source)
    message = None
    for index, value in enumerate(framed):
        message = parser.feed(index * 0.001, value) or message
    assert message is not None
    assert message.payload == payload
    assert message.target == target and message.source == source
    assert message.checksum_ok
