"""Vectorised capture decode (:func:`repro.core.assembly.bulk_assemble`).

The bulk path turns a whole capture into numpy arrays and decodes clean
single-frame streams without per-frame Python, replaying only the noisy
streams through the event-based reassemblers.  Its contract is strict
equivalence: identical messages *and* identical diagnostics to the event
path on any capture, which the fuzzer here checks on adversarial mixes of
valid traffic, malformed PCIs, truncations, sequence gaps and timestamp
ties.
"""

import random

import pytest

from repro.can import CanFrame
from repro.core import TRANSPORT_BMW, TRANSPORT_ISOTP, TRANSPORT_VWTP, screen
from repro.core.assembly import StreamAssembler, assemble_with_diagnostics, bulk_assemble
from repro.transport.arrays import HAVE_NUMPY, FrameArrays
from repro.transport import segment, segment_bmw

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="bulk decode needs numpy")


def event_assemble(frames, transport):
    """The per-frame reference path, bypassing the bulk dispatch."""
    assembler = StreamAssembler(transport)
    for frame in screen(frames, transport):
        assembler.feed(frame)
    return assembler.finish()


def assert_equivalent(frames, transport):
    bulk = bulk_assemble(frames, transport)
    assert bulk is not None
    messages, diagnostics = bulk
    ref_messages, ref_diagnostics = event_assemble(frames, transport)
    assert [
        (m.can_id, m.payload, m.t_first, m.t_last, m.n_frames, m.ecu_address)
        for m in messages
    ] == [
        (m.can_id, m.payload, m.t_first, m.t_last, m.n_frames, m.ecu_address)
        for m in ref_messages
    ]
    assert diagnostics.to_dict() == ref_diagnostics.to_dict()


def random_capture(rng, transport):
    """A noisy capture: valid SFs, multi-frame trains, malformed traffic."""
    frames = []
    ids = [0x700 + i for i in range(rng.randint(1, 5))]
    for can_id in ids:
        for __ in range(rng.randint(1, 12)):
            roll = rng.random()
            if transport == TRANSPORT_BMW:
                address = rng.randrange(256)
                if roll < 0.55:  # valid single frame
                    n = rng.randint(1, 6)
                    frames.extend(segment_bmw(bytes(rng.randrange(256) for __ in range(n)), can_id, address))
                elif roll < 0.75:  # multi-frame train (may be truncated below)
                    n = rng.randint(7, 30)
                    frames.extend(segment_bmw(bytes(rng.randrange(256) for __ in range(n)), can_id, address))
                else:  # malformed: bad PCI / short frame
                    frames.append(CanFrame(can_id, bytes([address, rng.randrange(256)])))
            else:
                if roll < 0.5:
                    n = rng.randint(1, 7)
                    frames.extend(segment(bytes(rng.randrange(256) for __ in range(n)), can_id))
                elif roll < 0.7:
                    n = rng.randint(8, 40)
                    frames.extend(segment(bytes(rng.randrange(256) for __ in range(n)), can_id))
                elif roll < 0.85:  # flow control / high-nibble junk
                    frames.append(CanFrame(can_id, bytes([0x30 | rng.randrange(3), 0, 0])))
                else:  # SF claiming more bytes than the frame carries
                    frames.append(CanFrame(can_id, bytes([0x07, 1, 2])))
    # Truncate some multi-frame trains and drop random frames (gaps).
    frames = [f for f in frames if rng.random() > 0.08]
    rng.shuffle(frames)
    # Timestamps: mostly increasing, with deliberate ties.
    t = 0.0
    stamped = []
    for frame in frames:
        if rng.random() > 0.15:
            t += rng.choice([0.001, 0.01, 0.5])
        stamped.append(frame.with_timestamp(t))
    return stamped


class TestFuzzEquivalence:
    @pytest.mark.parametrize("transport", [TRANSPORT_ISOTP, TRANSPORT_BMW])
    def test_bulk_matches_event_path_on_noisy_captures(self, transport):
        rng = random.Random(hash(transport) & 0xFFFF)
        for case in range(40):
            frames = random_capture(rng, transport)
            assert_equivalent(frames, transport)

    def test_clean_single_frame_capture(self):
        frames = [
            frame.with_timestamp(0.001 * i)
            for i, frame in enumerate(
                segment(b"\x22\xf4\x0d", 0x7E0) + segment(b"\x62\xf4\x0d\x50", 0x7E8)
            )
        ]
        assert_equivalent(frames, TRANSPORT_ISOTP)


class TestDispatch:
    def test_vwtp_not_vectorised(self):
        assert bulk_assemble([], TRANSPORT_VWTP) is None

    def test_empty_capture(self):
        messages, diagnostics = bulk_assemble([], TRANSPORT_ISOTP)
        assert messages == [] and diagnostics.messages == 0

    def test_tracing_takes_the_event_path(self):
        from repro.observability.trace import Tracer, activated

        frames = [f.with_timestamp(0.1) for f in segment(b"\x3e\x00", 0x7E0)]
        with activated(Tracer()) as tracer:
            messages, __ = assemble_with_diagnostics(frames, TRANSPORT_ISOTP)
        assert len(messages) == 1
        assert "decode" in {span.name for span in tracer.spans}

    def test_untraced_dispatch_uses_bulk(self, monkeypatch):
        from repro.core import assembly

        calls = []
        original = assembly.bulk_assemble

        def spy(frames, transport):
            calls.append(transport)
            return original(frames, transport)

        monkeypatch.setattr(assembly, "bulk_assemble", spy)
        frames = [f.with_timestamp(0.1) for f in segment(b"\x3e\x00", 0x7E0)]
        messages, __ = assembly.assemble_with_diagnostics(frames, TRANSPORT_ISOTP)
        assert len(messages) == 1
        assert calls == [TRANSPORT_ISOTP]


class TestFrameArrays:
    def test_payload_matrix_zero_padded_and_masked(self):
        import numpy as np

        frames = [
            CanFrame(0x10, b"\x12\x34", timestamp=1.0),
            CanFrame(0x11, b"", timestamp=2.0),
            CanFrame(0x12, bytes(range(8)), timestamp=3.0),
        ]
        arrays = FrameArrays.from_frames(frames)
        assert arrays.dlcs.tolist() == [2, 0, 8]
        assert arrays.payloads[0].tolist() == [0x12, 0x34, 0, 0, 0, 0, 0, 0]
        assert arrays.payloads[1].tolist() == [0] * 8
        assert np.array_equal(arrays.nibbles(0), [0x1, 0x0, 0x0])
