"""Tests for baseline regressors and formula verification."""

import random

import pytest

from repro.core.baselines import linear_regression, polynomial_fit
from repro.core.response_analysis import PairedDataset
from repro.core.verification import PrecisionRow, check_formula, precision_table
from repro.formulas import AffineFormula, ProductFormula, TwoVarAffineFormula


def dataset(func, n_vars, n=50, seed=3):
    rng = random.Random(seed)
    xs = [tuple(rng.uniform(0, 255) for __ in range(n_vars)) for __ in range(n)]
    return PairedDataset(xs, [func(x) for x in xs]), xs


class TestLinearRegression:
    def test_fits_linear_exactly(self):
        ds, xs = dataset(lambda x: 2.0 * x[0] - 40, 1)
        fit = linear_regression(ds)
        assert fit.fitness < 1e-8
        assert fit((100.0,)) == pytest.approx(160.0)

    def test_cannot_fit_product(self):
        """§4.4: linear regression fails on Y = X0*X1/5."""
        ds, __ = dataset(lambda x: 0.2 * x[0] * x[1], 2)
        fit = linear_regression(ds)
        assert fit.fitness > 100

    def test_too_few_samples(self):
        assert linear_regression(PairedDataset([(1.0,)], [1.0])) is None


class TestPolynomialFit:
    def test_fits_product_via_cross_term(self):
        ds, xs = dataset(lambda x: 0.2 * x[0] * x[1], 2)
        fit = polynomial_fit(ds)
        assert fit.fitness < 1e-6

    def test_fits_quadratic(self):
        ds, __ = dataset(lambda x: 0.01 * x[0] ** 2, 1)
        fit = polynomial_fit(ds)
        assert fit.fitness < 1e-6

    def test_description_lists_terms(self):
        ds, __ = dataset(lambda x: x[0] + 1, 1)
        fit = polynomial_fit(ds)
        assert fit.description.startswith("Y = ")


class TestCheckFormula:
    def test_accepts_equivalent(self):
        truth = AffineFormula(1.8, -40)
        candidate = AffineFormula(1.7, -22)
        samples = [(float(x),) for x in range(0xA0, 0xC1)]
        assert check_formula(candidate, truth, samples)

    def test_rejects_wrong(self):
        truth = AffineFormula(2.0)
        candidate = AffineFormula(3.0)
        assert not check_formula(candidate, truth, [(100.0,)])

    def test_adapts_single_int_candidate_to_byte_samples(self):
        """A candidate over the 16-bit integer vs per-byte samples."""
        truth = TwoVarAffineFormula(64.0, 0.25)  # == (256*X0+X1)/4
        candidate = AffineFormula(0.25)  # over the combined integer
        samples = [(10.0, 128.0), (20.0, 0.0), (5.0, 255.0)]
        assert check_formula(candidate, truth, samples)

    def test_adapts_truth_arity_for_two_byte_single_var(self):
        """Ground truth over a 16-bit X checked against per-byte samples."""
        truth = AffineFormula(0.25)
        candidate = AffineFormula(0.25)
        samples = [(10.0, 128.0)]
        assert check_formula(candidate, truth, samples)

    def test_constant_variable_simplification_accepted(self):
        """§4.3: when X0 is constant, a one-variable formula is correct."""
        truth = ProductFormula(0.01)  # Y = 0.01*X0*X1, X0 == 100 in traffic
        candidate = AffineFormula(1.0)  # Y = X1 ... but arity adaptation
        samples = [(100.0, float(x)) for x in (0, 50, 120, 255)]
        # candidate sees only X0=100 under truncation; build explicit lambda
        from repro.formulas import ExpressionFormula

        candidate = ExpressionFormula(lambda xs: xs[1] * 1.0, 2, "Y = X1")
        assert check_formula(candidate, truth, samples)

    def test_empty_samples_fail(self):
        assert not check_formula(AffineFormula(1), AffineFormula(1), [])


class TestPrecisionTable:
    def test_aggregation(self):
        rows = [PrecisionRow("Car A", 28, 28), PrecisionRow("Car B", 8, 7)]
        table = precision_table(rows)
        assert table["total"] == 36
        assert table["correct"] == 35
        assert table["precision"] == pytest.approx(35 / 36)
        assert rows[1].precision == pytest.approx(7 / 8)

    def test_empty(self):
        assert precision_table([])["precision"] == 0.0
