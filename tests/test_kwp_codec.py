"""Tests for the KWP 2000 codec and formula-type table."""

import pytest

from repro.diagnostics import DiagnosticError, kwp2000
from repro.formulas import EnumFormula


class TestFormulaTable:
    def test_paper_rpm_example(self):
        """§2.3.1: ESV "01 F1 10" -> type 0x01, X0=241, X1=16 -> 771.2."""
        formula = kwp2000.formula_for_type(0x01)
        assert formula((0xF1, 0x10)) == pytest.approx(771.2)

    def test_unknown_type_raises(self):
        with pytest.raises(DiagnosticError):
            kwp2000.formula_for_type(0xEE)

    def test_enum_types_flagged(self):
        assert 0x10 in kwp2000.ENUM_FORMULA_TYPES
        assert 0x25 in kwp2000.ENUM_FORMULA_TYPES
        assert 0x01 not in kwp2000.ENUM_FORMULA_TYPES

    def test_all_formulas_evaluate(self):
        for ftype, formula in kwp2000.KWP_FORMULA_TABLE.items():
            value = formula((100, 50))
            assert isinstance(value, (int, float))

    def test_percent_ratio_type_handles_zero(self):
        formula = kwp2000.formula_for_type(0x21)
        assert formula((0, 50)) == 5000.0  # X0 == 0 branch


class TestRequestCodec:
    def test_read_request(self):
        assert kwp2000.encode_read_by_local_id(0x07) == b"\x21\x07"

    def test_read_request_range(self):
        with pytest.raises(DiagnosticError):
            kwp2000.encode_read_by_local_id(0x100)

    def test_decode_read_request(self):
        assert kwp2000.decode_read_request(b"\x21\x07") == 0x07

    def test_io_control_local(self):
        # The paper's light example: "30 15 00 40 00".
        payload = kwp2000.encode_io_control_local(0x15, b"\x00\x40\x00")
        assert payload == b"\x30\x15\x00\x40\x00"

    def test_io_control_common_two_byte_id(self):
        payload = kwp2000.encode_io_control_common(0x0950, b"\x03")
        assert payload == b"\x2f\x09\x50\x03"

    def test_decode_io_control_both_services(self):
        ident, ecr = kwp2000.decode_io_control_request(b"\x30\x15\x03\x05")
        assert (ident, ecr) == (0x15, b"\x03\x05")
        ident, ecr = kwp2000.decode_io_control_request(b"\x2f\x09\x50\x03\x05")
        assert (ident, ecr) == (0x0950, b"\x03\x05")


class TestResponseCodec:
    def test_roundtrip(self):
        records = [(0x01, 0xF1, 0x10), (0x07, 0x64, 0x50)]
        payload = kwp2000.encode_read_response(0x02, records)
        local_id, decoded = kwp2000.decode_read_response(payload)
        assert local_id == 0x02
        assert [(r.formula_type, r.x0, r.x1) for r in decoded] == records
        assert [r.position for r in decoded] == [0, 1]

    def test_esv_value_uses_formula_table(self):
        payload = kwp2000.encode_read_response(0x02, [(0x01, 0xF1, 0x10)])
        __, records = kwp2000.decode_read_response(payload)
        assert records[0].value() == pytest.approx(771.2)

    def test_partial_record_rejected(self):
        with pytest.raises(DiagnosticError):
            kwp2000.decode_read_response(b"\x61\x02\x01\xf1")  # 2 of 3 bytes

    def test_negative_response_rejected(self):
        with pytest.raises(DiagnosticError):
            kwp2000.decode_read_response(b"\x7f\x21\x31")
