"""Tests for the fleet-run orchestration subsystem (repro.runtime)."""

import json
import time

import pytest

from repro.runtime import (
    CheckpointStore,
    EventLog,
    InjectedFault,
    JobResult,
    JobSpec,
    MetricsRegistry,
    RunReport,
    Scheduler,
    SchedulerConfig,
    fleet_job_specs,
    read_events,
    run_job,
)
from repro.simtime import SimClock


def ok_result(spec, **overrides):
    payload = dict(
        job_id=spec.job_id,
        car_key=spec.car_key,
        status="ok",
        esvs=[{"identifier": f"uds:{spec.car_key}", "correct": True}],
        n_formula_esvs=1,
        n_correct=1,
        stage_seconds={"collect": 0.1, "infer_formulas": 0.4},
        wall_seconds=0.5,
    )
    payload.update(overrides)
    return JobResult(**payload)


def fake_runner(spec):
    return ok_result(spec)


class FlakyRunner:
    """Raises :class:`InjectedFault` the first ``failures`` calls per job."""

    def __init__(self, failures):
        self.failures = dict(failures)  # job_id -> number of faults to inject
        self.calls = []

    def __call__(self, spec):
        self.calls.append(spec.job_id)
        if self.failures.get(spec.job_id, 0) > 0:
            self.failures[spec.job_id] -= 1
            raise InjectedFault(f"injected fault for {spec.job_id}")
        return ok_result(spec)


class TestJobSpec:
    def test_job_id_deterministic_and_distinct(self):
        spec = JobSpec("A", seed=2, read_duration_s=10.0)
        assert spec.job_id == JobSpec("A", seed=2, read_duration_s=10.0).job_id
        assert spec.job_id != JobSpec("A", seed=3, read_duration_s=10.0).job_id
        assert spec.job_id != JobSpec("B", seed=2, read_duration_s=10.0).job_id
        assert spec.job_id.startswith("car-a-")

    def test_gp_overrides_order_does_not_change_id(self):
        a = JobSpec("A", gp_overrides=(("generations", 8), ("population_size", 100)))
        b = JobSpec("A", gp_overrides=(("population_size", 100), ("generations", 8)))
        assert a.job_id == b.job_id

    def test_live_latency_excluded_from_id(self):
        assert JobSpec("A").job_id == JobSpec("A", live_latency_s=2.0).job_id

    def test_roundtrip(self):
        spec = JobSpec("K", seed=5, gp_overrides=(("generations", 8),))
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_fleet_job_specs_validates_keys(self):
        assert [s.car_key for s in fleet_job_specs(["a", "k"])] == ["A", "K"]
        assert len(fleet_job_specs()) == 18
        with pytest.raises(ValueError, match="unknown fleet keys"):
            fleet_job_specs(["Z"])


class TestJobResult:
    def test_deterministic_payload_excludes_telemetry(self):
        spec = JobSpec("A")
        payload = ok_result(spec, attempts=3).deterministic_payload()
        assert "attempts" not in payload
        assert "stage_seconds" not in payload
        assert "wall_seconds" not in payload

    def test_roundtrip(self):
        result = ok_result(JobSpec("A"), attempts=2)
        clone = JobResult.from_dict(result.to_dict())
        assert clone.deterministic_payload() == result.deterministic_payload()
        assert clone.attempts == 2


class TestRetries:
    @pytest.mark.parametrize("pool", ["serial", "thread"])
    def test_retry_after_injected_fault(self, pool):
        specs = [JobSpec("A"), JobSpec("B")]
        runner = FlakyRunner({specs[0].job_id: 2})
        sleeps = []
        scheduler = Scheduler(
            SchedulerConfig(pool=pool, workers=2, max_retries=2),
            runner=runner,
            sleep=sleeps.append,
        )
        report = scheduler.run(specs)
        by_key = {result.car_key: result for result in report.results}
        assert by_key["A"].ok and by_key["A"].attempts == 3
        assert by_key["B"].ok and by_key["B"].attempts == 1
        # Exponential backoff: base 0.5, factor 2.
        assert sleeps == [0.5, 1.0]

    def test_bounded_retries_then_failure(self):
        spec = JobSpec("A")
        runner = FlakyRunner({spec.job_id: 99})
        events = EventLog()
        scheduler = Scheduler(
            SchedulerConfig(max_retries=2), runner=runner, events=events, sleep=lambda s: None
        )
        report = scheduler.run([spec])
        (result,) = report.results
        assert result.status == "failed"
        assert result.attempts == 3
        assert "InjectedFault" in result.error
        assert runner.calls == [spec.job_id] * 3
        assert len(events.of_kind("job_attempt_failed")) == 3
        assert report.failed and not report.ok

    def test_failed_jobs_are_not_checkpointed(self, tmp_path):
        spec = JobSpec("A")
        checkpoint = CheckpointStore(tmp_path)
        scheduler = Scheduler(
            SchedulerConfig(max_retries=0),
            checkpoint=checkpoint,
            runner=FlakyRunner({spec.job_id: 99}),
        )
        scheduler.run([spec])
        assert checkpoint.completed_ids() == set()


class TestTimeouts:
    def test_timeout_cancels_slow_job(self):
        fast, slow = JobSpec("A"), JobSpec("B")

        def runner(spec):
            if spec.job_id == slow.job_id:
                time.sleep(0.5)
            return ok_result(spec)

        scheduler = Scheduler(
            SchedulerConfig(pool="thread", workers=2, max_retries=0, timeout_s=0.15),
            runner=runner,
        )
        report = scheduler.run([fast, slow])
        by_key = {result.car_key: result for result in report.results}
        assert by_key["A"].ok
        assert by_key["B"].status == "timeout"
        assert "timed out" in by_key["B"].error

    def test_timeout_not_checkpointed_and_retried_job_can_recover(self, tmp_path):
        spec = JobSpec("A")
        calls = []

        def runner(s):
            calls.append(1)
            if len(calls) == 1:
                time.sleep(0.5)  # first attempt hangs past the deadline
            return ok_result(s)

        checkpoint = CheckpointStore(tmp_path)
        scheduler = Scheduler(
            SchedulerConfig(pool="thread", workers=2, max_retries=1, timeout_s=0.15),
            checkpoint=checkpoint,
            runner=runner,
            sleep=lambda s: None,
        )
        report = scheduler.run([spec])
        (result,) = report.results
        assert result.ok and result.attempts == 2
        assert checkpoint.completed_ids() == {spec.job_id}


class TestResume:
    def test_resume_skips_completed_jobs(self, tmp_path):
        specs = [JobSpec("A"), JobSpec("B"), JobSpec("C")]
        checkpoint = CheckpointStore(tmp_path)
        first = Scheduler(SchedulerConfig(), checkpoint=checkpoint, runner=fake_runner)
        report1 = first.run(specs[:2])
        assert len(report1.ok) == 2 and not report1.skipped

        calls = []

        def recording_runner(spec):
            calls.append(spec.job_id)
            return fake_runner(spec)

        events = EventLog()
        second = Scheduler(
            SchedulerConfig(),
            checkpoint=CheckpointStore(tmp_path),
            runner=recording_runner,
            events=events,
        )
        report2 = second.run(specs)
        assert calls == [specs[2].job_id]  # only the unfinished car re-ran
        assert sorted(report2.skipped) == sorted(s.job_id for s in specs[:2])
        assert len(report2.ok) == 3
        assert {e["job_id"] for e in events.of_kind("job_skipped")} == set(report2.skipped)

    def test_changed_spec_does_not_resume(self, tmp_path):
        checkpoint = CheckpointStore(tmp_path)
        Scheduler(SchedulerConfig(), checkpoint=checkpoint, runner=fake_runner).run(
            [JobSpec("A", seed=2)]
        )
        calls = []

        def recording_runner(spec):
            calls.append(spec.job_id)
            return fake_runner(spec)

        report = Scheduler(
            SchedulerConfig(), checkpoint=CheckpointStore(tmp_path), runner=recording_runner
        ).run([JobSpec("A", seed=7)])
        assert calls  # different seed -> different job id -> re-runs
        assert not report.skipped

    def test_checkpoint_rejects_unknown_version(self, tmp_path):
        checkpoint = CheckpointStore(tmp_path)
        checkpoint.record(ok_result(JobSpec("A")))
        path = next(tmp_path.glob("job-*.json"))
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            CheckpointStore(tmp_path).load_all()

    def test_checkpoint_refuses_failed_results(self, tmp_path):
        checkpoint = CheckpointStore(tmp_path)
        bad = JobResult(job_id="x", car_key="A", status="failed")
        with pytest.raises(ValueError, match="refusing to checkpoint"):
            checkpoint.record(bad)


class TestEventsAndMetrics:
    def test_event_log_schema_and_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        clock = SimClock(100.0)
        with EventLog(path, clock=clock.perf) as events:
            scheduler = Scheduler(SchedulerConfig(), events=events, runner=fake_runner)
            scheduler.run([JobSpec("A")])
        records = read_events(path)
        kinds = [record["event"] for record in records]
        assert kinds[0] == "run_started" and kinds[-1] == "run_finished"
        assert "job_started" in kinds and "job_finished" in kinds
        for index, record in enumerate(records):
            assert record["seq"] == index
            assert record["t"] == 100.0  # deterministic: simulated clock

    def test_metrics_counters_and_histograms(self):
        metrics = MetricsRegistry()
        specs = [JobSpec("A"), JobSpec("B")]
        runner = FlakyRunner({specs[0].job_id: 1})
        Scheduler(
            SchedulerConfig(max_retries=1), metrics=metrics, runner=runner,
            sleep=lambda s: None,
        ).run(specs)
        snapshot = metrics.to_dict()
        assert snapshot["counters"]["jobs_completed"] == 2
        assert snapshot["counters"]["attempts_failed"] == 1
        assert snapshot["counters"]["jobs_retried"] == 1
        assert snapshot["histograms"]["job_wall_seconds"]["count"] == 2
        assert snapshot["histograms"]["stage.collect_seconds"]["count"] == 2

    def test_histogram_percentiles(self):
        from repro.runtime import Histogram

        histogram = Histogram("x")
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(100) == 4.0
        assert histogram.mean == 2.5


class TestRunReport:
    def test_digest_ignores_telemetry_and_order(self):
        specs = [JobSpec("A"), JobSpec("B")]
        fast = RunReport([ok_result(specs[0]), ok_result(specs[1])])
        slow = RunReport(
            [
                ok_result(specs[1], attempts=3, wall_seconds=9.0),
                ok_result(specs[0], stage_seconds={"collect": 5.0}),
            ]
        )
        assert fast.results_digest() == slow.results_digest()

    def test_digest_sees_payload_changes(self):
        spec = JobSpec("A")
        base = RunReport([ok_result(spec)])
        changed = RunReport([ok_result(spec, n_correct=0)])
        assert base.results_digest() != changed.results_digest()

    def test_save_roundtrip(self, tmp_path):
        report = RunReport([ok_result(JobSpec("A"))], pool="thread", workers=2)
        path = report.save(tmp_path / "run_report.json")
        payload = json.loads(path.read_text())
        assert payload["results_digest"] == report.results_digest()
        assert payload["totals"]["n_ok"] == 1


class TestSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(pool="fork")
        with pytest.raises(ValueError):
            SchedulerConfig(workers=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_retries=-1)

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Scheduler(SchedulerConfig(), runner=fake_runner).run([JobSpec("A"), JobSpec("A")])


@pytest.mark.slow
class TestEquivalence:
    """Serial and parallel sweeps must be byte-identical (real pipeline)."""

    KEYS = ["B", "C", "E", "P"]  # a small 4-car fleet
    GP = (("generations", 8), ("population_size", 100))

    def specs(self):
        return fleet_job_specs(self.KEYS, read_duration_s=8.0, gp_overrides=self.GP)

    def test_serial_equals_parallel_on_four_car_fleet(self):
        serial = Scheduler(SchedulerConfig(pool="serial")).run(self.specs())
        parallel = Scheduler(SchedulerConfig(pool="process", workers=4)).run(self.specs())
        assert len(serial.ok) == len(parallel.ok) == 4
        assert serial.results_digest() == parallel.results_digest()
        for left, right in zip(serial.results, parallel.results):
            assert left.deterministic_payload() == right.deterministic_payload()

    def test_resumed_run_matches_uninterrupted_run(self, tmp_path):
        specs = self.specs()
        # Simulated kill: the first sweep only checkpoints two cars.
        checkpoint = CheckpointStore(tmp_path)
        Scheduler(SchedulerConfig(), checkpoint=checkpoint).run(specs[:2])

        calls = []

        def counting_runner(spec):
            calls.append(spec.car_key)
            return run_job(spec)

        resumed = Scheduler(
            SchedulerConfig(), checkpoint=CheckpointStore(tmp_path), runner=counting_runner
        ).run(specs)
        fresh = Scheduler(SchedulerConfig()).run(specs)
        assert sorted(calls) == ["E", "P"]  # completed cars were not re-run
        assert resumed.results_digest() == fresh.results_digest()


class TestRunJobReal:
    def test_run_job_verifies_against_ground_truth(self):
        spec = JobSpec("C", read_duration_s=8.0, gp_overrides=(("generations", 8), ("population_size", 100)))
        result = run_job(spec)
        assert result.ok
        assert result.n_formula_esvs > 0
        assert result.n_correct <= result.n_formula_esvs
        assert {"collect", "assemble", "infer_formulas", "ecr"} <= set(result.stage_seconds)
        assert all("identifier" in row for row in result.esvs)

    def test_run_job_deterministic(self):
        spec = JobSpec("C", read_duration_s=8.0, gp_overrides=(("generations", 8), ("population_size", 100)))
        first, second = run_job(spec), run_job(spec)
        assert first.deterministic_payload() == second.deterministic_payload()
