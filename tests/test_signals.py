"""Tests for the deterministic signal generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vehicle.signals import (
    ConstantSignal,
    RampSignal,
    RandomWalkSignal,
    SineSignal,
    ToggleSignal,
)


class TestConstant:
    def test_always_same(self):
        signal = ConstantSignal(100)
        assert signal.sample(0) == signal.sample(99.5) == 100


class TestSine:
    def test_stays_in_range(self):
        signal = SineSignal(10, 250, period_s=20)
        values = [signal.sample(t * 0.37) for t in range(200)]
        assert min(values) >= 10 and max(values) <= 250

    def test_covers_most_of_range(self):
        signal = SineSignal(0, 255, period_s=10)
        values = {signal.sample(t * 0.1) for t in range(120)}
        assert min(values) < 20 and max(values) > 235

    def test_periodicity(self):
        signal = SineSignal(0, 100, period_s=8)
        assert signal.sample(1.0) == signal.sample(9.0)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SineSignal(0, 10, period_s=0)


class TestRamp:
    def test_monotone_within_period(self):
        signal = RampSignal(0, 100, period_s=10)
        values = [signal.sample(t) for t in range(0, 9)]
        assert values == sorted(values)

    def test_wraps(self):
        signal = RampSignal(0, 100, period_s=10)
        assert signal.sample(9.9) > signal.sample(10.1)


class TestRandomWalk:
    def test_deterministic_per_seed(self):
        a = RandomWalkSignal(0, 255, seed=7)
        b = RandomWalkSignal(0, 255, seed=7)
        assert [a.sample(t) for t in range(30)] == [b.sample(t) for t in range(30)]

    def test_different_seeds_differ(self):
        a = [RandomWalkSignal(0, 255, seed=1).sample(t) for t in range(50)]
        b = [RandomWalkSignal(0, 255, seed=2).sample(t) for t in range(50)]
        assert a != b

    def test_bounded(self):
        signal = RandomWalkSignal(40, 60, seed=3, step_size=30)
        values = [signal.sample(t * 0.5) for t in range(100)]
        assert min(values) >= 40 and max(values) <= 60

    def test_resampling_past_time_is_stable(self):
        signal = RandomWalkSignal(0, 255, seed=5)
        early = signal.sample(2.0)
        signal.sample(50.0)
        assert signal.sample(2.0) == early


class TestToggle:
    def test_cycles_states(self):
        signal = ToggleSignal([0, 1, 2], dwell_s=1.0)
        assert [signal.sample(t + 0.5) for t in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            ToggleSignal([])


@settings(max_examples=40, deadline=None)
@given(
    lo=st.integers(0, 100), span=st.integers(0, 155),
    t=st.floats(0, 1000, allow_nan=False),
)
def test_all_generators_respect_bounds(lo, span, t):
    hi = lo + span
    for signal in (
        SineSignal(lo, hi, period_s=13.0),
        RampSignal(lo, hi, period_s=17.0),
        RandomWalkSignal(lo, hi, seed=11),
    ):
        assert lo <= signal.sample(t) <= hi
