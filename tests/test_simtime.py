"""Tests for simulated clocks and NTP-style synchronisation."""

import pytest

from repro.simtime import SimClock, SkewedClock, ntp_synchronise


class TestSimClock:
    def test_advance(self):
        clock = SimClock(10.0)
        assert clock.advance(5.0) == 15.0
        assert clock.now() == 15.0

    def test_sleep_alias(self):
        clock = SimClock()
        clock.sleep(2.0)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_perf_counter_tracks_simulated_time(self):
        clock = SimClock(5.0)
        start = clock.perf()
        clock.advance(2.5)
        assert clock.perf() - start == pytest.approx(2.5)

    def test_perf_is_monotonic(self):
        clock = SimClock()
        readings = []
        for step in [0.1, 0.0, 3.0]:
            clock.advance(step)
            readings.append(clock.perf())
        assert readings == sorted(readings)


class TestSkewedClock:
    def test_offset(self):
        base = SimClock(100.0)
        device = SkewedClock(base, offset=2.0)
        assert device.read() == 102.0

    def test_drift(self):
        base = SimClock(100.0)
        device = SkewedClock(base, drift=0.01)
        assert device.read() == pytest.approx(101.0)

    def test_ntp_synchronise_zeroes_offset(self):
        base = SimClock(50.0)
        reference = SkewedClock(base)
        device = SkewedClock(base, offset=-3.7)
        correction = ntp_synchronise(device, reference)
        assert correction == pytest.approx(3.7)
        assert device.read() == pytest.approx(reference.read())
