"""Tests for the VW TP 2.0 transport."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can import CanFrame, SimulatedCanBus
from repro.simtime import SimClock
from repro.transport import (
    EVENT_ERROR,
    EVENT_RESYNC,
    TransportError,
    VwTpEndpoint,
    VwTpFrameKind,
    VwTpReassembler,
    classify_vwtp_frame,
    is_last_packet,
    segment_vwtp,
)


class TestSegmentation:
    def test_single_chunk_uses_last_ack_opcode(self):
        frames = segment_vwtp(b"\x10\x03", 0x740)
        assert len(frames) == 1
        assert frames[0].data[0] >> 4 == 0x1  # last packet, ACK expected
        assert is_last_packet(frames[0])

    def test_multi_chunk_opcodes(self):
        frames = segment_vwtp(bytes(20), 0x740)
        assert len(frames) == 3
        assert all(f.data[0] >> 4 == 0x0 for f in frames[:-1])
        assert is_last_packet(frames[-1])

    def test_sequence_numbers(self):
        frames = segment_vwtp(bytes(30), 0x740, start_sequence=14)
        assert [f.data[0] & 0x0F for f in frames] == [14, 15, 0, 1, 2]

    def test_no_length_field_in_data_frames(self):
        """The paper's key observation: TP 2.0 data frames carry no length."""
        payload = bytes(range(10))
        frames = segment_vwtp(payload, 0x740)
        joined = b"".join(f.data[1:] for f in frames)
        assert joined == payload  # opcode byte + raw payload, nothing else

    def test_empty_payload_rejected(self):
        with pytest.raises(TransportError):
            segment_vwtp(b"", 0x740)


class TestClassification:
    def test_setup_request_detected(self):
        frame = CanFrame(0x200, bytes([0x01, 0xC0, 0x41, 0x07, 0x00, 0x03, 0x01]))
        assert classify_vwtp_frame(frame) == VwTpFrameKind.BROADCAST_SETUP

    def test_channel_params_detected(self):
        frame = CanFrame(0x740, bytes([0xA0, 0x0F, 0x8A, 0xFF, 0x32, 0xFF]))
        assert classify_vwtp_frame(frame) == VwTpFrameKind.CHANNEL_PARAMS

    def test_ack_detected(self):
        assert classify_vwtp_frame(CanFrame(0x300, b"\xb3")) == VwTpFrameKind.ACK

    def test_data_detected(self):
        assert classify_vwtp_frame(CanFrame(0x300, b"\x10\x61\x01")) == VwTpFrameKind.DATA

    def test_disconnect_is_control(self):
        assert classify_vwtp_frame(CanFrame(0x300, b"\xa8")) == VwTpFrameKind.CHANNEL_PARAMS


class TestReassembly:
    def test_roundtrip(self):
        payload = bytes(range(40))
        reassembler = VwTpReassembler()
        result = None
        for frame in segment_vwtp(payload, 0x740):
            result = reassembler.feed_payloads(frame)
        assert result == payload
        assert reassembler.stats.payloads == 1

    def test_control_frames_ignored(self):
        reassembler = VwTpReassembler()
        assert reassembler.feed(CanFrame(0x740, b"\xa0\x0f\x8a\xff\x32\xff")) == []
        assert reassembler.feed(CanFrame(0x740, b"\xb1")) == []

    def test_sequence_gap_strict_raises(self):
        frames = segment_vwtp(bytes(30), 0x740)
        reassembler = VwTpReassembler(strict=True)
        reassembler.feed_payloads(frames[0])
        with pytest.raises(TransportError):
            reassembler.feed_payloads(frames[2])

    def test_sequence_gap_lenient_resyncs(self):
        frames = segment_vwtp(bytes(30), 0x740)
        reassembler = VwTpReassembler(strict=False)
        reassembler.feed_payloads(frames[0])
        events = reassembler.feed(frames[2])
        assert [e.kind for e in events] == [EVENT_RESYNC]
        assert reassembler.stats.resyncs == 1
        assert reassembler.stats.messages_lost == 1

    def test_duplicate_data_frame_ignored(self):
        frames = segment_vwtp(bytes(30), 0x740)
        reassembler = VwTpReassembler(strict=False)
        result = reassembler.feed_payloads(frames[0])
        events = reassembler.feed(frames[0])  # exact replay
        assert [e.kind for e in events] == [EVENT_ERROR]
        for frame in frames[1:]:
            result = reassembler.feed_payloads(frame)
        assert result == bytes(30)

    def test_consecutive_messages_continue_sequence(self):
        reassembler = VwTpReassembler()
        first = segment_vwtp(b"\x01\x02\x03", 0x740, start_sequence=0)
        for frame in first:
            result = reassembler.feed_payloads(frame)
        assert result == b"\x01\x02\x03"
        second = segment_vwtp(b"\x04\x05", 0x740, start_sequence=1)
        for frame in second:
            result = reassembler.feed_payloads(frame)
        assert result == b"\x04\x05"


class TestEndpoint:
    def make_channel(self):
        bus = SimulatedCanBus(SimClock())
        ecu = VwTpEndpoint(
            bus, "ecu", ecu_address=0x01, tx_id=0x300, rx_id=0x740, is_tester=False,
            on_message=lambda p: ecu.send(b"\x61" + p[1:]),
        )
        tester = VwTpEndpoint(
            bus, "tester", ecu_address=0x01, tx_id=0x740, rx_id=0x300, is_tester=True
        )
        tester.connect()
        return bus, ecu, tester

    def test_channel_setup(self):
        __, ecu, tester = self.make_channel()
        assert tester.connected
        assert ecu.connected

    def test_request_response(self):
        __, __, tester = self.make_channel()
        tester.send(b"\x21\x01")
        assert tester.receive() == b"\x61\x01"

    def test_long_payload_roundtrip(self):
        bus = SimulatedCanBus(SimClock())
        big = bytes(range(64))
        ecu = VwTpEndpoint(
            bus, "ecu", ecu_address=0x01, tx_id=0x300, rx_id=0x740, is_tester=False,
            on_message=lambda p: ecu.send(big),
        )
        tester = VwTpEndpoint(
            bus, "tester", ecu_address=0x01, tx_id=0x740, rx_id=0x300, is_tester=True
        )
        tester.connect()
        tester.send(b"\x21\x02")
        assert tester.receive() == big

    def test_send_before_connect_raises(self):
        bus = SimulatedCanBus(SimClock())
        tester = VwTpEndpoint(
            bus, "tester", ecu_address=0x01, tx_id=0x740, rx_id=0x300, is_tester=True
        )
        with pytest.raises(TransportError):
            tester.send(b"\x21\x01")

    def test_ecu_cannot_initiate_setup(self):
        bus = SimulatedCanBus(SimClock())
        ecu = VwTpEndpoint(
            bus, "ecu", ecu_address=0x01, tx_id=0x300, rx_id=0x740, is_tester=False
        )
        with pytest.raises(TransportError):
            ecu.connect()


@settings(max_examples=50, deadline=None)
@given(payload=st.binary(min_size=1, max_size=300), start=st.integers(0, 15))
def test_vwtp_roundtrip_property(payload, start):
    reassembler = VwTpReassembler()
    result = None
    for frame in segment_vwtp(payload, 0x740, start_sequence=start):
        result = reassembler.feed_payloads(frame)
    assert result == payload
