"""End-to-end determinism: identical seeds give identical results.

Reproducibility is a design requirement (every stochastic component is
seeded, all timing flows through the simulated clock), so two independent
runs of collection + reverse engineering must agree bit for bit.
"""

import pytest

from repro.apps import analyze_corpus, build_corpus
from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import build_car


def run_pipeline(key):
    car = build_car(key)
    tool = make_tool_for_car(key, car)
    capture = DataCollector(tool, read_duration_s=15.0).collect()
    report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
    return capture, report


class TestDeterminism:
    def test_capture_identical_across_runs(self):
        capture_a, __ = run_pipeline("P")
        capture_b, __ = run_pipeline("P")
        assert len(capture_a.can_log) == len(capture_b.can_log)
        for frame_a, frame_b in zip(capture_a.can_log, capture_b.can_log):
            assert frame_a == frame_b
        assert [f.texts() for f in capture_a.video] == [
            f.texts() for f in capture_b.video
        ]
        assert [(c.x, c.y, c.label) for c in capture_a.clicks] == [
            (c.x, c.y, c.label) for c in capture_b.clicks
        ]

    def test_report_identical_across_runs(self):
        __, report_a = run_pipeline("P")
        __, report_b = run_pipeline("P")
        assert report_a.to_dict() == report_b.to_dict()

    def test_gp_seed_changes_results_only_in_form(self):
        """Different GP seeds may print different trees but must agree
        numerically on the training inputs."""
        car = build_car("P")
        tool = make_tool_for_car("P", car)
        capture = DataCollector(tool, read_duration_s=15.0).collect()
        report_a = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        report_b = DPReverser(ReverserConfig(gp_config=GpConfig(seed=99))).reverse_engineer(capture)
        by_id_a = {e.identifier: e for e in report_a.formula_esvs}
        by_id_b = {e.identifier: e for e in report_b.formula_esvs}
        assert set(by_id_a) == set(by_id_b)
        for identifier, esv_a in by_id_a.items():
            esv_b = by_id_b[identifier]
            for sample in esv_a.samples[:10]:
                value_a = esv_a.formula(sample)
                value_b = esv_b.formula(sample)
                assert value_a == pytest.approx(value_b, rel=0.1, abs=2.0)

    def test_corpus_analysis_deterministic(self):
        first = analyze_corpus(build_corpus())
        second = analyze_corpus(build_corpus())
        assert first.per_app == second.per_app
        assert [f.expression for f in first.formulas[:50]] == [
            f.expression for f in second.formulas[:50]
        ]
