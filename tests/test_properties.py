"""Cross-cutting property-based tests on pipeline invariants."""

import math
import random

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fields import extract_fields
from repro.core.assembly import AssembledMessage
from repro.core.response_analysis import PairedDataset, prescale, table2_factor
from repro.core.screenshot import UiSample, UiSeries, outlier_filter, range_filter
from repro.diagnostics import uds


class TestTable2Properties:
    @settings(max_examples=100, deadline=None)
    @given(magnitude=st.floats(1e-4, 1e5))
    def test_factor_brings_value_near_unit_range(self, magnitude):
        # Tab. 2's extreme rows scale by at most 10^±4, so the guarantee
        # holds for magnitudes in [10^-4, 10^5]; outside, the table
        # saturates — a limit inherent to the paper's design.
        factor = table2_factor(magnitude, allow_enlarge=True)
        scaled = magnitude * factor
        assert 0.1 <= scaled <= 10.0 or math.isclose(scaled, 10.0)

    @settings(max_examples=100, deadline=None)
    @given(magnitude=st.floats(1e-6, 1e6))
    def test_x_factor_never_exceeds_one(self, magnitude):
        assert table2_factor(magnitude, allow_enlarge=False) <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(
        xs=st.lists(st.floats(1, 60000), min_size=4, max_size=40),
        ys=st.lists(st.floats(-1e4, 1e4), min_size=4, max_size=40),
    )
    def test_prescale_is_invertible(self, xs, ys):
        n = min(len(xs), len(ys))
        dataset = PairedDataset([(x,) for x in xs[:n]], ys[:n])
        scaled = prescale(dataset)
        for (raw,), (scaled_x,) in zip(dataset.x_rows, scaled.x_rows):
            assert scaled_x == pytest.approx(raw * scaled.x_factors[0])
        for raw, scaled_y in zip(dataset.y_values, scaled.y_values):
            assert scaled_y == pytest.approx(raw * scaled.y_factor)


class TestFilterProperties:
    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(-1e4, 1e4), min_size=1, max_size=60))
    def test_filters_never_invent_samples(self, values):
        samples = [UiSample(i * 0.5, str(v), v) for i, v in enumerate(values)]
        kept_range, __ = range_filter(samples)
        kept_outlier, __ = outlier_filter(kept_range)
        assert len(kept_outlier) <= len(samples)
        ids = {id(s) for s in samples}
        assert all(id(s) in ids for s in kept_outlier)

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.floats(-1e4, 1e4), min_size=5, max_size=60))
    def test_outlier_filter_idempotent(self, values):
        samples = [UiSample(i * 0.5, str(v), v) for i, v in enumerate(values)]
        once, __ = outlier_filter(samples)
        twice, removed_again = outlier_filter(once)
        # A second pass may trim newly exposed single spikes but never grows.
        assert len(twice) <= len(once)

    @settings(max_examples=50, deadline=None)
    @given(
        values=st.lists(st.floats(0, 100), min_size=6, max_size=40),
        lo=st.floats(-10, 0),
        hi=st.floats(100, 200),
    )
    def test_range_filter_keeps_in_range(self, values, lo, hi):
        samples = [UiSample(i * 0.5, str(v), v) for i, v in enumerate(values)]
        kept, removed = range_filter(samples, (lo, hi))
        assert removed == 0
        assert len(kept) == len(samples)


class TestFieldExtractionProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        dids=st.lists(
            st.integers(0x0100, 0xF5FF), min_size=1, max_size=4, unique=True
        ),
        widths=st.lists(st.integers(1, 3), min_size=4, max_size=4),
        data=st.data(),
    )
    def test_multi_did_roundtrip_through_extraction(self, dids, widths, data):
        # Build a synthetic request/response pair and re-extract the values.
        values = []
        for index, did in enumerate(dids):
            width = widths[index % len(widths)]
            raw = data.draw(st.integers(0, (1 << (8 * width)) - 1))
            values.append(raw.to_bytes(width, "big"))
        # DID markers inside value bytes can legitimately confuse the
        # delimiting (the paper's approach shares this ambiguity); skip
        # colliding cases.
        blob = b"".join(
            did.to_bytes(2, "big") + value for did, value in zip(dids, values)
        )
        for index, did in enumerate(dids):
            marker = did.to_bytes(2, "big")
            first = blob.find(marker)
            assume(blob.find(marker, first + 1) == -1)

        request = uds.encode_read_data_by_identifier(dids)
        response = bytes([0x62]) + blob
        messages = [
            AssembledMessage(request, 0x7E0, 1.0, 1.0, 1),
            AssembledMessage(response, 0x7E8, 1.1, 1.1, 1),
        ]
        fields = extract_fields(messages)
        got = {o.identifier: o.raw_bytes for o in fields.observations}
        expected = {
            f"uds:{did:04X}": value for did, value in zip(dids, values)
        }
        assert got == expected


class TestUiSeriesProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        numeric=st.lists(st.floats(0, 1e3), min_size=0, max_size=20),
        textual=st.lists(st.sampled_from(["On", "Off", "Auto"]), min_size=0, max_size=20),
    )
    def test_is_numeric_classification(self, numeric, textual):
        samples = [UiSample(i * 0.5, str(v), float(v)) for i, v in enumerate(numeric)]
        samples += [
            UiSample((len(numeric) + i) * 0.5, t, None) for i, t in enumerate(textual)
        ]
        series = UiSeries("X", samples)
        if len(numeric) >= max(3, len(samples) // 2):
            assert series.is_numeric
        if not numeric:
            assert not series.is_numeric
