"""Tests for the TP-layer adversaries and the hardened stack that beats them.

Each attack class gets a pair of assertions: the *unhardened* stack shows
the damage the attack is designed to cause (lost victim payloads, unbounded
buffering, a dead sender), and the *hardened* stack recovers the victim's
traffic while counting the anomaly.  The hypothesis property at the bottom
is the ISSUE's satellite: any single hostile stream interleaved with a
clean multi-frame transfer never corrupts the clean stream's reassembled
payload, on all four transports.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks import (
    CAPTURE_ATTACKS,
    FcInjection,
    FcSpoofAttacker,
    KLineSlowloris,
    ReassemblyExhaustion,
    SequencePoisoning,
    SessionStarvation,
    parse_attack,
)
from repro.can import CanFrame, SimulatedCanBus
from repro.core.assembly import StreamAssembler, assemble_with_diagnostics
from repro.simtime import SimClock
from repro.transport import (
    DEFAULT_HARDENING,
    EVENT_PAYLOAD,
    HardeningPolicy,
    IsoTpEndpoint,
    IsoTpReassembler,
    TransportError,
    VwTpReassembler,
    segment,
    segment_vwtp,
)
from repro.transport.bmw import BmwReassembler, segment_bmw
from repro.transport.kline import (
    KLineByte,
    KLineFrameParser,
    frame_message,
    parse_capture,
)

VICTIM_ID = 0x7E0
VICTIM_PAYLOAD = bytes(range(6 + 7 * 6))  # FF + 6 CFs


def stamp(frames, start=0.0, step=0.001):
    """Give a segmented capture monotonic timestamps."""
    return [
        CanFrame(f.can_id, f.data, timestamp=start + i * step)
        for i, f in enumerate(frames)
    ]


def payloads_of(reassembler, frames):
    out = []
    for frame in frames:
        for event in reassembler.feed(frame):
            if event.kind == EVENT_PAYLOAD:
                out.append(event.payload)
    return out


class TestSessionStarvation:
    def test_breaks_unhardened_isotp(self):
        frames = SessionStarvation(seed=1).apply(stamp(segment(VICTIM_PAYLOAD, VICTIM_ID)))
        decoder = IsoTpReassembler(strict=False)
        assert VICTIM_PAYLOAD not in payloads_of(decoder, frames)
        assert decoder.stats.payloads == 0

    def test_hardened_isotp_recovers_and_detects(self):
        attack = SessionStarvation(seed=1)
        frames = attack.apply(stamp(segment(VICTIM_PAYLOAD, VICTIM_ID)))
        decoder = IsoTpReassembler(strict=False, hardening=DEFAULT_HARDENING)
        assert VICTIM_PAYLOAD in payloads_of(decoder, frames)
        assert decoder.stats.suspected_starvation >= 1
        assert attack.injected >= 1

    def test_breaks_unhardened_bmw(self):
        frames = SessionStarvation(seed=1, offset=1).apply(
            stamp(segment_bmw(VICTIM_PAYLOAD, 0x612, 0xF1))
        )
        decoder = BmwReassembler(strict=False)
        assert VICTIM_PAYLOAD not in payloads_of(decoder, frames)

    def test_hardened_bmw_recovers(self):
        frames = SessionStarvation(seed=1, offset=1).apply(
            stamp(segment_bmw(VICTIM_PAYLOAD, 0x612, 0xF1))
        )
        decoder = BmwReassembler(strict=False, hardening=DEFAULT_HARDENING)
        assert VICTIM_PAYLOAD in payloads_of(decoder, frames)


class TestSequencePoisoning:
    def test_breaks_unhardened_isotp_but_is_counted(self):
        frames = SequencePoisoning(seed=2).apply(stamp(segment(VICTIM_PAYLOAD, VICTIM_ID)))
        decoder = IsoTpReassembler(strict=False)
        assert VICTIM_PAYLOAD not in payloads_of(decoder, frames)
        # Detection is free even without hardening: the jump is implausible.
        assert decoder.stats.sequence_poisonings >= 1

    def test_hardened_isotp_drops_alien_frame(self):
        frames = SequencePoisoning(seed=2).apply(stamp(segment(VICTIM_PAYLOAD, VICTIM_ID)))
        decoder = IsoTpReassembler(strict=False, hardening=DEFAULT_HARDENING)
        assert payloads_of(decoder, frames) == [VICTIM_PAYLOAD]
        assert decoder.stats.sequence_poisonings >= 1

    def test_vwtp_alien_frame(self):
        frames = stamp(segment_vwtp(VICTIM_PAYLOAD, 0x300))
        alien = CanFrame(0x300, bytes([0x20 | 0x09]) + b"\xcc" * 7, timestamp=0.0015)
        attacked = frames[:2] + [alien] + frames[2:]
        unhardened = VwTpReassembler(strict=False)
        assert VICTIM_PAYLOAD not in payloads_of(unhardened, attacked)
        assert unhardened.stats.sequence_poisonings >= 1
        hardened = VwTpReassembler(strict=False, hardening=DEFAULT_HARDENING)
        assert VICTIM_PAYLOAD in payloads_of(hardened, attacked)
        assert hardened.stats.sequence_poisonings >= 1


class TestReassemblyExhaustion:
    POLICY = HardeningPolicy(per_stream_budget=256, global_budget=1024)

    def attacked_capture(self):
        victim = []
        for i in range(40):  # a long capture: 40 victim transfers
            victim.extend(stamp(segment(VICTIM_PAYLOAD, VICTIM_ID), start=i, step=0.01))
        return ReassemblyExhaustion(seed=3, spoofed_ids=64, interval=1).apply(victim)

    def buffered_total(self, assembler):
        return sum(
            state.reassembler.buffered_bytes
            for state in assembler._streams.values()
        )

    def test_unhardened_buffers_without_bound(self):
        assembler = StreamAssembler("isotp")
        for frame in self.attacked_capture():
            assembler.feed(frame)
        assert self.buffered_total(assembler) > self.POLICY.global_budget

    def test_hardened_stays_within_budget_and_recovers(self):
        assembler = StreamAssembler("isotp", hardening=self.POLICY)
        completed = []
        for frame in self.attacked_capture():
            completed.extend(assembler.feed(frame))
        assert self.buffered_total(assembler) <= self.POLICY.global_budget
        assert VICTIM_PAYLOAD in [m.payload for m in completed]
        assert assembler.anomaly_counts()["stale_stream_evictions"] >= 1


class TestFcInjection:
    def test_detection_only(self):
        attack = FcInjection(seed=4)
        frames = attack.apply(stamp(segment(VICTIM_PAYLOAD, VICTIM_ID)))
        assert attack.injected >= 1
        # Offline decode screens flow control, so payloads survive unhardened…
        messages, diagnostics = assemble_with_diagnostics(frames, "isotp")
        assert [m.payload for m in messages] == [VICTIM_PAYLOAD]
        assert diagnostics.stats.fc_violations == 0
        # …and hardened assembly additionally classifies the attack.
        messages, diagnostics = assemble_with_diagnostics(
            frames, "isotp", hardening=DEFAULT_HARDENING
        )
        assert [m.payload for m in messages] == [VICTIM_PAYLOAD]
        assert diagnostics.stats.fc_violations >= 1


def kline_capture(payloads, gap_s=2.0, byte_step=0.0005):
    capture = []
    now = 0.0
    for payload in payloads:
        for value in frame_message(payload, target=0x33, source=0xF1):
            capture.append(KLineByte(now, value))
            now += byte_step
        now += gap_s
    return capture


class TestKLineSlowloris:
    PAYLOADS = [b"\x81", b"\xc1\xea\x8f", b"\x3e"]

    def test_breaks_unhardened_parser(self):
        attack = KLineSlowloris(seed=5, gap_s=0.5)
        capture = attack.apply(kline_capture(self.PAYLOADS))
        assert attack.injected >= 1
        recovered = [m.payload for m in parse_capture(capture) if m.checksum_ok]
        assert recovered != self.PAYLOADS

    def test_hardened_deadline_evicts_forged_header(self):
        capture = KLineSlowloris(seed=5, gap_s=0.5).apply(kline_capture(self.PAYLOADS))
        parser = KLineFrameParser(hardening=DEFAULT_HARDENING)
        recovered = []
        for byte in capture:
            message = parser.feed(byte.timestamp, byte.value)
            if message is not None and message.checksum_ok:
                recovered.append(message.payload)
        assert recovered == self.PAYLOADS
        assert parser.stats.stale_stream_evictions >= 1


def make_live_pair(hardening=None):
    bus = SimulatedCanBus(SimClock())
    received = []
    server = IsoTpEndpoint(
        bus, "server", tx_id=0x7E8, rx_id=0x7E0, on_message=received.append
    )
    client = IsoTpEndpoint(
        bus, "client", tx_id=0x7E0, rx_id=0x7E8, hardening=hardening
    )
    return bus, client, received


class TestFcSpoofLive:
    def test_overflow_kills_unhardened_sender(self):
        bus, client, received = make_live_pair()
        attacker = FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode="overflow")
        with pytest.raises(TransportError):
            client.send(VICTIM_PAYLOAD)
        assert attacker.spoofs_sent == 1
        assert received == []

    def test_overflow_hardened_keeps_genuine_grant(self):
        bus, client, received = make_live_pair(hardening=DEFAULT_HARDENING)
        FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode="overflow")
        client.send(VICTIM_PAYLOAD)
        assert received == [VICTIM_PAYLOAD]
        assert client.fc_rejected >= 1

    def test_strangle_unhardened_starves_window(self):
        bus, client, received = make_live_pair()
        FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode="strangle")
        with pytest.raises(TransportError):
            client.send(VICTIM_PAYLOAD)

    def test_strangle_hardened_completes_without_stall(self):
        bus, client, received = make_live_pair(hardening=DEFAULT_HARDENING)
        FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode="strangle")
        before = bus.clock.now()
        client.send(VICTIM_PAYLOAD)
        assert received == [VICTIM_PAYLOAD]
        # The spoofed 127 ms STmin must not survive the permissive merge.
        assert bus.clock.now() - before < 0.1

    def test_wait_mode_is_noise(self):
        for hardening in (None, DEFAULT_HARDENING):
            bus, client, received = make_live_pair(hardening=hardening)
            attacker = FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode="wait")
            client.send(VICTIM_PAYLOAD)
            assert received == [VICTIM_PAYLOAD]
            assert attacker.spoofs_sent == 1

    def test_unknown_mode_rejected(self):
        bus = SimulatedCanBus(SimClock())
        with pytest.raises(ValueError, match="unknown FC spoof mode"):
            FcSpoofAttacker(bus, watch_id=0x7E0, fc_id=0x7E8, mode="tarpit")


class TestParseAttack:
    def test_round_trip_with_params(self):
        attack = parse_attack("exhaustion:spoofed_ids=8,interval=3")
        assert isinstance(attack, ReassemblyExhaustion)
        assert attack.spoofed_ids == 8 and attack.interval == 3

    def test_unknown_name_lists_valid(self):
        with pytest.raises(ValueError, match="starvation"):
            parse_attack("teardrop")

    def test_unknown_parameter_lists_valid(self):
        with pytest.raises(ValueError, match="unknown attack parameter 'burst'"):
            parse_attack("starvation:burst=4")

    def test_malformed_item(self):
        with pytest.raises(ValueError, match="not key=value"):
            parse_attack("starvation:seed")


# --------------------------------------------------------------------------
# Satellite property: a single hostile stream interleaved with a clean
# multi-frame transfer never corrupts the clean stream's reassembled
# payload — on all four transports, with the hardened stack.

attack_names = st.sampled_from(sorted(CAPTURE_ATTACKS))
victim_payloads = st.binary(min_size=8, max_size=120)


@settings(max_examples=60, deadline=None)
@given(payload=victim_payloads, seed=st.integers(0, 10_000), name=attack_names)
def test_property_hostile_stream_never_corrupts_isotp(payload, seed, name):
    frames = stamp(segment(payload, VICTIM_ID))
    attacked = CAPTURE_ATTACKS[name](seed=seed).apply(frames)
    messages, __ = assemble_with_diagnostics(
        attacked, "isotp", hardening=DEFAULT_HARDENING
    )
    assert payload in [m.payload for m in messages]


@settings(max_examples=60, deadline=None)
@given(payload=victim_payloads, seed=st.integers(0, 10_000), name=attack_names)
def test_property_hostile_stream_never_corrupts_bmw(payload, seed, name):
    frames = stamp(segment_bmw(payload, 0x612, 0xF1))
    kwargs = {"seed": seed}
    if name in ("starvation", "poisoning", "fc_flood"):
        kwargs["offset"] = 1
    attacked = CAPTURE_ATTACKS[name](**kwargs).apply(frames)
    messages, __ = assemble_with_diagnostics(
        attacked, "bmw", hardening=DEFAULT_HARDENING
    )
    assert payload in [m.payload for m in messages]


@settings(max_examples=60, deadline=None)
@given(
    payload=victim_payloads,
    alien_jump=st.integers(4, 12),
    position=st.integers(1, 1_000_000),
)
def test_property_hostile_stream_never_corrupts_vwtp(payload, alien_jump, position):
    frames = stamp(segment_vwtp(payload, 0x300))
    cut = 1 + position % len(frames)  # never before the first frame
    alien_seq = (cut + alien_jump) % 16
    alien = CanFrame(0x300, bytes([0x20 | alien_seq]) + b"\xcc" * 7)
    attacked = frames[:cut] + [alien] + frames[cut:]
    decoder = VwTpReassembler(strict=False, hardening=DEFAULT_HARDENING)
    recovered = payloads_of(decoder, attacked)
    assert payload in recovered


@settings(max_examples=30, deadline=None)
@given(
    payloads=st.lists(st.binary(min_size=1, max_size=40), min_size=2, max_size=5),
    seed=st.integers(0, 10_000),
)
def test_property_hostile_stream_never_corrupts_kline(payloads, seed):
    capture = KLineSlowloris(seed=seed, gap_s=0.5).apply(kline_capture(payloads))
    parser = KLineFrameParser(hardening=DEFAULT_HARDENING)
    recovered = []
    for byte in capture:
        message = parser.feed(byte.timestamp, byte.value)
        if message is not None and message.checksum_ok:
            recovered.append(message.payload)
    assert recovered == list(payloads)
