"""Tests for the UDS application-layer codec."""

import pytest

from repro.diagnostics import DiagnosticError, Nrc, is_negative_response, negative_response, uds


class TestRequestEncoding:
    def test_session_control(self):
        assert uds.encode_session_control(uds.SessionType.EXTENDED) == b"\x10\x03"

    def test_read_single_did(self):
        assert uds.encode_read_data_by_identifier([0xF40D]) == b"\x22\xf4\x0d"

    def test_read_multiple_dids(self):
        payload = uds.encode_read_data_by_identifier([0xF40D, 0x0101])
        assert payload == b"\x22\xf4\x0d\x01\x01"

    def test_read_no_dids_rejected(self):
        with pytest.raises(DiagnosticError):
            uds.encode_read_data_by_identifier([])

    def test_did_out_of_range_rejected(self):
        with pytest.raises(DiagnosticError):
            uds.encode_read_data_by_identifier([0x10000])

    def test_io_control_layout(self):
        payload = uds.encode_io_control(
            0x0950, uds.IoControlParameter.SHORT_TERM_ADJUSTMENT, b"\x05\x01\x00\x00"
        )
        # The paper's fog-light example: 2F 09 50 03 05 01 00 00.
        assert payload == b"\x2f\x09\x50\x03\x05\x01\x00\x00"

    def test_tester_present_suppress_bit(self):
        assert uds.encode_tester_present(True)[1] & 0x80

    def test_security_access(self):
        assert uds.encode_security_access_request_seed(1) == b"\x27\x01"
        assert uds.encode_security_access_send_key(1, b"\xab\xcd") == b"\x27\x02\xab\xcd"


class TestRequestDecoding:
    def test_decode_dids(self):
        request = uds.decode_request_dids(b"\x22\xf4\x0d\x09\x50")
        assert request.dids == (0xF40D, 0x0950)

    def test_decode_odd_length_rejected(self):
        with pytest.raises(DiagnosticError):
            uds.decode_request_dids(b"\x22\xf4")

    def test_decode_io_control(self):
        request = uds.decode_io_control_request(b"\x2f\x09\x50\x03\x05\x01")
        assert request.did == 0x0950
        assert request.io_parameter == 0x03
        assert request.control_state == b"\x05\x01"


class TestResponseDecoding:
    def test_single_did_response(self):
        pairs = uds.decode_read_response([0xF40D], b"\x62\xf4\x0d\x21")
        assert pairs == [(0xF40D, b"\x21")]

    def test_multi_did_response_delimited_by_request(self):
        """The §3.2 Step-3 trick: request DIDs delimit the values."""
        response = b"\x62\xf4\x0d\x21\x09\x50\x01\x02\x03"
        pairs = uds.decode_read_response([0xF40D, 0x0950], response)
        assert pairs == [(0xF40D, b"\x21"), (0x0950, b"\x01\x02\x03")]

    def test_variable_length_first_value(self):
        response = b"\x62\xf4\x0d\x21\x22\x09\x50\x05"
        pairs = uds.decode_read_response([0xF40D, 0x0950], response)
        assert pairs == [(0xF40D, b"\x21\x22"), (0x0950, b"\x05")]

    def test_negative_response_raises(self):
        with pytest.raises(DiagnosticError):
            uds.decode_read_response([0xF40D], b"\x7f\x22\x31")

    def test_missing_did_raises(self):
        with pytest.raises(DiagnosticError):
            uds.decode_read_response([0x1234], b"\x62\xf4\x0d\x21")

    def test_io_control_response(self):
        did, param, state = uds.decode_io_control_response(b"\x6f\x09\x50\x03\x05")
        assert (did, param, state) == (0x0950, 0x03, b"\x05")


class TestNegativeResponses:
    def test_build_and_detect(self):
        payload = negative_response(0x22, Nrc.REQUEST_OUT_OF_RANGE)
        assert payload == b"\x7f\x22\x31"
        assert is_negative_response(payload)

    def test_positive_not_negative(self):
        assert not is_negative_response(b"\x62\xf4\x0d\x21")
