"""The pre-forked shard fleet: identity, supervision, drain, and merge.

Every test spawns real processes listening on one ``SO_REUSEPORT`` port,
so the suite exercises the actual kernel balancing and signal paths a
production deployment runs — nothing is mocked.
"""

import asyncio
import time

import pytest

from repro.core import DPReverser, ReverserConfig
from repro.core.gp import GpConfig
from repro.cps import DataCollector
from repro.observability import prometheus_text
from repro.service import ServiceConfig, stream_capture_async
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_message,
    frame_batch_to_wire,
    read_message,
)
from repro.service.shards import ShardSupervisor
from repro.tools import make_tool_for_car
from repro.vehicle import build_car

GP = GpConfig(seed=2, generations=8, population_size=100)

#: Serial GP backend: each shard already is a process, and the tests want
#: shard spawn/teardown fast, not island pools inside every shard.
CONFIG = ServiceConfig(gp_config=GP, gp_backend="serial", analysis_workers=1)


@pytest.fixture(scope="module")
def capture_a():
    car = build_car("A")
    return DataCollector(make_tool_for_car("A", car), read_duration_s=8.0).collect()


@pytest.fixture(scope="module")
def batch_a(capture_a):
    return DPReverser(ReverserConfig(gp_config=GP)).reverse_engineer(capture_a).to_json()


def stream(port, capture, batch_size=128):
    return asyncio.run(
        stream_capture_async(
            "127.0.0.1", port, capture, transport="isotp", batch_size=batch_size
        )
    )


async def open_session(port):
    """Raw handshake; returns (reader, writer, shard index)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        encode_message(
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "tenant": "shard-test",
                "transport": "isotp",
                "meta": {},
            }
        )
    )
    await writer.drain()
    welcome = await read_message(reader)
    assert welcome["type"] == "welcome"
    return reader, writer, welcome["shard"]


async def finish_session(reader, writer, frames):
    """Stream a frame batch + finish; return the report message."""
    writer.write(encode_message(frame_batch_to_wire(list(frames))))
    writer.write(encode_message({"type": "finish"}))
    await writer.drain()
    while True:
        message = await asyncio.wait_for(read_message(reader), timeout=120)
        assert message is not None, "server closed before the report"
        if message["type"] == "report":
            writer.close()
            await writer.wait_closed()
            return message


class TestShardedIdentityAndMerge:
    def test_reports_identical_across_shards_and_merge_sums(
        self, capture_a, batch_a
    ):
        sessions = 4
        with ShardSupervisor(CONFIG, shards=2) as supervisor:
            results = [stream(supervisor.port, capture_a) for _ in range(sessions)]
            shards_seen = {result.shard for result in results}
            supervisor.wait_for_sessions(sessions, timeout=60)
        # Identity: every shard's report is byte-identical to the batch
        # pipeline's — N shards produce the same report set as one process.
        assert {result.report_json for result in results} == {batch_a}
        assert shards_seen <= {0, 1}
        snapshot = supervisor.merged_snapshot()
        counters = snapshot["counters"]
        assert counters["service.shards"] == 2
        assert counters["service.sessions_completed"] == sessions
        assert counters["service.frames_ingested"] == sessions * len(
            capture_a.can_log
        )
        assert counters["service.reports_emitted"] == sessions
        # Histograms merged from raw samples: one observation per batch
        # message per session, counted across all shards.
        assert snapshot["histograms"]["service.finalize_seconds"]["count"] == sessions
        text = prometheus_text(snapshot)
        assert f"repro_service_sessions_completed {sessions}" in text
        assert "repro_service_shards 2" in text


class TestShardSupervision:
    def test_crash_restarts_shard_without_killing_siblings(self, capture_a):
        with ShardSupervisor(CONFIG, shards=2) as supervisor:
            async def crash_and_survive():
                reader, writer, shard = await open_session(supervisor.port)
                victim = supervisor._slots[1 - shard].process
                victim.kill()  # SIGKILL: a real crash, no cleanup
                deadline = time.monotonic() + 30
                while supervisor.restarts < 1:
                    assert time.monotonic() < deadline, "no restart observed"
                    await asyncio.sleep(0.05)
                # The sibling session rides on untouched.
                report = await finish_session(
                    reader, writer, list(capture_a.can_log)[:200]
                )
                return report

            report = asyncio.run(crash_and_survive())
            assert report["report"]["transport"] == "isotp"
            assert supervisor.restarts >= 1
            # The respawned fleet still serves full sessions on the same port.
            result = stream(supervisor.port, capture_a)
            assert result.report is not None

    def test_sigterm_drains_in_flight_session(self, capture_a):
        with ShardSupervisor(CONFIG, shards=1) as supervisor:
            async def drain():
                reader, writer, shard = await open_session(supervisor.port)
                assert shard == 0
                process = supervisor._slots[0].process
                writer.write(
                    encode_message(
                        frame_batch_to_wire(list(capture_a.can_log)[:200])
                    )
                )
                await writer.drain()
                process.terminate()  # SIGTERM: drain, don't drop
                await asyncio.sleep(0.3)  # let the shard enter its drain
                writer.write(encode_message({"type": "finish"}))
                await writer.drain()
                while True:
                    message = await asyncio.wait_for(read_message(reader), timeout=120)
                    assert message is not None, "drain dropped the session"
                    if message["type"] == "report":
                        break
                writer.close()
                await writer.wait_closed()
                process.join(30)
                return message, process.exitcode

            report, exitcode = asyncio.run(drain())
            assert report["report"]["transport"] == "isotp"
            assert exitcode == 0, "drained shard should exit cleanly"
