"""Process-parallel GP inference and the cross-run formula memo.

The load-bearing invariant: every execution backend (serial, thread pool,
process pool) and every memo path (cold, warm, corrupt store) produces a
byte-identical :class:`~repro.core.reverser.ReverseReport` — and therefore
identical fleet results digests.  Everything here asserts that invariant
or the serialization machinery it rests on.
"""

import json
import pickle
import random

import pytest

from repro.core import (
    DPReverser,
    FormulaMemo,
    ReverserConfig,
    ScaledTreeFormula,
    dataset_key,
    infer_formula,
)
from repro.core.fields import EsvObservation
from repro.core.formula_memo import MEMO_FORMAT_VERSION
from repro.core.gp import (
    DEFAULT_FUNCTION_NAMES,
    FUNCTION_SET,
    GpConfig,
    Node,
    random_tree,
    tree_from_tokens,
    tree_to_tokens,
)
from repro.core.screenshot import UiSample, UiSeries

GP = GpConfig(seed=2, generations=8, population_size=100)


def make_task_dataset(raws, values, dt=0.5, identifier="uds:F40D"):
    observations = [
        EsvObservation("uds", identifier, bytes([raw]), i * dt)
        for i, raw in enumerate(raws)
    ]
    series = UiSeries(
        "Speed", [UiSample(i * dt, f"{v}", float(v)) for i, v in enumerate(values)]
    )
    return observations, series


# --------------------------------------------------------------- serialization


class TestTreeTokens:
    def test_round_trip_random_trees(self):
        rng = random.Random(7)
        for _ in range(50):
            tree = random_tree(rng, 3, DEFAULT_FUNCTION_NAMES, max_depth=4)
            rebuilt = tree_from_tokens(tree_to_tokens(tree))
            assert rebuilt.to_infix() == tree.to_infix()
            xs = [1.5, -2.0, 0.25]
            assert repr(rebuilt.evaluate_point(xs)) == repr(tree.evaluate_point(xs))

    def test_functions_resolve_to_interned_objects(self):
        tree = Node.call("mul", Node.var(0), Node.const(2.5))
        rebuilt = tree_from_tokens(tree_to_tokens(tree))
        assert rebuilt.function is FUNCTION_SET["mul"]

    def test_non_finite_constants_round_trip(self):
        tree = Node.call("add", Node.const(float("nan")), Node.const(float("inf")))
        tokens = json.loads(json.dumps(tree_to_tokens(tree)))
        rebuilt = tree_from_tokens(tokens)
        assert repr(rebuilt.children[0].constant) == "nan"
        assert rebuilt.children[1].constant == float("inf")

    @pytest.mark.parametrize(
        "tokens",
        [
            [],
            [["f", "mul"]],  # stack underflow
            [["v", 0], ["c", 1.0]],  # two roots
            [["c", 1.0], ["c", 2.0], ["f", "bogus"]],  # unknown function
            [["x", 0]],  # unknown kind
        ],
    )
    def test_malformed_tokens_raise(self, tokens):
        with pytest.raises(ValueError):
            tree_from_tokens(tokens)


class TestPicklability:
    """Everything a formula task carries must survive a process boundary."""

    def test_function_pickles_to_same_object(self):
        function = FUNCTION_SET["div"]
        assert pickle.loads(pickle.dumps(function)) is function

    def test_tree_pickle_round_trip(self):
        tree = random_tree(random.Random(3), 2, DEFAULT_FUNCTION_NAMES, max_depth=4)
        rebuilt = pickle.loads(pickle.dumps(tree))
        assert rebuilt.to_infix() == tree.to_infix()

    def test_scaled_tree_formula_round_trips(self):
        tree = Node.call("mul", Node.var(0), Node.const(0.25))
        formula = ScaledTreeFormula(tree, (0.1,), 10.0)
        for clone in (
            pickle.loads(pickle.dumps(formula)),
            ScaledTreeFormula.from_payload(
                json.loads(json.dumps(formula.to_payload()))
            ),
        ):
            assert clone.describe() == formula.describe()
            assert repr(clone([12.0])) == repr(formula([12.0]))


# ------------------------------------------------------------------- backends


def car_capture(key="C", read_duration_s=8.0):
    from repro.cps import DataCollector
    from repro.tools import make_tool_for_car
    from repro.vehicle import build_car

    car = build_car(key)
    return DataCollector(
        make_tool_for_car(key, car), read_duration_s=read_duration_s
    ).collect()


def reverse_capture(capture, **kwargs):
    """(canonical report JSON, stage-hook trace, reverser) for one run."""
    stages = []
    reverser = DPReverser(
        ReverserConfig(
            gp_config=GP,
            stage_hook=lambda stage, __: stages.append(stage),
            **kwargs,
        )
    )
    report = reverser.reverse_engineer(capture)
    reverser.last_report = report
    return json.dumps(report.to_dict(), sort_keys=True), stages, reverser


@pytest.mark.slow
class TestBackendEquivalence:
    """serial == thread == process, byte for byte."""

    def test_all_backends_byte_identical(self):
        capture = car_capture()
        serial, serial_stages, reverser = reverse_capture(capture)
        n_formulas = len(reverser.last_report.formula_esvs)
        assert n_formulas > 1
        for backend in ("thread", "process"):
            parallel, stages, __ = reverse_capture(
                capture, gp_workers=4, gp_backend=backend
            )
            assert parallel == serial, f"{backend} backend diverged from serial"
            # stage_hook cannot cross the process boundary; timings ride
            # back in the result objects and replay once per formula ESV.
            assert stages.count("gp_formula") == n_formulas
        assert serial_stages.count("gp_formula") == n_formulas

    def test_explicit_serial_backend_ignores_workers(self):
        reverser = DPReverser(ReverserConfig(gp_workers=8, gp_backend="serial"))
        assert reverser._resolve_backend(n_tasks=10) == "serial"

    def test_auto_picks_process_only_when_parallel(self):
        reverser = DPReverser(ReverserConfig(gp_workers=4))
        assert reverser._resolve_backend(n_tasks=10) == "process"
        assert reverser._resolve_backend(n_tasks=1) == "serial"
        assert DPReverser(ReverserConfig())._resolve_backend(n_tasks=10) == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DPReverser(ReverserConfig(gp_backend="greenlet"))

    def test_fleet_digest_identical_across_gp_backends(self):
        from repro.runtime import Scheduler, SchedulerConfig, fleet_job_specs

        overrides = (("generations", 8), ("population_size", 100))
        digests = {}
        for backend in ("serial", "thread", "process"):
            report = Scheduler(SchedulerConfig()).run(
                fleet_job_specs(
                    ["C"],
                    read_duration_s=8.0,
                    gp_overrides=overrides,
                    gp_workers=1 if backend == "serial" else 2,
                    gp_backend=backend,
                )
            )
            digests[backend] = report.results_digest()
        assert len(set(digests.values())) == 1, digests


class TestJobSpecFields:
    def test_backend_and_memo_excluded_from_job_id(self, tmp_path):
        from repro.runtime import JobSpec

        base = JobSpec(car_key="C")
        tuned = JobSpec(
            car_key="C",
            gp_workers=4,
            gp_backend="process",
            gp_memo_dir=str(tmp_path),
        )
        assert base.job_id == tuned.job_id

    def test_round_trip(self, tmp_path):
        from repro.runtime import JobSpec

        spec = JobSpec(car_key="C", gp_backend="thread", gp_memo_dir=str(tmp_path))
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_defaults_for_old_checkpoints(self):
        from repro.runtime import JobSpec

        payload = JobSpec(car_key="C").to_dict()
        del payload["gp_backend"], payload["gp_memo_dir"]
        spec = JobSpec.from_dict(payload)
        assert spec.gp_backend == "auto" and spec.gp_memo_dir == ""


# ----------------------------------------------------------------------- memo


class TestFormulaMemo:
    def dataset(self):
        # raw * 0.5 with a NaN payload reading in the middle: NaN-valued
        # samples must flow through keying and storage without error.
        raws = [2, 4, 6, 8, 10, 12, 14, 16]
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        observations, series = make_task_dataset(raws, values)
        noisy = series.samples + [UiSample(99.0, "nan", float("nan"))]
        return observations, UiSeries(series.label, noisy)

    def infer_config(self, identifier="uds:F40D"):
        from repro.core.reverser import _stable_seed
        from dataclasses import replace

        return replace(GP, seed=_stable_seed(identifier, GP.seed))

    def test_cold_then_warm_recalls_identical_result(self, tmp_path):
        observations, series = self.dataset()
        config = self.infer_config()
        memo = FormulaMemo(tmp_path)
        key = dataset_key(observations, series, config)

        hit, __ = memo.get(key)
        assert not hit
        inferred = infer_formula(observations, series, config)
        assert inferred is not None
        memo.put(key, inferred)
        assert len(memo) == 1

        warm = FormulaMemo(tmp_path)
        hit, recalled = warm.get(key)
        assert hit
        assert recalled.description == inferred.description
        assert repr(recalled.fitness) == repr(inferred.fitness)
        assert recalled.interpretation == inferred.interpretation
        assert repr(recalled.formula([6.0])) == repr(inferred.formula([6.0]))
        assert warm.stats()["hits"] == 1 and memo.stats()["misses"] == 1

    def test_negative_result_is_memoised(self, tmp_path):
        memo = FormulaMemo(tmp_path)
        memo.put("nothing", None)
        hit, recalled = memo.get("nothing")
        assert hit and recalled is None

    def test_corrupt_entry_is_a_miss_and_gets_repaired(self, tmp_path):
        memo = FormulaMemo(tmp_path)
        memo.put("k", None)
        path = memo._path("k")
        path.write_text("{ truncated")
        hit, __ = memo.get("k")
        assert not hit and memo.stats()["invalid"] == 1
        memo.put("k", None)
        hit, __ = memo.get("k")
        assert hit

    def test_version_mismatch_is_a_miss(self, tmp_path):
        memo = FormulaMemo(tmp_path)
        memo.put("k", None)
        entry = json.loads(memo._path("k").read_text())
        entry["format_version"] = MEMO_FORMAT_VERSION + 1
        memo._path("k").write_text(json.dumps(entry))
        hit, __ = memo.get("k")
        assert not hit

    def test_key_depends_on_dataset_and_config(self):
        observations, series = self.dataset()
        config = self.infer_config()
        key = dataset_key(observations, series, config)
        assert key == dataset_key(observations, series, config)
        assert key != dataset_key(observations[1:], series, config)
        assert key != dataset_key(observations, series, self.infer_config("uds:F40E"))


@pytest.mark.slow
class TestMemoEndToEnd:
    """Warm reruns skip GP and stay byte-identical, on every backend."""

    def test_warm_rerun_identical_and_all_hits(self, tmp_path):
        capture = car_capture()
        baseline, __, reverser = reverse_capture(capture)
        n_formulas = len(reverser.last_report.formula_esvs)

        memo_dir = str(tmp_path / "memo")
        cold_report, __, cold_reverser = reverse_capture(
            capture, gp_workers=2, gp_backend="process", gp_memo_dir=memo_dir
        )
        assert cold_report == baseline
        assert cold_reverser.memo_stats == {
            "hits": 0,
            "misses": n_formulas,
            "gp.misses": n_formulas,
        }

        for backend, workers in (("process", 2), ("serial", 1), ("thread", 2)):
            warm_report, stages, warm_reverser = reverse_capture(
                capture,
                gp_workers=workers,
                gp_backend=backend,
                gp_memo_dir=memo_dir,
            )
            assert warm_report == baseline, f"warm {backend} run diverged"
            assert warm_reverser.memo_stats == {
                "hits": n_formulas,
                "misses": 0,
                "gp.hits": n_formulas,
            }
            assert stages.count("gp_formula") == n_formulas
