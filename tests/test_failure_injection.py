"""Failure-injection tests: the pipeline must degrade, not crash.

Real captures are imperfect — frames get lost, ECUs stop answering,
noise corrupts bytes.  These tests verify the offline pipeline tolerates
all of it (the lenient reassemblers and pairing guards exist precisely for
this).
"""

import random

import pytest

from repro.can import CanFrame, CanLog
from repro.core import DPReverser, GpConfig, ReverserConfig, assemble, extract_fields
from repro.cps import Capture, DataCollector
from repro.tools import make_tool_for_car
from repro.vehicle import build_car


@pytest.fixture(scope="module")
def clean_capture():
    car = build_car("D")
    tool = make_tool_for_car("D", car)
    return DataCollector(tool, read_duration_s=20.0).collect()


def with_frames(capture, frames):
    return Capture(
        model=capture.model,
        tool_name=capture.tool_name,
        can_log=CanLog(frames),
        video=capture.video,
        clicks=capture.clicks,
        segments=capture.segments,
        tool_error_rate=capture.tool_error_rate,
    )


class TestFrameLoss:
    @pytest.mark.parametrize("loss", [0.01, 0.05, 0.20])
    def test_assembly_survives_loss(self, clean_capture, loss):
        rng = random.Random(7)
        frames = [f for f in clean_capture.can_log if rng.random() > loss]
        messages = assemble(frames)
        clean = assemble(list(clean_capture.can_log))
        assert messages  # plenty survives
        assert len(messages) <= len(clean)

    def test_pipeline_still_reverses_majority_at_low_loss(self, clean_capture):
        rng = random.Random(9)
        frames = [f for f in clean_capture.can_log if rng.random() > 0.02]
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(
            with_frames(clean_capture, frames)
        )
        assert len(report.esvs) >= 12  # of 17 on Car D


class TestCorruption:
    def test_random_garbage_frames_ignored(self, clean_capture):
        rng = random.Random(3)
        frames = list(clean_capture.can_log)
        garbage = [
            CanFrame(
                0x7FF,
                bytes(rng.randrange(256) for __ in range(8)),
                timestamp=frames[i].timestamp,
            )
            for i in range(0, len(frames), 50)
        ]
        mixed = sorted(frames + garbage, key=lambda f: f.timestamp)
        messages = assemble(mixed)
        fields = extract_fields(messages)
        clean_fields = extract_fields(assemble(frames))
        # Garbage on a foreign id must not reduce the real observations.
        assert len(fields.observations) >= len(clean_fields.observations)

    def test_flipped_payload_bytes_tolerated(self, clean_capture):
        rng = random.Random(5)
        frames = []
        for frame in clean_capture.can_log:
            data = bytearray(frame.data)
            if data and rng.random() < 0.01:
                data[rng.randrange(len(data))] ^= 0xFF
            frames.append(
                CanFrame(frame.can_id, bytes(data), timestamp=frame.timestamp)
            )
        # Must not raise; some messages are lost or mis-assembled.
        messages = assemble(frames)
        assert messages


class TestDeadEcu:
    def test_collection_completes_with_silent_ecu(self):
        car = build_car("D")
        # Kill the Engine ECU: its endpoint stops responding.
        binding = car.bindings["Engine"]
        binding.endpoint.on_message = lambda payload: None
        tool = make_tool_for_car("D", car)
        capture = DataCollector(tool, read_duration_s=10.0).collect()
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        engine_dids = {f"uds:{d:04X}" for d in car.ecu("Engine").uds_data_points}
        reversed_ids = {e.identifier for e in report.esvs}
        assert not engine_dids & reversed_ids  # nothing from the dead ECU
        assert reversed_ids  # the others still reverse


class TestDegenerateInputs:
    def test_empty_capture(self):
        capture = Capture(
            model="empty", tool_name="none", can_log=CanLog(), video=[],
            clicks=[], segments=[], tool_error_rate=0.0,
        )
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        assert report.esvs == [] and report.ecrs == []

    def test_video_only_capture(self, clean_capture):
        capture = Capture(
            model="video-only", tool_name="x", can_log=CanLog(),
            video=clean_capture.video, clicks=[], segments=clean_capture.segments,
            tool_error_rate=0.02,
        )
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        assert report.esvs == []

    def test_traffic_only_capture(self, clean_capture):
        capture = with_frames(clean_capture, list(clean_capture.can_log))
        capture.video = []
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        assert report.esvs == []  # no screen text -> no semantics
        assert report.ecrs  # ECR procedures come from traffic alone
