"""Tests for the TSP click planner and the robotic clicker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cps import (
    ClickPlanner,
    RoboticClicker,
    Script,
    ScriptGenerator,
    brute_force_route,
    manhattan,
    nearest_neighbour_route,
    random_route,
    route_length,
)
from repro.simtime import SimClock


class TestRoutes:
    def test_manhattan(self):
        assert manhattan((0, 0), (3, 4)) == 7

    def test_route_length_open_and_closed(self):
        route = [(0, 10), (0, 20)]
        assert route_length((0, 0), route) == 20
        assert route_length((0, 0), route, closed=True) == 40

    def test_nearest_neighbour_visits_all(self):
        targets = [(10, 10), (5, 5), (20, 0)]
        route = nearest_neighbour_route((0, 0), targets)
        assert sorted(route) == sorted(targets)

    def test_nearest_neighbour_picks_closest_first(self):
        route = nearest_neighbour_route((0, 0), [(100, 100), (1, 1)])
        assert route[0] == (1, 1)

    def test_brute_force_optimal(self):
        rng = random.Random(4)
        targets = [(rng.randrange(100), rng.randrange(100)) for __ in range(6)]
        best = brute_force_route((0, 0), targets)
        nn = nearest_neighbour_route((0, 0), targets)
        assert route_length((0, 0), best) <= route_length((0, 0), nn)

    def test_brute_force_limit(self):
        with pytest.raises(ValueError):
            brute_force_route((0, 0), [(i, i) for i in range(10)])

    def test_nn_beats_random_on_average(self):
        """The paper's §3.1 claim: NN saves travel vs random order (~7%)."""
        rng = random.Random(7)
        total_nn = total_random = 0.0
        for __ in range(50):
            targets = [(rng.randrange(800), rng.randrange(600)) for __ in range(14)]
            total_nn += route_length((0, 0), nearest_neighbour_route((0, 0), targets))
            total_random += route_length((0, 0), random_route(targets, rng))
        assert total_nn < total_random


class TestPlanner:
    def test_plan_preserves_payloads(self):
        planner = ClickPlanner()
        targets = [((10, 10), "a"), ((1, 1), "b"), ((5, 5), "c")]
        ordered = planner.plan(targets)
        assert {payload for __, payload in ordered} == {"a", "b", "c"}
        assert ordered[0][1] == "b"  # closest to origin

    def test_plan_duplicate_points(self):
        planner = ClickPlanner()
        ordered = planner.plan([((5, 5), "x"), ((5, 5), "y")])
        assert {p for __, p in ordered} == {"x", "y"}


class TestClicker:
    def test_travel_time_scales_with_distance(self):
        clock = SimClock()
        arm = RoboticClicker(clock, speed_px_s=100.0)
        arm.move_to(100, 0)
        assert clock.now() == pytest.approx(1.0)
        arm.move_to(100, 50)
        assert clock.now() == pytest.approx(1.5)
        assert arm.total_travel_px == 150

    def test_click_logs_timestamp_and_hit(self):
        arm = RoboticClicker(SimClock())
        hits = []
        arm.click(10, 10, lambda x, y: True, label="Start")
        arm.click(20, 20, lambda x, y: False, label="Nothing")
        assert arm.log[0].hit and not arm.log[1].hit
        assert arm.log[0].label == "Start"
        assert arm.log[1].timestamp > arm.log[0].timestamp

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            RoboticClicker(SimClock(), speed_px_s=0)


class TestScripts:
    def test_generator_inserts_waits(self):
        generator = ScriptGenerator(click_wait_s=1.0, read_wait_s=30.0)
        script = generator.generate(
            [((1, 1), "Engine"), ((2, 2), "Start")], long_wait_labels=["Start"]
        )
        waits = [s.seconds for s in script.statements if hasattr(s, "seconds")]
        assert waits == [1.0, 30.0]

    def test_run_script_executes_clicks_in_order(self):
        clock = SimClock()
        arm = RoboticClicker(clock)
        script = Script()
        script.append_click(10, 10, "a")
        script.append_wait(5.0)
        script.append_click(20, 20, "b")
        clicked = []
        arm.run_script(script, lambda x, y: clicked.append((x, y)) or True)
        assert clicked == [(10, 10), (20, 20)]
        assert clock.now() > 5.0

    def test_run_script_on_wait_callback(self):
        arm = RoboticClicker(SimClock())
        script = Script()
        script.append_wait(2.0)
        waited = []
        arm.run_script(script, lambda x, y: True, on_wait=waited.append)
        assert waited == [2.0]


@settings(max_examples=30, deadline=None)
@given(
    targets=st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 500)), min_size=1, max_size=12
    )
)
def test_nn_route_is_permutation(targets):
    route = nearest_neighbour_route((0, 0), targets)
    assert sorted(route) == sorted(targets)
