"""Tests for attack replay (§9.3 / Tab. 13)."""

import pytest

from repro.attacks import AttackReplayer, run_table13
from repro.vehicle import build_car


class TestReplayer:
    def test_read_data_attack(self):
        car = build_car("D")
        replayer = AttackReplayer(car)
        engine = car.ecu("Engine")
        did = sorted(engine.uds_data_points)[0]
        result = replayer.read_data(
            "Engine", bytes([0x22]) + did.to_bytes(2, "big"), "Read engine data"
        )
        assert result.success
        assert result.responses[0].startswith("62")

    def test_read_unknown_did_fails(self):
        car = build_car("D")
        replayer = AttackReplayer(car)
        result = replayer.read_data("Engine", b"\x22\xde\xad", "Read bogus")
        assert not result.success

    def test_control_requires_security_unlock(self):
        car = build_car("N")  # Kia: actuators behind security access
        replayer = AttackReplayer(car)
        body = car.ecu("Body Control")
        actuator_id = sorted(body.actuators)[0]
        denied = replayer.control_component(
            "Body Control", actuator_id, b"\x05\x01", "No unlock",
            service=body.ecr_service, unlock_mask=None,
        )
        assert not denied.success

    def test_control_with_unlock_actuates(self):
        car = build_car("N")
        replayer = AttackReplayer(car)
        body = car.ecu("Body Control")
        actuator_id = sorted(body.actuators)[0]
        result = replayer.control_component(
            "Body Control", actuator_id, b"\x05\x01", "Unlock first",
            service=body.ecr_service, unlock_mask=body.security.mask,
        )
        assert result.success
        assert "actuated" in result.observed_effect

    def test_routine_attack_on_bmw(self):
        car = build_car("G")
        replayer = AttackReplayer(car)
        result = replayer.run_routine("Body Control", 0x03, "Control high beam")
        assert result.success
        assert "High Beam" in result.observed_effect

    def test_ecu_reset(self):
        car = build_car("G")
        replayer = AttackReplayer(car)
        result = replayer.reset_ecu("Instrument Cluster", "Reset KOMBI")
        assert result.success
        assert car.ecu("Instrument Cluster").reset_count == 1


class TestTable13Scenarios:
    @pytest.mark.parametrize("key", ["G", "D", "L", "N"])
    def test_all_attacks_succeed_on_running_vehicles(self, key):
        """Tab. 13: every replayed message triggers its action."""
        car = build_car(key)
        results = run_table13(car)
        assert results
        assert all(r.success for r in results), [
            (r.description, r.observed_effect) for r in results if not r.success
        ]

    def test_attack_messages_are_logged(self):
        car = build_car("D")
        results = run_table13(car)
        for result in results:
            assert result.messages
            assert all(isinstance(m, str) for m in result.messages)
