"""Tests for ISO-TP flow-control details: block size, STmin, WAIT/OVFLW."""

import pytest

from repro.can import CanFrame, SimulatedCanBus
from repro.simtime import SimClock
from repro.transport import (
    FlowControl,
    FlowStatus,
    IsoTpEndpoint,
    TransportError,
    segment,
)


def make_pair(server_bs=0, server_stmin=0.0):
    bus = SimulatedCanBus(SimClock())
    received = []
    server = IsoTpEndpoint(
        bus, "server", tx_id=0x7E8, rx_id=0x7E0,
        block_size=server_bs, st_min_ms=server_stmin,
        on_message=received.append,
    )
    client = IsoTpEndpoint(bus, "client", tx_id=0x7E0, rx_id=0x7E8)
    return bus, server, client, received


class TestBlockSize:
    def test_multiple_fc_per_message(self):
        """With block size 4 a 10-CF message needs several flow controls."""
        bus, server, client, received = make_pair(server_bs=4)
        payload = bytes(range(6 + 7 * 10))  # FF + 10 CFs
        client.send(payload)
        assert received == [payload]
        assert server.fc_sent >= 3  # initial FC + at least two block grants

    def test_block_size_zero_single_fc(self):
        bus, server, client, received = make_pair(server_bs=0)
        payload = bytes(range(80))
        client.send(payload)
        assert received == [payload]
        assert server.fc_sent == 1

    def test_block_size_one_fc_per_cf(self):
        bus, server, client, received = make_pair(server_bs=1)
        payload = bytes(range(6 + 7 * 5))
        client.send(payload)
        assert received == [payload]
        assert server.fc_sent == 1 + 5 - 1  # FF grant + one per CF except last


class TestStMin:
    def test_stmin_paces_consecutive_frames(self):
        bus, server, client, received = make_pair(server_stmin=10.0)
        payload = bytes(range(6 + 7 * 4))  # 4 CFs
        frames = client.send(payload)
        gaps = [b.timestamp - a.timestamp for a, b in zip(frames[1:], frames[2:])]
        assert all(gap >= 0.010 for gap in gaps)

    def test_no_stmin_back_to_back(self):
        bus, server, client, received = make_pair(server_stmin=0.0)
        frames = client.send(bytes(range(30)))
        gaps = [b.timestamp - a.timestamp for a, b in zip(frames[1:], frames[2:])]
        assert all(gap < 0.001 for gap in gaps)


class TestFlowStatus:
    def test_overflow_aborts_transfer(self):
        bus = SimulatedCanBus(SimClock())

        class OverflowingReceiver:
            def __init__(self):
                self.node = None

        # A raw node that answers every FF with an overflow FC.
        from repro.can import BusNode

        def overflow_handler(frame):
            if frame.can_id == 0x7E0 and frame.data[0] >> 4 == 0x1:
                control = FlowControl(FlowStatus.OVERFLOW)
                receiver.send(CanFrame(0x7E8, control.encode()))

        receiver = BusNode("receiver", handler=overflow_handler)
        bus.attach(receiver)
        client = IsoTpEndpoint(bus, "client", tx_id=0x7E0, rx_id=0x7E8)
        with pytest.raises(TransportError):
            client.send(bytes(80))

    def test_missing_fc_raises(self):
        bus = SimulatedCanBus(SimClock())
        client = IsoTpEndpoint(bus, "client", tx_id=0x7E0, rx_id=0x7E8)
        with pytest.raises(TransportError):
            client.send(bytes(80))  # nobody answers the FF

    def test_wait_status_keeps_sender_waiting(self):
        bus = SimulatedCanBus(SimClock())
        from repro.can import BusNode

        def wait_handler(frame):
            if frame.can_id == 0x7E0 and frame.data[0] >> 4 == 0x1:
                receiver.send(CanFrame(0x7E8, FlowControl(FlowStatus.WAIT).encode()))

        receiver = BusNode("receiver", handler=wait_handler)
        bus.attach(receiver)
        client = IsoTpEndpoint(bus, "client", tx_id=0x7E0, rx_id=0x7E8)
        # WAIT never upgraded to CONTINUE: the transfer cannot proceed.
        with pytest.raises(TransportError):
            client.send(bytes(80))


class TestServerToClientLong:
    def test_long_response_with_client_block_size(self):
        bus = SimulatedCanBus(SimClock())
        big = bytes(range(200))
        server = IsoTpEndpoint(
            bus, "server", tx_id=0x7E8, rx_id=0x7E0,
            on_message=lambda p: server.send(big),
        )
        client = IsoTpEndpoint(
            bus, "client", tx_id=0x7E0, rx_id=0x7E8, block_size=3
        )
        client.send(b"\x22\x01\x02")
        assert client.receive() == big
        assert client.fc_sent >= 5  # many block grants for ~28 CFs
