"""Tests for `ReverserConfig`: the single DPReverser constructor path.

The legacy positional-`GpConfig`/kwargs shapes (deprecated in PR 3) are
gone — `TestLegacyShapesRemoved` pins down that they now fail loudly with
a `TypeError` that names the replacement, rather than half-working.
"""

import warnings

import pytest

from repro.can import NoiseProfile
from repro.core import DPReverser, GpConfig, ReverserConfig


def deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestModernShape:
    def test_config_resolves_attributes(self):
        gp = GpConfig(seed=5)
        reverser = DPReverser(
            ReverserConfig(gp_config=gp, ocr_seed=7, gp_workers=3)
        )
        assert reverser.gp_config is gp
        assert reverser.ocr_seed == 7
        assert reverser.gp_workers == 3
        assert reverser.config.estimate_alignment is True

    def test_no_warning(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            DPReverser(ReverserConfig(gp_config=GpConfig(seed=2)))
        assert not deprecations(record)

    def test_defaults(self):
        reverser = DPReverser()
        assert isinstance(reverser.gp_config, GpConfig)
        assert reverser.noise is None

    def test_gp_workers_validated(self):
        with pytest.raises(ValueError):
            DPReverser(ReverserConfig(gp_workers=0))

    def test_null_noise_profile_resolves_to_none(self):
        reverser = DPReverser(ReverserConfig(noise=NoiseProfile()))
        assert reverser.noise is None
        noisy = DPReverser(ReverserConfig(noise=NoiseProfile.default(seed=1)))
        assert noisy.noise == NoiseProfile.default(seed=1)


class TestFormulaBackendConfig:
    def test_default_is_gp(self):
        assert DPReverser().formula_backend == "gp"
        assert ReverserConfig().formula_backend == "gp"

    def test_resolves_attribute(self):
        reverser = DPReverser(ReverserConfig(formula_backend="hybrid"))
        assert reverser.formula_backend == "hybrid"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="formula_backend"):
            DPReverser(ReverserConfig(formula_backend="neural"))


class TestLegacyShapesRemoved:
    """The pre-PR-3 constructor shapes now fail loudly, not silently."""

    def test_positional_gp_config_is_a_type_error(self):
        with pytest.raises(TypeError, match="ReverserConfig"):
            DPReverser(GpConfig(seed=9))

    def test_legacy_kwargs_are_a_type_error(self):
        with pytest.raises(TypeError):
            DPReverser(ocr_seed=11, gp_workers=2)

    def test_positional_plus_kwargs_is_a_type_error(self):
        with pytest.raises(TypeError):
            DPReverser(GpConfig(seed=9), estimate_alignment=False)

    def test_typod_kwarg_is_still_a_type_error(self):
        with pytest.raises(TypeError):
            DPReverser(gp_confg=GpConfig(seed=2))  # typo'd name

    def test_error_names_the_replacement(self):
        with pytest.raises(TypeError, match=r"ReverserConfig\(gp_config=\.\.\.\)"):
            DPReverser(GpConfig(seed=4))
