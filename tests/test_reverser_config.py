"""Tests for `ReverserConfig` and the deprecated DPReverser call shapes.

This file is the sanctioned home of the legacy kwargs — everything else in
the repo constructs `DPReverser(ReverserConfig(...))`.
"""

import warnings

import pytest

from repro.can import NoiseProfile
from repro.core import DPReverser, GpConfig, ReverserConfig


def deprecations(record):
    return [w for w in record if issubclass(w.category, DeprecationWarning)]


class TestModernShape:
    def test_config_resolves_attributes(self):
        gp = GpConfig(seed=5)
        reverser = DPReverser(
            ReverserConfig(gp_config=gp, ocr_seed=7, gp_workers=3)
        )
        assert reverser.gp_config is gp
        assert reverser.ocr_seed == 7
        assert reverser.gp_workers == 3
        assert reverser.config.estimate_alignment is True

    def test_no_warning(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            DPReverser(ReverserConfig(gp_config=GpConfig(seed=2)))
        assert not deprecations(record)

    def test_defaults(self):
        reverser = DPReverser()
        assert isinstance(reverser.gp_config, GpConfig)
        assert reverser.noise is None

    def test_gp_workers_validated(self):
        with pytest.raises(ValueError):
            DPReverser(ReverserConfig(gp_workers=0))

    def test_null_noise_profile_resolves_to_none(self):
        reverser = DPReverser(ReverserConfig(noise=NoiseProfile()))
        assert reverser.noise is None
        noisy = DPReverser(ReverserConfig(noise=NoiseProfile.default(seed=1)))
        assert noisy.noise == NoiseProfile.default(seed=1)


class TestLegacyShapes:
    def test_positional_gp_config_warns_once(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            reverser = DPReverser(GpConfig(seed=9))
        assert len(deprecations(record)) == 1
        assert reverser.gp_config == GpConfig(seed=9)

    def test_legacy_kwargs_warn_and_apply(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            reverser = DPReverser(ocr_seed=11, gp_workers=2)
        assert len(deprecations(record)) == 1
        assert reverser.ocr_seed == 11
        assert reverser.gp_workers == 2

    def test_positional_plus_kwargs_single_warning(self):
        with warnings.catch_warnings(record=True) as record:
            warnings.simplefilter("always")
            reverser = DPReverser(GpConfig(seed=9), estimate_alignment=False)
        assert len(deprecations(record)) == 1
        assert reverser.gp_config == GpConfig(seed=9)
        assert reverser.estimate_alignment is False

    def test_unknown_kwarg_is_a_type_error(self):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                DPReverser(gp_confg=GpConfig(seed=2))  # typo'd name

    def test_legacy_and_modern_resolve_identically(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            legacy = DPReverser(GpConfig(seed=4), gp_workers=2)
        modern = DPReverser(ReverserConfig(gp_config=GpConfig(seed=4), gp_workers=2))
        assert legacy.config == modern.config
