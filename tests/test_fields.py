"""Tests for field extraction (Step 3 of diagnostic-frames analysis)."""

import pytest

from repro.core.assembly import AssembledMessage
from repro.core.fields import extract_fields


def message(payload, t, can_id=0x7E0):
    return AssembledMessage(payload, can_id, t, t, 1)


class TestUdsExtraction:
    def test_single_did_observation(self):
        messages = [
            message(b"\x22\xf4\x0d", 1.0),
            message(b"\x62\xf4\x0d\x21", 1.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        assert len(fields.observations) == 1
        obs = fields.observations[0]
        assert obs.identifier == "uds:F40D"
        assert obs.raw_bytes == b"\x21"
        assert obs.timestamp == 1.1

    def test_multi_did_split_by_request(self):
        messages = [
            message(b"\x22\xf4\x0d\x09\x50", 1.0),
            message(b"\x62\xf4\x0d\x21\x09\x50\x01\x02", 1.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        values = {o.identifier: o.raw_bytes for o in fields.observations}
        assert values == {"uds:F40D": b"\x21", "uds:0950": b"\x01\x02"}

    def test_read_request_recorded(self):
        fields = extract_fields([message(b"\x22\xf4\x0d", 1.0)])
        assert fields.read_requests[0].identifiers == (0xF40D,)

    def test_response_without_request_ignored(self):
        fields = extract_fields([message(b"\x62\xf4\x0d\x21", 1.0, can_id=0x7E8)])
        assert fields.observations == []


class TestKwpExtraction:
    def test_records_per_slot(self):
        messages = [
            message(b"\x21\x07", 1.0),
            message(b"\x61\x07\x01\xf1\x10\x07\x64\x50", 1.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        identifiers = [o.identifier for o in fields.observations]
        assert identifiers == ["kwp:07/0", "kwp:07/1"]
        assert fields.observations[0].formula_type == 0x01
        assert fields.observations[0].variables() == (0xF1, 0x10)


class TestObdExtraction:
    def test_mode01_observation(self):
        messages = [
            message(b"\x01\x0c", 1.0),
            message(b"\x41\x0c\x1a\xf8", 1.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        assert fields.observations[0].identifier == "obd2:0C"
        assert fields.observations[0].raw_bytes == b"\x1a\xf8"


class TestIoControlExtraction:
    def test_positive_sequence(self):
        messages = [
            message(b"\x2f\x09\x50\x02", 1.0),
            message(b"\x6f\x09\x50\x02", 1.1, can_id=0x7E8),
            message(b"\x2f\x09\x50\x03\x05\x01", 2.0),
            message(b"\x6f\x09\x50\x03\x05\x01", 2.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        assert len(fields.io_events) == 2
        assert all(e.positive for e in fields.io_events)
        assert fields.io_events[1].control_state == b"\x05\x01"

    def test_negative_response_marks_event(self):
        messages = [
            message(b"\x2f\x09\x50\x03\x05", 1.0),
            message(b"\x7f\x2f\x22", 1.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        assert len(fields.io_events) == 1
        assert not fields.io_events[0].positive

    def test_kwp_service_30(self):
        messages = [
            message(b"\x30\x15\x03\x00\x40\x00", 1.0),
            message(b"\x70\x15\x03\x00", 1.1, can_id=0x7E8),
        ]
        fields = extract_fields(messages)
        event = fields.io_events[0]
        assert event.service == 0x30
        assert event.identifier == 0x15
        assert event.io_parameter == 0x03
        assert event.control_state == b"\x00\x40\x00"


class TestGrouping:
    def test_by_identifier(self):
        messages = []
        for i in range(3):
            messages.append(message(b"\x22\xf4\x0d", float(i)))
            messages.append(message(bytes([0x62, 0xF4, 0x0D, i]), i + 0.1, can_id=0x7E8))
        grouped = extract_fields(messages).by_identifier()
        assert len(grouped["uds:F40D"]) == 3
