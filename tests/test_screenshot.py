"""Tests for screenshot analysis: text extraction + two-stage ESV filter."""

import pytest

from repro.core.screenshot import (
    UiSample,
    UiSeries,
    extract_ui_series,
    filter_series,
    outlier_filter,
    parse_value,
    range_filter,
)
from repro.cps import Camera, OcrEngine
from repro.simtime import SimClock
from repro.tools.ui import ScreenBuilder


class TestParseValue:
    def test_plain_number(self):
        assert parse_value("771.2") == (771.2, "")

    def test_number_with_unit(self):
        assert parse_value("33 km/h") == (33.0, "km/h")

    def test_negative(self):
        assert parse_value("-12.5 degC") == (-12.5, "degC")

    def test_enum_text(self):
        assert parse_value("Open") == (None, "")

    def test_ocr_mangled_number(self):
        value, __ = parse_value("2500")  # decimal point dropped
        assert value == 2500.0


def live_frames(values, label="Engine Speed", dt=0.5):
    camera = Camera(SimClock())
    ocr = OcrEngine(error_rate=0.0)
    frames = []
    clock = camera.clock
    for value in values:
        builder = ScreenBuilder("live", "Engine - Data Stream")
        builder.add_pair(label, f"{value}")
        frames.append(ocr.read_frame(camera.capture(builder.screen)))
        clock.advance(dt)
    return frames


class TestSeriesExtraction:
    def test_series_built_per_label(self):
        frames = live_frames([800, 810, 820])
        series = extract_ui_series(frames)
        assert "Engine Speed" in series
        assert [s.value for s in series["Engine Speed"].samples] == [800, 810, 820]

    def test_timestamps_increase(self):
        frames = live_frames([1, 2, 3])
        samples = extract_ui_series(frames)["Engine Speed"].samples
        assert samples[0].timestamp < samples[-1].timestamp

    def test_rare_mangled_label_merged(self):
        good = live_frames([800] * 10, label="Engine Speed")
        bad = live_frames([805], label="Engine Sped")  # OCR dropped a char
        series = extract_ui_series(good + bad)
        assert "Engine Speed" in series
        assert len(series) == 1
        assert len(series["Engine Speed"].samples) == 11

    def test_distinct_similar_labels_not_merged(self):
        a = live_frames([1] * 10, label="Wheel Speed FL")
        b = live_frames([2] * 10, label="Wheel Speed FR")
        series = extract_ui_series(a + b)
        assert set(series) == {"Wheel Speed FL", "Wheel Speed FR"}

    def test_placeholder_values_skipped(self):
        frames = live_frames(["---", 800])
        series = extract_ui_series(frames)
        assert len(series["Engine Speed"].samples) == 1


class TestRangeFilter:
    def test_out_of_range_removed(self):
        samples = [
            UiSample(0.0, "50", 50.0),
            UiSample(0.5, "999999", 999999.0),
        ]
        kept, removed = range_filter(samples, bounds=(0, 1000))
        assert removed == 1
        assert [s.value for s in kept] == [50.0]

    def test_enum_samples_kept(self):
        samples = [UiSample(0.0, "Open", None)]
        kept, removed = range_filter(samples, bounds=(0, 1))
        assert removed == 0 and len(kept) == 1


class TestOutlierFilter:
    def make(self, values):
        return [UiSample(i * 0.5, str(v), float(v)) for i, v in enumerate(values)]

    def test_isolated_spike_removed(self):
        """OCR x10 error: 94 -> 940 for one frame."""
        values = [90, 92, 94, 940, 96, 98, 100]
        kept, removed = outlier_filter(self.make(values))
        assert removed == 1
        assert 940 not in [s.value for s in kept]

    def test_sawtooth_wrap_kept(self):
        """Legit wrap-arounds (odometer-style) must survive (§3.3 despike)."""
        values = [100, 200, 300, 400, 10, 110, 210, 310, 410, 20, 120]
        kept, removed = outlier_filter(self.make(values))
        assert removed == 0

    def test_smooth_series_untouched(self):
        values = list(range(0, 200, 10))
        __, removed = outlier_filter(self.make(values))
        assert removed == 0

    def test_short_series_untouched(self):
        __, removed = outlier_filter(self.make([1, 1000, 1]))
        assert removed == 0

    def test_partial_read_spike_removed(self):
        """OCR partial read: 251.3 -> 1.3 for one frame on a slow signal."""
        values = [250.1, 250.9, 251.3, 1.3, 252.0, 252.4, 253.0]
        kept, removed = outlier_filter(self.make(values))
        assert removed == 1


class TestFilterSeries:
    def test_report_accounts_for_both_stages(self):
        samples = [
            UiSample(0.0, "10", 10.0),
            UiSample(0.5, "11", 11.0),
            UiSample(1.0, "12", 12.0),
            UiSample(1.5, "120", 120.0),  # spike
            UiSample(2.0, "13", 13.0),
            UiSample(2.5, "14", 14.0),
            UiSample(3.0, "1e7", 1e7),  # out of range
        ]
        cleaned, report = filter_series(
            UiSeries("X", samples), bounds=(0, 1000)
        )
        assert report.removed_range == 1
        assert report.removed_outlier == 1
        assert report.kept == 5
