"""The service wire protocol: framing, round-trips, and bounds."""

import struct

import pytest

from repro.can import CanFrame
from repro.cps.arm import ClickRecord
from repro.cps.camera import CapturedFrame, TextRegion
from repro.cps.collector import Capture, Segment
from repro.can import CanLog
from repro.service import MessageDecoder, ProtocolError, capture_to_wire, encode_message
from repro.service.protocol import (
    click_from_wire,
    click_to_wire,
    frame_from_wire,
    frame_to_wire,
    hello_message,
    kline_byte_from_wire,
    kline_byte_to_wire,
    segment_from_wire,
    segment_to_wire,
    video_from_wire,
    video_to_wire,
)
from repro.transport.kline import KLineByte


def make_capture(frames=(), video=(), clicks=(), segments=()):
    return Capture(
        model="Test Car",
        tool_name="test-tool",
        can_log=CanLog(list(frames)),
        video=list(video),
        clicks=list(clicks),
        segments=list(segments),
        tool_error_rate=0.02,
        camera_offset_s=0.25,
    )


class TestFraming:
    def test_round_trip_single_message(self):
        message = {"type": "frame", "t": 1.5, "id": 0x7E8, "data": "0102"}
        decoder = MessageDecoder()
        assert decoder.feed(encode_message(message)) == [message]

    def test_fragmented_delivery_one_byte_at_a_time(self):
        messages = [
            {"type": "hello", "version": 1},
            {"type": "frame", "t": 0.0, "id": 1, "data": "aa"},
            {"type": "finish"},
        ]
        wire = b"".join(encode_message(m) for m in messages)
        decoder = MessageDecoder()
        received = []
        for i in range(len(wire)):
            received.extend(decoder.feed(wire[i : i + 1]))
        assert received == messages

    def test_coalesced_delivery_all_at_once(self):
        messages = [{"type": "frame", "t": float(i), "id": i, "data": ""} for i in range(10)]
        wire = b"".join(encode_message(m) for m in messages)
        assert MessageDecoder().feed(wire) == messages

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_message({"type": "blob", "data": "x" * (1 << 21)})

    def test_hostile_length_prefix_fails_before_buffering(self):
        decoder = MessageDecoder(max_message_bytes=1024)
        with pytest.raises(ProtocolError, match="declared message length"):
            decoder.feed(struct.pack(">I", 1 << 30))

    def test_non_object_body_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="'type' field"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_garbage_body_rejected(self):
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="not JSON"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)


class TestRecordRoundTrips:
    def test_frame(self):
        frame = CanFrame(0x7E8, bytes([0x03, 0x41, 0x0C, 0x1A]), 12.345678, channel="can1")
        assert frame_from_wire(frame_to_wire(frame)) == frame

    def test_frame_defaults_stay_compact(self):
        frame = CanFrame(0x123, b"\x01", 1.0)
        wire = frame_to_wire(frame)
        assert "ext" not in wire and "ch" not in wire
        assert frame_from_wire(wire) == frame

    def test_frame_missing_fields_rejected(self):
        with pytest.raises(ProtocolError, match="bad frame"):
            frame_from_wire({"type": "frame", "t": 1.0})

    def test_kline_byte(self):
        byte = KLineByte(timestamp=3.5, value=0xA5)
        assert kline_byte_from_wire(kline_byte_to_wire(byte)) == byte

    def test_kline_byte_out_of_range_rejected(self):
        with pytest.raises(ProtocolError, match="bad kbyte"):
            kline_byte_from_wire({"type": "kbyte", "t": 0.0, "b": 300})

    def test_video(self):
        frame = CapturedFrame(
            timestamp=2.0,
            screen_name="live",
            regions=[
                TextRegion(
                    text="Engine Speed", x=10, y=20, width=100, height=16,
                    kind="label", icon="",
                )
            ],
        )
        assert video_from_wire(video_to_wire(frame)) == frame

    def test_click(self):
        click = ClickRecord(timestamp=1.0, x=5, y=7, label="Live Data", hit=True)
        assert click_from_wire(click_to_wire(click)) == click

    def test_segment(self):
        segment = Segment(kind="live", ecu="Engine", label="read", t_start=1.0, t_end=9.0)
        assert segment_from_wire(segment_to_wire(segment)) == segment


class TestCaptureToWire:
    def test_hello_first_finish_last_records_time_ordered(self):
        frames = [CanFrame(1, b"\x01", t) for t in (0.5, 1.5, 2.5)]
        video = [CapturedFrame(timestamp=1.0, screen_name="s", regions=[])]
        clicks = [ClickRecord(timestamp=2.0, x=0, y=0, label="go", hit=True)]
        segments = [Segment(kind="live", ecu="E", label="l", t_start=0.0, t_end=3.0)]
        capture = make_capture(frames, video, clicks, segments)
        messages = list(capture_to_wire(capture, tenant="t1", transport="isotp"))
        assert messages[0]["type"] == "hello"
        assert messages[0]["tenant"] == "t1"
        assert messages[-1]["type"] == "finish"
        records = messages[1:-2]  # between hello and segment+finish
        assert [r["t"] for r in records] == sorted(r["t"] for r in records)
        assert messages[-2]["type"] == "segment"

    def test_hello_carries_capture_meta(self):
        hello = hello_message(make_capture(), tenant="t", transport="auto")
        assert hello["meta"]["model"] == "Test Car"
        assert hello["meta"]["tool_error_rate"] == 0.02
        assert hello["meta"]["camera_offset_s"] == 0.25

    def test_unknown_transport_rejected(self):
        with pytest.raises(ProtocolError, match="unknown transport"):
            hello_message(make_capture(), transport="canfd")
