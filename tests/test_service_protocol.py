"""The service wire protocol: framing, round-trips, and bounds."""

import random
import struct

import pytest

from repro.can import CanFrame
from repro.cps.arm import ClickRecord
from repro.cps.camera import CapturedFrame, TextRegion
from repro.cps.collector import Capture, Segment
from repro.can import CanLog
from repro.service import MessageDecoder, ProtocolError, capture_to_wire, encode_message
from repro.service.protocol import (
    FRAME_RECORD,
    MAX_BATCH_FRAMES,
    click_from_wire,
    click_to_wire,
    frame_batch_to_wire,
    frame_from_wire,
    frame_to_wire,
    frames_from_batch,
    hello_message,
    kline_byte_from_wire,
    kline_byte_to_wire,
    segment_from_wire,
    segment_to_wire,
    video_from_wire,
    video_to_wire,
)
from repro.transport.kline import KLineByte


def make_capture(frames=(), video=(), clicks=(), segments=()):
    return Capture(
        model="Test Car",
        tool_name="test-tool",
        can_log=CanLog(list(frames)),
        video=list(video),
        clicks=list(clicks),
        segments=list(segments),
        tool_error_rate=0.02,
        camera_offset_s=0.25,
    )


class TestFraming:
    def test_round_trip_single_message(self):
        message = {"type": "frame", "t": 1.5, "id": 0x7E8, "data": "0102"}
        decoder = MessageDecoder()
        assert decoder.feed(encode_message(message)) == [message]

    def test_fragmented_delivery_one_byte_at_a_time(self):
        messages = [
            {"type": "hello", "version": 1},
            {"type": "frame", "t": 0.0, "id": 1, "data": "aa"},
            {"type": "finish"},
        ]
        wire = b"".join(encode_message(m) for m in messages)
        decoder = MessageDecoder()
        received = []
        for i in range(len(wire)):
            received.extend(decoder.feed(wire[i : i + 1]))
        assert received == messages

    def test_coalesced_delivery_all_at_once(self):
        messages = [{"type": "frame", "t": float(i), "id": i, "data": ""} for i in range(10)]
        wire = b"".join(encode_message(m) for m in messages)
        assert MessageDecoder().feed(wire) == messages

    def test_oversize_encode_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_message({"type": "blob", "data": "x" * (1 << 21)})

    def test_hostile_length_prefix_fails_before_buffering(self):
        decoder = MessageDecoder(max_message_bytes=1024)
        with pytest.raises(ProtocolError, match="declared message length"):
            decoder.feed(struct.pack(">I", 1 << 30))

    def test_non_object_body_rejected(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError, match="'type' field"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_garbage_body_rejected(self):
        body = b"\xff\xfe not json"
        with pytest.raises(ProtocolError, match="not JSON"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)


class TestRecordRoundTrips:
    def test_frame(self):
        frame = CanFrame(0x7E8, bytes([0x03, 0x41, 0x0C, 0x1A]), 12.345678, channel="can1")
        assert frame_from_wire(frame_to_wire(frame)) == frame

    def test_frame_defaults_stay_compact(self):
        frame = CanFrame(0x123, b"\x01", 1.0)
        wire = frame_to_wire(frame)
        assert "ext" not in wire and "ch" not in wire
        assert frame_from_wire(wire) == frame

    def test_frame_missing_fields_rejected(self):
        with pytest.raises(ProtocolError, match="bad frame"):
            frame_from_wire({"type": "frame", "t": 1.0})

    def test_kline_byte(self):
        byte = KLineByte(timestamp=3.5, value=0xA5)
        assert kline_byte_from_wire(kline_byte_to_wire(byte)) == byte

    def test_kline_byte_out_of_range_rejected(self):
        with pytest.raises(ProtocolError, match="bad kbyte"):
            kline_byte_from_wire({"type": "kbyte", "t": 0.0, "b": 300})

    def test_video(self):
        frame = CapturedFrame(
            timestamp=2.0,
            screen_name="live",
            regions=[
                TextRegion(
                    text="Engine Speed", x=10, y=20, width=100, height=16,
                    kind="label", icon="",
                )
            ],
        )
        assert video_from_wire(video_to_wire(frame)) == frame

    def test_click(self):
        click = ClickRecord(timestamp=1.0, x=5, y=7, label="Live Data", hit=True)
        assert click_from_wire(click_to_wire(click)) == click

    def test_segment(self):
        segment = Segment(kind="live", ecu="Engine", label="read", t_start=1.0, t_end=9.0)
        assert segment_from_wire(segment_to_wire(segment)) == segment


def random_frames(seed, n=200):
    """A frame mix covering every codec dimension the wire must carry."""
    rng = random.Random(seed)
    frames = []
    for i in range(n):
        extended = rng.random() < 0.3
        can_id = rng.randrange(1 << 29) if extended else rng.randrange(1 << 11)
        dlc = rng.choice([0, 1, 2, 7, 8])  # empty through max-DLC
        frames.append(
            CanFrame(
                can_id,
                bytes(rng.randrange(256) for _ in range(dlc)),
                timestamp=round(rng.random() * 100, 6),
                extended=extended,
                channel=rng.choice(["can0", "can1", "vcan0"]),
            )
        )
    return frames


class TestFrameBatch:
    def test_round_trip_equals_per_frame_codecs(self):
        frames = random_frames(seed=11)
        batch = frame_batch_to_wire(frames)
        assert frames_from_batch(batch) == frames
        # The same frames through the v1 per-frame codec agree exactly.
        assert [frame_from_wire(frame_to_wire(f)) for f in frames] == frames

    def test_round_trip_through_wire_bytes(self):
        frames = random_frames(seed=13, n=500)
        wire = encode_message(frame_batch_to_wire(frames))
        decoder = MessageDecoder()
        received = []
        # Fragmented delivery must not confuse the binary envelope.
        for start in range(0, len(wire), 97):
            received.extend(decoder.feed(wire[start : start + 97]))
        assert len(received) == 1
        assert frames_from_batch(received[0]) == frames

    def test_extended_id_and_channel_flags(self):
        frames = [
            CanFrame(0x1FFFFFFF, b"\x01", timestamp=1.0, extended=True, channel="can7"),
            CanFrame(0x7FF, bytes(range(8)), timestamp=2.0),
        ]
        batch = frame_batch_to_wire(frames)
        assert batch["channels"] == ["can7"]
        assert frames_from_batch(batch) == frames

    def test_all_can0_batch_omits_channel_table(self):
        batch = frame_batch_to_wire([CanFrame(1, b"\x01", timestamp=0.0)])
        assert "channels" not in batch

    def test_empty_batch(self):
        batch = frame_batch_to_wire([])
        assert batch["n"] == 0
        assert frames_from_batch(batch) == []
        decoded = MessageDecoder().feed(encode_message(batch))
        assert frames_from_batch(decoded[0]) == []

    def test_oversized_batch_rejected(self):
        frames = [CanFrame(1, b"\x01", timestamp=0.0)] * (MAX_BATCH_FRAMES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            frame_batch_to_wire(frames)

    def test_declared_count_must_match_payload(self):
        batch = frame_batch_to_wire([CanFrame(1, b"\x01", timestamp=0.0)])
        wire = bytearray(encode_message(batch))
        wire.extend(b"\x00" * FRAME_RECORD.size)  # extra record, stale n
        struct.pack_into(">I", wire, 0, len(wire) - 4)
        with pytest.raises(ProtocolError, match="declares"):
            MessageDecoder().feed(bytes(wire))

    def test_truncated_binary_envelope_rejected(self):
        body = b"\x00\x00"  # magic + half a header length
        with pytest.raises(ProtocolError, match="truncated"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_header_overrun_rejected(self):
        body = b"\x00" + struct.pack(">H", 500) + b"{}"
        with pytest.raises(ProtocolError, match="overruns"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_binary_envelope_requires_frame_batch_header(self):
        header = b'{"type":"frame"}'
        body = b"\x00" + struct.pack(">H", len(header)) + header
        with pytest.raises(ProtocolError, match="frame-batch"):
            MessageDecoder().feed(struct.pack(">I", len(body)) + body)

    def test_bad_dlc_in_record_rejected(self):
        packed = FRAME_RECORD.pack(1.0, 1, 0, 9, b"\x00" * 8)  # DLC 9 > 8
        with pytest.raises(ProtocolError, match="DLC"):
            frames_from_batch({"type": "frame-batch", "n": 1, "_packed": packed})

    def test_channel_index_outside_table_rejected(self):
        packed = FRAME_RECORD.pack(1.0, 1, 2 << 1, 1, b"\x01" + b"\x00" * 7)
        with pytest.raises(ProtocolError, match="channel"):
            frames_from_batch(
                {"type": "frame-batch", "n": 1, "channels": ["can1"], "_packed": packed}
            )


class TestCaptureToWire:
    def test_hello_first_finish_last_records_time_ordered(self):
        frames = [CanFrame(1, b"\x01", t) for t in (0.5, 1.5, 2.5)]
        video = [CapturedFrame(timestamp=1.0, screen_name="s", regions=[])]
        clicks = [ClickRecord(timestamp=2.0, x=0, y=0, label="go", hit=True)]
        segments = [Segment(kind="live", ecu="E", label="l", t_start=0.0, t_end=3.0)]
        capture = make_capture(frames, video, clicks, segments)
        messages = list(capture_to_wire(capture, tenant="t1", transport="isotp"))
        assert messages[0]["type"] == "hello"
        assert messages[0]["tenant"] == "t1"
        assert messages[-1]["type"] == "finish"
        records = messages[1:-2]  # between hello and segment+finish
        assert [r["t"] for r in records] == sorted(r["t"] for r in records)
        assert messages[-2]["type"] == "segment"

    def test_hello_carries_capture_meta(self):
        hello = hello_message(make_capture(), tenant="t", transport="auto")
        assert hello["meta"]["model"] == "Test Car"
        assert hello["meta"]["tool_error_rate"] == 0.02
        assert hello["meta"]["camera_offset_s"] == 0.25

    def test_unknown_transport_rejected(self):
        with pytest.raises(ProtocolError, match="unknown transport"):
            hello_message(make_capture(), transport="canfd")

    def test_batched_stream_expands_to_the_per_frame_stream(self):
        frames = [CanFrame(1, b"\x01", t / 10) for t in range(25)]
        video = [CapturedFrame(timestamp=1.05, screen_name="s", regions=[])]
        clicks = [ClickRecord(timestamp=1.75, x=0, y=0, label="go", hit=True)]
        capture = make_capture(frames, video, clicks)
        plain = list(capture_to_wire(capture, transport="isotp"))
        batched = list(capture_to_wire(capture, transport="isotp", batch_size=4))
        expanded = []
        for message in batched:
            if message["type"] == "frame-batch":
                assert 0 < message["n"] <= 4
                expanded.extend(
                    frame_to_wire(f) for f in frames_from_batch(message)
                )
            else:
                expanded.append(message)
        assert expanded == plain
        # Non-frame records flush a partial batch: the video frame at 1.05
        # and the click at 1.75 interrupt two frame runs.
        assert any(m["type"] == "frame-batch" and m["n"] < 4 for m in batched)

    def test_batch_size_zero_is_the_v1_wire(self):
        capture = make_capture([CanFrame(1, b"\x01", 0.0)])
        kinds = [m["type"] for m in capture_to_wire(capture, transport="isotp")]
        assert "frame" in kinds and "frame-batch" not in kinds
