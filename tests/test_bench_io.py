"""The benchmark-artifact layer: ``benchmarks/bench_io.py`` round-trips
and the ``scripts/bench_compare.py`` regression gate's comparison policy.

Neither module lives on the installed package path (benchmarks/ is on the
pytest rootdir path; scripts/ is CLI-only), so both are loaded by file
location here.
"""

import importlib.util
import json
import math
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def _load(name, path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault(name, module)
    spec.loader.exec_module(module)
    return module


bench_io = _load("bench_io", REPO / "benchmarks" / "bench_io.py")
bench_compare = _load("bench_compare", REPO / "scripts" / "bench_compare.py")


def write(tmp_path, subdir, name, metrics, units, config=None):
    return bench_io.write_bench(tmp_path / subdir, name, metrics, units, config)


# ----------------------------------------------------------------- bench_io


class TestBenchIo:
    def test_artifact_round_trip(self, tmp_path):
        path = bench_io.write_bench(
            tmp_path,
            "gp_perf",
            {"wall_s": 1.25, "cases": 8},
            {"wall_s": "s", "cases": "count"},
            config={"quick": True},
        )
        assert path.name == "BENCH_gp_perf.json"
        artifact = bench_io.read_bench(path)
        assert artifact["name"] == "gp_perf"
        assert artifact["schema_version"] == bench_io.BENCH_SCHEMA_VERSION
        assert artifact["metrics"] == {"cases": 8, "wall_s": 1.25}
        assert artifact["units"] == {"cases": "count", "wall_s": "s"}
        assert artifact["config"] == {"quick": True}
        assert artifact["config_fingerprint"] == bench_io.config_fingerprint(
            {"quick": True}
        )

    def test_metrics_without_units_rejected(self):
        with pytest.raises(ValueError, match="without units"):
            bench_io.build_artifact("x", {"a": 1}, {})

    def test_fingerprint_is_order_insensitive(self):
        assert bench_io.config_fingerprint(
            {"a": 1, "b": 2}
        ) == bench_io.config_fingerprint({"b": 2, "a": 1})
        assert bench_io.config_fingerprint({"a": 1}) != bench_io.config_fingerprint(
            {"a": 2}
        )

    def test_read_bench_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema_version": 99, "name": "bad"}))
        with pytest.raises(ValueError, match="schema"):
            bench_io.read_bench(path)

    def test_read_bench_rejects_missing_keys(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(
            json.dumps({"schema_version": bench_io.BENCH_SCHEMA_VERSION, "name": "bad"})
        )
        with pytest.raises(ValueError, match="missing"):
            bench_io.read_bench(path)

    def test_load_artifact_dir_keys_by_name(self, tmp_path):
        bench_io.write_bench(tmp_path, "alpha", {"n": 1}, {"n": "count"})
        bench_io.write_bench(tmp_path, "beta", {"n": 2}, {"n": "count"})
        (tmp_path / "notes.txt").write_text("ignored")
        artifacts = bench_io.load_artifact_dir(tmp_path)
        assert sorted(artifacts) == ["alpha", "beta"]
        assert artifacts["beta"]["metrics"]["n"] == 2


# ------------------------------------------------------------ bench_compare


FAIL, WARN, NOTE, OK = (
    bench_compare.FAIL,
    bench_compare.WARN,
    bench_compare.NOTE,
    bench_compare.OK,
)


def severity(bench, metric, unit, base, cur, rel_tol=0.25, abs_tol=0.0):
    return bench_compare.compare_metric(
        bench, metric, unit, base, cur, rel_tol, abs_tol
    ).severity


class TestCompareMetric:
    def test_identity_exact_match_ok(self):
        assert severity("b", "correct", "count", 12, 12) == OK

    def test_identity_any_change_fails(self):
        assert severity("b", "correct", "count", 12, 11) == FAIL
        assert severity("b", "precision", "ratio", 0.983, 0.982999) == FAIL

    def test_timing_within_rel_tolerance_ok(self):
        assert severity("b", "wall_s", "s", 1.0, 1.25) == OK
        assert severity("b", "wall_s", "s", 1.0, 0.75) == OK

    def test_timing_beyond_rel_tolerance_warns(self):
        assert severity("b", "wall_s", "s", 1.0, 1.2500001) == WARN
        assert severity("b", "wall_s", "s", 1.0, 10.0) == WARN

    def test_timing_abs_tolerance_rescues_small_bases(self):
        # 0.01 s -> 0.05 s is a 400% relative move but negligible wall time.
        assert severity("b", "wall_s", "s", 0.01, 0.05) == WARN
        assert severity("b", "wall_s", "s", 0.01, 0.05, abs_tol=0.1) == OK

    def test_timing_zero_baseline(self):
        assert severity("b", "wall_s", "s", 0.0, 0.0) == OK
        assert severity("b", "wall_s", "s", 0.0, 0.5) == WARN

    def test_nan_both_sides_ok(self):
        nan = float("nan")
        assert severity("b", "x", "count", nan, nan) == OK
        assert severity("b", "x", "s", nan, nan) == OK

    def test_nan_one_side_fails(self):
        nan = float("nan")
        assert severity("b", "x", "count", nan, 1.0) == FAIL
        assert severity("b", "x", "s", 1.0, nan) == FAIL


class TestCompareSets:
    def art(self, name, metrics, units, config=None):
        return bench_io.build_artifact(name, metrics, units, config)

    def test_unchanged_sets_all_ok(self):
        artifact = self.art("b", {"n": 1, "t": 2.0}, {"n": "count", "t": "s"})
        findings = bench_compare.compare_sets({"b": artifact}, {"b": artifact})
        assert {f.severity for f in findings} == {OK}
        assert bench_compare.gate(findings) == 0

    def test_missing_bench_fails(self):
        artifact = self.art("b", {"n": 1}, {"n": "count"})
        findings = bench_compare.compare_sets({"b": artifact}, {})
        assert [f.severity for f in findings] == [FAIL]
        assert bench_compare.gate(findings) == 1

    def test_new_bench_is_a_note(self):
        artifact = self.art("b", {"n": 1}, {"n": "count"})
        findings = bench_compare.compare_sets({}, {"b": artifact})
        assert [f.severity for f in findings] == [NOTE]
        assert bench_compare.gate(findings) == 0

    def test_missing_metric_fails_new_metric_notes(self):
        base = self.art("b", {"kept": 1, "gone": 2}, {"kept": "count", "gone": "count"})
        cur = self.art("b", {"kept": 1, "added": 3}, {"kept": "count", "added": "count"})
        findings = bench_compare.compare_sets({"b": base}, {"b": cur})
        by_metric = {f.metric: f.severity for f in findings}
        assert by_metric["gone"] == FAIL
        assert by_metric["added"] == NOTE
        assert by_metric["kept"] == OK

    def test_config_fingerprint_change_is_a_note(self):
        base = self.art("b", {"n": 1}, {"n": "count"}, config={"quick": True})
        cur = self.art("b", {"n": 1}, {"n": "count"}, config={"quick": False})
        findings = bench_compare.compare_sets({"b": base}, {"b": cur})
        assert any(f.severity == NOTE and "fingerprint" in f.message for f in findings)
        assert bench_compare.gate(findings) == 0

    def test_gate_upgrades_timing_warns_when_asked(self):
        base = self.art("b", {"t": 1.0}, {"t": "s"})
        cur = self.art("b", {"t": 5.0}, {"t": "s"})
        findings = bench_compare.compare_sets({"b": base}, {"b": cur})
        assert bench_compare.gate(findings) == 0
        assert bench_compare.gate(findings, fail_on_timing=True) == 1


class TestFloors:
    def art(self, name, metrics, units):
        return bench_io.build_artifact(name, metrics, units)

    def parse(self, spec):
        return bench_compare.parse_floor(spec)

    def test_parse_bare_and_qualified(self):
        assert self.parse("process_speedup=1.0") == (None, "process_speedup", 1.0)
        assert self.parse("gp_perf.process_speedup=2") == (
            "gp_perf",
            "process_speedup",
            2.0,
        )

    def test_parse_rejects_malformed_specs(self):
        for spec in ("no_equals", "=1.0", "m=", "m=abc", "m=nan"):
            with pytest.raises(ValueError):
                self.parse(spec)

    def floors(self, current, *specs):
        return bench_compare.check_floors(
            current, [self.parse(spec) for spec in specs]
        )

    def test_met_floor_is_ok(self):
        current = {"gp_perf": self.art("gp_perf", {"process_speedup": 2.1}, {"process_speedup": "x"})}
        findings = self.floors(current, "process_speedup=1.0")
        assert [f.severity for f in findings] == [OK]
        assert bench_compare.gate(findings) == 0

    def test_below_floor_fails_even_for_timing_units(self):
        # "x" is a timing unit (ratios of wall-clock), so baseline
        # comparison would only WARN — the floor must still hard-fail.
        current = {"gp_perf": self.art("gp_perf", {"process_speedup": 0.8}, {"process_speedup": "x"})}
        findings = self.floors(current, "process_speedup=1.0")
        assert [f.severity for f in findings] == [FAIL]
        assert bench_compare.gate(findings) == 1

    def test_bare_floor_applies_to_every_exposing_bench(self):
        current = {
            "a": self.art("a", {"speed": 2.0}, {"speed": "x"}),
            "b": self.art("b", {"speed": 0.5}, {"speed": "x"}),
            "c": self.art("c", {"other": 9.0}, {"other": "x"}),
        }
        findings = self.floors(current, "speed=1.0")
        assert {(f.bench, f.severity) for f in findings} == {("a", OK), ("b", FAIL)}

    def test_qualified_floor_pins_one_bench(self):
        current = {
            "a": self.art("a", {"speed": 2.0}, {"speed": "x"}),
            "b": self.art("b", {"speed": 0.5}, {"speed": "x"}),
        }
        findings = self.floors(current, "a.speed=1.0")
        assert [(f.bench, f.severity) for f in findings] == [("a", OK)]

    def test_missing_metric_or_bench_fails(self):
        current = {"a": self.art("a", {"speed": 2.0}, {"speed": "x"})}
        assert [f.severity for f in self.floors(current, "absent=1.0")] == [FAIL]
        assert [f.severity for f in self.floors(current, "nope.speed=1.0")] == [FAIL]

    def test_nan_value_fails(self):
        current = {"a": self.art("a", {"speed": float("nan")}, {"speed": "x"})}
        assert [f.severity for f in self.floors(current, "speed=1.0")] == [FAIL]


class TestCompareCli:
    def setup_dirs(self, tmp_path, base_metrics, cur_metrics, units):
        write(tmp_path, "baseline", "b", base_metrics, units)
        write(tmp_path, "current", "b", cur_metrics, units)
        return str(tmp_path / "baseline"), str(tmp_path / "current")

    def test_exit_zero_on_identical_sets(self, tmp_path, capsys):
        base, cur = self.setup_dirs(
            tmp_path, {"n": 4}, {"n": 4}, {"n": "count"}
        )
        assert bench_compare.main([base, cur]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_identity_regression(self, tmp_path, capsys):
        base, cur = self.setup_dirs(
            tmp_path, {"n": 4}, {"n": 3}, {"n": "count"}
        )
        assert bench_compare.main([base, cur]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_exit_two_on_missing_directory(self, tmp_path, capsys):
        (tmp_path / "baseline").mkdir()
        assert bench_compare.main(
            [str(tmp_path / "baseline"), str(tmp_path / "nope")]
        ) == 2

    def test_exit_two_on_empty_baseline(self, tmp_path, capsys):
        (tmp_path / "baseline").mkdir()
        write(tmp_path, "current", "b", {"n": 1}, {"n": "count"})
        assert bench_compare.main(
            [str(tmp_path / "baseline"), str(tmp_path / "current")]
        ) == 2

    def test_quiet_hides_ok_findings(self, tmp_path, capsys):
        base, cur = self.setup_dirs(tmp_path, {"n": 4}, {"n": 4}, {"n": "count"})
        bench_compare.main([base, cur, "--quiet"])
        out = capsys.readouterr().out
        assert "[OK]" not in out

    def test_floor_gates_exit_code(self, tmp_path, capsys):
        base, cur = self.setup_dirs(
            tmp_path, {"speed": 1.0}, {"speed": 0.9}, {"speed": "x"}
        )
        # Timing drift alone passes the gate...
        assert bench_compare.main([base, cur]) == 0
        # ...but the floor turns the same artifacts into a hard failure.
        assert bench_compare.main([base, cur, "--floor", "speed=1.0"]) == 1
        assert "below floor" in capsys.readouterr().out
        assert bench_compare.main([base, cur, "--floor", "speed=0.5"]) == 0

    def test_malformed_floor_is_usage_error(self, tmp_path, capsys):
        base, cur = self.setup_dirs(tmp_path, {"n": 4}, {"n": 4}, {"n": "count"})
        assert bench_compare.main([base, cur, "--floor", "garbage"]) == 2
