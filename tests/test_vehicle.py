"""Tests for Vehicle wiring across the three transports."""

import pytest

from repro.diagnostics import uds
from repro.formulas import AffineFormula
from repro.simtime import SimClock
from repro.vehicle import SimulatedEcu, TransportKind, UdsDataPoint, Vehicle
from repro.vehicle.signals import ConstantSignal


def make_vehicle(transport):
    vehicle = Vehicle("TestCar", transport=transport)
    ecu = SimulatedEcu("Engine", vehicle.clock)
    ecu.add_data_point(
        UdsDataPoint(0xF400, "Speed", [ConstantSignal(55)], AffineFormula(1.0))
    )
    if transport == TransportKind.ISOTP:
        vehicle.add_ecu(ecu, ecu_tx_id=0x7E8, ecu_rx_id=0x7E0)
    elif transport == TransportKind.VWTP:
        vehicle.add_ecu(ecu, ecu_tx_id=0x300, ecu_rx_id=0x740, ecu_address=0x01)
    else:
        vehicle.add_ecu(ecu, ecu_tx_id=0x600, ecu_rx_id=0x6F0, ecu_address=0x12)
    return vehicle


@pytest.mark.parametrize(
    "transport", [TransportKind.ISOTP, TransportKind.VWTP, TransportKind.BMW]
)
class TestRoundTrip:
    def test_read_over_any_transport(self, transport):
        vehicle = make_vehicle(transport)
        endpoint = vehicle.tester_endpoint("Engine")
        endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
        response = endpoint.receive()
        assert response == b"\x62\xf4\x00\x37"

    def test_sniffer_captures_conversation(self, transport):
        vehicle = make_vehicle(transport)
        sniffer = vehicle.attach_sniffer()
        endpoint = vehicle.tester_endpoint("Engine")
        endpoint.send(uds.encode_read_data_by_identifier([0xF400]))
        endpoint.receive()
        assert len(sniffer.log) >= 2


class TestVehicleStructure:
    def test_duplicate_ecu_rejected(self):
        vehicle = Vehicle("X")
        ecu = SimulatedEcu("Engine", vehicle.clock)
        vehicle.add_ecu(ecu, 0x7E8, 0x7E0)
        with pytest.raises(ValueError):
            vehicle.add_ecu(SimulatedEcu("Engine", vehicle.clock), 0x7EA, 0x7E2)

    def test_dashboard_merges_all_ecus(self):
        vehicle = Vehicle("X")
        a = SimulatedEcu("A", vehicle.clock)
        a.add_data_point(
            UdsDataPoint(
                0xF400, "Speed", [ConstantSignal(10)], AffineFormula(1.0), on_dashboard=True
            )
        )
        b = SimulatedEcu("B", vehicle.clock)
        b.add_data_point(
            UdsDataPoint(
                0x1000, "RPM", [ConstantSignal(20)], AffineFormula(1.0), on_dashboard=True
            )
        )
        vehicle.add_ecu(a, 0x7E8, 0x7E0)
        vehicle.add_ecu(b, 0x7EA, 0x7E2)
        assert vehicle.dashboard() == {"Speed": 10.0, "RPM": 20.0}

    def test_release_tester_detaches_node(self):
        vehicle = make_vehicle(TransportKind.ISOTP)
        endpoint = vehicle.tester_endpoint("Engine")
        vehicle.release_tester(endpoint)
        # A new tester can be created and still works.
        endpoint2 = vehicle.tester_endpoint("Engine")
        endpoint2.send(uds.encode_read_data_by_identifier([0xF400]))
        assert endpoint2.receive() is not None

    def test_multiple_testers_unique_names(self):
        vehicle = make_vehicle(TransportKind.ISOTP)
        first = vehicle.tester_endpoint("Engine")
        second = vehicle.tester_endpoint("Engine")
        assert first.node.name != second.node.name
