"""Pluggable formula-inference backends: ``gp`` | ``linear`` | ``hybrid``.

Pins down the contract of the :class:`~repro.core.inference
.InferenceBackend` seam:

* the linear dictionary recovers GP-equivalent math on the affine/rescale
  ESVs and passes :func:`~repro.core.verification.check_formula` against
  ground truth — never a plausible wrong answer;
* ``hybrid`` finds exactly the ESV set pure GP finds, and its GP-tail
  report rows are byte-identical to the pure-GP run's;
* the formula memo is backend-tagged — cold/warm/switch runs never recall
  an entry written under a different ``formula_backend``;
* ``confidence`` survives report JSON, memo entries and the streaming
  service end to end.
"""

import asyncio
import json
import math

import pytest

from repro.core import (
    DPReverser,
    FormulaMemo,
    GpConfig,
    INFERENCE_BACKENDS,
    LinearFormula,
    ReverserConfig,
    check_formula,
    dataset_key,
    get_backend,
)
from repro.core.inference import (
    LINEAR_ACCEPT_FITNESS,
    LinearBackend,
    _term_value,
    sample_agreement,
)
from repro.core.response_analysis import InferredFormula, PairedDataset
from repro.cps import DataCollector
from repro.service import DiagnosticServer, ServiceConfig, stream_capture_async
from repro.tools import make_tool_for_car
from repro.vehicle import build_car, ground_truth_formulas

GP = GpConfig(seed=2, generations=8, population_size=100)


def collect(key):
    car = build_car(key)
    capture = DataCollector(make_tool_for_car(key, car)).collect()
    return car, capture


@pytest.fixture(scope="module")
def car_a():
    return collect("A")


@pytest.fixture(scope="module")
def car_e():
    return collect("E")


def reverse(capture, backend, **overrides):
    reverser = DPReverser(
        ReverserConfig(gp_config=GP, formula_backend=backend, **overrides)
    )
    return reverser.reverse_engineer(capture), reverser


# ----------------------------------------------------------------- unit level


class TestTermGrammar:
    def test_terms_evaluate(self):
        xs = (0x1234, 5.0)
        assert _term_value("1", xs) == 1.0
        assert _term_value("x0", xs) == float(0x1234)
        assert _term_value("x1", xs) == 5.0
        assert _term_value("x0>>8", xs) == float(0x12)
        assert _term_value("x0&255", xs) == float(0x34)
        assert _term_value("x0*x1", xs) == 0x1234 * 5.0
        assert _term_value("x0/x1", xs) == 0x1234 / 5.0

    def test_zero_divisor_is_nan_not_crash(self):
        assert math.isnan(_term_value("x0/x1", (7.0, 0.0)))

    def test_formula_payload_round_trip(self):
        formula = LinearFormula(("x0", "1"), (0.25, -40.0), arity=1)
        clone = LinearFormula.from_payload(formula.to_payload())
        assert clone.terms == formula.terms
        assert clone.coefficients == formula.coefficients
        assert clone.describe() == formula.describe() == "Y = 0.25*X0 - 40"
        assert clone((100.0,)) == formula((100.0,)) == -15.0


class TestRegistry:
    def test_names_resolve(self):
        for name in INFERENCE_BACKENDS:
            assert get_backend(name).name == name

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown formula backend"):
            get_backend("neural")

    def test_top_level_exports(self):
        import repro

        assert repro.LinearBackend is LinearBackend
        assert repro.LinearFormula is LinearFormula
        assert repro.InferenceBackend is type(get_backend("gp")).__mro__[1]


class TestSampleAgreement:
    def test_perfect_fit_is_one(self):
        formula = LinearFormula(("x0",), (2.0,), arity=1)
        dataset = PairedDataset([(x,) for x in range(10)], [2.0 * x for x in range(10)])
        assert sample_agreement(formula, dataset) == 1.0

    def test_disagreement_counts(self):
        formula = LinearFormula(("x0",), (2.0,), arity=1)
        dataset = PairedDataset([(100.0,), (200.0,)], [200.0, 4000.0])
        assert sample_agreement(formula, dataset) == 0.5


# ------------------------------------------------------------ linear vs truth


class TestLinearRecoversGroundTruth:
    def test_linear_formulas_are_exact_on_ground_truth(self, car_e):
        car, capture = car_e
        report, reverser = reverse(capture, "linear")
        truth = ground_truth_formulas(car)
        assert report.formula_esvs, "car E should expose formula ESVs"
        for esv in report.formula_esvs:
            assert esv.formula is not None, f"{esv.identifier} not solved"
            assert esv.formula.backend == "linear"
            assert esv.formula.fitness <= LINEAR_ACCEPT_FITNESS
            assert check_formula(esv.formula, truth[esv.identifier], esv.samples), (
                f"linear formula for {esv.identifier} disagrees with truth: "
                f"{esv.formula.description}"
            )
        assert reverser.inference_stats["linear.formulas"] == len(report.formula_esvs)

    def test_linear_matches_gp_on_easy_esvs(self, car_e):
        """Same math, even when the two backends picked different
        interpretations of the raw bytes (per-byte vs big-endian int) —
        each formula is fed its own encoding of the same raw value."""
        __, capture = car_e
        linear_report, __ = reverse(capture, "linear")
        gp_report, __ = reverse(capture, "gp")
        gp_by_id = {e.identifier: e for e in gp_report.formula_esvs}

        def recode(xs, from_interp, to_interp, width):
            if from_interp == to_interp:
                return xs
            if to_interp == "int":
                value = 0
                for byte in xs:
                    value = (value << 8) | int(byte)
                return (float(value),)
            value = int(xs[0])
            return tuple(
                float((value >> (8 * (width - 1 - i))) & 0xFF) for i in range(width)
            )

        for esv in linear_report.formula_esvs:
            gp_esv = gp_by_id[esv.identifier]
            if gp_esv.formula is None:
                continue
            width = len(gp_esv.samples[0]) if gp_esv.samples else 1
            for xs in esv.samples[:24]:
                got = esv.formula.formula(xs)
                gp_xs = recode(
                    xs,
                    esv.formula.interpretation,
                    gp_esv.formula.interpretation,
                    width,
                )
                via_gp = gp_esv.formula.formula(gp_xs)
                tolerance = max(0.5, 0.05 * abs(via_gp))
                assert abs(got - via_gp) <= tolerance, (
                    f"{esv.identifier}: linear {got} vs gp {via_gp} at {xs}"
                )


# ------------------------------------------------------------- hybrid == gp


@pytest.mark.slow
class TestHybridMatchesGp:
    def test_identical_esv_set_and_gp_tail_rows(self, car_a):
        car, capture = car_a
        gp_report, __ = reverse(capture, "gp")
        hybrid_report, reverser = reverse(capture, "hybrid")
        truth = ground_truth_formulas(car)

        gp_rows = {row["identifier"]: row for row in gp_report.to_dict()["esvs"]}
        gp_found = {
            e.identifier for e in gp_report.formula_esvs if e.formula is not None
        }
        hybrid_found = {
            e.identifier for e in hybrid_report.formula_esvs if e.formula is not None
        }
        assert hybrid_found == gp_found

        n_linear = n_fallback = 0
        for esv, row in zip(hybrid_report.esvs, hybrid_report.to_dict()["esvs"]):
            if esv.is_enum or esv.formula is None:
                continue
            if esv.formula.backend == "gp":
                # The GP tail: the row (formula, fitness, samples...) must
                # be byte-identical to what pure GP produced.
                n_fallback += 1
                assert row == gp_rows[esv.identifier]
            else:
                n_linear += 1
                assert row["backend"] == "linear"
                assert 0.0 <= row["confidence"] <= 1.0
                assert check_formula(esv.formula, truth[esv.identifier], esv.samples)
        assert n_linear > 0, "expected linear coverage on car A"
        assert n_fallback > 0, "expected a GP tail on car A"
        assert reverser.inference_stats["hybrid.fallbacks"] == n_fallback
        assert reverser.inference_stats["linear.formulas"] == n_linear

    def test_pure_gp_report_shape_is_unchanged(self, car_a):
        __, capture = car_a
        report, __ = reverse(capture, "gp")
        payload = report.to_dict()
        assert "formula_backend" not in payload
        for row in payload["esvs"]:
            assert "backend" not in row
            assert "confidence" not in row

    def test_hybrid_report_declares_backend(self, car_a):
        __, capture = car_a
        report, __ = reverse(capture, "hybrid")
        assert report.to_dict()["formula_backend"] == "hybrid"


# --------------------------------------------------------- backend-tagged memo


class TestBackendTaggedMemo:
    def test_key_includes_backend(self, car_e):
        __, capture = car_e
        reverser = DPReverser(ReverserConfig(gp_config=GP))
        context = reverser.analyze(capture)
        match = context.matches[0]
        observations = context.grouped[match.identifier]
        series = context.series[match.label]
        keys = {
            backend: dataset_key(observations, series, GP, backend=backend)
            for backend in INFERENCE_BACKENDS
        }
        assert len(set(keys.values())) == len(INFERENCE_BACKENDS)

    def test_cold_warm_switch_matrix_never_crosses_backends(self, car_e, tmp_path):
        __, capture = car_e
        memo_dir = str(tmp_path / "memo")
        reports = {}
        # Cold then warm per backend, interleaved so a cross-backend
        # recall would have plenty of foreign entries to (wrongly) hit.
        for phase in ("cold", "warm"):
            for backend in INFERENCE_BACKENDS:
                report, reverser = reverse(capture, backend, gp_memo_dir=memo_dir)
                n = len(report.formula_esvs)
                if phase == "cold":
                    reports[backend] = report.to_json()
                    assert reverser.memo_stats["hits"] == 0
                    assert reverser.memo_stats[f"{backend}.misses"] == n
                else:
                    assert report.to_json() == reports[backend], (
                        f"warm {backend} run diverged from its cold run"
                    )
                    assert reverser.memo_stats["misses"] == 0
                    assert reverser.memo_stats[f"{backend}.hits"] == n

    def test_memo_entry_round_trips_confidence(self, tmp_path):
        memo = FormulaMemo(tmp_path)
        inferred = InferredFormula(
            formula=LinearFormula(("x0", "1"), (0.25, -40.0), arity=1),
            description="Y = 0.25*X0 - 40",
            fitness=0.001,
            interpretation="int",
            n_samples=32,
            generations=0,
            backend="linear",
            confidence=0.9375,
        )
        memo.put("ab" * 32, inferred)
        hit, recalled = memo.get("ab" * 32)
        assert hit
        assert isinstance(recalled.formula, LinearFormula)
        assert recalled.backend == "linear"
        assert recalled.confidence == 0.9375
        assert recalled.description == inferred.description
        assert recalled.formula((100.0,)) == -15.0


# ------------------------------------------------------- confidence round trip


class TestConfidenceRoundTrip:
    def test_report_json_round_trip(self, car_e):
        __, capture = car_e
        report, __ = reverse(capture, "linear")
        payload = json.loads(report.to_json())
        assert payload["formula_backend"] == "linear"
        rows = [r for r in payload["esvs"] if "confidence" in r]
        assert rows, "expected linear rows carrying confidence"
        for row in rows:
            assert row["backend"] == "linear"
            assert 0.0 <= row["confidence"] <= 1.0
            assert row["confidence"] == round(row["confidence"], 4)

    def test_streaming_service_carries_confidence(self, car_e):
        __, capture = car_e

        async def run():
            config = ServiceConfig(gp_config=GP, formula_backend="hybrid")
            async with DiagnosticServer(config) as server:
                result = await stream_capture_async(
                    "127.0.0.1", server.port, capture, transport="auto"
                )
                return server, result

        server, result = asyncio.run(run())
        assert result.report["formula_backend"] == "hybrid"
        rows = [r for r in result.report["esvs"] if "confidence" in r]
        assert rows, "expected linear-solved rows in the streamed report"
        assert server.inference_stats["linear.formulas"] >= len(rows)
        counters = server.snapshot()["counters"]
        assert counters["inference.linear.formulas"] >= len(rows)
