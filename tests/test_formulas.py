"""Tests for formula objects and numeric equivalence."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formulas import (
    AffineFormula,
    EnumFormula,
    ExpressionFormula,
    ProductFormula,
    TwoVarAffineFormula,
    formulas_equivalent,
)


class TestFormulaShapes:
    def test_affine(self):
        formula = AffineFormula(1.8, -40.0)
        assert formula((100,)) == pytest.approx(140.0)
        assert "1.8" in formula.describe()

    def test_affine_describe_zero_offset(self):
        assert AffineFormula(0.5).describe() == "Y = 0.5*X"

    def test_product(self):
        assert ProductFormula(0.2)((241, 16)) == pytest.approx(771.2)

    def test_two_var_affine(self):
        formula = TwoVarAffineFormula(64.0, 0.25)
        assert formula((0x1A, 0xF8)) == pytest.approx((256 * 0x1A + 0xF8) / 4)

    def test_expression(self):
        formula = ExpressionFormula(lambda xs: xs[0] ** 2, 1, "Y = X*X")
        assert formula((3,)) == 9

    def test_enum_labels(self):
        formula = EnumFormula({0: "Closed", 1: "Open"})
        assert formula.label(1) == "Open"
        assert formula.label(9) == "state 9"
        assert formula((1,)) == 1.0


class TestEquivalence:
    def test_paper_coolant_example(self):
        """§4.2: Y=1.7X-22 vs Y=1.8X-40 over X in 0xA0..0xC0 are the same."""
        truth = AffineFormula(1.8, -40.0)
        inferred = AffineFormula(1.7, -22.0)
        samples = [(float(x),) for x in range(0xA0, 0xC1)]
        assert formulas_equivalent(inferred, truth, samples)

    def test_diverges_outside_observed_range(self):
        truth = AffineFormula(1.8, -40.0)
        inferred = AffineFormula(1.7, -22.0)
        samples = [(10000.0,)]  # far outside the paper's observed range
        assert not formulas_equivalent(inferred, truth, samples)

    def test_reflexive(self):
        formula = ProductFormula(0.2)
        samples = [(float(a), float(b)) for a in (1, 50, 200) for b in (1, 99, 255)]
        assert formulas_equivalent(formula, formula, samples)

    def test_empty_samples_false(self):
        assert not formulas_equivalent(AffineFormula(1), AffineFormula(1), [])

    def test_nan_candidate_rejected(self):
        bad = ExpressionFormula(lambda xs: float("nan"), 1, "Y = nan")
        assert not formulas_equivalent(bad, AffineFormula(1.0), [(1.0,)])

    def test_exception_candidate_rejected(self):
        def explode(xs):
            raise ValueError("boom")

        bad = ExpressionFormula(explode, 1, "Y = ?")
        assert not formulas_equivalent(bad, AffineFormula(1.0), [(1.0,)])


@settings(max_examples=50, deadline=None)
@given(
    a=st.floats(0.01, 100),
    xs=st.lists(st.floats(0, 255), min_size=1, max_size=20),
)
def test_equivalence_tolerates_five_percent(a, xs):
    """Property: a pure scaling off by <2 percent stays equivalent."""
    truth = AffineFormula(a)
    close = AffineFormula(a * 1.02)
    samples = [(x,) for x in xs]
    assert formulas_equivalent(close, truth, samples, rel_tol=0.05, abs_tol=2.5)
