"""Tests for the OBD telematics-app simulator."""

import pytest

from repro.diagnostics import obd2
from repro.tools import IMPERIAL_PIDS, ObdTelematicsApp
from repro.vehicle import ObdVehicleSimulator


class TestObdApp:
    def test_displays_all_pids(self):
        simulator = ObdVehicleSimulator()
        app = ObdTelematicsApp(simulator)
        app.tick()
        values = [w.text for w in app.screen.widgets if w.kind.value == "value"]
        assert len(values) == len(simulator.pids)
        assert all(v != "---" for v in values)

    def test_displayed_value_matches_sae_formula(self):
        simulator = ObdVehicleSimulator(pids=[0x0C])
        app = ObdTelematicsApp(simulator, pids=[0x0C])
        t = simulator.clock.now()
        expected = simulator.ground_truth(0x0C, t)
        app.tick()
        value = next(w.text for w in app.screen.widgets if w.kind.value == "value")
        shown = float(value.split()[0])
        assert shown == pytest.approx(expected, abs=1.0)

    def test_imperial_pids_use_alt_formula(self):
        simulator = ObdVehicleSimulator(pids=[0x0D])
        app = ObdTelematicsApp(simulator, pids=[0x0D])
        assert 0x0D in IMPERIAL_PIDS
        t = simulator.clock.now()
        expected = simulator.ground_truth(0x0D, t, imperial=True)
        app.tick()
        value = next(w.text for w in app.screen.widgets if w.kind.value == "value")
        assert float(value.split()[0]) == pytest.approx(expected, abs=0.1)

    def test_tick_advances_clock(self):
        simulator = ObdVehicleSimulator()
        app = ObdTelematicsApp(simulator)
        before = simulator.clock.now()
        app.tick()
        assert simulator.clock.now() >= before + app.poll_interval_s
