"""Tests for the DTC subsystem: codecs, ECU services, tool screens."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagnostics import dtc as dtc_codec
from repro.diagnostics.dtc import Dtc
from repro.diagnostics.messages import DiagnosticError
from repro.simtime import SimClock
from repro.tools import make_tool_for_car
from repro.vehicle import build_car
from repro.vehicle.ecu import SimulatedEcu


class TestDtcEncoding:
    def test_p0301_two_byte_form(self):
        assert Dtc("P0301").to_two_bytes() == bytes([0x03, 0x01])

    def test_chassis_body_network_prefixes(self):
        assert Dtc("C0035").to_two_bytes()[0] >> 6 == 0b01
        assert Dtc("B1342").to_two_bytes()[0] >> 6 == 0b10
        assert Dtc("U0100").to_two_bytes()[0] >> 6 == 0b11

    def test_roundtrip(self):
        for code in ("P0301", "P0171", "C0035", "B1342", "U0100", "P0420"):
            assert Dtc.from_two_bytes(Dtc(code).to_two_bytes()).code == code

    def test_malformed_code_rejected(self):
        with pytest.raises(DiagnosticError):
            Dtc("X0301")
        with pytest.raises(DiagnosticError):
            Dtc("P03")

    def test_three_byte_form_appends_failure_type(self):
        assert Dtc("P0301").to_three_bytes() == bytes([0x03, 0x01, 0x00])


class TestResponseCodecs:
    DTCS = [Dtc("P0301"), Dtc("C0035", status=0x2F)]

    def test_obd_roundtrip(self):
        payload = dtc_codec.encode_obd_dtc_response(self.DTCS)
        decoded = dtc_codec.decode_obd_dtc_response(payload)
        assert [d.code for d in decoded] == ["P0301", "C0035"]

    def test_uds_roundtrip_preserves_status(self):
        payload = dtc_codec.encode_uds_dtc_response(self.DTCS)
        decoded = dtc_codec.decode_uds_dtc_response(payload)
        assert [(d.code, d.status) for d in decoded] == [
            ("P0301", 0x09),
            ("C0035", 0x2F),
        ]

    def test_kwp_roundtrip(self):
        payload = dtc_codec.encode_kwp_dtc_response(self.DTCS)
        decoded = dtc_codec.decode_kwp_dtc_response(payload)
        assert [d.code for d in decoded] == ["P0301", "C0035"]

    def test_truncated_response_rejected(self):
        with pytest.raises(DiagnosticError):
            dtc_codec.decode_obd_dtc_response(b"\x43\x02\x03")


class TestEcuDtcServices:
    def make_ecu(self):
        ecu = SimulatedEcu("Engine", SimClock())
        ecu.dtcs = [Dtc("P0301"), Dtc("P0171", status=0x04)]
        return ecu

    def test_uds_read_by_status_mask(self):
        ecu = self.make_ecu()
        response = ecu.handle_request(dtc_codec.encode_uds_read_dtcs(0xFF))
        assert [d.code for d in dtc_codec.decode_uds_dtc_response(response)] == [
            "P0301",
            "P0171",
        ]

    def test_status_mask_filters(self):
        ecu = self.make_ecu()
        response = ecu.handle_request(dtc_codec.encode_uds_read_dtcs(0x08))
        decoded = dtc_codec.decode_uds_dtc_response(response)
        assert [d.code for d in decoded] == ["P0301"]  # status 0x09 & 0x08

    def test_kwp_read(self):
        ecu = self.make_ecu()
        response = ecu.handle_request(dtc_codec.encode_kwp_read_dtcs())
        assert len(dtc_codec.decode_kwp_dtc_response(response)) == 2

    def test_clear(self):
        ecu = self.make_ecu()
        response = ecu.handle_request(dtc_codec.encode_uds_clear())
        assert response == b"\x54"
        assert ecu.dtcs == []
        assert ecu.dtc_clear_count == 1


class TestToolDtcScreens:
    def test_read_trouble_codes_screen(self):
        car = build_car("A")
        tool = make_tool_for_car("A", car)
        ecu_with_dtcs = next((e for e in car.ecus if e.dtcs), None)
        assert ecu_with_dtcs is not None, "fleet cars should carry DTCs"
        tool.tap(*tool.screen.find(ecu_with_dtcs.name).center)
        tool.tap(*tool.screen.find("Read Trouble Codes").center)
        assert tool.state == "dtc_list"
        labels = [w.text for w in tool.screen.labels()]
        assert any(d.code in "".join(labels) for d in ecu_with_dtcs.dtcs)

    def test_clear_trouble_codes(self):
        car = build_car("A")
        tool = make_tool_for_car("A", car)
        ecu = next(e for e in car.ecus if e.dtcs)
        tool.tap(*tool.screen.find(ecu.name).center)
        tool.tap(*tool.screen.find("Clear Trouble Codes").center)
        assert ecu.dtcs == []
        # Reading afterwards shows the empty list.
        tool.tap(*tool.screen.find("Read Trouble Codes").center)
        labels = [w.text for w in tool.screen.labels()]
        assert any("No trouble codes" in text for text in labels)

    def test_kwp_car_uses_kwp_service(self):
        car = build_car("B")
        tool = make_tool_for_car("B", car)
        sniffer = car.attach_sniffer()
        ecu = next(e for e in car.ecus if e.kwp_groups)
        tool.tap(*tool.screen.find(ecu.name).center)
        tool.tap(*tool.screen.find("Read Trouble Codes").center)
        from repro.core import assemble

        payloads = [m.payload for m in assemble(list(sniffer.log))]
        assert any(p and p[0] == 0x18 for p in payloads)


@settings(max_examples=50, deadline=None)
@given(
    system=st.sampled_from("PCBU"),
    digits=st.tuples(
        st.integers(0, 3), st.integers(0, 15), st.integers(0, 15), st.integers(0, 15)
    ),
)
def test_dtc_two_byte_roundtrip_property(system, digits):
    code = f"{system}{digits[0]:X}{digits[1]:X}{digits[2]:X}{digits[3]:X}"
    dtc = Dtc(code)
    assert Dtc.from_two_bytes(dtc.to_two_bytes()).code == code
