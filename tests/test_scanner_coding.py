"""Tests for the active scanner, ECU coding and report export."""

import json

import pytest

from repro.core import DPReverser, GpConfig, ReverserConfig
from repro.cps import DataCollector
from repro.scanner import DiagnosticScanner, scan_vehicle
from repro.tools import make_tool_for_car
from repro.vehicle import build_car
from repro.vehicle.ecu import CODING_DID


class TestScanner:
    def test_did_scan_finds_all_data_points(self):
        car = build_car("D")
        endpoint = car.tester_endpoint("Engine", tester="scanner")
        scanner = DiagnosticScanner(endpoint, clock=car.clock)
        report = scanner.scan_dids(ranges=((0xF400, 0xF500),))
        engine = car.ecu("Engine")
        expected = set(engine.uds_data_points)
        found = set(report.identifiers(0x22))
        assert expected <= found

    def test_local_id_scan(self):
        car = build_car("B")
        ecu = next(e for e in car.ecus if e.kwp_groups)
        endpoint = car.tester_endpoint(ecu.name, tester="scanner")
        report = DiagnosticScanner(endpoint, clock=car.clock).scan_local_ids(1, 0x30)
        assert set(report.identifiers(0x21)) == set(ecu.kwp_groups)

    def test_service_scan(self):
        car = build_car("D")
        endpoint = car.tester_endpoint("Body Control", tester="scanner")
        report = DiagnosticScanner(endpoint, clock=car.clock).scan_services()
        assert 0x22 in report.supported_services
        assert 0x30 in report.supported_services  # the IO-control service
        assert 0x2F not in report.supported_services  # wrong variant for D

    def test_scan_vehicle_covers_every_ecu(self):
        car = build_car("P")
        reports = scan_vehicle(
            car,
            ranges=(
                (0x0940, 0x0A00), (0x2400, 0x2440),
                (0xD100, 0xD140), (0xF400, 0xF440),
            ),
        )
        assert set(reports) == {e.name for e in car.ecus}
        total_hits = sum(len(r.hits) for r in reports.values())
        total_points = sum(len(e.uds_data_points) for e in car.ecus)
        assert total_hits >= total_points

    def test_scan_matches_passive_pipeline_coverage(self):
        """Active probing confirms the passive pipeline missed nothing."""
        car = build_car("P")
        tool = make_tool_for_car("P", car)
        capture = DataCollector(tool, read_duration_s=15.0).collect()
        report = DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)
        passive_dids = {
            int(e.identifier.split(":")[1], 16)
            for e in report.esvs
            if e.protocol == "uds"
        }
        scans = scan_vehicle(car, ranges=((0x0940, 0x0A00), (0x2400, 0x2500), (0xD100, 0xD200), (0xF400, 0xF500)))
        active_dids = {
            h.identifier
            for r in scans.values()
            for h in r.hits
            if h.identifier < 0xF100 or h.identifier >= 0xF400
        }
        assert passive_dids <= active_dids


class TestCoding:
    def test_read_and_write_coding(self):
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        engine = car.ecu("Engine")
        original = engine.coding
        tool.tap(*tool.screen.find("Engine").center)
        tool.tap(*tool.screen.find("ECU Coding").center)
        assert tool.state == "coding"
        labels = [w.text for w in tool.screen.labels()]
        assert any(original.hex(" ").upper() in text for text in labels)
        tool.tap(*tool.screen.find("Recode").center)
        assert engine.coding != original
        assert engine.coding[-1] == (original[-1] + 1) & 0xFF

    def test_coding_requires_extended_session(self):
        car = build_car("D")
        engine = car.ecu("Engine")
        response = engine.handle_request(
            bytes([0x2E]) + CODING_DID.to_bytes(2, "big") + b"\x01\x02"
        )
        assert response[2] == 0x22  # conditionsNotCorrect in default session

    def test_coding_readable_via_did(self):
        car = build_car("D")
        engine = car.ecu("Engine")
        response = engine.handle_request(
            bytes([0x22]) + CODING_DID.to_bytes(2, "big")
        )
        assert response[3:] == engine.coding


class TestReportExport:
    @pytest.fixture(scope="class")
    def report(self):
        car = build_car("D")
        tool = make_tool_for_car("D", car)
        capture = DataCollector(tool, read_duration_s=15.0).collect()
        return DPReverser(ReverserConfig(gp_config=GpConfig(seed=2))).reverse_engineer(capture)

    def test_json_roundtrips(self, report):
        data = json.loads(report.to_json())
        assert data["model"] == "Car D"
        assert len(data["esvs"]) == len(report.esvs)
        assert all("request" in esv for esv in data["esvs"])

    def test_markdown_contains_tables(self, report):
        text = report.to_markdown()
        assert "## ECU signal values" in text
        assert "## Control procedures" in text
        assert "| `22 " in text

    def test_enum_states_serialised(self, report):
        data = report.to_dict()
        enums = [e for e in data["esvs"] if e["is_enum"]]
        assert enums
        assert all(e["enum_states"] for e in enums)
