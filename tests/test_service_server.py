"""The asyncio diagnostic server: sockets, multiplexing, backpressure."""

import asyncio
import hashlib
import json
import subprocess
import sys

import pytest

from repro.core import DPReverser, ReverserConfig
from repro.core.gp import GpConfig
from repro.cps import DataCollector
from repro.service import (
    DiagnosticServer,
    ServiceClientError,
    ServiceConfig,
    stream_capture_async,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    encode_message,
    read_message,
)
from repro.tools import make_tool_for_car
from repro.tools.kline_logger import KLineDiagnosticSession, build_kline_vehicle
from repro.vehicle import build_car

GP = GpConfig(seed=2, generations=8, population_size=100)


@pytest.fixture(scope="module")
def capture_a():
    car = build_car("A")
    return DataCollector(make_tool_for_car("A", car), read_duration_s=8.0).collect()


@pytest.fixture(scope="module")
def batch_a(capture_a):
    return DPReverser(ReverserConfig(gp_config=GP)).reverse_engineer(capture_a).to_json()


@pytest.fixture(scope="module")
def kline_data():
    vehicle = build_kline_vehicle()
    capture, messages = KLineDiagnosticSession(vehicle).collect(duration_per_ecu_s=10.0)
    reverser = DPReverser(ReverserConfig(gp_config=GP))
    batch = reverser.infer(reverser.analyze(capture, messages=messages)).to_json()
    return capture, vehicle.bus.capture, batch


def service_counters(server):
    return server.snapshot()["counters"]


class TestEndToEnd:
    def test_streamed_report_matches_batch_over_sockets(self, capture_a, batch_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, status_interval=50)
            ) as server:
                result = await stream_capture_async(
                    "127.0.0.1", server.port, capture_a, transport="isotp"
                )
                return server.snapshot(), result

        snapshot, result = asyncio.run(run())
        assert result.report_json == batch_a
        assert result.digest == hashlib.sha256(batch_a.encode()).hexdigest()
        assert result.report == json.loads(batch_a)
        assert result.statuses, "expected interim status pushes"
        assert all(s["type"] == "status" for s in result.statuses)
        assert snapshot["counters"]["service.sessions_completed"] == 1
        assert snapshot["counters"]["service.frames_ingested"] == len(capture_a.can_log)
        assert snapshot["gauges"]["service.sessions_active"] == 0.0
        assert "service.ingest_seconds" in snapshot["histograms"]

    def test_batched_wire_report_matches_batch(self, capture_a, batch_a):
        async def run():
            async with DiagnosticServer(ServiceConfig(gp_config=GP)) as server:
                result = await stream_capture_async(
                    "127.0.0.1",
                    server.port,
                    capture_a,
                    transport="isotp",
                    batch_size=256,
                )
                return server, result

        server, result = asyncio.run(run())
        assert result.report_json == batch_a
        counters = service_counters(server)
        assert counters["service.sessions_completed"] == 1
        assert counters["service.frames_ingested"] == len(capture_a.can_log)

    def test_batched_rate_limit_charges_per_frame(self, capture_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, rate_limit=2000.0)
            ) as server:
                result = await stream_capture_async(
                    "127.0.0.1",
                    server.port,
                    capture_a,
                    transport="isotp",
                    batch_size=128,
                )
                return server, result

        server, result = asyncio.run(run())
        counters = service_counters(server)
        # A 128-frame batch costs 128 tokens, so the 2000/s limit still
        # stalls the reader even though far fewer messages arrive.
        assert counters["service.backpressure_stalls"] > 0
        assert counters["service.sessions_completed"] == 1

    def test_batched_retention_bound_sheds_frames(self, capture_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, max_capture_frames=100)
            ) as server:
                result = await stream_capture_async(
                    "127.0.0.1",
                    server.port,
                    capture_a,
                    transport="isotp",
                    batch_size=64,
                )
                return server, result

        server, result = asyncio.run(run())
        counters = service_counters(server)
        assert counters["service.frames_dropped"] == len(capture_a.can_log) - 100
        assert counters["service.frames_ingested"] == 100
        assert result.report["n_frames"] == 100

    def test_concurrent_mixed_transport_sessions(self, capture_a, batch_a, kline_data):
        kline_capture, kline_bytes, kline_batch = kline_data

        async def run():
            async with DiagnosticServer(ServiceConfig(gp_config=GP)) as server:
                results = await asyncio.gather(
                    stream_capture_async(
                        "127.0.0.1",
                        server.port,
                        capture_a,
                        tenant="can-tenant",
                        transport="isotp",
                    ),
                    stream_capture_async(
                        "127.0.0.1",
                        server.port,
                        kline_capture,
                        tenant="kline-tenant",
                        transport="kline",
                        kline_bytes=kline_bytes,
                    ),
                )
                return server, results

        server, (can_result, kline_result) = asyncio.run(run())
        assert can_result.report_json == batch_a
        assert kline_result.report_json == kline_batch
        counters = service_counters(server)
        assert counters["service.sessions_completed"] == 2
        assert server.sessions_active == 0

    def test_shared_memo_across_sessions(self, capture_a, batch_a, tmp_path):
        async def run():
            config = ServiceConfig(gp_config=GP, gp_memo_dir=str(tmp_path / "memo"))
            async with DiagnosticServer(config) as server:
                first = await stream_capture_async(
                    "127.0.0.1", server.port, capture_a, transport="isotp"
                )
                second = await stream_capture_async(
                    "127.0.0.1", server.port, capture_a, transport="isotp"
                )
                return server.memo_stats, first, second

        memo_stats, first, second = asyncio.run(run())
        assert first.report_json == second.report_json == batch_a
        assert memo_stats["misses"] > 0  # first session populated the store
        assert memo_stats["hits"] >= memo_stats["misses"]  # second one rode it


class TestLimitsAndBackpressure:
    def test_max_sessions_rejects_excess_tenants(self, capture_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, max_sessions=1)
            ) as server:
                # Occupy the only slot with a half-open session.
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(
                    encode_message(
                        {"type": "hello", "version": PROTOCOL_VERSION,
                         "tenant": "hog", "transport": "isotp", "meta": {}}
                    )
                )
                await writer.drain()
                welcome = await read_message(reader)
                assert welcome["type"] == "welcome"
                with pytest.raises(ServiceClientError, match="server full"):
                    await stream_capture_async(
                        "127.0.0.1", server.port, capture_a, transport="isotp"
                    )
                writer.close()
                await writer.wait_closed()
                return server

        server = asyncio.run(run())
        assert service_counters(server)["service.sessions_rejected"] == 1

    def test_rate_limit_stalls_ingest(self, capture_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, rate_limit=2000.0)
            ) as server:
                result = await stream_capture_async(
                    "127.0.0.1", server.port, capture_a, transport="isotp"
                )
                return server, result

        server, result = asyncio.run(run())
        counters = service_counters(server)
        assert counters["service.backpressure_stalls"] > 0
        assert counters["service.sessions_completed"] == 1

    def test_retention_bound_sheds_frames(self, capture_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, max_capture_frames=100)
            ) as server:
                result = await stream_capture_async(
                    "127.0.0.1", server.port, capture_a, transport="isotp"
                )
                return server, result

        server, result = asyncio.run(run())
        counters = service_counters(server)
        assert counters["service.frames_dropped"] == len(capture_a.can_log) - 100
        assert counters["service.frames_ingested"] == 100
        assert result.report["n_frames"] == 100  # report covers what was kept

    def test_bad_hello_counts_protocol_error(self):
        async def run():
            async with DiagnosticServer(ServiceConfig(gp_config=GP)) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(encode_message({"type": "frame", "t": 0.0, "id": 1, "data": ""}))
                await writer.drain()
                reply = await read_message(reader)
                writer.close()
                await writer.wait_closed()
                return server, reply

        server, reply = asyncio.run(run())
        assert reply["type"] == "error"
        assert "expected hello" in reply["error"]
        assert service_counters(server)["service.protocol_errors"] == 1


class TestObservability:
    def test_per_session_trace_lanes(self, capture_a):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, trace=True)
            ) as server:
                await asyncio.gather(
                    *(
                        stream_capture_async(
                            "127.0.0.1",
                            server.port,
                            capture_a,
                            tenant=f"t{i}",
                            transport="isotp",
                        )
                        for i in range(2)
                    )
                )
                return server

        server = asyncio.run(run())
        assert server.tracer.enabled
        lanes = {span.tid for span in server.tracer.spans}
        assert len(lanes) >= 2, "each session should occupy its own trace lane"
        names = {span.name for span in server.tracer.spans}
        # Inference spans rode the absorb path: the island backend records
        # one gp_island span per worker batch (per-formula spans cannot
        # nest across the interleaved island coroutines).
        assert "gp_island" in names
        trace = server.tracer.to_chrome()
        assert len({event["tid"] for event in trace["traceEvents"]}) >= 2

    def test_snapshot_prometheus_render_includes_gauge(self, capture_a):
        from repro.observability import prometheus_text

        async def run():
            async with DiagnosticServer(ServiceConfig(gp_config=GP)) as server:
                await stream_capture_async(
                    "127.0.0.1", server.port, capture_a, transport="isotp"
                )
                return server.snapshot()

        snapshot = asyncio.run(run())
        text = prometheus_text(snapshot)
        assert "# TYPE repro_service_sessions_active gauge" in text
        assert "repro_service_sessions_completed 1" in text


class TestServeCli:
    def test_serve_one_session_and_exit(self, capture_a, batch_a, tmp_path):
        metrics_path = tmp_path / "service.json"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--sessions", "1", "--seed", "2",
                "--metrics-out", str(metrics_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("listening on ")
            host, _, port = line.rpartition(" ")[2].rpartition(":")

            async def run():
                return await stream_capture_async(
                    host, int(port), capture_a, transport="isotp"
                )

            result = asyncio.run(run())
            # The CLI pins GpConfig(seed=2) with paper-default search
            # effort, so only check shape here, not GP-config-dependent
            # byte identity against the test's small config.
            assert result.report is not None
            assert result.report["transport"] == "isotp"
            assert process.wait(timeout=60) == 0
        finally:
            process.kill()
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["counters"]["service.sessions_completed"] == 1


class TestAdversarialDefenses:
    """Session-level DoS defenses: idle eviction and anomaly surfacing."""

    def test_idle_session_evicted(self):
        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, session_idle_timeout=0.05)
            ) as server:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(
                    encode_message(
                        {"type": "hello", "version": PROTOCOL_VERSION,
                         "tenant": "slowloris", "transport": "isotp", "meta": {}}
                    )
                )
                await writer.drain()
                welcome = await read_message(reader)
                assert welcome["type"] == "welcome"
                # Hold the connection open without sending anything.
                reply = await asyncio.wait_for(read_message(reader), timeout=5.0)
                writer.close()
                await writer.wait_closed()
                return server, reply

        server, reply = asyncio.run(run())
        assert reply["type"] == "error"
        assert "idle" in reply["error"]
        assert service_counters(server)["service.sessions_evicted_idle"] == 1

    def test_idle_timeout_off_by_default(self):
        assert ServiceConfig(gp_config=GP).session_idle_timeout == 0.0

    def test_hardened_session_surfaces_anomaly_counters(self, capture_a):
        from dataclasses import replace

        from repro.attacks import SessionStarvation
        from repro.can import CanLog
        from repro.transport import DEFAULT_HARDENING

        attacked = replace(
            capture_a,
            can_log=CanLog(SessionStarvation(seed=9).apply(capture_a.can_log)),
        )

        async def run():
            async with DiagnosticServer(
                ServiceConfig(gp_config=GP, hardening=DEFAULT_HARDENING)
            ) as server:
                result = await stream_capture_async(
                    "127.0.0.1", server.port, attacked, transport="isotp"
                )
                return server, result

        server, result = asyncio.run(run())
        counters = service_counters(server)
        assert counters["service.anomaly.suspected_starvation"] >= 1
        assert result.report["n_frames"] > 0  # the session still produced a report
