"""Legacy setup shim: enables `pip install -e . --no-use-pep517` on
environments without the `wheel` package (this repo's offline CI)."""

from setuptools import setup

setup()
