"""Capture persistence.

A :class:`~repro.cps.collector.Capture` saves to a directory so collection
and reverse engineering can run as separate steps (or so externally
recorded data can be fed to the pipeline):

====================  ====================================================
``meta.json``         model, tool name, OCR error rate, camera offset
``can.log``           the CAN capture in ``candump -L`` format
``video.jsonl``       one JSON object per captured frame (regions + time)
``clicks.jsonl``      the robotic clicker's log
``segments.json``     the per-action windows derived from the click log
====================  ====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import List, Union

from .can import CanLog
from .cps.arm import ClickRecord
from .cps.camera import CapturedFrame, TextRegion
from .cps.collector import Capture, Segment

FORMAT_VERSION = 1

#: Files every capture directory must contain (``clicks.jsonl`` is optional
#: so externally recorded candump + video data can be analysed too).
REQUIRED_FILES = ("meta.json", "can.log", "video.jsonl", "segments.json")


def write_json_atomic(path: Union[str, Path], payload: object, indent: int = 2) -> Path:
    """Write ``payload`` as JSON via a same-directory temp file + rename.

    The rename is atomic on POSIX, so readers (e.g. a resumed fleet run
    scanning a checkpoint directory, :mod:`repro.runtime.checkpoint`) never
    observe a half-written file even if the writer is killed mid-flight.
    The temp name is unique per call (``mkstemp``), not derived from the
    target: concurrent writers racing on the same path (formula-memo
    workers solving byte-identical datasets) must each rename their *own*
    temp file, or the loser's rename finds its temp already moved.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f"{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(payload, indent=indent, sort_keys=True) + "\n")
        # mkstemp creates 0600; match the mode a plain write would leave.
        os.chmod(tmp_name, 0o644)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def canonical_digest(payload: object) -> str:
    """SHA-256 over the canonical JSON form of ``payload``.

    Canonical = sorted keys, tight separators — the same bytes regardless
    of dict insertion order, which is what makes the digest usable as an
    identity: :meth:`repro.runtime.report.RunReport.results_digest` hashes
    fleet results with it, and the GP formula memo keys its entries on the
    digest of each ESV's dataset.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def read_json(path: Union[str, Path]) -> object:
    """Read a JSON file, raising a clear :class:`ValueError` on problems."""
    path = Path(path)
    if not path.exists():
        raise ValueError(f"missing file: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"corrupt JSON in {path}: {error}") from None


def save_capture(capture: Capture, directory: Union[str, Path]) -> Path:
    """Write ``capture`` into ``directory`` (created if missing)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    (directory / "meta.json").write_text(
        json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "model": capture.model,
                "tool_name": capture.tool_name,
                "tool_error_rate": capture.tool_error_rate,
                "camera_offset_s": capture.camera_offset_s,
            },
            indent=2,
        )
    )
    capture.can_log.save(directory / "can.log")

    with (directory / "video.jsonl").open("w") as handle:
        for frame in capture.video:
            handle.write(
                json.dumps(
                    {
                        "timestamp": frame.timestamp,
                        "screen_name": frame.screen_name,
                        "regions": [
                            {
                                "text": r.text,
                                "x": r.x,
                                "y": r.y,
                                "width": r.width,
                                "height": r.height,
                                "kind": r.kind,
                                "icon": r.icon,
                            }
                            for r in frame.regions
                        ],
                    }
                )
                + "\n"
            )

    with (directory / "clicks.jsonl").open("w") as handle:
        for click in capture.clicks:
            handle.write(
                json.dumps(
                    {
                        "timestamp": click.timestamp,
                        "x": click.x,
                        "y": click.y,
                        "label": click.label,
                        "hit": click.hit,
                    }
                )
                + "\n"
            )

    (directory / "segments.json").write_text(
        json.dumps(
            [
                {
                    "kind": s.kind,
                    "ecu": s.ecu,
                    "label": s.label,
                    "t_start": s.t_start,
                    "t_end": s.t_end,
                }
                for s in capture.segments
            ],
            indent=2,
        )
    )
    return directory


def load_capture(directory: Union[str, Path]) -> Capture:
    """Read a capture previously written by :func:`save_capture`.

    Raises :class:`ValueError` (instead of failing deep inside parsing) when
    ``directory`` is not a capture directory, a required file is missing, or
    the on-disk ``format_version`` is one this build cannot read.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"not a capture directory: {directory}")
    missing = [name for name in REQUIRED_FILES if not (directory / name).exists()]
    if missing:
        raise ValueError(
            f"not a valid capture directory {directory}: "
            f"missing {', '.join(missing)}"
        )
    meta = read_json(directory / "meta.json")
    if not isinstance(meta, dict):
        raise ValueError(f"malformed meta.json in {directory}: expected an object")
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported capture format {meta.get('format_version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )

    video: List[CapturedFrame] = []
    for line in (directory / "video.jsonl").read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        video.append(
            CapturedFrame(
                timestamp=record["timestamp"],
                screen_name=record["screen_name"],
                regions=[TextRegion(**region) for region in record["regions"]],
            )
        )

    clicks: List[ClickRecord] = []
    clicks_path = directory / "clicks.jsonl"
    if clicks_path.exists():
        for line in clicks_path.read_text().splitlines():
            if line.strip():
                clicks.append(ClickRecord(**json.loads(line)))

    segments = [
        Segment(**record)
        for record in json.loads((directory / "segments.json").read_text())
    ]
    return Capture(
        model=meta["model"],
        tool_name=meta["tool_name"],
        can_log=CanLog.load(directory / "can.log"),
        video=video,
        clicks=clicks,
        segments=segments,
        tool_error_rate=meta["tool_error_rate"],
        camera_offset_s=meta.get("camera_offset_s", 0.0),
    )
