"""Hierarchical tracing for the reverse-engineering pipeline.

A :class:`Tracer` records :class:`Span`\\ s — named, timed intervals with
attributes and parent/child links — around every pipeline stage, GP
restart, memo lookup and fleet job.  Design constraints, in order:

* **zero overhead when disabled** — a disabled tracer's :meth:`Tracer.span`
  returns one shared null context manager; no span object, no clock read,
  no list append.  The hot paths (per-ESV inference, per-generation GP
  work) pay a single attribute check;
* **determinism-neutral** — tracing only ever *observes*; it never feeds
  back into the pipeline, so a report produced with tracing on is
  byte-identical to one produced with it off (asserted by the test suite);
* **process-boundary friendly** — spans recorded inside a pool worker ride
  back to the parent as plain JSON-able dicts (the same route PR 4's stage
  timings take through ``_TaskOutcome``) and are grafted into the parent's
  tree by :meth:`Tracer.absorb`.

Export targets: JSONL (one span object per line) and the Chrome trace
event format, which ``chrome://tracing`` and `Perfetto
<https://ui.perfetto.dev>`_ open directly.

The *active tracer* (:func:`get_active` / :func:`activated`) is how deep
pipeline code — GP restarts in :mod:`repro.core.response_analysis`,
per-stream decoding in :mod:`repro.core.assembly` — reaches the tracer
without threading it through every signature.  It defaults to the shared
disabled :data:`NULL_TRACER`, so unconfigured code paths stay free.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

TRACE_FORMAT_VERSION = 1

#: Required keys of every exported span record (and of every Chrome trace
#: event we emit) — shared with the validity tests.
SPAN_KEYS = ("span_id", "parent_id", "name", "start_s", "duration_s", "tid", "attrs")
CHROME_EVENT_KEYS = ("name", "ph", "ts", "dur", "pid", "tid", "args")


class Span:
    """One named, timed interval in the trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "tid", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        tid: int = 0,
        attrs: Optional[dict] = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = start
        self.tid = tid
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set(self, **attrs: object) -> "Span":
        """Attach attributes after entry (e.g. a memo hit known at exit)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": round(self.start, 9),
            "duration_s": round(self.duration, 9),
            "tid": self.tid,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The span a disabled tracer hands out: every operation is a no-op."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullSpan":
        return self


class _NullSpanContext:
    """Shared reusable context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager that opens a span on entry and closes it on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """Collects a tree of spans for one run.

    Thread-safe: spans opened from worker threads nest under whatever span
    that thread opened last (each thread keeps its own stack), and every
    finished span lands in one shared, completion-ordered list.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.clock = clock or time.perf_counter
        self.spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 0
        self._tids: Dict[int, int] = {}  # thread ident -> small stable tid

    # ----------------------------------------------------------------- record

    def span(self, name: str, **attrs: object) -> Union[_SpanContext, _NullSpanContext]:
        """Context manager recording one span (shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanContext(self, name, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str, attrs: dict) -> Span:
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            tid = self._tids.setdefault(threading.get_ident(), len(self._tids))
        parent_id = stack[-1].span_id if stack else None
        span = Span(span_id, parent_id, name, self.clock(), tid=tid, attrs=attrs)
        stack.append(span)
        return span

    def _close(self, span: Optional[Span]) -> None:
        if span is None:
            return
        span.end = self.clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self.spans.append(span)

    def current(self) -> Optional[Span]:
        """The innermost span open on the calling thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # ---------------------------------------------------------- cross-process

    def export_payload(self) -> List[dict]:
        """Spans as JSON-able dicts, the form that rides across processes."""
        with self._lock:
            return [span.to_dict() for span in self.spans]

    def absorb(
        self,
        payload: Iterable[dict],
        parent_id: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> int:
        """Graft spans exported elsewhere into this tracer's tree.

        Span ids are re-allocated (worker ids collide across workers), root
        spans of the payload are re-parented under ``parent_id``, and
        timestamps are shifted so the absorbed subtree starts at this
        tracer's current clock reading — worker clocks have their own epoch,
        and only *relative* time inside the subtree is meaningful.  Returns
        the number of spans absorbed.
        """
        records = list(payload)
        if not records or not self.enabled:
            return 0
        base = min(record["start_s"] for record in records)
        now = self.clock()
        id_map: Dict[int, int] = {}
        absorbed: List[Span] = []
        with self._lock:
            for record in records:
                id_map[record["span_id"]] = self._next_id
                self._next_id += 1
            for record in records:
                old_parent = record["parent_id"]
                span = Span(
                    span_id=id_map[record["span_id"]],
                    parent_id=(
                        id_map[old_parent] if old_parent in id_map else parent_id
                    ),
                    name=record["name"],
                    start=now + (record["start_s"] - base),
                    tid=record["tid"] if tid is None else tid,
                    attrs=dict(record["attrs"]),
                )
                span.end = span.start + record["duration_s"]
                absorbed.append(span)
            self.spans.extend(absorbed)
        return len(absorbed)

    # ---------------------------------------------------------------- queries

    def by_name(self) -> Dict[str, List[Span]]:
        """Finished spans grouped by name (insertion order preserved)."""
        grouped: Dict[str, List[Span]] = {}
        with self._lock:
            for span in self.spans:
                grouped.setdefault(span.name, []).append(span)
        return grouped

    def children_of(self, span_id: Optional[int]) -> List[Span]:
        with self._lock:
            return [span for span in self.spans if span.parent_id == span_id]

    # ---------------------------------------------------------------- exports

    def to_jsonl(self) -> str:
        """One JSON object per span, completion order — the raw artifact."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.export_payload()
        )

    def to_chrome(self, pid: int = 0) -> dict:
        """The Chrome trace event format (open in Perfetto / chrome://tracing).

        Every span becomes one complete (``"ph": "X"``) event; timestamps
        are microseconds relative to the earliest span, so the viewer's
        timeline starts at zero regardless of the clock's epoch.
        """
        with self._lock:
            spans = list(self.spans)
        base = min((span.start for span in spans), default=0.0)
        events = [
            {
                "name": span.name,
                "cat": "pipeline",
                "ph": "X",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": span.tid,
                "args": dict(span.attrs, span_id=span.span_id),
            }
            for span in spans
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"format_version": TRACE_FORMAT_VERSION},
        }

    def save(self, directory: Union[str, Path]) -> Tuple[Path, Path]:
        """Write ``trace.json`` (Chrome format) + ``spans.jsonl`` to a dir."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        chrome_path = directory / "trace.json"
        chrome_path.write_text(json.dumps(self.to_chrome(), sort_keys=True) + "\n")
        jsonl_path = directory / "spans.jsonl"
        jsonl_path.write_text(self.to_jsonl() + "\n")
        return chrome_path, jsonl_path


#: The shared disabled tracer: safe to use from any thread, records nothing.
NULL_TRACER = Tracer(enabled=False)

#: Module-level active tracer — how deep pipeline code (GP restarts,
#: per-stream decoding) reaches the run's tracer without signature changes.
_ACTIVE: Tracer = NULL_TRACER


def get_active() -> Tracer:
    """The tracer deep instrumentation should record into (never None)."""
    return _ACTIVE


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


class activated:
    """Context manager scoping :func:`activate` to a block.

    Written as a class (not ``@contextmanager``) so entering with the
    disabled tracer costs two attribute writes and no generator frame.
    """

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = activate(self._tracer)
        return self._tracer

    def __exit__(self, *exc_info: object) -> bool:
        activate(self._previous)
        return False
