"""Unified metrics snapshot: one place where every counter in the system
meets, and two serialisations of it.

The pipeline accumulates metrics in several layers that grew one PR at a
time — :class:`~repro.runtime.metrics.MetricsRegistry` (scheduler counters
and stage histograms), :class:`~repro.transport.base.DecoderStats`
(transport decode accounting), :class:`~repro.can.noise.FaultCounts`
(injected faults), the formula-memo hit/miss dict, the per-backend
formula-inference counters (``inference.*``), and span aggregates
from the :class:`~repro.observability.trace.Tracer`.  :func:`build_snapshot`
folds any subset of those into one canonical dict, and the exporters turn
that dict into:

* **canonical JSON** (:func:`snapshot_json`) — sorted keys, the machine
  artifact CI diffing and dashboards consume;
* **Prometheus text exposition format** (:func:`prometheus_text`) — for
  scraping into a real metrics stack; label values are escaped per the
  format spec (backslash, double-quote, newline).

Metric naming scheme (documented in DESIGN.md): dot-separated logical
names (``transport.errors``, ``stage.gp_formula_seconds``, ``memo.hits``);
the Prometheus exporter maps dots to underscores and prefixes ``repro_``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Mapping, Optional

from .trace import Tracer

SNAPSHOT_SCHEMA_VERSION = 1

#: :class:`~repro.transport.base.DecoderStats` fields exported under the
#: ``transport.anomaly.`` prefix instead of plain ``transport.``.  Kept as
#: a literal copy of :data:`repro.transport.base.ANOMALY_FIELDS` — importing
#: it would cycle observability → transport → can → bus → observability.
_ANOMALY_FIELDS = (
    "fc_violations",
    "stale_stream_evictions",
    "sequence_poisonings",
    "suspected_starvation",
)


def _merge_counters(target: Dict[str, int], source: Mapping[str, int], prefix: str) -> None:
    for name, value in source.items():
        target[f"{prefix}{name}"] = target.get(f"{prefix}{name}", 0) + int(value)


def build_snapshot(
    registry=None,
    diagnostics=None,
    fault_counts=None,
    memo_stats: Optional[Mapping[str, int]] = None,
    inference_stats: Optional[Mapping[str, int]] = None,
    tracer: Optional[Tracer] = None,
    extra_counters: Optional[Mapping[str, int]] = None,
    gauges: Optional[Mapping[str, float]] = None,
) -> dict:
    """Fold every metrics source the caller has into one canonical dict.

    All parameters are optional so a bare ``reverse`` run (no scheduler, no
    noise) and a full fleet sweep produce the same shape with different
    coverage.  ``registry`` is a
    :class:`~repro.runtime.metrics.MetricsRegistry`, ``diagnostics`` a
    :class:`~repro.core.assembly.DecodeDiagnostics`, ``fault_counts`` a
    :class:`~repro.can.noise.FaultCounts`.  ``gauges`` carries
    point-in-time levels (``service.sessions_active``) that, unlike
    counters, can go down — the Prometheus exporter types them ``gauge``.
    """
    counters: Dict[str, int] = {}
    histograms: Dict[str, dict] = {}

    if registry is not None:
        registry_dict = registry.to_dict()
        _merge_counters(counters, registry_dict["counters"], "")
        histograms.update(registry_dict["histograms"])
    if diagnostics is not None:
        stats = diagnostics.stats.to_dict()
        anomalies = {
            name: stats.pop(name) for name in _ANOMALY_FIELDS if name in stats
        }
        _merge_counters(counters, stats, "transport.")
        _merge_counters(counters, anomalies, "transport.anomaly.")
    if fault_counts is not None:
        _merge_counters(counters, fault_counts.to_dict(), "noise.")
    if memo_stats is not None:
        _merge_counters(counters, memo_stats, "memo.")
    if inference_stats is not None:
        _merge_counters(counters, inference_stats, "inference.")
    if extra_counters is not None:
        _merge_counters(counters, extra_counters, "")

    spans: Dict[str, dict] = {}
    if tracer is not None and tracer.enabled:
        for name, group in sorted(tracer.by_name().items()):
            spans[name] = {
                "count": len(group),
                "total_s": round(sum(span.duration for span in group), 6),
            }

    snapshot = {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "counters": dict(sorted(counters.items())),
        "histograms": dict(sorted(histograms.items())),
        "spans": spans,
    }
    if gauges is not None:
        snapshot["gauges"] = {name: gauges[name] for name in sorted(gauges)}
    return snapshot


def snapshot_json(snapshot: dict, indent: int = 2) -> str:
    """Canonical (sorted-key) JSON form of a snapshot."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


# --------------------------------------------------------------- prometheus

#: Characters legal in a Prometheus metric name.
_NAME_OK = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted logical name onto a legal Prometheus metric name."""
    mapped = "".join(c if c in _NAME_OK else "_" for c in name.replace(".", "_"))
    if mapped and mapped[0].isdigit():
        mapped = f"_{mapped}"
    return f"{prefix}_{mapped}" if prefix else mapped


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format: ``\\``, ``"``
    and newline must be backslash-escaped."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(snapshot: dict, prefix: str = "repro") -> str:
    """Render a snapshot in the Prometheus text exposition format.

    Counters become ``counter`` samples; histogram summaries become a
    ``summary``-style family (``_count``/``_sum`` plus ``quantile``
    labels); span aggregates become two labelled families keyed by the
    span name (which is where label-value escaping earns its keep).
    """
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, summary in snapshot.get("histograms", {}).items():
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {summary.get('count', 0)}")
        lines.append(f"{metric}_sum {_format_value(summary.get('total_s', 0.0))}")
        for quantile, key in (("0.5", "p50_s"), ("0.95", "p95_s"), ("1", "max_s")):
            if key in summary:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} {_format_value(summary[key])}'
                )
    span_families = snapshot.get("spans", {})
    if span_families:
        count_metric = metric_name("span_count", prefix)
        total_metric = metric_name("span_seconds_total", prefix)
        lines.append(f"# TYPE {count_metric} counter")
        lines.append(f"# TYPE {total_metric} counter")
        for name, aggregate in span_families.items():
            label = escape_label_value(str(name))
            lines.append(f'{count_metric}{{span="{label}"}} {aggregate["count"]}')
            lines.append(
                f'{total_metric}{{span="{label}"}} {_format_value(aggregate["total_s"])}'
            )
    return "\n".join(lines) + "\n"


# ------------------------------------------------------------------ profile


def profile_table(tracer: Tracer, top: int = 0) -> str:
    """Human-readable per-span-name profile (the ``--profile`` output).

    Aggregates finished spans by name: call count, total, mean and max
    duration, sorted by total descending.
    """
    rows = []
    for name, group in tracer.by_name().items():
        durations = [span.duration for span in group]
        total = sum(durations)
        rows.append((total, name, len(durations), max(durations)))
    rows.sort(key=lambda row: (-row[0], row[1]))
    if top:
        rows = rows[:top]
    lines = [f"{'span':<28}{'count':>7}{'total_s':>10}{'mean_s':>10}{'max_s':>10}"]
    for total, name, count, peak in rows:
        lines.append(
            f"{name:<28}{count:>7}{total:>10.4f}{total / count:>10.4f}{peak:>10.4f}"
        )
    if len(lines) == 1:
        lines.append("(no spans recorded)")
    return "\n".join(lines)
