"""Observability: end-to-end tracing, unified metrics, benchmark artifacts.

Three concerns, one subsystem:

- :mod:`~repro.observability.trace` — hierarchical :class:`Span`\\ s
  recorded by a :class:`Tracer` around every pipeline stage, with JSONL and
  Chrome-trace (Perfetto) exporters and zero overhead when disabled;
- :mod:`~repro.observability.export` — one snapshot unifying scheduler
  metrics, transport decode stats, fault counts and memo traffic, rendered
  as canonical JSON or Prometheus text format;
- ``benchmarks/bench_io.py`` + ``scripts/bench_compare.py`` (repo level) —
  machine-readable ``BENCH_<name>.json`` artifacts and the CI regression
  gate that diffs them against committed baselines.

Entry points: ``repro reverse --trace-out DIR --metrics-out FILE
--profile`` and the same flags on ``repro fleet-run``, or::

    from repro.observability import Tracer

    tracer = Tracer()
    report = DPReverser(ReverserConfig(trace=tracer)).reverse_engineer(capture)
    tracer.save("trace_dir")          # trace.json opens in Perfetto
"""

from .trace import (
    CHROME_EVENT_KEYS,
    NULL_TRACER,
    SPAN_KEYS,
    TRACE_FORMAT_VERSION,
    Span,
    Tracer,
    activate,
    activated,
    get_active,
)
from .export import (
    SNAPSHOT_SCHEMA_VERSION,
    build_snapshot,
    escape_label_value,
    metric_name,
    profile_table,
    prometheus_text,
    snapshot_json,
)

__all__ = [
    "CHROME_EVENT_KEYS",
    "NULL_TRACER",
    "SPAN_KEYS",
    "TRACE_FORMAT_VERSION",
    "Span",
    "Tracer",
    "activate",
    "activated",
    "get_active",
    "SNAPSHOT_SCHEMA_VERSION",
    "build_snapshot",
    "escape_label_value",
    "metric_name",
    "profile_table",
    "prometheus_text",
    "snapshot_json",
]
