"""Formula objects shared by the simulator and the reverse-engineering core.

A *formula* maps the raw integer value(s) carried in a diagnostic response
(the paper's ``X`` / ``X0, X1``) to the physical value shown on the
diagnostic tool's screen (``Y``).  Vehicle manufacturers keep these
proprietary; the whole point of DP-Reverser's response-message analysis is to
recover them.

The same classes serve three roles:

* simulated vehicles/tools use them as the hidden ground truth;
* the genetic-programming engine emits :class:`ExpressionFormula` instances;
* :mod:`repro.core.verification` compares candidate and ground-truth
  formulas by numeric equivalence over the observed input range (the
  paper's correctness criterion, §4.2).
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Dict, Optional, Sequence, Tuple


class Formula(abc.ABC):
    """A numeric mapping from raw response values to a physical value."""

    #: number of raw input variables (1 for UDS ESVs, 2 for KWP 2000 ESVs)
    arity: int = 1
    #: physical unit of the output, e.g. ``"rpm"`` (informational)
    unit: str = ""

    @abc.abstractmethod
    def __call__(self, xs: Sequence[float]) -> float:
        """Evaluate the formula on raw values ``xs`` (length == arity)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable form, e.g. ``"Y = 0.2*X0*X1"``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"


class AffineFormula(Formula):
    """``Y = a*X + b`` — the most common single-variable shape."""

    def __init__(self, a: float, b: float = 0.0, unit: str = "") -> None:
        self.a = a
        self.b = b
        self.unit = unit

    arity = 1

    def __call__(self, xs: Sequence[float]) -> float:
        return self.a * xs[0] + self.b

    def describe(self) -> str:
        if self.b == 0:
            return f"Y = {self.a:g}*X"
        sign = "+" if self.b >= 0 else "-"
        return f"Y = {self.a:g}*X {sign} {abs(self.b):g}"


class ProductFormula(Formula):
    """``Y = c*X0*X1`` — the canonical KWP 2000 two-variable shape."""

    arity = 2

    def __init__(self, c: float, unit: str = "") -> None:
        self.c = c
        self.unit = unit

    def __call__(self, xs: Sequence[float]) -> float:
        return self.c * xs[0] * xs[1]

    def describe(self) -> str:
        return f"Y = {self.c:g}*X0*X1"


class TwoVarAffineFormula(Formula):
    """``Y = a0*X0 + a1*X1 + b`` (e.g. OBD-II engine RPM with a0=64)."""

    arity = 2

    def __init__(self, a0: float, a1: float, b: float = 0.0, unit: str = "") -> None:
        self.a0 = a0
        self.a1 = a1
        self.b = b
        self.unit = unit

    def __call__(self, xs: Sequence[float]) -> float:
        return self.a0 * xs[0] + self.a1 * xs[1] + self.b

    def describe(self) -> str:
        return f"Y = {self.a0:g}*X0 + {self.a1:g}*X1 + {self.b:g}"


class ExpressionFormula(Formula):
    """An arbitrary callable with a textual description.

    Used for the handful of genuinely non-linear manufacturer formulas and
    as the common currency emitted by the GP engine and the baselines.
    """

    def __init__(
        self,
        func: Callable[[Sequence[float]], float],
        arity: int,
        description: str,
        unit: str = "",
    ) -> None:
        self._func = func
        self.arity = arity
        self._description = description
        self.unit = unit

    def __call__(self, xs: Sequence[float]) -> float:
        return self._func(xs)

    def describe(self) -> str:
        return self._description


class EnumFormula(Formula):
    """A status/enumeration 'formula' — raw values map to labels, not numbers.

    The paper counts these separately (Tab. 6's ``#ESV (Enum)`` column):
    no numeric formula exists, e.g. door open/closed.  Evaluation returns
    the raw value unchanged so enum ESVs still flow through the pipeline.
    """

    arity = 1

    def __init__(self, labels: Optional[Dict[int, str]] = None, unit: str = "") -> None:
        self.labels = labels or {}
        self.unit = unit

    def __call__(self, xs: Sequence[float]) -> float:
        return float(xs[0])

    def label(self, raw: int) -> str:
        return self.labels.get(raw, f"state {raw}")

    def describe(self) -> str:
        return "enum"


def formulas_equivalent(
    candidate: Formula,
    truth: Formula,
    samples: Sequence[Tuple[float, ...]],
    rel_tol: float = 0.05,
    abs_tol: float = 0.5,
    range_tol: float = 0.03,
) -> bool:
    """Numeric-equivalence check over the *observed* input range.

    The paper accepts an inferred formula when its outputs match the ground
    truth over the values actually seen in traffic (e.g. ``Y=1.7X-22`` vs
    ``Y=1.8X-40`` on X in 0xA0..0xC0, §4.2), and explicitly tolerates the
    slight coefficient deviations its display-lag noise induces (§4.3).  We
    therefore compare outputs sample-by-sample, with a tolerance that is
    the larger of an absolute floor, a per-value relative bound, and a
    small fraction of the output *range* (so a formula that tracks the
    whole sweep but carries a tiny offset — the paper's accepted case — is
    not rejected at the bottom of the range).
    """
    if not samples:
        return False
    try:
        wants = [truth(xs) for xs in samples]
    except (ValueError, ZeroDivisionError, OverflowError):
        return False
    spread = max(wants) - min(wants)
    for xs, want in zip(samples, wants):
        try:
            got = candidate(xs)
        except (ValueError, ZeroDivisionError, OverflowError):
            return False
        if math.isnan(got) or math.isinf(got):
            return False
        tolerance = max(abs_tol, rel_tol * abs(want), range_tol * spread)
        if abs(got - want) > tolerance:
            return False
    return True
