"""Columnar (structure-of-arrays) view of a CAN capture.

The event decoders in this package process one frame at a time through a
Python state machine — necessary for multi-frame reassembly, but pure
overhead for the common capture where most conversations are clean
single-frame request/response pairs.  :class:`FrameArrays` converts a
whole capture into numpy columns once (ids, timestamps, DLCs, and a
zero-padded ``N x 8`` payload matrix) so that screening, transport
classification, and single-frame payload extraction become array
operations over the entire capture instead of per-frame Python calls.

The original :class:`~repro.can.CanFrame` objects are kept alongside the
columns: any stream the vectorised path cannot prove clean falls back to
the event decoders, which need the real frames.

Hosts without numpy (:data:`HAVE_NUMPY` false) simply never build the
columnar view; every caller treats that as "use the event path".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

try:
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None
    HAVE_NUMPY = False

from ..can import MAX_DATA_LENGTH, CanFrame


@dataclass
class FrameArrays:
    """One capture as columns plus the original frames for fallback."""

    can_ids: "np.ndarray"  # uint32 (N,)
    timestamps: "np.ndarray"  # float64 (N,)
    dlcs: "np.ndarray"  # int16 (N,)
    payloads: "np.ndarray"  # uint8 (N, MAX_DATA_LENGTH), zero-padded
    frames: List[CanFrame]

    def __len__(self) -> int:
        return len(self.frames)

    @classmethod
    def from_frames(cls, frames: Iterable[CanFrame]) -> "FrameArrays":
        """Build the columnar view; one pass over the capture.

        The payload matrix is filled by scattering the concatenation of
        all data fields through a column-index mask — row-major order of
        the mask's true cells is exactly frame order x byte order, so no
        per-frame Python assignment is needed.
        """
        if not HAVE_NUMPY:
            raise RuntimeError("numpy unavailable; use the event decode path")
        frames = list(frames)
        n = len(frames)
        can_ids = np.fromiter((f.can_id for f in frames), dtype=np.uint32, count=n)
        timestamps = np.fromiter(
            (f.timestamp for f in frames), dtype=np.float64, count=n
        )
        dlcs = np.fromiter((len(f.data) for f in frames), dtype=np.int16, count=n)
        payloads = np.zeros((n, MAX_DATA_LENGTH), dtype=np.uint8)
        if n:
            flat = np.frombuffer(b"".join(f.data for f in frames), dtype=np.uint8)
            columns = np.arange(MAX_DATA_LENGTH, dtype=np.int16)
            payloads[columns[None, :] < dlcs[:, None]] = flat
        return cls(can_ids, timestamps, dlcs, payloads, frames)

    def nibbles(self, offset: int) -> "np.ndarray":
        """High PCI nibble of byte ``offset`` for every frame.

        Frames too short to hold byte ``offset`` read the zero padding;
        callers must mask with ``dlcs > offset`` (mirroring the event
        path, where such frames have no PCI at all).
        """
        return self.payloads[:, offset] >> 4
