"""ISO 15765-2 (ISO-TP / DoCAN) transport protocol.

Four protocol control information (PCI) types exist, distinguished by the
high nibble of the first PCI byte (Fig. 7 of the paper):

====  ===================  =========================================
 PCI  Frame type           Layout
====  ===================  =========================================
 0x0  Single frame (SF)    ``0L dd dd ...``      L = length (1..7)
 0x1  First frame (FF)     ``1L LL dd ...``      12-bit total length
 0x2  Consecutive (CF)     ``2N dd dd ...``      N = sequence 1..15,0,..
 0x3  Flow control (FC)    ``3S BS ST``          S = flow status
====  ===================  =========================================

The sender of a multi-frame message transmits the FF, waits for a flow
control frame from the receiver (flow status 0 = continue to send), then
sends consecutive frames honouring the advertised block size and minimum
separation time.

This module provides:

* :func:`segment` / :class:`IsoTpReassembler` — stateless encoding and
  stateful decoding, used both by the simulator and by the offline
  payload-assembly stage of DP-Reverser;
* :class:`IsoTpEndpoint` — a bus-attached endpoint implementing the full
  handshake, used by simulated ECUs and diagnostic tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional

from ..can import CanFrame, MAX_DATA_LENGTH
from .base import (
    DecodeEvent,
    HardeningPolicy,
    TransportDecoder,
    TransportEncoder,
    TransportError,
)

SF_MAX_PAYLOAD = 7
FF_PAYLOAD = 6
CF_PAYLOAD = 7
MAX_MESSAGE_LENGTH = 0xFFF  # 12-bit length field


class PciType(IntEnum):
    """High nibble of the first PCI byte."""

    SINGLE = 0x0
    FIRST = 0x1
    CONSECUTIVE = 0x2
    FLOW_CONTROL = 0x3


class FlowStatus(IntEnum):
    """Flow status values carried by flow-control frames."""

    CONTINUE = 0x0
    WAIT = 0x1
    OVERFLOW = 0x2


def pci_type(frame_data: bytes) -> PciType:
    """Classify a raw CAN data field by its ISO-TP PCI nibble."""
    if not frame_data:
        raise TransportError("empty CAN data field has no PCI")
    nibble = frame_data[0] >> 4
    try:
        return PciType(nibble)
    except ValueError as exc:
        raise TransportError(f"unknown ISO-TP PCI nibble {nibble:#x}") from exc


@dataclass(frozen=True)
class FlowControl:
    """Decoded flow-control parameters."""

    status: FlowStatus
    block_size: int = 0  # 0 = send everything without further FC
    st_min_ms: float = 0.0

    def encode(self) -> bytes:
        st = int(self.st_min_ms)
        return bytes([0x30 | self.status, self.block_size, st])

    @classmethod
    def decode(cls, data: bytes) -> "FlowControl":
        if len(data) < 3 or data[0] >> 4 != PciType.FLOW_CONTROL:
            raise TransportError(f"not a flow-control frame: {data.hex()}")
        return cls(FlowStatus(data[0] & 0x0F), data[1], float(data[2]))


def segment(
    payload: bytes,
    can_id: int,
    padding: Optional[int] = 0x00,
    frame_capacity: int = MAX_DATA_LENGTH,
) -> List[CanFrame]:
    """Segment ``payload`` into ISO-TP frames (without flow control).

    Flow-control frames travel in the opposite direction, so the pure
    sender-side segmentation never contains them.  ``padding`` fills unused
    data bytes (classic CAN tools pad to 8 bytes; ``None`` disables
    padding).  ``frame_capacity`` is the usable data-field size per frame —
    8 for normal addressing, 7 for extended addressing where the first byte
    carries the target address.
    """
    if not payload:
        raise TransportError("cannot segment an empty payload")
    if len(payload) > MAX_MESSAGE_LENGTH:
        raise TransportError(
            f"payload of {len(payload)} bytes exceeds ISO-TP 12-bit length"
        )
    if not 3 <= frame_capacity <= MAX_DATA_LENGTH:
        raise TransportError(f"frame capacity {frame_capacity} out of range")
    sf_max = frame_capacity - 1
    ff_payload = frame_capacity - 2
    cf_payload = frame_capacity - 1

    def pad(data: bytes) -> bytes:
        if padding is None or len(data) >= frame_capacity:
            return data
        return data + bytes([padding]) * (frame_capacity - len(data))

    frames: List[CanFrame] = []
    if len(payload) <= sf_max:
        data = bytes([len(payload)]) + payload
        frames.append(CanFrame(can_id, pad(data)))
        return frames

    length = len(payload)
    first = bytes([0x10 | (length >> 8), length & 0xFF]) + payload[:ff_payload]
    frames.append(CanFrame(can_id, first))
    offset = ff_payload
    sequence = 1
    while offset < length:
        chunk = payload[offset : offset + cf_payload]
        frames.append(CanFrame(can_id, pad(bytes([0x20 | sequence]) + chunk)))
        offset += cf_payload
        sequence = (sequence + 1) % 16
    return frames


#: A capture drop of this many consecutive frames or fewer is plausible
#: sniffer loss; a larger sequence jump mid-message is classified (and, in
#: hardened mode, treated) as adversarial sequence poisoning.
PLAUSIBLE_DROP_FRAMES = 3


class _ReassemblyContext:
    """One speculative partial message of a hardened ISO-TP stream."""

    __slots__ = ("buffer", "expected_length", "next_sequence", "last_active")

    def __init__(self, data: bytes, length: int, tick: int) -> None:
        self.buffer = bytearray(data)
        self.expected_length = length
        self.next_sequence = 1
        self.last_active = tick


class IsoTpReassembler(TransportDecoder):
    """Stateful reassembly of one direction of an ISO-TP conversation.

    Feed frames in capture order; :meth:`feed` returns the
    :class:`~repro.transport.base.DecodeEvent`\\ s each frame produced — a
    ``payload`` event whenever a message completes.  Flow-control frames are
    ignored (they carry no payload), matching Step 1 of the paper's
    diagnostic-frames analysis.

    Built for sniffed traffic, the decoder never raises on stream content:

    * a duplicate consecutive frame (the sequence number just consumed) is
      dropped with an ``error`` event — the message still completes;
    * any other sequence gap abandons the message with a ``resync`` event
      and the decoder re-locks on the next SF/FF;
    * a new first frame or a single frame arriving mid-message abandons the
      old message (``resync``) and processes the new frame normally.

    With a :class:`~repro.transport.base.HardeningPolicy` attached the
    single-context strategy above becomes *bounded speculative reassembly*:
    up to ``max_contexts_per_stream`` partial messages are kept
    concurrently, a first frame never abandons an in-flight transfer, each
    consecutive frame extends every context expecting its sequence number
    (so an attacker racing the victim with its own first frame cannot
    steal the victim's consecutive frames), implausible sequence jumps are
    dropped instead of poisoning the buffer, and the per-stream byte
    budget evicts the least recently active context first.  On a clean
    capture exactly one context ever exists, so hardened and unhardened
    decode are byte-identical.
    """

    KIND = "isotp"

    def __init__(
        self, strict: bool = True, hardening: Optional[HardeningPolicy] = None
    ) -> None:
        super().__init__(strict)
        self.hardening = hardening
        self._buffer = bytearray()
        self._expected_length = 0
        self._next_sequence = 0
        self._in_progress = False
        self._contexts: List[_ReassemblyContext] = []
        self._tick = 0

    def reset(self) -> None:
        self._buffer.clear()
        self._expected_length = 0
        self._next_sequence = 0
        self._in_progress = False
        self._contexts = []

    @property
    def idle(self) -> bool:
        if self.hardening is not None:
            return not self._contexts
        return not self._in_progress

    @property
    def buffered_bytes(self) -> int:
        if self.hardening is not None:
            return sum(len(context.buffer) for context in self._contexts)
        return len(self._buffer)

    def evict_partial(self) -> int:
        freed = 0
        if self.hardening is not None:
            for context in self._contexts:
                freed += len(context.buffer)
                self.stats.resyncs += 1
                self.stats.messages_lost += 1
                self.stats.bytes_discarded += len(context.buffer)
                self.stats.stale_stream_evictions += 1
            self._contexts = []
            return freed
        if self._in_progress:
            freed = len(self._buffer)
            self.stats.resyncs += 1
            self.stats.messages_lost += 1
            self.stats.bytes_discarded += freed
            self.stats.stale_stream_evictions += 1
            self.reset()
        return freed

    def _abandon(self, detail: str, overflow: bool = False) -> DecodeEvent:
        """Drop the in-progress message and account the loss."""
        self.stats.resyncs += 1
        self.stats.messages_lost += 1
        self.stats.bytes_discarded += len(self._buffer)
        if overflow:
            self.stats.overflows += 1
        self.reset()
        return DecodeEvent.resync(detail)

    def _error(self, detail: str) -> DecodeEvent:
        self.stats.errors += 1
        return DecodeEvent.error(detail)

    def feed(self, frame: CanFrame) -> List[DecodeEvent]:
        self.stats.frames += 1
        data = frame.data
        try:
            kind = pci_type(data)
        except TransportError as exc:
            return [self._error(str(exc))]
        if kind == PciType.FLOW_CONTROL:
            return []
        if self.hardening is not None:
            return self._feed_hardened(kind, data)
        events: List[DecodeEvent] = []
        if kind == PciType.SINGLE:
            length = data[0] & 0x0F
            if length == 0 or length > SF_MAX_PAYLOAD or length > len(data) - 1:
                return events + [self._error(f"bad single-frame length in {data.hex()}")]
            if self._in_progress:
                events.append(
                    self._abandon("single frame interrupted a multi-frame message")
                )
            self.reset()
            self.stats.payloads += 1
            events.append(DecodeEvent.message(bytes(data[1 : 1 + length])))
            return events
        if kind == PciType.FIRST:
            if len(data) < 3:
                return events + [self._error(f"truncated first frame {data.hex()}")]
            length = ((data[0] & 0x0F) << 8) | data[1]
            # A first frame announcing a tiny length is malformed.  The
            # threshold is the *extended-addressing* single-frame maximum
            # (6), since those streams reach us with the address stripped.
            if length <= SF_MAX_PAYLOAD - 1:
                return events + [
                    self._error(
                        f"first frame announces {length} bytes, "
                        "which would fit a single frame"
                    )
                ]
            if self._in_progress:
                # Detection: an FF landing on a busy stream is exactly the
                # shape of a session-starvation attack (counter only; the
                # abandon below is the historical behaviour either way).
                self.stats.suspected_starvation += 1
                events.append(
                    self._abandon("first frame interrupted a multi-frame message")
                )
            self._expected_length = length
            self._buffer = bytearray(data[2:])
            self._next_sequence = 1
            self._in_progress = True
            return events
        # Consecutive frame.
        if not self._in_progress:
            return [self._error("consecutive frame without a first frame")]
        sequence = data[0] & 0x0F
        if sequence != self._next_sequence:
            if sequence == (self._next_sequence - 1) % 16:
                # The frame we just consumed, seen again: a duplicated
                # capture, not a lost one.  Ignore it and keep the message.
                return [self._error(f"duplicate consecutive frame {sequence}")]
            # Detection: a short forward jump is plausible sniffer loss; a
            # longer one is the shape of injected-CF sequence poisoning.
            if (sequence - self._next_sequence) % 16 > PLAUSIBLE_DROP_FRAMES:
                self.stats.sequence_poisonings += 1
            return [
                self._abandon(
                    f"sequence gap: expected {self._next_sequence}, got {sequence}"
                )
            ]
        self._next_sequence = (self._next_sequence + 1) % 16
        self._buffer.extend(data[1:])
        if len(self._buffer) >= self._expected_length:
            payload = bytes(self._buffer[: self._expected_length])
            self.reset()
            self.stats.payloads += 1
            return [DecodeEvent.message(payload)]
        return []

    # --------------------------------------------------- hardened reassembly

    def _evict_context(
        self, context: _ReassemblyContext, why: str, stale: bool = True
    ) -> DecodeEvent:
        self._contexts.remove(context)
        self.stats.resyncs += 1
        self.stats.messages_lost += 1
        self.stats.bytes_discarded += len(context.buffer)
        if stale:
            self.stats.stale_stream_evictions += 1
            return DecodeEvent.resync(f"stale partial message evicted ({why})")
        return DecodeEvent.resync(why)

    def _evict_lru(self, why: str) -> DecodeEvent:
        oldest = min(self._contexts, key=lambda c: c.last_active)
        return self._evict_context(oldest, why)

    def _feed_hardened(self, kind: PciType, data: bytes) -> List[DecodeEvent]:
        policy = self.hardening
        self._tick += 1
        events: List[DecodeEvent] = []
        if kind == PciType.SINGLE:
            length = data[0] & 0x0F
            if length == 0 or length > SF_MAX_PAYLOAD or length > len(data) - 1:
                return [self._error(f"bad single-frame length in {data.hex()}")]
            # Unlike the unhardened path, an SF does not abandon partial
            # messages: a hostile SF must not be able to kill a transfer.
            self.stats.payloads += 1
            return [DecodeEvent.message(bytes(data[1 : 1 + length]))]
        if kind == PciType.FIRST:
            if len(data) < 3:
                return [self._error(f"truncated first frame {data.hex()}")]
            length = ((data[0] & 0x0F) << 8) | data[1]
            if length <= SF_MAX_PAYLOAD - 1:
                return [
                    self._error(
                        f"first frame announces {length} bytes, "
                        "which would fit a single frame"
                    )
                ]
            if self._contexts:
                self.stats.suspected_starvation += 1
            self._contexts.append(_ReassemblyContext(data[2:], length, self._tick))
            while len(self._contexts) > policy.max_contexts_per_stream:
                events.append(self._evict_lru("context cap"))
            while self.buffered_bytes > policy.per_stream_budget and self._contexts:
                events.append(self._evict_lru("stream byte budget"))
            return events
        # Consecutive frame: extend *every* context expecting this sequence
        # number (speculative reassembly — the real transfer keeps
        # progressing even while a hostile first frame shadows it).
        if not self._contexts:
            return [self._error("consecutive frame without a first frame")]
        sequence = data[0] & 0x0F
        matched = [c for c in self._contexts if c.next_sequence == sequence]
        if matched:
            for context in matched:
                context.next_sequence = (context.next_sequence + 1) % 16
                context.buffer.extend(data[1:])
                context.last_active = self._tick
                if len(context.buffer) >= context.expected_length:
                    self._contexts.remove(context)
                    self.stats.payloads += 1
                    events.append(
                        DecodeEvent.message(bytes(context.buffer[: context.expected_length]))
                    )
            while self.buffered_bytes > policy.per_stream_budget and self._contexts:
                events.append(self._evict_lru("stream byte budget"))
            return events
        recent = max(self._contexts, key=lambda c: c.last_active)
        if sequence == (recent.next_sequence - 1) % 16:
            return [self._error(f"duplicate consecutive frame {sequence}")]
        oldest = min(self._contexts, key=lambda c: c.last_active)
        if 1 <= (sequence - oldest.next_sequence) % 16 <= PLAUSIBLE_DROP_FRAMES:
            # Plausible sniffer drop on the longest-waiting transfer: give
            # up on it exactly as the unhardened decoder would.
            return [
                self._evict_context(
                    oldest,
                    f"sequence gap: expected {oldest.next_sequence}, got {sequence}",
                    stale=False,
                )
            ]
        self.stats.errors += 1
        self.stats.sequence_poisonings += 1
        return [
            DecodeEvent.error(
                f"alien consecutive frame {sequence} dropped (poisoning suspected)"
            )
        ]


class IsoTpSegmenter(TransportEncoder):
    """Encoder wrapper around :func:`segment` bound to one CAN id."""

    def __init__(self, can_id: int, padding: Optional[int] = 0x00) -> None:
        self.can_id = can_id
        self.padding = padding

    def encode(self, payload: bytes) -> List[CanFrame]:
        return segment(payload, self.can_id, self.padding)


class IsoTpEndpoint:
    """A bus-attached ISO-TP endpoint with the full flow-control handshake.

    The endpoint transmits on ``tx_id`` and listens on ``rx_id``.  When it
    receives a first frame it immediately answers with a flow-control frame
    (continue-to-send); when it sends a multi-frame message it waits for the
    peer's flow control, which on the simulated bus arrives synchronously.
    """

    def __init__(
        self,
        bus,
        name: str,
        tx_id: int,
        rx_id: int,
        block_size: int = 0,
        st_min_ms: float = 0.0,
        padding: Optional[int] = 0x00,
        on_message=None,
        hardening: Optional[HardeningPolicy] = None,
    ) -> None:
        from ..can import BusNode

        self.tx_id = tx_id
        self.rx_id = rx_id
        self.block_size = block_size
        self.st_min_ms = st_min_ms
        self.padding = padding
        self.on_message = on_message
        self.hardening = hardening
        self._reassembler = IsoTpReassembler(hardening=hardening)
        self._inbox: List[bytes] = []
        self._fc_window = 0  # frames the peer allowed us to send
        self._peer_st_min_ms = 0.0  # pacing the peer demanded
        self._awaiting_fc = False
        self._cf_since_fc = 0  # receiver side: CFs since our last FC
        self._receiving_multi = False
        self._sending = False  # inside a multi-frame send() right now
        self._fc_accepted = 0  # FC grants taken for the current send
        self.fc_sent = 0
        #: Flow-control frames rejected as unsolicited or conflicting —
        #: the live-endpoint face of ``DecoderStats.fc_violations``.
        self.fc_rejected = 0
        self.node = BusNode(name, handler=self._on_frame)
        bus.attach(self.node)

    # ---------------------------------------------------------------- receive

    def _on_frame(self, frame: CanFrame) -> None:
        if frame.can_id != self.rx_id:
            return
        kind = pci_type(frame.data)
        if kind == PciType.FLOW_CONTROL:
            control = FlowControl.decode(frame.data)
            if self.hardening is not None:
                self._accept_flow_control(control)
                return
            if control.status == FlowStatus.CONTINUE:
                self._fc_window = control.block_size or -1  # -1 = unlimited
                self._peer_st_min_ms = control.st_min_ms
                self._awaiting_fc = False
            elif control.status == FlowStatus.OVERFLOW:
                self._fc_window = 0
                self._awaiting_fc = False
            # WAIT keeps _awaiting_fc set: the sender holds until the next FC.
            return
        payload = self._reassembler.feed_payloads(frame)
        if kind == PciType.FIRST:
            self._receiving_multi = True
            self._cf_since_fc = 0
            self._send_flow_control()
        elif kind == PciType.CONSECUTIVE and self._receiving_multi:
            self._cf_since_fc += 1
            # Block complete but message not finished: grant the next block.
            if (
                payload is None
                and self.block_size
                and self._cf_since_fc >= self.block_size
            ):
                self._cf_since_fc = 0
                self._send_flow_control()
        if payload is not None:
            self._receiving_multi = False
            if self.on_message is not None:
                self.on_message(payload)
            else:
                self._inbox.append(payload)

    def _accept_flow_control(self, control: FlowControl) -> None:
        """Hardened FC intake: bounded trust in what the wire claims.

        A grant is honoured only while a transfer is actually in flight;
        when two grants race for the same first frame (the genuine peer
        and a spoofer answering the same FF), the *most permissive* wins —
        a denial-of-service spoof is by construction less permissive than
        the real receiver, so the victim keeps its throughput while the
        conflict is counted.  STmin is clamped to ``max_st_min_ms``.
        """
        if not (self._sending or self._awaiting_fc):
            self.fc_rejected += 1
            self._reassembler.stats.fc_violations += 1
            return
        if control.status == FlowStatus.WAIT:
            return  # hold; the sender keeps waiting for a real grant
        st_min = min(control.st_min_ms, self.hardening.max_st_min_ms)
        window = 0
        if control.status == FlowStatus.CONTINUE:
            window = control.block_size or -1
        self._fc_accepted += 1
        if self._fc_accepted == 1 or self._fc_window == 0:
            # First grant of this handshake, or the next-block grant after
            # an exhausted window: taken at face value.
            self._fc_window = window
            self._peer_st_min_ms = st_min
            self._awaiting_fc = False
            return
        # A second grant while a window is still open: someone is lying.
        self.fc_rejected += 1
        self._reassembler.stats.fc_violations += 1
        if self._fc_window != -1 and (window == -1 or window > self._fc_window):
            self._fc_window = window
        self._peer_st_min_ms = min(self._peer_st_min_ms, st_min)
        self._awaiting_fc = False

    def _send_flow_control(self) -> None:
        control = FlowControl(FlowStatus.CONTINUE, self.block_size, self.st_min_ms)
        data = control.encode()
        if self.padding is not None:
            data = data + bytes([self.padding]) * (MAX_DATA_LENGTH - len(data))
        self.fc_sent += 1
        self.node.send(CanFrame(self.tx_id, data))

    def receive(self) -> Optional[bytes]:
        """Pop the oldest fully reassembled message, if any."""
        return self._inbox.pop(0) if self._inbox else None

    def pending(self) -> int:
        return len(self._inbox)

    # ------------------------------------------------------------------- send

    def send(self, payload: bytes) -> List[CanFrame]:
        """Send ``payload``, performing the FC handshake for long messages."""
        frames = segment(payload, self.tx_id, self.padding)
        sent: List[CanFrame] = []
        if len(frames) == 1:
            sent.append(self.node.send(frames[0]))
            return sent
        self._sending = True
        self._fc_accepted = 0
        try:
            self._awaiting_fc = True
            sent.append(self.node.send(frames[0]))  # FF; peer answers FC inline
            if self._awaiting_fc:
                raise TransportError(
                    f"no flow control received after first frame on {self.tx_id:#x}"
                )
            for frame in frames[1:]:
                if self._fc_window == 0:
                    # The peer grants the next block with a fresh FC, which on
                    # the synchronous bus arrives nested inside the previous
                    # CF's delivery; reaching zero here means it never came.
                    raise TransportError("peer block size exhausted without new FC")
                if self._fc_window > 0:
                    # Reserve the slot *before* sending: the block-completing
                    # CF's delivery carries the peer's next grant nested inside,
                    # which must not be consumed by this frame's accounting.
                    self._fc_window -= 1
                if self._peer_st_min_ms:
                    # Honour the peer's minimum separation time between CFs.
                    self.node.bus.clock.advance(self._peer_st_min_ms / 1000.0)
                sent.append(self.node.send(frame))
        finally:
            self._sending = False
        return sent


def classify_frames(frames) -> Dict[str, int]:
    """Count single / first / consecutive / flow-control frames in a capture.

    Used by the Table 9 bench to report the single- vs multi-frame mix.
    """
    counts = {"single": 0, "first": 0, "consecutive": 0, "flow_control": 0}
    names = {
        PciType.SINGLE: "single",
        PciType.FIRST: "first",
        PciType.CONSECUTIVE: "consecutive",
        PciType.FLOW_CONTROL: "flow_control",
    }
    for frame in frames:
        try:
            counts[names[pci_type(frame.data)]] += 1
        except TransportError:
            continue
    return counts
