"""ISO 15765-2 (ISO-TP / DoCAN) transport protocol.

Four protocol control information (PCI) types exist, distinguished by the
high nibble of the first PCI byte (Fig. 7 of the paper):

====  ===================  =========================================
 PCI  Frame type           Layout
====  ===================  =========================================
 0x0  Single frame (SF)    ``0L dd dd ...``      L = length (1..7)
 0x1  First frame (FF)     ``1L LL dd ...``      12-bit total length
 0x2  Consecutive (CF)     ``2N dd dd ...``      N = sequence 1..15,0,..
 0x3  Flow control (FC)    ``3S BS ST``          S = flow status
====  ===================  =========================================

The sender of a multi-frame message transmits the FF, waits for a flow
control frame from the receiver (flow status 0 = continue to send), then
sends consecutive frames honouring the advertised block size and minimum
separation time.

This module provides:

* :func:`segment` / :class:`IsoTpReassembler` — stateless encoding and
  stateful decoding, used both by the simulator and by the offline
  payload-assembly stage of DP-Reverser;
* :class:`IsoTpEndpoint` — a bus-attached endpoint implementing the full
  handshake, used by simulated ECUs and diagnostic tools.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Optional

from ..can import CanFrame, MAX_DATA_LENGTH
from .base import DecodeEvent, TransportDecoder, TransportEncoder, TransportError

SF_MAX_PAYLOAD = 7
FF_PAYLOAD = 6
CF_PAYLOAD = 7
MAX_MESSAGE_LENGTH = 0xFFF  # 12-bit length field


class PciType(IntEnum):
    """High nibble of the first PCI byte."""

    SINGLE = 0x0
    FIRST = 0x1
    CONSECUTIVE = 0x2
    FLOW_CONTROL = 0x3


class FlowStatus(IntEnum):
    """Flow status values carried by flow-control frames."""

    CONTINUE = 0x0
    WAIT = 0x1
    OVERFLOW = 0x2


def pci_type(frame_data: bytes) -> PciType:
    """Classify a raw CAN data field by its ISO-TP PCI nibble."""
    if not frame_data:
        raise TransportError("empty CAN data field has no PCI")
    nibble = frame_data[0] >> 4
    try:
        return PciType(nibble)
    except ValueError as exc:
        raise TransportError(f"unknown ISO-TP PCI nibble {nibble:#x}") from exc


@dataclass(frozen=True)
class FlowControl:
    """Decoded flow-control parameters."""

    status: FlowStatus
    block_size: int = 0  # 0 = send everything without further FC
    st_min_ms: float = 0.0

    def encode(self) -> bytes:
        st = int(self.st_min_ms)
        return bytes([0x30 | self.status, self.block_size, st])

    @classmethod
    def decode(cls, data: bytes) -> "FlowControl":
        if len(data) < 3 or data[0] >> 4 != PciType.FLOW_CONTROL:
            raise TransportError(f"not a flow-control frame: {data.hex()}")
        return cls(FlowStatus(data[0] & 0x0F), data[1], float(data[2]))


def segment(
    payload: bytes,
    can_id: int,
    padding: Optional[int] = 0x00,
    frame_capacity: int = MAX_DATA_LENGTH,
) -> List[CanFrame]:
    """Segment ``payload`` into ISO-TP frames (without flow control).

    Flow-control frames travel in the opposite direction, so the pure
    sender-side segmentation never contains them.  ``padding`` fills unused
    data bytes (classic CAN tools pad to 8 bytes; ``None`` disables
    padding).  ``frame_capacity`` is the usable data-field size per frame —
    8 for normal addressing, 7 for extended addressing where the first byte
    carries the target address.
    """
    if not payload:
        raise TransportError("cannot segment an empty payload")
    if len(payload) > MAX_MESSAGE_LENGTH:
        raise TransportError(
            f"payload of {len(payload)} bytes exceeds ISO-TP 12-bit length"
        )
    if not 3 <= frame_capacity <= MAX_DATA_LENGTH:
        raise TransportError(f"frame capacity {frame_capacity} out of range")
    sf_max = frame_capacity - 1
    ff_payload = frame_capacity - 2
    cf_payload = frame_capacity - 1

    def pad(data: bytes) -> bytes:
        if padding is None or len(data) >= frame_capacity:
            return data
        return data + bytes([padding]) * (frame_capacity - len(data))

    frames: List[CanFrame] = []
    if len(payload) <= sf_max:
        data = bytes([len(payload)]) + payload
        frames.append(CanFrame(can_id, pad(data)))
        return frames

    length = len(payload)
    first = bytes([0x10 | (length >> 8), length & 0xFF]) + payload[:ff_payload]
    frames.append(CanFrame(can_id, first))
    offset = ff_payload
    sequence = 1
    while offset < length:
        chunk = payload[offset : offset + cf_payload]
        frames.append(CanFrame(can_id, pad(bytes([0x20 | sequence]) + chunk)))
        offset += cf_payload
        sequence = (sequence + 1) % 16
    return frames


class IsoTpReassembler(TransportDecoder):
    """Stateful reassembly of one direction of an ISO-TP conversation.

    Feed frames in capture order; :meth:`feed` returns the
    :class:`~repro.transport.base.DecodeEvent`\\ s each frame produced — a
    ``payload`` event whenever a message completes.  Flow-control frames are
    ignored (they carry no payload), matching Step 1 of the paper's
    diagnostic-frames analysis.

    Built for sniffed traffic, the decoder never raises on stream content:

    * a duplicate consecutive frame (the sequence number just consumed) is
      dropped with an ``error`` event — the message still completes;
    * any other sequence gap abandons the message with a ``resync`` event
      and the decoder re-locks on the next SF/FF;
    * a new first frame or a single frame arriving mid-message abandons the
      old message (``resync``) and processes the new frame normally.
    """

    KIND = "isotp"

    def __init__(self, strict: bool = True) -> None:
        super().__init__(strict)
        self._buffer = bytearray()
        self._expected_length = 0
        self._next_sequence = 0
        self._in_progress = False

    def reset(self) -> None:
        self._buffer.clear()
        self._expected_length = 0
        self._next_sequence = 0
        self._in_progress = False

    @property
    def idle(self) -> bool:
        return not self._in_progress

    def _abandon(self, detail: str, overflow: bool = False) -> DecodeEvent:
        """Drop the in-progress message and account the loss."""
        self.stats.resyncs += 1
        self.stats.messages_lost += 1
        self.stats.bytes_discarded += len(self._buffer)
        if overflow:
            self.stats.overflows += 1
        self.reset()
        return DecodeEvent.resync(detail)

    def _error(self, detail: str) -> DecodeEvent:
        self.stats.errors += 1
        return DecodeEvent.error(detail)

    def feed(self, frame: CanFrame) -> List[DecodeEvent]:
        self.stats.frames += 1
        data = frame.data
        try:
            kind = pci_type(data)
        except TransportError as exc:
            return [self._error(str(exc))]
        if kind == PciType.FLOW_CONTROL:
            return []
        events: List[DecodeEvent] = []
        if kind == PciType.SINGLE:
            length = data[0] & 0x0F
            if length == 0 or length > SF_MAX_PAYLOAD or length > len(data) - 1:
                return events + [self._error(f"bad single-frame length in {data.hex()}")]
            if self._in_progress:
                events.append(
                    self._abandon("single frame interrupted a multi-frame message")
                )
            self.reset()
            self.stats.payloads += 1
            events.append(DecodeEvent.message(bytes(data[1 : 1 + length])))
            return events
        if kind == PciType.FIRST:
            if len(data) < 3:
                return events + [self._error(f"truncated first frame {data.hex()}")]
            length = ((data[0] & 0x0F) << 8) | data[1]
            # A first frame announcing a tiny length is malformed.  The
            # threshold is the *extended-addressing* single-frame maximum
            # (6), since those streams reach us with the address stripped.
            if length <= SF_MAX_PAYLOAD - 1:
                return events + [
                    self._error(
                        f"first frame announces {length} bytes, "
                        "which would fit a single frame"
                    )
                ]
            if self._in_progress:
                events.append(
                    self._abandon("first frame interrupted a multi-frame message")
                )
            self._expected_length = length
            self._buffer = bytearray(data[2:])
            self._next_sequence = 1
            self._in_progress = True
            return events
        # Consecutive frame.
        if not self._in_progress:
            return [self._error("consecutive frame without a first frame")]
        sequence = data[0] & 0x0F
        if sequence != self._next_sequence:
            if sequence == (self._next_sequence - 1) % 16:
                # The frame we just consumed, seen again: a duplicated
                # capture, not a lost one.  Ignore it and keep the message.
                return [self._error(f"duplicate consecutive frame {sequence}")]
            return [
                self._abandon(
                    f"sequence gap: expected {self._next_sequence}, got {sequence}"
                )
            ]
        self._next_sequence = (self._next_sequence + 1) % 16
        self._buffer.extend(data[1:])
        if len(self._buffer) >= self._expected_length:
            payload = bytes(self._buffer[: self._expected_length])
            self.reset()
            self.stats.payloads += 1
            return [DecodeEvent.message(payload)]
        return []


class IsoTpSegmenter(TransportEncoder):
    """Encoder wrapper around :func:`segment` bound to one CAN id."""

    def __init__(self, can_id: int, padding: Optional[int] = 0x00) -> None:
        self.can_id = can_id
        self.padding = padding

    def encode(self, payload: bytes) -> List[CanFrame]:
        return segment(payload, self.can_id, self.padding)


class IsoTpEndpoint:
    """A bus-attached ISO-TP endpoint with the full flow-control handshake.

    The endpoint transmits on ``tx_id`` and listens on ``rx_id``.  When it
    receives a first frame it immediately answers with a flow-control frame
    (continue-to-send); when it sends a multi-frame message it waits for the
    peer's flow control, which on the simulated bus arrives synchronously.
    """

    def __init__(
        self,
        bus,
        name: str,
        tx_id: int,
        rx_id: int,
        block_size: int = 0,
        st_min_ms: float = 0.0,
        padding: Optional[int] = 0x00,
        on_message=None,
    ) -> None:
        from ..can import BusNode

        self.tx_id = tx_id
        self.rx_id = rx_id
        self.block_size = block_size
        self.st_min_ms = st_min_ms
        self.padding = padding
        self.on_message = on_message
        self._reassembler = IsoTpReassembler()
        self._inbox: List[bytes] = []
        self._fc_window = 0  # frames the peer allowed us to send
        self._peer_st_min_ms = 0.0  # pacing the peer demanded
        self._awaiting_fc = False
        self._cf_since_fc = 0  # receiver side: CFs since our last FC
        self._receiving_multi = False
        self.fc_sent = 0
        self.node = BusNode(name, handler=self._on_frame)
        bus.attach(self.node)

    # ---------------------------------------------------------------- receive

    def _on_frame(self, frame: CanFrame) -> None:
        if frame.can_id != self.rx_id:
            return
        kind = pci_type(frame.data)
        if kind == PciType.FLOW_CONTROL:
            control = FlowControl.decode(frame.data)
            if control.status == FlowStatus.CONTINUE:
                self._fc_window = control.block_size or -1  # -1 = unlimited
                self._peer_st_min_ms = control.st_min_ms
                self._awaiting_fc = False
            elif control.status == FlowStatus.OVERFLOW:
                self._fc_window = 0
                self._awaiting_fc = False
            # WAIT keeps _awaiting_fc set: the sender holds until the next FC.
            return
        payload = self._reassembler.feed_payloads(frame)
        if kind == PciType.FIRST:
            self._receiving_multi = True
            self._cf_since_fc = 0
            self._send_flow_control()
        elif kind == PciType.CONSECUTIVE and self._receiving_multi:
            self._cf_since_fc += 1
            # Block complete but message not finished: grant the next block.
            if (
                payload is None
                and self.block_size
                and self._cf_since_fc >= self.block_size
            ):
                self._cf_since_fc = 0
                self._send_flow_control()
        if payload is not None:
            self._receiving_multi = False
            if self.on_message is not None:
                self.on_message(payload)
            else:
                self._inbox.append(payload)

    def _send_flow_control(self) -> None:
        control = FlowControl(FlowStatus.CONTINUE, self.block_size, self.st_min_ms)
        data = control.encode()
        if self.padding is not None:
            data = data + bytes([self.padding]) * (MAX_DATA_LENGTH - len(data))
        self.fc_sent += 1
        self.node.send(CanFrame(self.tx_id, data))

    def receive(self) -> Optional[bytes]:
        """Pop the oldest fully reassembled message, if any."""
        return self._inbox.pop(0) if self._inbox else None

    def pending(self) -> int:
        return len(self._inbox)

    # ------------------------------------------------------------------- send

    def send(self, payload: bytes) -> List[CanFrame]:
        """Send ``payload``, performing the FC handshake for long messages."""
        frames = segment(payload, self.tx_id, self.padding)
        sent: List[CanFrame] = []
        if len(frames) == 1:
            sent.append(self.node.send(frames[0]))
            return sent
        self._awaiting_fc = True
        sent.append(self.node.send(frames[0]))  # FF; peer answers FC inline
        if self._awaiting_fc:
            raise TransportError(
                f"no flow control received after first frame on {self.tx_id:#x}"
            )
        for frame in frames[1:]:
            if self._fc_window == 0:
                # The peer grants the next block with a fresh FC, which on
                # the synchronous bus arrives nested inside the previous
                # CF's delivery; reaching zero here means it never came.
                raise TransportError("peer block size exhausted without new FC")
            if self._fc_window > 0:
                # Reserve the slot *before* sending: the block-completing
                # CF's delivery carries the peer's next grant nested inside,
                # which must not be consumed by this frame's accounting.
                self._fc_window -= 1
            if self._peer_st_min_ms:
                # Honour the peer's minimum separation time between CFs.
                self.node.bus.clock.advance(self._peer_st_min_ms / 1000.0)
            sent.append(self.node.send(frame))
        return sent


def classify_frames(frames) -> Dict[str, int]:
    """Count single / first / consecutive / flow-control frames in a capture.

    Used by the Table 9 bench to report the single- vs multi-frame mix.
    """
    counts = {"single": 0, "first": 0, "consecutive": 0, "flow_control": 0}
    names = {
        PciType.SINGLE: "single",
        PciType.FIRST: "first",
        PciType.CONSECUTIVE: "consecutive",
        PciType.FLOW_CONTROL: "flow_control",
    }
    for frame in frames:
        try:
            counts[names[pci_type(frame.data)]] += 1
        except TransportError:
            continue
    return counts
