"""Common interface for transport/network-layer protocols.

A *transport endpoint* turns whole diagnostic messages (arbitrary-length byte
strings) into CAN frames and back.  Three concrete families are implemented,
matching §3.2 of the paper:

* :mod:`repro.transport.isotp` — ISO 15765-2 (DoCAN), used by UDS, CAN-based
  KWP 2000 and OBD-II;
* :mod:`repro.transport.vwtp` — VW TP 2.0, Volkswagen's channel-oriented
  protocol;
* :mod:`repro.transport.bmw` — BMW/Mini style extended addressing where the
  first byte of every frame carries the target ECU id.

Decoders are built for *sniffed* traffic, which is lossy and interleaved:
instead of returning one optional payload per frame (and raising on the
first malformed frame), :meth:`TransportDecoder.feed` returns a list of
:class:`DecodeEvent`\\ s.  A clean frame mid-message yields ``[]``; a frame
completing a message yields a ``payload`` event; malformed or
out-of-sequence input yields ``error`` / ``resync`` events while the
decoder keeps going.  Every decoder carries a :class:`DecoderStats` with
the running error accounting, which the payload-assembly stage aggregates
into capture-quality diagnostics.

:meth:`TransportDecoder.feed_payloads` is the thin compatibility wrapper
over the event stream: one optional payload per frame, raising
:class:`TransportError` in strict mode — the contract simulated endpoints
(which see a faithful bus, not a noisy tap) still want.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from ..can import CanFrame

#: :attr:`DecodeEvent.kind` values.
EVENT_PAYLOAD = "payload"
EVENT_ERROR = "error"
EVENT_RESYNC = "resync"


class TransportError(Exception):
    """Raised on malformed or out-of-sequence transport frames.

    Only strict-mode paths (:meth:`TransportDecoder.feed_payloads` on a
    simulated endpoint) raise this; the event API reports the same
    conditions as ``error`` events without aborting the stream.
    """


@dataclass(frozen=True)
class DecodeEvent:
    """One decoder observation for a fed frame.

    ``kind`` is one of:

    ``payload``
        A diagnostic message completed; :attr:`payload` carries its bytes.
    ``error``
        The frame was malformed or impossible in the current state and was
        discarded; decoder state is unchanged.
    ``resync``
        The stream lost synchronisation (sequence gap, interrupted
        multi-frame message, buffer overflow); the in-progress message was
        abandoned and the decoder re-locked onto the stream.

    :attr:`detail` is a short human-readable diagnosis used in reports and
    error counters; it never affects control flow.
    """

    kind: str
    payload: Optional[bytes] = None
    detail: str = ""

    @classmethod
    def message(cls, payload: bytes) -> "DecodeEvent":
        return cls(EVENT_PAYLOAD, payload=payload)

    @classmethod
    def error(cls, detail: str) -> "DecodeEvent":
        return cls(EVENT_ERROR, detail=detail)

    @classmethod
    def resync(cls, detail: str) -> "DecodeEvent":
        return cls(EVENT_RESYNC, detail=detail)


@dataclass
class DecoderStats:
    """Per-decoder error accounting (one instance per reassembly stream)."""

    frames: int = 0  # frames fed (control frames included)
    payloads: int = 0  # complete messages recovered
    errors: int = 0  # discarded frames / malformed input
    resyncs: int = 0  # lost-sync recoveries
    messages_lost: int = 0  # in-progress messages abandoned by a resync
    bytes_discarded: int = 0  # buffered bytes thrown away on resync
    overflows: int = 0  # bounded-buffer overflows (subset of resyncs)

    def merge(self, other: "DecoderStats") -> None:
        self.frames += other.frames
        self.payloads += other.payloads
        self.errors += other.errors
        self.resyncs += other.resyncs
        self.messages_lost += other.messages_lost
        self.bytes_discarded += other.bytes_discarded
        self.overflows += other.overflows

    def to_dict(self) -> dict:
        return {
            "frames": self.frames,
            "payloads": self.payloads,
            "errors": self.errors,
            "resyncs": self.resyncs,
            "messages_lost": self.messages_lost,
            "bytes_discarded": self.bytes_discarded,
            "overflows": self.overflows,
        }


class TransportEncoder(abc.ABC):
    """Segment one diagnostic payload into CAN frames."""

    @abc.abstractmethod
    def encode(self, payload: bytes) -> List[CanFrame]:
        """Return the CAN frames that carry ``payload`` (sender side)."""


class TransportDecoder(abc.ABC):
    """Reassemble diagnostic payloads from a frame stream (receiver side).

    Subclasses set :attr:`strict` and :attr:`stats` (the base constructor
    does both) and implement :meth:`feed`.  ``strict`` only changes what
    :meth:`feed_payloads` does with error events; the event API itself
    never raises on stream content.

    :attr:`KIND` is the decoder's short protocol tag (``"isotp"``,
    ``"vwtp"``, ``"bmw"``) — the label trace spans and exported metrics
    use to attribute decode work to a transport family.
    """

    #: Protocol tag for observability labels; subclasses override.
    KIND: str = "transport"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.stats = DecoderStats()

    @abc.abstractmethod
    def feed(self, frame: CanFrame) -> List[DecodeEvent]:
        """Consume one frame; return the decode events it produced."""

    @property
    def idle(self) -> bool:
        """True when no partial message is buffered.

        Chunked fast paths (:meth:`StreamAssembler.feed_chunk`) may only
        bypass a decoder that is idle — mid-reassembly, even a well-formed
        single frame changes decoder state.  Decoders that buffer must
        override; the stateless default is idle.
        """
        return True

    def feed_payloads(self, frame: CanFrame) -> Optional[bytes]:
        """Compatibility wrapper: one optional payload per frame.

        In strict mode the first ``error`` or ``resync`` event raises
        :class:`TransportError` with the event's detail, restoring the
        historical fail-fast contract; lenient mode swallows them.
        """
        payload: Optional[bytes] = None
        for event in self.feed(frame):
            if event.kind == EVENT_PAYLOAD:
                payload = event.payload
            elif self.strict:
                raise TransportError(event.detail or event.kind)
        return payload
