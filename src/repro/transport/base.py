"""Common interface for transport/network-layer protocols.

A *transport endpoint* turns whole diagnostic messages (arbitrary-length byte
strings) into CAN frames and back.  Three concrete families are implemented,
matching §3.2 of the paper:

* :mod:`repro.transport.isotp` — ISO 15765-2 (DoCAN), used by UDS, CAN-based
  KWP 2000 and OBD-II;
* :mod:`repro.transport.vwtp` — VW TP 2.0, Volkswagen's channel-oriented
  protocol;
* :mod:`repro.transport.bmw` — BMW/Mini style extended addressing where the
  first byte of every frame carries the target ECU id.
"""

from __future__ import annotations

import abc
from typing import List, Optional

from ..can import CanFrame


class TransportError(Exception):
    """Raised on malformed or out-of-sequence transport frames."""


class TransportEncoder(abc.ABC):
    """Segment one diagnostic payload into CAN frames."""

    @abc.abstractmethod
    def encode(self, payload: bytes) -> List[CanFrame]:
        """Return the CAN frames that carry ``payload`` (sender side)."""


class TransportDecoder(abc.ABC):
    """Reassemble diagnostic payloads from a frame stream (receiver side)."""

    @abc.abstractmethod
    def feed(self, frame: CanFrame) -> Optional[bytes]:
        """Consume one frame; return a complete payload when one finishes."""
