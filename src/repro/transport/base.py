"""Common interface for transport/network-layer protocols.

A *transport endpoint* turns whole diagnostic messages (arbitrary-length byte
strings) into CAN frames and back.  Three concrete families are implemented,
matching §3.2 of the paper:

* :mod:`repro.transport.isotp` — ISO 15765-2 (DoCAN), used by UDS, CAN-based
  KWP 2000 and OBD-II;
* :mod:`repro.transport.vwtp` — VW TP 2.0, Volkswagen's channel-oriented
  protocol;
* :mod:`repro.transport.bmw` — BMW/Mini style extended addressing where the
  first byte of every frame carries the target ECU id.

Decoders are built for *sniffed* traffic, which is lossy and interleaved:
instead of returning one optional payload per frame (and raising on the
first malformed frame), :meth:`TransportDecoder.feed` returns a list of
:class:`DecodeEvent`\\ s.  A clean frame mid-message yields ``[]``; a frame
completing a message yields a ``payload`` event; malformed or
out-of-sequence input yields ``error`` / ``resync`` events while the
decoder keeps going.  Every decoder carries a :class:`DecoderStats` with
the running error accounting, which the payload-assembly stage aggregates
into capture-quality diagnostics.

:meth:`TransportDecoder.feed_payloads` is the thin compatibility wrapper
over the event stream: one optional payload per frame, raising
:class:`TransportError` in strict mode — the contract simulated endpoints
(which see a faithful bus, not a noisy tap) still want.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional

from ..can import CanFrame

#: :attr:`DecodeEvent.kind` values.
EVENT_PAYLOAD = "payload"
EVENT_ERROR = "error"
EVENT_RESYNC = "resync"


class TransportError(Exception):
    """Raised on malformed or out-of-sequence transport frames.

    Only strict-mode paths (:meth:`TransportDecoder.feed_payloads` on a
    simulated endpoint) raise this; the event API reports the same
    conditions as ``error`` events without aborting the stream.
    """


@dataclass(frozen=True)
class DecodeEvent:
    """One decoder observation for a fed frame.

    ``kind`` is one of:

    ``payload``
        A diagnostic message completed; :attr:`payload` carries its bytes.
    ``error``
        The frame was malformed or impossible in the current state and was
        discarded; decoder state is unchanged.
    ``resync``
        The stream lost synchronisation (sequence gap, interrupted
        multi-frame message, buffer overflow); the in-progress message was
        abandoned and the decoder re-locked onto the stream.

    :attr:`detail` is a short human-readable diagnosis used in reports and
    error counters; it never affects control flow.
    """

    kind: str
    payload: Optional[bytes] = None
    detail: str = ""

    @classmethod
    def message(cls, payload: bytes) -> "DecodeEvent":
        return cls(EVENT_PAYLOAD, payload=payload)

    @classmethod
    def error(cls, detail: str) -> "DecodeEvent":
        return cls(EVENT_ERROR, detail=detail)

    @classmethod
    def resync(cls, detail: str) -> "DecodeEvent":
        return cls(EVENT_RESYNC, detail=detail)


#: :class:`DecoderStats` fields that classify *adversarial* stream shapes
#: rather than plain capture loss.  The observability export surfaces them
#: under the ``transport.anomaly.`` prefix so an attacked fleet lights up a
#: dedicated dashboard row instead of blending into noise accounting.
ANOMALY_FIELDS = (
    "fc_violations",
    "stale_stream_evictions",
    "sequence_poisonings",
    "suspected_starvation",
)


@dataclass
class DecoderStats:
    """Per-decoder error accounting (one instance per reassembly stream)."""

    frames: int = 0  # frames fed (control frames included)
    payloads: int = 0  # complete messages recovered
    errors: int = 0  # discarded frames / malformed input
    resyncs: int = 0  # lost-sync recoveries
    messages_lost: int = 0  # in-progress messages abandoned by a resync
    bytes_discarded: int = 0  # buffered bytes thrown away on resync
    overflows: int = 0  # bounded-buffer overflows (subset of resyncs)
    # Anomaly classification (see ANOMALY_FIELDS): pure detection counters,
    # incremented by unhardened and hardened decoders alike — they never
    # change events or control flow on their own.
    fc_violations: int = 0  # flow control aimed at a busy/quiet stream
    stale_stream_evictions: int = 0  # partial messages shed by budget/deadline
    sequence_poisonings: int = 0  # implausible sequence jumps (not drops)
    suspected_starvation: int = 0  # FF landed on a stream mid-reassembly

    def merge(self, other: "DecoderStats") -> None:
        self.frames += other.frames
        self.payloads += other.payloads
        self.errors += other.errors
        self.resyncs += other.resyncs
        self.messages_lost += other.messages_lost
        self.bytes_discarded += other.bytes_discarded
        self.overflows += other.overflows
        self.fc_violations += other.fc_violations
        self.stale_stream_evictions += other.stale_stream_evictions
        self.sequence_poisonings += other.sequence_poisonings
        self.suspected_starvation += other.suspected_starvation

    def anomaly_counts(self) -> dict:
        """The adversarial-shape counters alone (``transport.anomaly.*``)."""
        return {name: getattr(self, name) for name in ANOMALY_FIELDS}

    def to_dict(self) -> dict:
        return {
            "frames": self.frames,
            "payloads": self.payloads,
            "errors": self.errors,
            "resyncs": self.resyncs,
            "messages_lost": self.messages_lost,
            "bytes_discarded": self.bytes_discarded,
            "overflows": self.overflows,
            "fc_violations": self.fc_violations,
            "stale_stream_evictions": self.stale_stream_evictions,
            "sequence_poisonings": self.sequence_poisonings,
            "suspected_starvation": self.suspected_starvation,
        }


@dataclass(frozen=True)
class HardeningPolicy:
    """Bounds an adversary has to beat, in one opt-in knob.

    ``None`` everywhere a decoder accepts one of these means *unhardened*:
    byte-identical behaviour to the stack before this policy existed, which
    is what keeps noisy-capture baselines stable.  With a policy attached
    the decoders trade the single-context abandon-on-interference strategy
    for bounded speculative reassembly:

    * ISO-TP / BMW keep up to :attr:`max_contexts_per_stream` concurrent
      partial messages per stream, so a hostile first frame cannot abandon
      a victim's transfer (session starvation) and an alien consecutive
      frame is dropped instead of poisoning the buffer;
    * every stream's buffered bytes are capped by :attr:`per_stream_budget`
      and the whole assembler by :attr:`global_budget`, with
      least-recently-active partial messages evicted first (reassembly
      exhaustion);
    * the K-Line parser evicts buffered bytes older than
      :attr:`kline_deadline_s` (slowloris headers);
    * live ISO-TP senders ignore conflicting flow-control grants, keep the
      most permissive one, and clamp STmin to :attr:`max_st_min_ms`
      (FC spoofing).
    """

    #: Concurrent partial messages kept per stream (ISO-TP/BMW contexts,
    #: BMW peer addresses).  The least recently active is evicted beyond it.
    max_contexts_per_stream: int = 4
    #: Byte budget for one stream's buffered partial messages.
    per_stream_budget: int = 4096
    #: Byte budget across every stream of one assembler; least recently
    #: active non-idle stream is shed first.
    global_budget: int = 65536
    #: K-Line bytes buffered longer than this are evicted (a header whose
    #: announced length never arrives); real messages complete within
    #: milliseconds at 10.4 kbaud.
    kline_deadline_s: float = 1.0
    #: Ceiling on the minimum-separation time a flow-control frame can
    #: demand from a hardened sender (ISO 15765-2 caps STmin at 127 ms;
    #: an attacker advertising it strangles throughput 100x).
    max_st_min_ms: float = 20.0

    def to_dict(self) -> dict:
        return {
            "max_contexts_per_stream": self.max_contexts_per_stream,
            "per_stream_budget": self.per_stream_budget,
            "global_budget": self.global_budget,
            "kline_deadline_s": self.kline_deadline_s,
            "max_st_min_ms": self.max_st_min_ms,
        }


#: The default policy callers opt in with (``--harden`` on the CLI).
DEFAULT_HARDENING = HardeningPolicy()


class TransportEncoder(abc.ABC):
    """Segment one diagnostic payload into CAN frames."""

    @abc.abstractmethod
    def encode(self, payload: bytes) -> List[CanFrame]:
        """Return the CAN frames that carry ``payload`` (sender side)."""


class TransportDecoder(abc.ABC):
    """Reassemble diagnostic payloads from a frame stream (receiver side).

    Subclasses set :attr:`strict` and :attr:`stats` (the base constructor
    does both) and implement :meth:`feed`.  ``strict`` only changes what
    :meth:`feed_payloads` does with error events; the event API itself
    never raises on stream content.

    :attr:`KIND` is the decoder's short protocol tag (``"isotp"``,
    ``"vwtp"``, ``"bmw"``) — the label trace spans and exported metrics
    use to attribute decode work to a transport family.
    """

    #: Protocol tag for observability labels; subclasses override.
    KIND: str = "transport"

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.stats = DecoderStats()

    @abc.abstractmethod
    def feed(self, frame: CanFrame) -> List[DecodeEvent]:
        """Consume one frame; return the decode events it produced."""

    @property
    def idle(self) -> bool:
        """True when no partial message is buffered.

        Chunked fast paths (:meth:`StreamAssembler.feed_chunk`) may only
        bypass a decoder that is idle — mid-reassembly, even a well-formed
        single frame changes decoder state.  Decoders that buffer must
        override; the stateless default is idle.
        """
        return True

    @property
    def buffered_bytes(self) -> int:
        """Bytes held in partial-message buffers right now.

        The quantity budget-based hardening accounts against; decoders
        that buffer override, the stateless default holds nothing.
        """
        return 0

    def evict_partial(self) -> int:
        """Drop every partial message, charging the eviction counters.

        The assembler's global byte budget calls this on the least
        recently active stream; returns the bytes freed.  Decoders that
        buffer override; the stateless default frees nothing.
        """
        return 0

    def feed_payloads(self, frame: CanFrame) -> Optional[bytes]:
        """Compatibility wrapper: one optional payload per frame.

        In strict mode the first ``error`` or ``resync`` event raises
        :class:`TransportError` with the event's detail, restoring the
        historical fail-fast contract; lenient mode swallows them.
        """
        payload: Optional[bytes] = None
        for event in self.feed(frame):
            if event.kind == EVENT_PAYLOAD:
                payload = event.payload
            elif self.strict:
                raise TransportError(event.detail or event.kind)
        return payload
