"""Transport/network-layer protocols carrying diagnostic messages over CAN."""

from .base import TransportDecoder, TransportEncoder, TransportError
from .isotp import (
    FlowControl,
    FlowStatus,
    IsoTpEndpoint,
    IsoTpReassembler,
    IsoTpSegmenter,
    PciType,
    classify_frames,
    pci_type,
    segment,
)
from .vwtp import (
    VwTpEndpoint,
    VwTpFrameKind,
    VwTpReassembler,
    classify_vwtp_frame,
    is_last_packet,
    segment_vwtp,
)
from .bmw import BmwEndpoint, BmwReassembler, segment_bmw
from .kline import (
    KLineBus,
    KLineByte,
    KLineEndpoint,
    KLineFrameParser,
    KLineMessage,
    KLineTester,
    frame_message,
    checksum as kline_checksum,
    parse_capture as parse_kline_capture,
    to_assembled_messages as kline_to_assembled_messages,
)

__all__ = [
    "TransportDecoder",
    "TransportEncoder",
    "TransportError",
    "FlowControl",
    "FlowStatus",
    "IsoTpEndpoint",
    "IsoTpReassembler",
    "IsoTpSegmenter",
    "PciType",
    "classify_frames",
    "pci_type",
    "segment",
    "VwTpEndpoint",
    "VwTpFrameKind",
    "VwTpReassembler",
    "classify_vwtp_frame",
    "is_last_packet",
    "segment_vwtp",
    "BmwEndpoint",
    "BmwReassembler",
    "segment_bmw",
    "KLineBus",
    "KLineByte",
    "KLineEndpoint",
    "KLineFrameParser",
    "KLineMessage",
    "KLineTester",
    "frame_message",
    "kline_checksum",
    "parse_kline_capture",
    "kline_to_assembled_messages",
]
