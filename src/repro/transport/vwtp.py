"""VW TP 2.0 — Volkswagen's channel-oriented transport protocol.

Unlike ISO-TP, TP 2.0 is connection oriented.  A session proceeds through
three stages (all of which DP-Reverser must screen out, because only data
frames carry diagnostic payload):

1. **Channel setup** — the tester broadcasts a setup request on CAN id
   ``0x200``; the ECU answers on ``0x200 + ecu_address`` proposing the data
   CAN ids both sides will use.
2. **Channel parameters** — opcode ``0xA0`` request / ``0xA1`` response
   negotiating block size and timing parameters.
3. **Data transmission** — each frame starts with an opcode byte whose high
   nibble encodes *more/last packet* and *ACK expected*, and whose low
   nibble carries a 4-bit sequence number::

       0x0N  more packets follow, ACK expected after this block
       0x1N  last packet of the message, ACK expected
       0x2N  more packets follow, no ACK
       0x3N  last packet, no ACK
       0xBN  acknowledge, next expected sequence N

   Data frames carry **no length field**: message boundaries are determined
   solely by the *last packet* opcodes, which is exactly the property the
   paper's payload-assembly step relies on (§3.2, Step 2).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from ..can import CanFrame, MAX_DATA_LENGTH
from .base import DecodeEvent, HardeningPolicy, TransportDecoder, TransportError

BROADCAST_ID_BASE = 0x200
SETUP_REQUEST_OPCODE = 0xC0
SETUP_RESPONSE_OPCODE = 0xD0
PARAMS_REQUEST_OPCODE = 0xA0
PARAMS_RESPONSE_OPCODE = 0xA1
CHANNEL_TEST_OPCODE = 0xA3
DISCONNECT_OPCODE = 0xA8
ACK_OPCODE_NIBBLE = 0xB
NACK_OPCODE_NIBBLE = 0x9
DATA_BYTES_PER_FRAME = 7

OP_MORE_ACK = 0x0
OP_LAST_ACK = 0x1
OP_MORE_NOACK = 0x2
OP_LAST_NOACK = 0x3


class VwTpFrameKind(Enum):
    """Classification used by the screening stage (§3.2 Step 1)."""

    BROADCAST_SETUP = "broadcast_setup"
    CHANNEL_PARAMS = "channel_params"
    ACK = "ack"
    DATA = "data"
    OTHER = "other"


def classify_vwtp_frame(frame: CanFrame) -> VwTpFrameKind:
    """Classify a captured frame of a VW TP 2.0 session.

    Setup frames live in the broadcast id range; everything else is keyed on
    the opcode byte.
    """
    if not frame.data:
        return VwTpFrameKind.OTHER
    if BROADCAST_ID_BASE <= frame.can_id <= BROADCAST_ID_BASE + 0xFF and len(
        frame.data
    ) >= 2 and frame.data[1] in (SETUP_REQUEST_OPCODE, SETUP_RESPONSE_OPCODE):
        return VwTpFrameKind.BROADCAST_SETUP
    opcode = frame.data[0]
    if opcode in (
        PARAMS_REQUEST_OPCODE,
        PARAMS_RESPONSE_OPCODE,
        CHANNEL_TEST_OPCODE,
        DISCONNECT_OPCODE,
    ):
        return VwTpFrameKind.CHANNEL_PARAMS
    nibble = opcode >> 4
    if nibble in (ACK_OPCODE_NIBBLE, NACK_OPCODE_NIBBLE):
        return VwTpFrameKind.ACK
    if nibble in (OP_MORE_ACK, OP_LAST_ACK, OP_MORE_NOACK, OP_LAST_NOACK):
        return VwTpFrameKind.DATA
    return VwTpFrameKind.OTHER


def is_last_packet(frame: CanFrame) -> bool:
    """True when a *data* frame's opcode marks the end of a message."""
    nibble = frame.data[0] >> 4
    return nibble in (OP_LAST_ACK, OP_LAST_NOACK)


def segment_vwtp(payload: bytes, can_id: int, start_sequence: int = 0) -> List[CanFrame]:
    """Segment ``payload`` into TP 2.0 data frames.

    Every frame except the last uses the *more packets, ACK expected* opcode;
    the final frame uses *last packet, ACK expected*.
    """
    if not payload:
        raise TransportError("cannot segment an empty payload")
    chunks = [
        payload[i : i + DATA_BYTES_PER_FRAME]
        for i in range(0, len(payload), DATA_BYTES_PER_FRAME)
    ]
    frames: List[CanFrame] = []
    sequence = start_sequence % 16
    for index, chunk in enumerate(chunks):
        op = OP_LAST_ACK if index == len(chunks) - 1 else OP_MORE_ACK
        frames.append(CanFrame(can_id, bytes([(op << 4) | sequence]) + chunk))
        sequence = (sequence + 1) % 16
    return frames


# TP 2.0 data frames carry no length field, so a missed last-packet opcode
# would otherwise grow the buffer without bound.  Cap at the same 4095-byte
# ceiling ISO-TP's 12-bit length imposes; no real diagnostic message is
# larger.
MAX_BUFFERED_BYTES = 0xFFF


class VwTpReassembler(TransportDecoder):
    """Reassemble one direction of a TP 2.0 data stream.

    Matches the paper exactly: data frames carry no length field, so the
    opcode's last-packet bit delimits messages.  :meth:`feed` returns
    :class:`~repro.transport.base.DecodeEvent`\\ s and never raises on
    stream content:

    * a duplicated data frame (the sequence number just consumed) is
      dropped with an ``error`` event;
    * any other sequence gap abandons the buffered message (``resync``) and
      the gapped frame starts a fresh one — without a length field that is
      the only way to re-lock;
    * exceeding :data:`MAX_BUFFERED_BYTES` (a lost last-packet opcode)
      abandons the buffer with a ``resync`` marked as an overflow.

    With a :class:`~repro.transport.base.HardeningPolicy` attached, a
    sequence jump too large to be sniffer loss (more than
    :data:`~repro.transport.isotp.PLAUSIBLE_DROP_FRAMES` frames) is judged
    an injected data frame and *dropped* — the buffered message keeps its
    sequence lock and completes when the genuine frames arrive — instead
    of abandoning the victim's buffer the way a plausible drop does.  On a
    clean capture no such jump exists, so hardened decode is
    byte-identical.
    """

    KIND = "vwtp"

    def __init__(
        self, strict: bool = True, hardening: Optional[HardeningPolicy] = None
    ) -> None:
        super().__init__(strict)
        self.hardening = hardening
        self._buffer = bytearray()
        self._next_sequence: Optional[int] = None

    def reset(self) -> None:
        self._buffer.clear()
        self._next_sequence = None

    @property
    def idle(self) -> bool:
        return not self._buffer and self._next_sequence is None

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def evict_partial(self) -> int:
        freed = len(self._buffer)
        if freed or self._next_sequence is not None:
            self.stats.resyncs += 1
            self.stats.messages_lost += 1
            self.stats.bytes_discarded += freed
            self.stats.stale_stream_evictions += 1
            self.reset()
        return freed

    def _abandon(self, detail: str, overflow: bool = False) -> DecodeEvent:
        self.stats.resyncs += 1
        self.stats.messages_lost += 1
        self.stats.bytes_discarded += len(self._buffer)
        if overflow:
            self.stats.overflows += 1
        self.reset()
        return DecodeEvent.resync(detail)

    def feed(self, frame: CanFrame) -> List[DecodeEvent]:
        from .isotp import PLAUSIBLE_DROP_FRAMES

        self.stats.frames += 1
        kind = classify_vwtp_frame(frame)
        if kind != VwTpFrameKind.DATA:
            return []
        events: List[DecodeEvent] = []
        sequence = frame.data[0] & 0x0F
        if self._next_sequence is not None and sequence != self._next_sequence:
            if sequence == (self._next_sequence - 1) % 16:
                # The frame we just consumed, captured twice.
                self.stats.errors += 1
                return [DecodeEvent.error(f"duplicate TP 2.0 data frame {sequence}")]
            implausible = (
                sequence - self._next_sequence
            ) % 16 > PLAUSIBLE_DROP_FRAMES
            if implausible:
                # Detection: too far ahead to be sniffer loss — the shape
                # of an injected data frame.
                self.stats.sequence_poisonings += 1
                if self.hardening is not None:
                    # Hardened: drop the alien frame, keep the buffer; the
                    # genuine stream still holds the sequence lock.
                    self.stats.errors += 1
                    return [
                        DecodeEvent.error(
                            f"alien TP 2.0 data frame {sequence} dropped "
                            "(poisoning suspected)"
                        )
                    ]
            events.append(
                self._abandon(
                    f"TP 2.0 sequence gap: expected {self._next_sequence}, "
                    f"got {sequence}"
                )
            )
        self._next_sequence = (sequence + 1) % 16
        self._buffer.extend(frame.data[1:])
        if len(self._buffer) > MAX_BUFFERED_BYTES:
            events.append(
                self._abandon(
                    "TP 2.0 buffer overflow: no last-packet opcode within "
                    f"{MAX_BUFFERED_BYTES} bytes",
                    overflow=True,
                )
            )
            return events
        if is_last_packet(frame):
            payload = bytes(self._buffer)
            self._buffer = bytearray()
            self.stats.payloads += 1
            events.append(DecodeEvent.message(payload))
        return events


class VwTpEndpoint:
    """A bus-attached TP 2.0 endpoint (either tester or ECU side).

    The tester calls :meth:`connect` which performs channel setup and
    parameter negotiation against a listening ECU endpoint; afterwards both
    sides exchange payloads with :meth:`send` / :meth:`receive`.  ACK frames
    are generated after every completed block and after the last packet.
    """

    def __init__(
        self,
        bus,
        name: str,
        ecu_address: int,
        tx_id: int,
        rx_id: int,
        is_tester: bool,
        block_size: int = 0x0F,
        on_message=None,
    ) -> None:
        from ..can import BusNode

        self.ecu_address = ecu_address
        self.tx_id = tx_id
        self.rx_id = rx_id
        self.is_tester = is_tester
        self.block_size = block_size
        self.on_message = on_message
        self.connected = False
        self._tx_sequence = 0
        self._reassembler = VwTpReassembler()
        self._inbox: List[bytes] = []
        self._frames_since_ack = 0
        self._acked_sequence: Optional[int] = None
        self.node = BusNode(name, handler=self._on_frame)
        bus.attach(self.node)

    # ------------------------------------------------------------- handshake

    def connect(self) -> None:
        """Tester side: broadcast setup then negotiate parameters."""
        if not self.is_tester:
            raise TransportError("only the tester initiates channel setup")
        setup = bytes(
            [
                self.ecu_address,
                SETUP_REQUEST_OPCODE,
                self.rx_id & 0xFF,
                (self.rx_id >> 8) & 0xFF,
                self.tx_id & 0xFF,
                (self.tx_id >> 8) & 0xFF,
                0x01,
            ]
        )
        self.node.send(CanFrame(BROADCAST_ID_BASE, setup))
        params = bytes([PARAMS_REQUEST_OPCODE, self.block_size, 0x8A, 0xFF, 0x32, 0xFF])
        self.node.send(CanFrame(self.tx_id, params))
        if not self.connected:
            raise TransportError("ECU did not complete TP 2.0 channel setup")

    # --------------------------------------------------------------- receive

    def _on_frame(self, frame: CanFrame) -> None:
        kind = classify_vwtp_frame(frame)
        if kind == VwTpFrameKind.BROADCAST_SETUP:
            self._handle_setup(frame)
            return
        if frame.can_id != self.rx_id:
            return
        if kind == VwTpFrameKind.CHANNEL_PARAMS:
            self._handle_params(frame)
            return
        if kind == VwTpFrameKind.ACK:
            self._acked_sequence = frame.data[0] & 0x0F
            return
        if kind != VwTpFrameKind.DATA:
            return
        payload = self._reassembler.feed_payloads(frame)
        self._frames_since_ack += 1
        if is_last_packet(frame) or (
            self.block_size and self._frames_since_ack >= self.block_size
        ):
            next_expected = ((frame.data[0] & 0x0F) + 1) % 16
            self.node.send(
                CanFrame(self.tx_id, bytes([(ACK_OPCODE_NIBBLE << 4) | next_expected]))
            )
            self._frames_since_ack = 0
        if payload is not None:
            if self.on_message is not None:
                self.on_message(payload)
            else:
                self._inbox.append(payload)

    def _handle_setup(self, frame: CanFrame) -> None:
        if self.is_tester:
            if frame.data[1] == SETUP_RESPONSE_OPCODE:
                self.connected = True
            return
        if frame.data[1] != SETUP_REQUEST_OPCODE or frame.data[0] != self.ecu_address:
            return
        response = bytes(
            [
                0x00,
                SETUP_RESPONSE_OPCODE,
                self.rx_id & 0xFF,
                (self.rx_id >> 8) & 0xFF,
                self.tx_id & 0xFF,
                (self.tx_id >> 8) & 0xFF,
                0x01,
            ]
        )
        self.node.send(CanFrame(BROADCAST_ID_BASE + self.ecu_address, response))
        self.connected = True

    def _handle_params(self, frame: CanFrame) -> None:
        if frame.data[0] == PARAMS_REQUEST_OPCODE and not self.is_tester:
            reply = bytes([PARAMS_RESPONSE_OPCODE, self.block_size, 0x8A, 0xFF, 0x32, 0xFF])
            self.node.send(CanFrame(self.tx_id, reply))

    def receive(self) -> Optional[bytes]:
        """Pop the oldest fully reassembled message, if any."""
        return self._inbox.pop(0) if self._inbox else None

    # ------------------------------------------------------------------ send

    def send(self, payload: bytes) -> List[CanFrame]:
        """Send ``payload`` over the established channel."""
        if not self.connected:
            raise TransportError("TP 2.0 channel not connected")
        self._acked_sequence = None
        frames = segment_vwtp(payload, self.tx_id, self._tx_sequence)
        sent = [self.node.send(frame) for frame in frames]
        self._tx_sequence = (self._tx_sequence + len(frames)) % 16
        if self._acked_sequence is None:
            raise TransportError("no TP 2.0 acknowledgement for transmitted block")
        return sent
