"""K-Line (ISO 14230-1/2) physical + data-link layer.

KWP 2000 predates CAN diagnostics: its original carrier is the K-Line, a
single bidirectional wire driven like a UART at 10 400 baud (Tab. 1 of the
paper lists ISO 14230-1/2 beside CAN as KWP 2000's data-link options).
This module models:

* the **byte-level line** — every byte takes ``10 bits / baud`` seconds and
  is heard by *all* nodes including the transmitter (single wire);
* **fast init** — the tester pulls the line low for 25 ms, high for 25 ms,
  then sends StartCommunication (0x81); the ECU answers 0xC1 + key bytes;
* **message framing** (ISO 14230-2) — a format byte carrying addressing
  mode and length (or a separate length byte for >63 bytes), optional
  target/source addresses, payload, and an 8-bit additive checksum;
* offline **capture parsing** — a timestamped byte log is split back into
  diagnostic payloads, the K-Line counterpart of the CAN payload-assembly
  stage (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..observability.trace import get_active
from ..simtime import SimClock
from .base import (
    DecodeEvent,
    DecoderStats,
    HardeningPolicy,
    TransportDecoder,
    TransportError,
)

DEFAULT_BAUD = 10400
BITS_PER_BYTE = 10  # start + 8 data + stop
FAST_INIT_LOW_S = 0.025
FAST_INIT_HIGH_S = 0.025

START_COMMUNICATION = 0x81
START_COMMUNICATION_POSITIVE = 0xC1
FMT_ADDRESS_MODE = 0x80  # header with target/source address bytes
MAX_SHORT_LENGTH = 0x3F


def checksum(data: bytes) -> int:
    """ISO 14230-2 checksum: 8-bit sum over header + payload."""
    return sum(data) & 0xFF


def frame_message(payload: bytes, target: int, source: int) -> bytes:
    """Wrap ``payload`` in an ISO 14230-2 header + checksum.

    Short messages encode the length in the format byte's low six bits;
    longer ones use a separate length byte (format low bits zero).
    """
    if not payload:
        raise TransportError("cannot frame an empty payload")
    if len(payload) > 0xFF:
        raise TransportError(f"KWP payload of {len(payload)} bytes exceeds 255")
    if len(payload) <= MAX_SHORT_LENGTH:
        header = bytes([FMT_ADDRESS_MODE | len(payload), target, source])
    else:
        header = bytes([FMT_ADDRESS_MODE, target, source, len(payload)])
    body = header + payload
    return body + bytes([checksum(body)])


@dataclass(frozen=True)
class KLineMessage:
    """One de-framed K-Line message."""

    payload: bytes
    target: int
    source: int
    t_first: float
    t_last: float
    checksum_ok: bool


# A maximal ISO 14230-2 message is 4 header bytes + 255 payload + checksum
# (260 bytes).  Anything buffered beyond that is a corrupted length field
# holding the parser hostage; bound the buffer and shift to resynchronise.
MAX_BUFFERED_BYTES = 320


class KLineFrameParser:
    """Incremental de-framing of a K-Line byte stream (one direction).

    Carries a :class:`~repro.transport.base.DecoderStats` mirroring the CAN
    decoders' accounting: ``frames`` counts bytes fed, ``payloads`` counts
    messages with a valid checksum, ``errors`` counts checksum failures,
    ``resyncs`` counts format-byte scans that dropped garbage, and
    ``overflows`` counts bounded-buffer evictions.

    With a :class:`~repro.transport.base.HardeningPolicy`, buffered bytes
    older than ``kline_deadline_s`` relative to the newest byte are evicted
    before parsing — a slowloris header (announcing a payload that never
    arrives) can hold at most one deadline's worth of real messages hostage
    instead of swallowing them indefinitely.  Real K-Line messages complete
    within milliseconds at 10.4 kbaud, so clean captures never age out.
    """

    KIND = "kline"

    def __init__(self, hardening: Optional[HardeningPolicy] = None) -> None:
        self.hardening = hardening
        self._buffer: List[Tuple[float, int]] = []
        self.stats = DecoderStats()

    def reset(self) -> None:
        self._buffer.clear()

    def _evict_stale(self, now: float) -> None:
        deadline = self.hardening.kline_deadline_s
        stale = 0
        while stale < len(self._buffer) and now - self._buffer[stale][0] > deadline:
            stale += 1
        if stale:
            del self._buffer[:stale]
            self.stats.bytes_discarded += stale
            self.stats.stale_stream_evictions += 1
            self.stats.resyncs += 1
            self.stats.messages_lost += 1

    def feed(self, timestamp: float, byte: int) -> Optional[KLineMessage]:
        self.stats.frames += 1
        if self.hardening is not None and self._buffer:
            self._evict_stale(timestamp)
        self._buffer.append((timestamp, byte))
        if len(self._buffer) > MAX_BUFFERED_BYTES:
            # Corrupted header announced more bytes than any real message
            # has; evict the stuck format byte so the scan can re-lock.
            self._buffer.pop(0)
            self.stats.bytes_discarded += 1
            self.stats.overflows += 1
            self.stats.resyncs += 1
            self.stats.messages_lost += 1
        dropped_before = self.stats.bytes_discarded
        message = self._try_parse()
        if self.stats.bytes_discarded > dropped_before:
            self.stats.resyncs += 1
        return message

    def _try_parse(self) -> Optional[KLineMessage]:
        if len(self._buffer) < 4:
            return None
        fmt = self._buffer[0][1]
        if not fmt & FMT_ADDRESS_MODE:
            # Resynchronise: drop garbage until a plausible format byte.
            self._buffer.pop(0)
            self.stats.bytes_discarded += 1
            return self._try_parse()
        length = fmt & MAX_SHORT_LENGTH
        if length:
            header_len = 3
        else:
            header_len = 4
            if len(self._buffer) < header_len:
                return None
            length = self._buffer[3][1]
            if length == 0:
                self._buffer.pop(0)
                self.stats.bytes_discarded += 1
                return self._try_parse()
        total = header_len + length + 1  # + checksum byte
        if len(self._buffer) < total:
            return None
        raw = bytes(b for __, b in self._buffer[:total])
        message = KLineMessage(
            payload=raw[header_len:-1],
            target=raw[1],
            source=raw[2],
            t_first=self._buffer[0][0],
            t_last=self._buffer[total - 1][0],
            checksum_ok=checksum(raw[:-1]) == raw[-1],
        )
        del self._buffer[:total]
        if message.checksum_ok:
            self.stats.payloads += 1
        else:
            self.stats.errors += 1
        return message


class KLineEventDecoder(TransportDecoder):
    """K-Line de-framing behind the CAN decoders' event contract.

    :class:`KLineFrameParser` predates the :meth:`TransportDecoder.feed`
    event API: it consumes ``(timestamp, byte)`` pairs and returns one
    optional :class:`KLineMessage`.  This adapter closes the gap so the
    streaming service can treat all four transports uniformly: each fed
    :class:`~repro.can.CanFrame` carries one or more wire bytes in its
    ``data`` field (stamped with the frame's timestamp), and the decoder
    emits ``payload`` / ``error`` / ``resync`` events exactly like the
    isotp/vwtp/bmw decoders, sharing the parser's :class:`DecoderStats`.

    ``last_message`` keeps the full :class:`KLineMessage` behind the most
    recent ``payload`` event — addressing and per-byte timing that the
    event's bare payload bytes cannot carry, the same trick
    :class:`~repro.transport.bmw.BmwReassembler.last_address` uses.
    """

    KIND = "kline"

    def __init__(
        self,
        strict: bool = False,
        hardening: Optional[HardeningPolicy] = None,
    ) -> None:
        super().__init__(strict)
        self.hardening = hardening
        self._parser = KLineFrameParser(hardening=hardening)
        self.stats = self._parser.stats  # one shared accounting object
        self.last_message: Optional[KLineMessage] = None

    @property
    def idle(self) -> bool:
        return not self._parser._buffer

    @property
    def buffered_bytes(self) -> int:
        return len(self._parser._buffer)

    def evict_partial(self) -> int:
        freed = len(self._parser._buffer)
        if freed:
            self.stats.bytes_discarded += freed
            self.stats.messages_lost += 1
            self.stats.resyncs += 1
            self.stats.stale_stream_evictions += 1
            self._parser.reset()
        return freed

    def feed(self, frame) -> List[DecodeEvent]:
        events: List[DecodeEvent] = []
        for value in frame.data:
            resyncs_before = self.stats.resyncs
            evictions_before = self.stats.stale_stream_evictions
            message = self._parser.feed(frame.timestamp, value)
            if self.stats.stale_stream_evictions > evictions_before:
                events.append(
                    DecodeEvent.resync("stale buffered bytes evicted (deadline)")
                )
            elif self.stats.resyncs > resyncs_before:
                events.append(DecodeEvent.resync("format-byte scan dropped garbage"))
            if message is None:
                continue
            if message.checksum_ok:
                self.last_message = message
                events.append(DecodeEvent.message(message.payload))
            else:
                events.append(DecodeEvent.error("checksum mismatch"))
        return events

    def finish(self) -> DecoderStats:
        """End-of-stream accounting: a truncated in-progress message counts
        as lost, mirroring :func:`parse_capture`."""
        if self._parser._buffer:
            self.stats.bytes_discarded += len(self._parser._buffer)
            self.stats.messages_lost += 1
            self._parser.reset()
        return self.stats


@dataclass(frozen=True)
class KLineByte:
    """One byte observed on the wire with its timestamp."""

    timestamp: float
    value: int


class KLineBus:
    """The single-wire medium: every transmitted byte reaches every node."""

    def __init__(self, clock: Optional[SimClock] = None, baud: int = DEFAULT_BAUD) -> None:
        self.clock = clock or SimClock()
        self.baud = baud
        self.byte_time_s = BITS_PER_BYTE / baud
        self._listeners: List[Callable[[KLineByte, str], None]] = []
        self.capture: List[KLineByte] = []  # the sniffer's view
        self.init_events: List[float] = []  # fast-init wake-up pulses

    def add_listener(self, handler: Callable[[KLineByte, str], None]) -> None:
        self._listeners.append(handler)

    def transmit(self, sender: str, data: bytes) -> None:
        """Clock out ``data`` byte by byte."""
        for value in data:
            self.clock.advance(self.byte_time_s)
            byte = KLineByte(self.clock.now(), value)
            self.capture.append(byte)
            for listener in self._listeners:
                listener(byte, sender)

    def fast_init_pulse(self, sender: str) -> None:
        """The 25 ms low / 25 ms high wake-up pattern."""
        self.clock.advance(FAST_INIT_LOW_S + FAST_INIT_HIGH_S)
        self.init_events.append(self.clock.now())


class KLineEndpoint:
    """A node on the K-Line: an ECU (fixed address) or the tester (0xF1)."""

    def __init__(
        self,
        bus: KLineBus,
        name: str,
        address: int,
        on_message: Optional[Callable[[KLineMessage], None]] = None,
    ) -> None:
        self.bus = bus
        self.name = name
        self.address = address
        self.on_message = on_message
        self.communication_started = False
        self._parser = KLineFrameParser()
        self._inbox: List[KLineMessage] = []
        bus.add_listener(self._on_byte)

    def _on_byte(self, byte: KLineByte, sender: str) -> None:
        if sender == self.name:
            return  # ignore our own echo
        message = self._parser.feed(byte.timestamp, byte.value)
        if message is None or message.target != self.address:
            return
        if not message.checksum_ok:
            return  # corrupted messages are dropped, the tester retries
        if self._handle_session_control(message):
            return
        if self.on_message is not None:
            self.on_message(message)
        else:
            self._inbox.append(message)

    def _handle_session_control(self, message: KLineMessage) -> bool:
        if message.payload and message.payload[0] == START_COMMUNICATION:
            self.communication_started = True
            self.send(
                bytes([START_COMMUNICATION_POSITIVE, 0xEA, 0x8F]), target=message.source
            )
            return True
        if message.payload and message.payload[0] == START_COMMUNICATION_POSITIVE:
            self.communication_started = True
            return True
        return False

    def send(self, payload: bytes, target: int) -> None:
        self.bus.transmit(self.name, frame_message(payload, target, self.address))

    def receive(self) -> Optional[KLineMessage]:
        return self._inbox.pop(0) if self._inbox else None


class KLineTester(KLineEndpoint):
    """Tester-side endpoint with the fast-init handshake."""

    TESTER_ADDRESS = 0xF1

    def __init__(self, bus: KLineBus, name: str = "tester") -> None:
        super().__init__(bus, name, self.TESTER_ADDRESS)

    def fast_init(self, ecu_address: int) -> bool:
        """Wake the ECU and start communication (ISO 14230-2 fast init)."""
        self.bus.fast_init_pulse(self.name)
        self.send(bytes([START_COMMUNICATION]), target=ecu_address)
        return self.communication_started

    def request(self, payload: bytes, ecu_address: int) -> Optional[bytes]:
        """One request/response exchange."""
        self.send(payload, target=ecu_address)
        message = self.receive()
        return message.payload if message else None


def parse_capture(
    capture: List[KLineByte], stats: Optional[DecoderStats] = None
) -> List[KLineMessage]:
    """Offline de-framing of a sniffed K-Line byte log.

    The K-Line counterpart of the CAN payload-assembly stage: diagnostic
    payloads are recovered purely from the byte stream (header lengths +
    checksums), interleaved request/response directions included.  Pass a
    :class:`~repro.transport.base.DecoderStats` to collect the parser's
    error accounting (a truncated in-progress message at end of capture is
    counted as lost).
    """
    parser = KLineFrameParser()
    messages: List[KLineMessage] = []
    with get_active().span(
        "decode_stream", decoder=KLineFrameParser.KIND
    ) as span:
        for byte in capture:
            message = parser.feed(byte.timestamp, byte.value)
            if message is not None:
                if message.checksum_ok:
                    messages.append(message)
                # on checksum failure the parser already consumed the bytes;
                # the next message resynchronises via the format-byte scan
        if parser._buffer:
            parser.stats.bytes_discarded += len(parser._buffer)
            parser.stats.messages_lost += 1
        span.set(
            frames=parser.stats.frames,
            payloads=parser.stats.payloads,
            errors=parser.stats.errors,
            resyncs=parser.stats.resyncs,
        )
    if stats is not None:
        stats.merge(parser.stats)
    return messages


def to_assembled_messages(messages: List[KLineMessage]):
    """Convert K-Line messages into the pipeline's AssembledMessage form."""
    from ..core.assembly import AssembledMessage

    return [
        AssembledMessage(
            payload=m.payload,
            can_id=m.source,  # direction key: the sender's address
            t_first=m.t_first,
            t_last=m.t_last,
            n_frames=1,
            ecu_address=m.target,
        )
        for m in messages
    ]
