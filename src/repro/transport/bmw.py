"""BMW / Mini Cooper style addressed transport.

The paper observes (§3.2, Step 2) that BMW and Mini Cooper do not use plain
ISO 15765-2: *"the first byte of each CAN frame stores the ID of the target
ECU. The remaining bytes are the payload of the diagnostic message."*  This
is ISO-TP *extended addressing*: the address byte comes first and the normal
ISO-TP PCI follows in the second byte, shrinking every frame's data capacity
by one byte.

To recover the payload the pipeline must strip the address byte before
ISO-TP reassembly — which is exactly what :class:`BmwReassembler` does and
what a naive per-frame analysis gets wrong.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from ..can import CanFrame, MAX_DATA_LENGTH
from .base import (
    EVENT_PAYLOAD,
    DecodeEvent,
    HardeningPolicy,
    TransportDecoder,
    TransportError,
)
from .isotp import IsoTpReassembler, segment


def segment_bmw(payload: bytes, can_id: int, ecu_address: int) -> List[CanFrame]:
    """Segment ``payload`` with a leading ECU-address byte on every frame.

    Internally this is ISO-TP segmentation with 7 usable data bytes per
    frame (the address byte consumes one), then the address is prepended.
    """
    if not 0 <= ecu_address <= 0xFF:
        raise TransportError(f"ECU address {ecu_address:#x} must fit one byte")
    inner = segment(payload, can_id, padding=0x00, frame_capacity=MAX_DATA_LENGTH - 1)
    frames: List[CanFrame] = []
    for frame in inner:
        frames.append(CanFrame(can_id, bytes([ecu_address]) + frame.data))
    return frames


class BmwReassembler(TransportDecoder):
    """Reassemble BMW extended-addressed ISO-TP traffic.

    Strips the leading address byte of every frame (recording the address of
    the current message) and delegates to a standard ISO-TP reassembler.
    """

    KIND = "bmw"

    def __init__(
        self, strict: bool = True, hardening: Optional[HardeningPolicy] = None
    ) -> None:
        super().__init__(strict)
        self.hardening = hardening
        self._inner = IsoTpReassembler(strict=strict, hardening=hardening)
        # One accounting stream: the inner decoder counts everything that
        # reaches it, and the address-layer errors below are added on top.
        self.stats = self._inner.stats
        # Hardened mode isolates each ECU address in its own inner decoder
        # (all charging the shared stats), so a hostile stream on a spoofed
        # address cannot abandon a victim peer's transfer.  Ordered oldest
        # activity first for LRU eviction.
        self._peers: "OrderedDict[int, IsoTpReassembler]" = OrderedDict()
        self.current_address: Optional[int] = None
        self.last_address: Optional[int] = None

    def reset(self) -> None:
        self._inner.reset()
        self._peers.clear()
        self.current_address = None

    @property
    def idle(self) -> bool:
        if self.hardening is not None:
            return all(decoder.idle for decoder in self._peers.values())
        return self._inner.idle

    @property
    def buffered_bytes(self) -> int:
        if self.hardening is not None:
            return sum(decoder.buffered_bytes for decoder in self._peers.values())
        return self._inner.buffered_bytes

    def evict_partial(self) -> int:
        if self.hardening is not None:
            freed = sum(decoder.evict_partial() for decoder in self._peers.values())
            self._peers.clear()
            return freed
        return self._inner.evict_partial()

    def feed(self, frame: CanFrame) -> List[DecodeEvent]:
        if len(frame.data) < 2:
            # Too short to hold address byte + PCI; never reaches the inner
            # decoder, so count it here.
            self.stats.frames += 1
            self.stats.errors += 1
            return [DecodeEvent.error(f"BMW frame too short: {frame.data.hex()}")]
        self.current_address = frame.data[0]
        stripped = CanFrame(
            frame.can_id,
            frame.data[1:],
            timestamp=frame.timestamp,
            extended=frame.extended,
            channel=frame.channel,
        )
        if self.hardening is not None:
            events = self._feed_peer(self.current_address, stripped)
        else:
            events = self._inner.feed(stripped)
        if any(event.kind == EVENT_PAYLOAD for event in events):
            self.last_address = self.current_address
        return events

    def _feed_peer(self, address: int, stripped: CanFrame) -> List[DecodeEvent]:
        decoder = self._peers.get(address)
        if decoder is None:
            decoder = IsoTpReassembler(strict=self.strict, hardening=self.hardening)
            decoder.stats = self.stats
            self._peers[address] = decoder
        self._peers.move_to_end(address)
        events = decoder.feed(stripped)
        # Peers with nothing buffered cost nothing to forget; pruning them
        # keeps the LRU scan over genuinely partial messages only.
        for addr in [a for a, d in self._peers.items() if d.idle]:
            del self._peers[addr]
        policy = self.hardening
        while len(self._peers) > policy.max_contexts_per_stream:
            events.append(self._evict_peer("peer cap"))
        while self._peers and self.buffered_bytes > policy.per_stream_budget:
            events.append(self._evict_peer("stream byte budget"))
        return events

    def _evict_peer(self, why: str) -> DecodeEvent:
        address, decoder = next(iter(self._peers.items()))
        del self._peers[address]
        decoder.evict_partial()
        return DecodeEvent.resync(
            f"stale peer {address:#04x} partial message evicted ({why})"
        )


class BmwEndpoint:
    """A bus-attached endpoint speaking BMW extended addressing.

    Like :class:`~repro.transport.isotp.IsoTpEndpoint` but every frame is
    prefixed with the target ECU's address byte, and flow control is not
    used (the simulated gateway forwards frames unconditionally, matching
    the behaviour the paper observed on BMW i3 / Mini Cooper captures).
    """

    def __init__(
        self,
        bus,
        name: str,
        tx_id: int,
        rx_id: int,
        ecu_address: int,
        on_message=None,
    ) -> None:
        from ..can import BusNode

        self.tx_id = tx_id
        self.rx_id = rx_id
        self.ecu_address = ecu_address
        self.on_message = on_message
        self._reassembler = BmwReassembler(strict=False)
        self._inbox: List[bytes] = []
        self.node = BusNode(name, handler=self._on_frame)
        bus.attach(self.node)

    def _on_frame(self, frame: CanFrame) -> None:
        if frame.can_id != self.rx_id:
            return
        payload = self._reassembler.feed_payloads(frame)
        if payload is not None:
            if self.on_message is not None:
                self.on_message(payload)
            else:
                self._inbox.append(payload)

    def receive(self) -> Optional[bytes]:
        return self._inbox.pop(0) if self._inbox else None

    def send(self, payload: bytes) -> List[CanFrame]:
        frames = segment_bmw(payload, self.tx_id, self.ecu_address)
        return [self.node.send(frame) for frame in frames]
