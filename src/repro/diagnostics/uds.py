"""UDS (ISO 14229) application-layer codec.

Implements the services DP-Reverser targets plus the session-management
services every real diagnostic session uses:

====  ==============================  =====================================
 SID  Service                         Role in the reproduction
====  ==============================  =====================================
0x10  DiagnosticSessionControl        enter default/extended session
0x11  ECUReset                        Tab. 13 attack replay
0x22  ReadDataByIdentifier            read ESVs (possibly several DIDs)
0x27  SecurityAccess                  seed/key gate for IO control
0x2F  InputOutputControlByIdentifier  actuate components (ECR analysis)
0x3E  TesterPresent                   keep-alive
====  ==============================  =====================================

Only encoding/decoding lives here; ECU behaviour is in
:mod:`repro.vehicle.ecu` and tool behaviour in :mod:`repro.tools`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import List, Sequence, Tuple

from .messages import (
    DiagnosticError,
    POSITIVE_RESPONSE_OFFSET,
    is_negative_response,
)


class UdsService(IntEnum):
    """Service identifiers used by the reproduction."""

    DIAGNOSTIC_SESSION_CONTROL = 0x10
    ECU_RESET = 0x11
    READ_DATA_BY_IDENTIFIER = 0x22
    SECURITY_ACCESS = 0x27
    IO_CONTROL_BY_IDENTIFIER = 0x2F
    TESTER_PRESENT = 0x3E


class IoControlParameter(IntEnum):
    """First byte of an ECU control record (ISO 14229-1 Annex E)."""

    RETURN_CONTROL_TO_ECU = 0x00
    RESET_TO_DEFAULT = 0x01
    FREEZE_CURRENT_STATE = 0x02
    SHORT_TERM_ADJUSTMENT = 0x03


class SessionType(IntEnum):
    DEFAULT = 0x01
    PROGRAMMING = 0x02
    EXTENDED = 0x03


# --------------------------------------------------------------------- encode


def encode_session_control(session: SessionType = SessionType.EXTENDED) -> bytes:
    return bytes([UdsService.DIAGNOSTIC_SESSION_CONTROL, session])


def encode_ecu_reset(reset_type: int = 0x01) -> bytes:
    return bytes([UdsService.ECU_RESET, reset_type])


def encode_tester_present(suppress_response: bool = False) -> bytes:
    return bytes([UdsService.TESTER_PRESENT, 0x80 if suppress_response else 0x00])


def encode_read_data_by_identifier(dids: Sequence[int]) -> bytes:
    """Build a ReadDataByIdentifier request for one or more 2-byte DIDs."""
    if not dids:
        raise DiagnosticError("ReadDataByIdentifier needs at least one DID")
    out = bytearray([UdsService.READ_DATA_BY_IDENTIFIER])
    for did in dids:
        if not 0 <= did <= 0xFFFF:
            raise DiagnosticError(f"DID {did:#x} does not fit two bytes")
        out += did.to_bytes(2, "big")
    return bytes(out)


def encode_io_control(
    did: int,
    io_parameter: IoControlParameter,
    control_state: bytes = b"",
    enable_mask: bytes = b"",
) -> bytes:
    """Build an InputOutputControlByIdentifier request.

    Layout (Fig. 4): ``2F <DID:2> <ioParam> <controlState...> [<mask...>]``.
    """
    if not 0 <= did <= 0xFFFF:
        raise DiagnosticError(f"DID {did:#x} does not fit two bytes")
    return (
        bytes([UdsService.IO_CONTROL_BY_IDENTIFIER])
        + did.to_bytes(2, "big")
        + bytes([io_parameter])
        + bytes(control_state)
        + bytes(enable_mask)
    )


def encode_security_access_request_seed(level: int = 0x01) -> bytes:
    return bytes([UdsService.SECURITY_ACCESS, level])


def encode_security_access_send_key(level: int, key: bytes) -> bytes:
    return bytes([UdsService.SECURITY_ACCESS, level + 1]) + bytes(key)


# --------------------------------------------------------------------- decode


@dataclass(frozen=True)
class ReadDataRequest:
    dids: Tuple[int, ...]


@dataclass(frozen=True)
class IoControlRequest:
    did: int
    io_parameter: int
    control_state: bytes


def decode_request_dids(payload: bytes) -> ReadDataRequest:
    """Parse the DID list of a ReadDataByIdentifier request."""
    if not payload or payload[0] != UdsService.READ_DATA_BY_IDENTIFIER:
        raise DiagnosticError(f"not a ReadDataByIdentifier request: {payload.hex()}")
    body = payload[1:]
    if not body or len(body) % 2:
        raise DiagnosticError(f"malformed DID list in {payload.hex()}")
    dids = tuple(
        int.from_bytes(body[i : i + 2], "big") for i in range(0, len(body), 2)
    )
    return ReadDataRequest(dids)


def decode_io_control_request(payload: bytes) -> IoControlRequest:
    """Parse an InputOutputControlByIdentifier request."""
    if (
        len(payload) < 4
        or payload[0] != UdsService.IO_CONTROL_BY_IDENTIFIER
    ):
        raise DiagnosticError(f"not an IO-control request: {payload.hex()}")
    did = int.from_bytes(payload[1:3], "big")
    return IoControlRequest(did, payload[3], bytes(payload[4:]))


def decode_read_response(
    request_dids: Sequence[int], payload: bytes
) -> List[Tuple[int, bytes]]:
    """Split a ReadDataByIdentifier positive response into (DID, ESV) pairs.

    The response repeats the requested DIDs in order, each followed by its
    value whose length is *not* encoded — so, as the paper observes (§3.2,
    Step 3), the request's DID list is required to delimit the values: each
    value ends where the next expected DID begins.
    """
    if is_negative_response(payload):
        raise DiagnosticError(f"negative response: {payload.hex()}")
    expected = UdsService.READ_DATA_BY_IDENTIFIER + POSITIVE_RESPONSE_OFFSET
    if not payload or payload[0] != expected:
        raise DiagnosticError(f"not a ReadDataByIdentifier response: {payload.hex()}")
    body = payload[1:]
    results: List[Tuple[int, bytes]] = []
    cursor = 0
    for index, did in enumerate(request_dids):
        marker = did.to_bytes(2, "big")
        if body[cursor : cursor + 2] != marker:
            raise DiagnosticError(
                f"DID {did:#06x} not found at offset {cursor} of {body.hex()}"
            )
        cursor += 2
        if index + 1 < len(request_dids):
            next_marker = request_dids[index + 1].to_bytes(2, "big")
            end = body.find(next_marker, cursor)
            if end == -1:
                raise DiagnosticError(
                    f"next DID {request_dids[index + 1]:#06x} missing in response"
                )
        else:
            end = len(body)
        results.append((did, bytes(body[cursor:end])))
        cursor = end
    return results


def decode_io_control_response(payload: bytes) -> Tuple[int, int, bytes]:
    """Parse a positive IO-control response into (DID, ioParam, state)."""
    expected = UdsService.IO_CONTROL_BY_IDENTIFIER + POSITIVE_RESPONSE_OFFSET
    if len(payload) < 4 or payload[0] != expected:
        raise DiagnosticError(f"not an IO-control response: {payload.hex()}")
    did = int.from_bytes(payload[1:3], "big")
    return did, payload[3], bytes(payload[4:])
