"""KWP 2000 (ISO 14230-3) application-layer codec and formula-type table.

Services implemented (the ones DP-Reverser reverse engineers, §2.3.1):

====  =========================================  ==========================
 SID  Service                                    Use
====  =========================================  ==========================
0x21  readDataByLocalIdentifier                  read ESVs
0x30  inputOutputControlByLocalIdentifier        actuate components
0x2F  inputOutputControlByCommonIdentifier       actuate (2-byte id)
0x10  startDiagnosticSession                     session entry
====  =========================================  ==========================

A KWP 2000 ESV record is three bytes: a *formula-type* byte selecting the
conversion formula, followed by the two raw variables ``X0`` and ``X1``
(§2.3.1).  :data:`KWP_FORMULA_TABLE` holds the per-type formulas the
*diagnostic tool* knows; they are exactly what DP-Reverser must recover
from the outside.  Types follow the VAG measuring-block convention — e.g.
type ``0x01`` is ``Y = X0*X1/5`` (the paper's engine-RPM example,
``01 F1 10`` → 241*16/5 = 771.2 rpm).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Dict, List, Tuple

from ..formulas import EnumFormula, ExpressionFormula, Formula, ProductFormula
from .messages import (
    DiagnosticError,
    POSITIVE_RESPONSE_OFFSET,
    is_negative_response,
)

ESV_RECORD_SIZE = 3


class KwpService(IntEnum):
    START_DIAGNOSTIC_SESSION = 0x10
    READ_DATA_BY_LOCAL_IDENTIFIER = 0x21
    IO_CONTROL_BY_COMMON_IDENTIFIER = 0x2F
    IO_CONTROL_BY_LOCAL_IDENTIFIER = 0x30


def _two_var(func, description, unit=""):
    return ExpressionFormula(func, arity=2, description=description, unit=unit)


#: Formula-type byte -> conversion formula (VAG measuring-block style).
#: Enum types (0x10, 0x25) carry states rather than physical quantities.
KWP_FORMULA_TABLE: Dict[int, Formula] = {
    0x01: ProductFormula(0.2, unit="rpm"),  # Y = X0*X1/5
    0x02: ProductFormula(0.002, unit="%"),
    0x03: ProductFormula(0.002, unit="deg"),
    0x04: _two_var(lambda xs: abs(xs[1] - 127) * 0.01 * xs[0], "Y = |X1-127|*0.01*X0", "deg"),
    0x05: _two_var(lambda xs: xs[0] * (xs[1] - 100) * 0.1, "Y = X0*(X1-100)*0.1", "degC"),
    0x06: ProductFormula(0.001, unit="V"),
    0x07: ProductFormula(0.01, unit="km/h"),
    0x08: ProductFormula(0.1, unit=""),
    0x0F: ProductFormula(0.01, unit="ms"),
    0x10: EnumFormula(unit="bits"),
    0x12: ProductFormula(0.04, unit="mbar"),
    0x13: ProductFormula(0.01, unit="l"),
    0x14: _two_var(lambda xs: xs[0] * (xs[1] - 128) / 128.0, "Y = X0*(X1-128)/128", "%"),
    0x15: ProductFormula(0.001, unit="V"),
    0x16: ProductFormula(0.001, unit="ms"),
    0x17: _two_var(lambda xs: xs[0] * xs[1] / 256.0, "Y = X0*X1/256", "%"),
    0x19: _two_var(lambda xs: xs[0] * 1.421 + xs[1] / 182.0, "Y = X0*1.421 + X1/182", "g/s"),
    0x1A: _two_var(lambda xs: xs[1] - xs[0], "Y = X1 - X0", "degC"),
    0x21: _two_var(
        lambda xs: xs[1] * 100.0 / xs[0] if xs[0] else xs[1] * 100.0,
        "Y = X1*100/X0",
        "%",
    ),
    0x22: _two_var(lambda xs: (xs[1] - 128) * 0.01 * xs[0], "Y = (X1-128)*0.01*X0", "kW"),
    0x23: _two_var(lambda xs: xs[0] * xs[1] / 100.0, "Y = X0*X1/100", ""),
    0x24: _two_var(lambda xs: (xs[0] * 256 + xs[1]) * 10.0, "Y = (256*X0+X1)*10", "km"),
    0x25: EnumFormula(unit="state"),
    0x31: _two_var(lambda xs: xs[0] * xs[1] / 40.0, "Y = X0*X1/40", "mg/s"),
    0x36: ProductFormula(1.0, unit="count"),
}

#: Formula types that carry enumerated states instead of physical values.
ENUM_FORMULA_TYPES = frozenset(
    ftype for ftype, formula in KWP_FORMULA_TABLE.items() if isinstance(formula, EnumFormula)
)


def formula_for_type(formula_type: int) -> Formula:
    """Look up the conversion formula for a KWP formula-type byte."""
    try:
        return KWP_FORMULA_TABLE[formula_type]
    except KeyError as exc:
        raise DiagnosticError(f"unknown KWP formula type {formula_type:#04x}") from exc


# --------------------------------------------------------------------- encode


def encode_read_by_local_id(local_id: int) -> bytes:
    """Build a readDataByLocalIdentifier request (Fig. 3)."""
    if not 0 <= local_id <= 0xFF:
        raise DiagnosticError(f"local id {local_id:#x} must fit one byte")
    return bytes([KwpService.READ_DATA_BY_LOCAL_IDENTIFIER, local_id])


def encode_io_control_local(local_id: int, ecr: bytes) -> bytes:
    """Build an inputOutputControlByLocalIdentifier request (Fig. 2)."""
    if not 0 <= local_id <= 0xFF:
        raise DiagnosticError(f"local id {local_id:#x} must fit one byte")
    return bytes([KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER, local_id]) + bytes(ecr)


def encode_io_control_common(common_id: int, ecr: bytes) -> bytes:
    """Build an inputOutputControlByCommonIdentifier request (2-byte id)."""
    if not 0 <= common_id <= 0xFFFF:
        raise DiagnosticError(f"common id {common_id:#x} must fit two bytes")
    return (
        bytes([KwpService.IO_CONTROL_BY_COMMON_IDENTIFIER])
        + common_id.to_bytes(2, "big")
        + bytes(ecr)
    )


def encode_read_response(local_id: int, records: List[Tuple[int, int, int]]) -> bytes:
    """Build a positive readDataByLocalIdentifier response.

    ``records`` is a list of ``(formula_type, X0, X1)`` triples.
    """
    out = bytearray(
        [KwpService.READ_DATA_BY_LOCAL_IDENTIFIER + POSITIVE_RESPONSE_OFFSET, local_id]
    )
    for formula_type, x0, x1 in records:
        out += bytes([formula_type, x0, x1])
    return bytes(out)


# --------------------------------------------------------------------- decode


@dataclass(frozen=True)
class KwpEsv:
    """One decoded 3-byte ESV record."""

    position: int  # index within the response (which measurement slot)
    formula_type: int
    x0: int
    x1: int

    def raw(self) -> Tuple[int, int]:
        return (self.x0, self.x1)

    def value(self) -> float:
        """Physical value per the (hidden) formula table — tool side only."""
        return formula_for_type(self.formula_type)((self.x0, self.x1))


def decode_read_request(payload: bytes) -> int:
    """Extract the local identifier of a readDataByLocalIdentifier request."""
    if len(payload) != 2 or payload[0] != KwpService.READ_DATA_BY_LOCAL_IDENTIFIER:
        raise DiagnosticError(f"not a readDataByLocalIdentifier request: {payload.hex()}")
    return payload[1]


def decode_read_response(payload: bytes) -> Tuple[int, List[KwpEsv]]:
    """Split a positive response into its local id and 3-byte ESV records."""
    if is_negative_response(payload):
        raise DiagnosticError(f"negative response: {payload.hex()}")
    expected = KwpService.READ_DATA_BY_LOCAL_IDENTIFIER + POSITIVE_RESPONSE_OFFSET
    if len(payload) < 2 or payload[0] != expected:
        raise DiagnosticError(f"not a readDataByLocalIdentifier response: {payload.hex()}")
    local_id = payload[1]
    body = payload[2:]
    if len(body) % ESV_RECORD_SIZE:
        raise DiagnosticError(
            f"response body of {len(body)} bytes is not a whole number of "
            f"{ESV_RECORD_SIZE}-byte ESV records"
        )
    records = [
        KwpEsv(i // ESV_RECORD_SIZE, body[i], body[i + 1], body[i + 2])
        for i in range(0, len(body), ESV_RECORD_SIZE)
    ]
    return local_id, records


def decode_io_control_request(payload: bytes) -> Tuple[int, bytes]:
    """Parse an IO-control request into (identifier, ECR bytes).

    Handles both the local-identifier (0x30) and common-identifier (0x2F)
    variants.
    """
    if not payload:
        raise DiagnosticError("empty payload")
    sid = payload[0]
    if sid == KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER:
        if len(payload) < 2:
            raise DiagnosticError(f"truncated IO-control request: {payload.hex()}")
        return payload[1], bytes(payload[2:])
    if sid == KwpService.IO_CONTROL_BY_COMMON_IDENTIFIER:
        if len(payload) < 3:
            raise DiagnosticError(f"truncated IO-control request: {payload.hex()}")
        return int.from_bytes(payload[1:3], "big"), bytes(payload[3:])
    raise DiagnosticError(f"not a KWP IO-control request: {payload.hex()}")
