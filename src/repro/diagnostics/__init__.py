"""Diagnostic application-layer protocols: UDS, KWP 2000 and OBD-II."""

from .messages import (
    DiagnosticError,
    EcrRecord,
    EsvRecord,
    NEGATIVE_RESPONSE_SID,
    Nrc,
    POSITIVE_RESPONSE_OFFSET,
    Protocol,
    is_negative_response,
    is_positive_response_to,
    negative_response,
)
from . import dtc, kwp2000, obd2, uds
from .uds import IoControlParameter, SessionType, UdsService
from .kwp2000 import KWP_FORMULA_TABLE, KwpEsv, KwpService
from .obd2 import STANDARD_PIDS, TABLE5_PIDS, PidDefinition

__all__ = [
    "DiagnosticError",
    "EcrRecord",
    "EsvRecord",
    "NEGATIVE_RESPONSE_SID",
    "Nrc",
    "POSITIVE_RESPONSE_OFFSET",
    "Protocol",
    "is_negative_response",
    "is_positive_response_to",
    "negative_response",
    "dtc",
    "kwp2000",
    "obd2",
    "uds",
    "IoControlParameter",
    "SessionType",
    "UdsService",
    "KWP_FORMULA_TABLE",
    "KwpEsv",
    "KwpService",
    "STANDARD_PIDS",
    "TABLE5_PIDS",
    "PidDefinition",
]
