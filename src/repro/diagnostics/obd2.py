"""OBD-II (SAE J1979 / ISO 15031) mode-01 codec and standard PID table.

OBD-II is the one diagnostic protocol whose formulas *are* public, which is
why the paper uses it as ground truth (§4.2, Tab. 5) and as the anchor for
message/screenshot time alignment (§9.4).  This module provides:

* the mode-01 PID table with the standard conversion formulas (both the
  metric and, where SAE defines one, the imperial variant);
* request/response encoding (``01 <pid>`` → ``41 <pid> <data…>``);
* supported-PID bitmap handling (PIDs 0x00/0x20/0x40…).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..formulas import (
    AffineFormula,
    ExpressionFormula,
    Formula,
    TwoVarAffineFormula,
)
from .messages import DiagnosticError

MODE_CURRENT_DATA = 0x01
POSITIVE_MODE_OFFSET = 0x40


@dataclass(frozen=True)
class PidDefinition:
    """One SAE J1979 parameter id."""

    pid: int
    name: str
    num_bytes: int
    formula: Formula  # primary (metric) formula
    alt_formula: Optional[Formula] = None  # imperial variant if SAE defines one
    min_value: float = 0.0
    max_value: float = 0.0


def _pct(unit: str = "%") -> Formula:
    return AffineFormula(100.0 / 255.0, 0.0, unit=unit)


#: SAE J1979 mode-01 PID table (the subset relevant to the paper plus the
#: other commonly implemented scalar PIDs).  The seven PIDs of Tab. 5 are
#: 0x11, 0x04, 0x2F, 0x0C, 0x0D, 0x05 and 0x0B.
STANDARD_PIDS: Dict[int, PidDefinition] = {
    definition.pid: definition
    for definition in [
        PidDefinition(0x04, "Calculated Engine Load", 1, _pct(), None, 0, 100),
        PidDefinition(
            0x05,
            "Engine Coolant Temperature",
            1,
            AffineFormula(1.0, -40.0, unit="degC"),
            AffineFormula(1.8, -40.0, unit="degF"),
            -40,
            215,
        ),
        PidDefinition(
            0x06, "Short Term Fuel Trim B1", 1, AffineFormula(100.0 / 128.0, -100.0, unit="%"),
            None, -100, 99.2,
        ),
        PidDefinition(
            0x07, "Long Term Fuel Trim B1", 1, AffineFormula(100.0 / 128.0, -100.0, unit="%"),
            None, -100, 99.2,
        ),
        PidDefinition(0x0A, "Fuel Pressure", 1, AffineFormula(3.0, 0.0, unit="kPa"), None, 0, 765),
        PidDefinition(
            0x0B,
            "Intake Manifold Absolute Pressure",
            1,
            AffineFormula(1.0, 0.0, unit="kPa"),
            AffineFormula(1.0 / 3.39, 0.0, unit="inHg"),
            0,
            255,
        ),
        PidDefinition(
            0x0C,
            "Engine Speed",
            2,
            TwoVarAffineFormula(64.0, 0.25, 0.0, unit="rpm"),  # (256*A+B)/4
            None,
            0,
            16383.75,
        ),
        PidDefinition(
            0x0D,
            "Vehicle Speed",
            1,
            AffineFormula(1.0, 0.0, unit="km/h"),
            AffineFormula(0.621371, 0.0, unit="mph"),
            0,
            255,
        ),
        PidDefinition(
            0x0E, "Timing Advance", 1, AffineFormula(0.5, -64.0, unit="deg"), None, -64, 63.5
        ),
        PidDefinition(
            0x0F, "Intake Air Temperature", 1, AffineFormula(1.0, -40.0, unit="degC"),
            None, -40, 215,
        ),
        PidDefinition(
            0x10,
            "MAF Air Flow Rate",
            2,
            TwoVarAffineFormula(2.56, 0.01, 0.0, unit="g/s"),  # (256*A+B)/100
            None,
            0,
            655.35,
        ),
        PidDefinition(0x11, "Absolute Throttle Position", 1, _pct(), None, 0, 100),
        PidDefinition(
            0x1F, "Run Time Since Engine Start", 2,
            TwoVarAffineFormula(256.0, 1.0, 0.0, unit="s"), None, 0, 65535,
        ),
        PidDefinition(
            0x21, "Distance Traveled With MIL On", 2,
            TwoVarAffineFormula(256.0, 1.0, 0.0, unit="km"), None, 0, 65535,
        ),
        PidDefinition(0x2F, "Fuel Tank Level Input", 1, _pct(), None, 0, 100),
        PidDefinition(
            0x33, "Absolute Barometric Pressure", 1, AffineFormula(1.0, 0.0, unit="kPa"),
            None, 0, 255,
        ),
        PidDefinition(
            0x42, "Control Module Voltage", 2,
            TwoVarAffineFormula(0.256, 0.001, 0.0, unit="V"), None, 0, 65.535,
        ),
        PidDefinition(
            0x46, "Ambient Air Temperature", 1, AffineFormula(1.0, -40.0, unit="degC"),
            None, -40, 215,
        ),
        PidDefinition(
            0x5C, "Engine Oil Temperature", 1, AffineFormula(1.0, -40.0, unit="degC"),
            None, -40, 210,
        ),
        PidDefinition(
            0x5E, "Engine Fuel Rate", 2,
            TwoVarAffineFormula(256.0 * 0.05, 0.05, 0.0, unit="L/h"), None, 0, 3276.75,
        ),
    ]
}

#: The seven ESV types of the paper's Tab. 5, in table order.
TABLE5_PIDS: Tuple[int, ...] = (0x11, 0x04, 0x2F, 0x0C, 0x0D, 0x05, 0x0B)


def pid_definition(pid: int) -> PidDefinition:
    try:
        return STANDARD_PIDS[pid]
    except KeyError as exc:
        raise DiagnosticError(f"unknown OBD-II PID {pid:#04x}") from exc


# --------------------------------------------------------------------- encode


def encode_request(pid: int, mode: int = MODE_CURRENT_DATA) -> bytes:
    """Build a mode-01 style request ``<mode> <pid>``."""
    return bytes([mode, pid])


def encode_response(pid: int, data: bytes, mode: int = MODE_CURRENT_DATA) -> bytes:
    """Build the positive response ``<mode+0x40> <pid> <data…>``."""
    return bytes([mode + POSITIVE_MODE_OFFSET, pid]) + bytes(data)


def encode_supported_pids(supported: Sequence[int], window_start: int) -> bytes:
    """Encode the 4-byte supported-PID bitmap for PIDs
    ``window_start+1 .. window_start+32``."""
    bits = 0
    for pid in supported:
        if window_start < pid <= window_start + 32:
            bits |= 1 << (32 - (pid - window_start))
    return bits.to_bytes(4, "big")


def decode_supported_pids(window_start: int, bitmap: bytes) -> List[int]:
    """Decode a supported-PID bitmap back into a PID list."""
    if len(bitmap) != 4:
        raise DiagnosticError(f"PID bitmap must be 4 bytes, got {len(bitmap)}")
    bits = int.from_bytes(bitmap, "big")
    return [
        window_start + offset
        for offset in range(1, 33)
        if bits & (1 << (32 - offset))
    ]


# --------------------------------------------------------------------- decode


def decode_request(payload: bytes) -> Tuple[int, int]:
    """Parse ``<mode> <pid>`` into (mode, pid)."""
    if len(payload) != 2:
        raise DiagnosticError(f"OBD-II request must be 2 bytes: {payload.hex()}")
    return payload[0], payload[1]


def decode_response(payload: bytes) -> Tuple[int, int, bytes]:
    """Parse a positive response into (mode, pid, data bytes)."""
    if len(payload) < 2 or payload[0] < POSITIVE_MODE_OFFSET:
        raise DiagnosticError(f"not a positive OBD-II response: {payload.hex()}")
    return payload[0] - POSITIVE_MODE_OFFSET, payload[1], bytes(payload[2:])


def physical_value(pid: int, data: bytes, imperial: bool = False) -> float:
    """Convert response data bytes into the physical value per SAE J1979."""
    definition = pid_definition(pid)
    if len(data) < definition.num_bytes:
        raise DiagnosticError(
            f"PID {pid:#04x} needs {definition.num_bytes} bytes, got {len(data)}"
        )
    xs = tuple(float(b) for b in data[: definition.num_bytes])
    formula = definition.formula
    if imperial and definition.alt_formula is not None:
        formula = definition.alt_formula
    return formula(xs)
