"""Diagnostic trouble codes (DTCs).

Every diagnostic tool's first screen action is reading trouble codes; the
paper's telematics-app analysis finds that most apps *only* do DTC work
("they only use them to read/clear DTC", §4.6).  This module implements the
三 standard encodings:

* **OBD-II mode 03/04** (SAE J2012 2-byte codes, e.g. ``P0301``),
* **UDS 0x19/0x14** (ReadDTCInformation / ClearDiagnosticInformation,
  3-byte codes + status byte),
* **KWP 2000 0x18/0x14** (readDiagnosticTroubleCodesByStatus).

The letter prefix comes from the top two bits of the first byte:
``00=P(owertrain) 01=C(hassis) 10=B(ody) 11=U(network)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .messages import DiagnosticError

_SYSTEM_LETTERS = "PCBU"


@dataclass(frozen=True)
class Dtc:
    """One trouble code with its UDS status byte."""

    code: str  # e.g. "P0301"
    status: int = 0x09  # testFailed | confirmedDTC
    description: str = ""

    def __post_init__(self) -> None:
        if (
            len(self.code) != 5
            or self.code[0] not in _SYSTEM_LETTERS
            or not all(c in "0123456789ABCDEF" for c in self.code[1:])
        ):
            raise DiagnosticError(f"malformed DTC code {self.code!r}")

    # ---------------------------------------------------------------- encode

    def to_two_bytes(self) -> bytes:
        """SAE J2012 2-byte form (OBD-II mode 03)."""
        system = _SYSTEM_LETTERS.index(self.code[0])
        first_digit = int(self.code[1], 16) & 0x3
        high = (system << 6) | (first_digit << 4) | int(self.code[2], 16)
        low = (int(self.code[3], 16) << 4) | int(self.code[4], 16)
        return bytes([high, low])

    def to_three_bytes(self) -> bytes:
        """UDS 3-byte form: the 2-byte code plus a failure-type byte."""
        return self.to_two_bytes() + b"\x00"

    # ---------------------------------------------------------------- decode

    @classmethod
    def from_two_bytes(cls, data: bytes, status: int = 0x09) -> "Dtc":
        if len(data) < 2:
            raise DiagnosticError(f"DTC needs 2 bytes, got {len(data)}")
        system = _SYSTEM_LETTERS[data[0] >> 6]
        code = (
            f"{system}{(data[0] >> 4) & 0x3:X}{data[0] & 0x0F:X}"
            f"{data[1] >> 4:X}{data[1] & 0x0F:X}"
        )
        return cls(code, status)


# --------------------------------------------------------------------- OBD-II

MODE_READ_DTCS = 0x03
MODE_CLEAR_DTCS = 0x04


def encode_obd_read_dtcs() -> bytes:
    return bytes([MODE_READ_DTCS])


def encode_obd_dtc_response(dtcs: Sequence[Dtc]) -> bytes:
    out = bytearray([MODE_READ_DTCS + 0x40, len(dtcs)])
    for dtc in dtcs:
        out += dtc.to_two_bytes()
    return bytes(out)


def decode_obd_dtc_response(payload: bytes) -> List[Dtc]:
    if len(payload) < 2 or payload[0] != MODE_READ_DTCS + 0x40:
        raise DiagnosticError(f"not a mode-03 response: {payload.hex()}")
    count = payload[1]
    body = payload[2:]
    if len(body) < 2 * count:
        raise DiagnosticError("truncated DTC list")
    return [Dtc.from_two_bytes(body[i * 2 : i * 2 + 2]) for i in range(count)]


# ------------------------------------------------------------------------ UDS

UDS_READ_DTC_INFORMATION = 0x19
UDS_CLEAR_DIAGNOSTIC_INFORMATION = 0x14
REPORT_DTC_BY_STATUS_MASK = 0x02


def encode_uds_read_dtcs(status_mask: int = 0xFF) -> bytes:
    return bytes([UDS_READ_DTC_INFORMATION, REPORT_DTC_BY_STATUS_MASK, status_mask])


def encode_uds_dtc_response(dtcs: Sequence[Dtc], availability_mask: int = 0xFF) -> bytes:
    out = bytearray(
        [UDS_READ_DTC_INFORMATION + 0x40, REPORT_DTC_BY_STATUS_MASK, availability_mask]
    )
    for dtc in dtcs:
        out += dtc.to_three_bytes() + bytes([dtc.status])
    return bytes(out)


def decode_uds_dtc_response(payload: bytes) -> List[Dtc]:
    if len(payload) < 3 or payload[0] != UDS_READ_DTC_INFORMATION + 0x40:
        raise DiagnosticError(f"not a ReadDTCInformation response: {payload.hex()}")
    body = payload[3:]
    if len(body) % 4:
        raise DiagnosticError("UDS DTC records are 4 bytes each")
    return [
        Dtc.from_two_bytes(body[i : i + 2], status=body[i + 3])
        for i in range(0, len(body), 4)
    ]


def encode_uds_clear(group: int = 0xFFFFFF) -> bytes:
    return bytes([UDS_CLEAR_DIAGNOSTIC_INFORMATION]) + group.to_bytes(3, "big")


# ------------------------------------------------------------------- KWP 2000

KWP_READ_DTCS_BY_STATUS = 0x18
KWP_CLEAR_DIAGNOSTIC_INFORMATION = 0x14


def encode_kwp_read_dtcs() -> bytes:
    return bytes([KWP_READ_DTCS_BY_STATUS, 0x00, 0xFF, 0x00])


def encode_kwp_dtc_response(dtcs: Sequence[Dtc]) -> bytes:
    out = bytearray([KWP_READ_DTCS_BY_STATUS + 0x40, len(dtcs)])
    for dtc in dtcs:
        out += dtc.to_two_bytes() + bytes([dtc.status])
    return bytes(out)


def decode_kwp_dtc_response(payload: bytes) -> List[Dtc]:
    if len(payload) < 2 or payload[0] != KWP_READ_DTCS_BY_STATUS + 0x40:
        raise DiagnosticError(f"not a KWP 0x18 response: {payload.hex()}")
    count = payload[1]
    body = payload[2:]
    if len(body) < 3 * count:
        raise DiagnosticError("truncated KWP DTC list")
    return [
        Dtc.from_two_bytes(body[i * 3 : i * 3 + 2], status=body[i * 3 + 2])
        for i in range(count)
    ]


#: Description table for the common codes the fleet seeds.
KNOWN_DTCS = {
    "P0301": "Cylinder 1 misfire detected",
    "P0171": "System too lean (bank 1)",
    "P0420": "Catalyst efficiency below threshold",
    "C0035": "Left front wheel speed sensor",
    "B1342": "ECU internal failure",
    "U0100": "Lost communication with ECM",
    "P0500": "Vehicle speed sensor malfunction",
    "B2960": "Key code incorrect",
}
