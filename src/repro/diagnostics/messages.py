"""Shared diagnostic-message vocabulary.

Constants and small value objects used by the UDS, KWP 2000 and OBD-II
codecs as well as by the reverse-engineering pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Tuple


class DiagnosticError(Exception):
    """Raised on malformed diagnostic payloads."""


class Protocol(IntEnum):
    """Diagnostic protocol families handled by the reproduction."""

    OBD2 = 1
    KWP2000 = 2
    UDS = 3


POSITIVE_RESPONSE_OFFSET = 0x40  # positive response SID = request SID + 0x40
NEGATIVE_RESPONSE_SID = 0x7F


class Nrc(IntEnum):
    """Negative response codes (ISO 14229-1 subset)."""

    GENERAL_REJECT = 0x10
    SERVICE_NOT_SUPPORTED = 0x11
    SUBFUNCTION_NOT_SUPPORTED = 0x12
    INCORRECT_MESSAGE_LENGTH = 0x13
    CONDITIONS_NOT_CORRECT = 0x22
    REQUEST_OUT_OF_RANGE = 0x31
    SECURITY_ACCESS_DENIED = 0x33
    INVALID_KEY = 0x35
    RESPONSE_PENDING = 0x78


def is_negative_response(payload: bytes) -> bool:
    """True when ``payload`` is a UDS/KWP negative response."""
    return len(payload) >= 3 and payload[0] == NEGATIVE_RESPONSE_SID


def is_positive_response_to(payload: bytes, service_id: int) -> bool:
    """True when ``payload`` positively answers a request with ``service_id``."""
    return bool(payload) and payload[0] == service_id + POSITIVE_RESPONSE_OFFSET


def negative_response(service_id: int, nrc: Nrc) -> bytes:
    """Build the 3-byte negative response ``7F <sid> <nrc>``."""
    return bytes([NEGATIVE_RESPONSE_SID, service_id, nrc])


@dataclass(frozen=True)
class EsvRecord:
    """One ECU-signal-value record extracted from a response message.

    ``raw`` holds the raw integer variables — ``(X,)`` for UDS (one value of
    one or more bytes) and ``(X0, X1)`` for KWP 2000 3-byte records.
    ``identifier`` is the DID (UDS) or ``(local_id, position)`` (KWP).
    """

    identifier: int
    raw: Tuple[int, ...]
    timestamp: float = 0.0
    formula_type: int = 0  # KWP formula-type byte; 0 for UDS


@dataclass(frozen=True)
class EcrRecord:
    """One ECU-control-record extracted from an IO-control request.

    ``did`` is the data identifier (UDS) or local identifier (KWP),
    ``io_parameter`` the first ECR byte (freeze / adjust / return control),
    ``control_state`` the remaining state bytes.
    """

    did: int
    io_parameter: int
    control_state: bytes
    service_id: int
    timestamp: float = 0.0
