"""Pre-forked shard workers: one diagnostic server per core, one port.

``repro serve --shards N`` runs N :class:`~repro.service.server
.DiagnosticServer` processes all listening on the *same* TCP port via
``SO_REUSEPORT`` — the kernel load-balances incoming connections across
the listening sockets, so clients need no balancer and no shard
awareness.  Each shard owns a full event loop, analysis
:class:`~repro.runtime.scheduler.WorkerPool` and (when configured) GP
island pool; the shards share nothing in memory and meet only at the
on-disk :class:`~repro.core.formula_memo.FormulaMemo` directory, which is
already multi-process safe.

The parent process never touches a connection.  It:

* **reserves the port** — binds (but does not listen on) a
  ``SO_REUSEPORT`` socket first, so an ephemeral ``port=0`` resolves once
  and every shard (including restarts) binds the same number; a
  bound-but-not-listening socket gets no traffic from the kernel's
  balancing;
* **supervises** — a monitor thread restarts any shard that dies
  (counted in ``service.shard_restarts``) without disturbing siblings'
  accepted connections;
* **drains** — SIGTERM forwards to every shard, each of which stops
  accepting, lets in-flight sessions finalize, then reports back;
* **merges observability** — every shard ships its metrics (raw
  histogram samples, so merged percentiles are exact), memo/inference
  stats and trace spans through its pipe on exit; the parent folds them
  into the single ``--metrics-out``/``--trace-out`` artifacts, one trace
  lane (tid) per shard.
"""

from __future__ import annotations

import asyncio
import dataclasses
import multiprocessing
import signal
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..observability.export import build_snapshot
from ..observability.trace import NULL_TRACER, Tracer
from ..runtime.metrics import MetricsRegistry
from .server import DiagnosticServer, ServiceConfig

#: Seconds a shard waits for in-flight sessions to finalize on SIGTERM
#: before giving up and exiting anyway (a wedged client must not hold the
#: whole deployment's shutdown hostage).
DRAIN_TIMEOUT_S = 30.0

#: Seconds the supervisor waits for a spawned shard's ``ready``.
READY_TIMEOUT_S = 60.0

#: Seconds between liveness/pipe polls in both supervisor and shard.
POLL_INTERVAL_S = 0.05


def _shard_snapshot_payload(server: DiagnosticServer) -> dict:
    """Everything a shard ships home for the supervisor's merge."""
    return {
        "metrics": server.metrics.export_state(),
        "memo": dict(server.memo_stats),
        "inference": dict(server.inference_stats),
        "spans": server.tracer.export_payload() if server.tracer.enabled else [],
    }


async def _shard_serve(config: ServiceConfig, index: int, pipe) -> None:
    server = DiagnosticServer(config)
    await server.start()
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    pipe.send(("ready", index, server.port))
    completed = server.metrics.counter("service.sessions_completed")
    rejected = server.metrics.counter("service.sessions_rejected")
    reported = -1
    while not stop.is_set():
        try:
            await asyncio.wait_for(stop.wait(), timeout=POLL_INTERVAL_S)
        except asyncio.TimeoutError:
            pass
        done = completed.value + rejected.value
        if done != reported:
            reported = done
            pipe.send(("progress", index, done))
    try:
        await asyncio.wait_for(server.drain(), timeout=DRAIN_TIMEOUT_S)
    except asyncio.TimeoutError:
        pass
    await server.stop()
    pipe.send(("progress", index, completed.value + rejected.value))
    pipe.send(("snapshot", index, _shard_snapshot_payload(server)))


def _shard_main(config: ServiceConfig, index: int, pipe) -> None:
    """Entry point of one shard process (module-level: spawn-picklable)."""
    try:
        asyncio.run(_shard_serve(config, index, pipe))
    finally:
        pipe.close()


class _ShardSlot:
    """One shard position: the live process plus its restart history."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self.pipe = None
        self.progress = 0  # last report of the *current* process
        self.done_base = 0  # completed totals of dead predecessors
        self.snapshot: Optional[dict] = None


class ShardSupervisor:
    """Parent of a pre-forked shard fleet; see the module docstring."""

    def __init__(self, config: ServiceConfig, shards: int) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.restarts = 0
        self.tracer = Tracer() if config.trace else NULL_TRACER
        self._base_config = config
        self._context = multiprocessing.get_context("spawn")
        self._reserved: Optional[socket.socket] = None
        self._port = 0
        self._slots: List[_ShardSlot] = [_ShardSlot(i) for i in range(shards)]
        self._monitor: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._stopping = False
        self._started = False

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        if not self._started:
            raise RuntimeError("supervisor is not running")
        return self._port

    @property
    def sessions_done(self) -> int:
        """Sessions completed or rejected across all shards and restarts."""
        with self._lock:
            return sum(slot.done_base + slot.progress for slot in self._slots)

    def _shard_config(self, index: int) -> ServiceConfig:
        return dataclasses.replace(
            self._base_config,
            port=self._port,
            reuse_port=True,
            shard_index=index,
        )

    def _spawn(self, slot: _ShardSlot) -> None:
        parent_pipe, child_pipe = self._context.Pipe()
        # Not daemonic: a shard spawns its own worker processes (GP island
        # pools), which daemonic processes are forbidden to do.
        process = self._context.Process(
            target=_shard_main,
            args=(self._shard_config(slot.index), slot.index, child_pipe),
        )
        process.start()
        child_pipe.close()
        slot.process = process
        slot.pipe = parent_pipe
        slot.progress = 0
        deadline = time.monotonic() + READY_TIMEOUT_S
        while time.monotonic() < deadline:
            try:
                if parent_pipe.poll(POLL_INTERVAL_S):
                    kind, __, value = parent_pipe.recv()
                    if kind == "ready":
                        return
                    if kind == "progress":
                        slot.progress = value
                elif not process.is_alive():
                    break
            except (EOFError, OSError):
                break
        raise RuntimeError(f"shard {slot.index} failed to start")

    def start(self) -> None:
        """Reserve the port, spawn every shard, begin supervising."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._reserved = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._reserved.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        self._reserved.bind((self._base_config.host, self._base_config.port))
        self._port = self._reserved.getsockname()[1]
        self._started = True
        try:
            for slot in self._slots:
                self._spawn(slot)
        except Exception:
            self._started = False
            self._terminate_all()
            raise
        self._monitor = threading.Thread(target=self._supervise, daemon=True)
        self._monitor.start()

    def __enter__(self) -> "ShardSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ----------------------------------------------------------- supervise

    def _pump(self, slot: _ShardSlot) -> None:
        """Drain everything the shard's pipe currently holds."""
        try:
            while slot.pipe is not None and slot.pipe.poll(0):
                kind, __, value = slot.pipe.recv()
                if kind == "progress":
                    with self._lock:
                        slot.progress = value
                elif kind == "snapshot":
                    slot.snapshot = value
        except (EOFError, OSError):
            pass

    def _supervise(self) -> None:
        while not self._stopping:
            for slot in self._slots:
                self._pump(slot)
                process = slot.process
                if (
                    not self._stopping
                    and process is not None
                    and not process.is_alive()
                ):
                    # Crashed (clean exits only happen while stopping):
                    # fold its progress into the base and respawn.
                    with self._lock:
                        slot.done_base += slot.progress
                        slot.progress = 0
                        self.restarts += 1
                    if slot.pipe is not None:
                        slot.pipe.close()
                        slot.pipe = None
                    try:
                        self._spawn(slot)
                    except RuntimeError:
                        pass  # retried on the next sweep
            time.sleep(POLL_INTERVAL_S)

    def wait_for_sessions(self, sessions: int, timeout: float = 0.0) -> bool:
        """Block until N sessions completed fleet-wide (0/neg timeout = ∞)."""
        deadline = time.monotonic() + timeout if timeout > 0 else None
        while self.sessions_done < sessions:
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(POLL_INTERVAL_S)
        return True

    # ---------------------------------------------------------------- stop

    def _terminate_all(self) -> None:
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                slot.process.terminate()

    def stop(self, timeout: float = DRAIN_TIMEOUT_S + 10.0) -> None:
        """SIGTERM every shard, wait for drains, collect final snapshots."""
        if not self._started:
            return
        self._stopping = True
        if self._monitor is not None:
            self._monitor.join()
            self._monitor = None
        self._terminate_all()
        deadline = time.monotonic() + timeout
        for slot in self._slots:
            process = slot.process
            # Keep pumping while joining: the final snapshot can exceed
            # the pipe buffer, in which case the child blocks in send()
            # until we read — joining without reading would deadlock.
            while (
                process is not None
                and process.is_alive()
                and time.monotonic() < deadline
            ):
                self._pump(slot)
                process.join(POLL_INTERVAL_S)
            self._pump(slot)
            if process is not None and process.is_alive():
                process.kill()
                process.join()
            with self._lock:
                slot.done_base += slot.progress
                slot.progress = 0
            if slot.pipe is not None:
                slot.pipe.close()
                slot.pipe = None
            slot.process = None
        if self._reserved is not None:
            self._reserved.close()
            self._reserved = None
        self._started = False

    # --------------------------------------------------------------- merge

    def merged_snapshot(self) -> dict:
        """One canonical snapshot for the whole fleet.

        Counters sum, histograms merge raw samples (exact percentiles),
        memo/inference stats sum, and each shard's spans land in their own
        trace lane.  Shards that died without reporting (crash, kill)
        contribute only what their restarts re-earned — the supervisor
        cannot conjure a dead process's unsent samples.
        """
        registry = MetricsRegistry()
        memo_stats: Dict[str, int] = {"hits": 0, "misses": 0}
        inference_stats: Dict[str, int] = {}
        for slot in self._slots:
            payload = slot.snapshot
            if payload is None:
                continue
            registry.merge_state(payload["metrics"])
            for key, value in payload["memo"].items():
                memo_stats[key] = memo_stats.get(key, 0) + value
            for key, value in payload["inference"].items():
                inference_stats[key] = inference_stats.get(key, 0) + value
            if payload["spans"] and self.tracer.enabled:
                self.tracer.absorb(payload["spans"], tid=slot.index + 1)
        return build_snapshot(
            registry=registry,
            memo_stats=memo_stats,
            inference_stats=inference_stats or None,
            tracer=self.tracer if self.tracer.enabled else None,
            extra_counters={
                "service.shards": self.shards,
                "service.shard_restarts": self.restarts,
            },
            gauges={"service.sessions_active": 0.0},
        )


def run_sharded(
    config: ServiceConfig, shards: int, sessions: int = 0
) -> Tuple[ShardSupervisor, dict]:
    """Convenience wrapper: start N shards, serve, stop, merge.

    With ``sessions > 0`` the fleet exits once that many sessions have
    completed; otherwise it serves until the process receives SIGINT.
    Returns the (stopped) supervisor and its merged snapshot.
    """
    supervisor = ShardSupervisor(config, shards)
    supervisor.start()
    try:
        if sessions > 0:
            supervisor.wait_for_sessions(sessions)
        else:
            while True:
                time.sleep(POLL_INTERVAL_S)
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
    return supervisor, supervisor.merged_snapshot()
