"""Client helpers: stream a capture into a diagnostic server.

The reference implementation of the wire protocol's client side — what an
ELM327-style bridge on the OBD port would run, minus the serial I/O.  The
async form is the real client; :func:`stream_capture` wraps it in its own
event loop for scripts and tests that live in synchronous code.

Two ingest-throughput levers live here:

* **transparent batching** — ``batch_size > 0`` coalesces consecutive CAN
  frames into binary ``frame-batch`` messages (:func:`capture_to_wire`
  does the coalescing; live bridges use :class:`FrameBatcher`), cutting
  the per-frame JSON round-trip to one packed ``struct`` record;
* **coalesced writes** — the sender queues messages and drains once per
  flush window instead of once per message, so the event loop round-trip
  and TCP push happen per *kilobytes*, not per record.  Drains forced by
  the write buffer's high-water mark are counted in
  :attr:`StreamResult.backpressure_stalls` — the client-side twin of the
  server's ``service.backpressure_stalls``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Callable, Iterable, List, Optional

from ..can import CanFrame
from ..cps.collector import Capture
from ..transport.kline import KLineByte
from .protocol import (
    ProtocolError,
    capture_to_wire,
    frame_batch_to_wire,
    read_message,
    write_message,
)

#: Queued egress bytes that force an immediate drain mid-flush-window.
WRITE_HIGH_WATER = 64 * 1024

#: Messages written between voluntary drains when coalescing.
FLUSH_MESSAGES = 64


class ServiceClientError(Exception):
    """The server rejected the session or reported a failure."""


class StreamResult:
    """What one streamed session produced."""

    def __init__(self) -> None:
        self.session_id: Optional[int] = None
        self.shard: Optional[int] = None
        self.statuses: List[dict] = []
        self.report: Optional[dict] = None
        self.report_json: str = ""
        self.digest: str = ""
        #: Times the writer hit the high-water mark and had to drain early.
        self.backpressure_stalls: int = 0


class FrameBatcher:
    """Size- and time-bounded frame coalescing for live bridges.

    A capture replay knows its whole frame log up front and batches via
    :func:`capture_to_wire`; a live OBD bridge sees frames one at a time
    and must trade latency for batch size.  Feed frames to :meth:`add` —
    it returns a ready ``frame-batch`` message when the batch fills
    (``batch_size``) or goes stale (``flush_interval_s`` since the batch's
    first frame), and ``None`` while the batch is still accumulating.
    Call :meth:`flush` at stream end (and on idle timeouts) to emit the
    remainder.
    """

    def __init__(
        self,
        batch_size: int = 256,
        flush_interval_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self.flush_interval_s = flush_interval_s
        self._clock = clock
        self._frames: List[CanFrame] = []
        self._started = 0.0

    def __len__(self) -> int:
        return len(self._frames)

    def add(self, frame: CanFrame) -> Optional[dict]:
        if not self._frames:
            self._started = self._clock()
        self._frames.append(frame)
        if len(self._frames) >= self.batch_size or (
            self.flush_interval_s > 0
            and self._clock() - self._started >= self.flush_interval_s
        ):
            return self.flush()
        return None

    def flush(self) -> Optional[dict]:
        if not self._frames:
            return None
        frames, self._frames = self._frames, []
        return frame_batch_to_wire(frames)


async def stream_capture_async(
    host: str,
    port: int,
    capture: Capture,
    tenant: str = "anonymous",
    transport: str = "auto",
    kline_bytes: Optional[Iterable[KLineByte]] = None,
    on_status: Optional[Callable[[dict], None]] = None,
    delay_s: float = 0.0,
    batch_size: int = 0,
    flush_messages: int = FLUSH_MESSAGES,
) -> StreamResult:
    """Stream one capture into a server; return the final report.

    ``batch_size > 0`` streams CAN frames as binary ``frame-batch``
    messages of at most that many frames (0 = v1 per-frame JSON).
    ``delay_s`` sleeps between records to emulate a live capture's pacing
    (0 = as fast as the server's flow control allows; pacing implies one
    drain per record, so write coalescing only applies at full speed).
    ``on_status`` is called with every interim snapshot the server pushes.
    """
    reader, writer = await asyncio.open_connection(host, port)
    result = StreamResult()
    try:
        messages = capture_to_wire(
            capture,
            tenant=tenant,
            transport=transport,
            kline_bytes=kline_bytes,
            batch_size=batch_size,
        )
        write_message(writer, next(messages))  # hello
        await writer.drain()
        welcome = await read_message(reader)
        if welcome is None:
            raise ServiceClientError("server closed during handshake")
        if welcome["type"] == "error":
            raise ServiceClientError(welcome.get("error", "rejected"))
        if welcome["type"] != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome['type']!r}")
        result.session_id = welcome.get("session")
        result.shard = welcome.get("shard")

        async def _drain_statuses() -> None:
            """Consume server pushes until the final report arrives."""
            while True:
                message = await read_message(reader)
                if message is None:
                    raise ServiceClientError("server closed before the report")
                if message["type"] == "status":
                    result.statuses.append(message)
                    if on_status is not None:
                        on_status(message)
                elif message["type"] == "report":
                    result.report = message["report"]
                    result.report_json = message["report_json"]
                    result.digest = message.get("digest", "")
                    return
                elif message["type"] == "error":
                    raise ServiceClientError(message.get("error", "server error"))
                else:
                    raise ProtocolError(
                        f"unexpected server message {message['type']!r}"
                    )

        consumer = asyncio.ensure_future(_drain_statuses())
        try:
            unflushed = 0
            for message in messages:
                write_message(writer, message)
                if delay_s > 0:
                    await writer.drain()
                    await asyncio.sleep(delay_s)
                else:
                    unflushed += 1
                    buffered = writer.transport.get_write_buffer_size()
                    if buffered > WRITE_HIGH_WATER:
                        result.backpressure_stalls += 1
                        await writer.drain()
                        unflushed = 0
                    elif unflushed >= max(1, flush_messages):
                        await writer.drain()
                        unflushed = 0
                if consumer.done():
                    break  # server errored out mid-stream; surface it below
            await writer.drain()
            await consumer
        finally:
            if not consumer.done():
                consumer.cancel()
        return result
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def stream_capture(
    host: str,
    port: int,
    capture: Capture,
    tenant: str = "anonymous",
    transport: str = "auto",
    kline_bytes: Optional[Iterable[KLineByte]] = None,
    on_status: Optional[Callable[[dict], None]] = None,
    delay_s: float = 0.0,
    batch_size: int = 0,
    flush_messages: int = FLUSH_MESSAGES,
) -> StreamResult:
    """Synchronous wrapper over :func:`stream_capture_async`."""
    return asyncio.run(
        stream_capture_async(
            host,
            port,
            capture,
            tenant=tenant,
            transport=transport,
            kline_bytes=kline_bytes,
            on_status=on_status,
            delay_s=delay_s,
            batch_size=batch_size,
            flush_messages=flush_messages,
        )
    )
