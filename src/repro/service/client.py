"""Client helpers: stream a capture into a diagnostic server.

The reference implementation of the wire protocol's client side — what an
ELM327-style bridge on the OBD port would run, minus the serial I/O.  The
async form is the real client; :func:`stream_capture` wraps it in its own
event loop for scripts and tests that live in synchronous code.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Iterable, List, Optional

from ..cps.collector import Capture
from ..transport.kline import KLineByte
from .protocol import (
    ProtocolError,
    capture_to_wire,
    read_message,
    write_message,
)


class ServiceClientError(Exception):
    """The server rejected the session or reported a failure."""


class StreamResult:
    """What one streamed session produced."""

    def __init__(self) -> None:
        self.session_id: Optional[int] = None
        self.statuses: List[dict] = []
        self.report: Optional[dict] = None
        self.report_json: str = ""
        self.digest: str = ""


async def stream_capture_async(
    host: str,
    port: int,
    capture: Capture,
    tenant: str = "anonymous",
    transport: str = "auto",
    kline_bytes: Optional[Iterable[KLineByte]] = None,
    on_status: Optional[Callable[[dict], None]] = None,
    delay_s: float = 0.0,
) -> StreamResult:
    """Stream one capture record-by-record; return the final report.

    ``delay_s`` sleeps between records to emulate a live capture's pacing
    (0 = as fast as the server's flow control allows).  ``on_status`` is
    called with every interim snapshot the server pushes.
    """
    reader, writer = await asyncio.open_connection(host, port)
    result = StreamResult()
    try:
        messages = capture_to_wire(
            capture, tenant=tenant, transport=transport, kline_bytes=kline_bytes
        )
        write_message(writer, next(messages))  # hello
        await writer.drain()
        welcome = await read_message(reader)
        if welcome is None:
            raise ServiceClientError("server closed during handshake")
        if welcome["type"] == "error":
            raise ServiceClientError(welcome.get("error", "rejected"))
        if welcome["type"] != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome['type']!r}")
        result.session_id = welcome.get("session")

        async def _drain_statuses() -> None:
            """Consume server pushes until the final report arrives."""
            while True:
                message = await read_message(reader)
                if message is None:
                    raise ServiceClientError("server closed before the report")
                if message["type"] == "status":
                    result.statuses.append(message)
                    if on_status is not None:
                        on_status(message)
                elif message["type"] == "report":
                    result.report = message["report"]
                    result.report_json = message["report_json"]
                    result.digest = message.get("digest", "")
                    return
                elif message["type"] == "error":
                    raise ServiceClientError(message.get("error", "server error"))
                else:
                    raise ProtocolError(
                        f"unexpected server message {message['type']!r}"
                    )

        consumer = asyncio.ensure_future(_drain_statuses())
        try:
            for message in messages:
                write_message(writer, message)
                await writer.drain()  # honour server flow control
                if delay_s > 0:
                    await asyncio.sleep(delay_s)
                if consumer.done():
                    break  # server errored out mid-stream; surface it below
            await consumer
        finally:
            if not consumer.done():
                consumer.cancel()
        return result
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def stream_capture(
    host: str,
    port: int,
    capture: Capture,
    tenant: str = "anonymous",
    transport: str = "auto",
    kline_bytes: Optional[Iterable[KLineByte]] = None,
    on_status: Optional[Callable[[dict], None]] = None,
    delay_s: float = 0.0,
) -> StreamResult:
    """Synchronous wrapper over :func:`stream_capture_async`."""
    return asyncio.run(
        stream_capture_async(
            host,
            port,
            capture,
            tenant=tenant,
            transport=transport,
            kline_bytes=kline_bytes,
            on_status=on_status,
            delay_s=delay_s,
        )
    )
