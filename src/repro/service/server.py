"""The asyncio diagnostic server: many live captures, one process.

Architecture:

* one :class:`asyncio` connection handler per tenant, each owning one
  :class:`~repro.service.session.VehicleSession` — cheap per-record state
  updates run inline on the event loop;
* CPU-bound work (interim re-analysis, final GP inference) is offloaded
  onto a :class:`~repro.runtime.scheduler.WorkerPool` so the loop keeps
  multiplexing thousands of sessions while formulas are being searched;
* every queue is bounded and every producer can be stalled:

  - **ingest** — a per-session token bucket; a client streaming faster
    than its rate limit makes the *reader* sleep, which fills the kernel
    socket buffer and eventually flow-controls the sender (TCP does the
    actual pushback; the server never buffers unboundedly on its side);
  - **egress** — writes above the high-water mark stall the handler in
    ``writer.drain()`` until the client catches up;
  - **retention** — at most ``max_capture_frames`` frames are kept per
    session; overflow is counted in ``service.frames_dropped`` and shed.

* GP inference shares one on-disk :class:`~repro.core.formula_memo
  .FormulaMemo` directory across all sessions, so tenants streaming the
  same vehicle model hit each other's already-inferred formulas;
* observability rides the PR 5 layer: ``service.*`` counters and
  histograms in a :class:`~repro.runtime.metrics.MetricsRegistry`, a
  ``service.sessions_active`` gauge, and per-session spans absorbed into
  the server tracer with one Chrome-trace lane (tid) per session.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.gp import GpConfig
from ..core.reverser import DPReverser, ReverserConfig
from ..observability.export import build_snapshot
from ..observability.trace import NULL_TRACER, Tracer
from ..runtime.metrics import MetricsRegistry
from ..runtime.scheduler import WorkerPool
from ..transport.base import HardeningPolicy
from .protocol import (
    FRAME_BATCH,
    HELLO_TRANSPORTS,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    click_from_wire,
    frame_from_wire,
    arrays_from_batch,
    kline_byte_from_wire,
    read_message,
    segment_from_wire,
    video_from_wire,
    write_message,
)
from .session import (
    DETECT_WINDOW,
    MAX_CAPTURE_FRAMES,
    SessionError,
    VehicleSession,
)

#: Egress bytes queued on one writer before the handler stalls in drain().
WRITE_HIGH_WATER = 64 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Every knob of the diagnostic server in one place."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the OS picks; read .port after start)
    #: Concurrent session cap; further hellos are rejected with an error.
    max_sessions: int = 1000
    #: Per-session ingest rate limit in records/second (0 = unlimited).
    #: Enforced by stalling the reader, which flow-controls the client.
    rate_limit: float = 0.0
    #: Send an interim ``status`` snapshot every N newly assembled
    #: messages (0 disables interim analysis).
    status_interval: int = 0
    detect_window: int = DETECT_WINDOW
    max_capture_frames: int = MAX_CAPTURE_FRAMES
    max_message_bytes: int = MAX_MESSAGE_BYTES
    #: Workers of the analysis offload pool (``thread`` kind: keeps the
    #: event loop free; the GP hot path escapes the GIL separately via
    #: ``gp_backend="process"``).
    analysis_workers: int = 2
    #: GP search parameters for final inference (None = paper defaults).
    gp_config: Optional[GpConfig] = None
    gp_workers: int = 1
    #: Per-ESV inference backend for finalize.  ``"auto"`` resolves to
    #: ``"island"`` here (unlike the batch CLI): a long-lived server
    #: amortises the island pool's one-off spawn across every session, and
    #: each finalize then ships its observation datasets to the workers
    #: through one shared-memory segment instead of pickling them through
    #: a fresh pool's pipe per request.  Reports are byte-identical on
    #: every backend.
    gp_backend: str = "auto"
    #: Merge same-shape GP evaluations across a session's ESVs into single
    #: batched matrix passes (applies to the serial backend; island
    #: workers always batch their islands).
    gp_batch: bool = True
    #: Shared on-disk formula memo directory ("" disables cross-session
    #: formula reuse).
    gp_memo_dir: str = ""
    #: Formula-*inference* backend for finalize (``"gp"``/``"linear"``/
    #: ``"hybrid"`` — what solver recovers each formula, where
    #: :attr:`gp_backend` decides where GP evaluations run).
    formula_backend: str = "gp"
    ocr_seed: int = 23
    #: Record per-session spans into the server tracer (one lane each).
    trace: bool = False
    #: Bind with ``SO_REUSEPORT`` so several processes can listen on the
    #: same port (the sharded deployment; the kernel load-balances accepts).
    reuse_port: bool = False
    #: This process's index in a sharded deployment (``None`` = unsharded).
    #: Echoed in every ``welcome`` so clients and tests can tell shards
    #: apart.
    shard_index: Optional[int] = None
    #: Seconds a connected session may sit idle (no message) before it is
    #: evicted — the service-slowloris defense: a client that handshakes
    #: and then sends nothing cannot hold a session slot forever.
    #: ``0`` disables eviction (legacy behaviour).
    session_idle_timeout: float = 0.0
    #: Transport hardening handed to every session's decoders
    #: (:class:`~repro.transport.base.HardeningPolicy`); ``None`` keeps
    #: the legacy stack.  Clean streams produce byte-identical reports
    #: either way.
    hardening: Optional[HardeningPolicy] = None


@dataclass
class _Connection:
    """Book-keeping the handler keeps per live connection."""

    session: VehicleSession
    tokens: float = 0.0
    last_refill: float = 0.0
    since_status: int = 0
    interim_running: bool = False
    stalls: int = 0
    spans_lane: int = 0
    report_json: str = ""
    error: str = ""


class DiagnosticServer:
    """Streaming front-end over the batch DP-Reverser pipeline."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.metrics = MetricsRegistry()
        self.tracer = Tracer() if self.config.trace else NULL_TRACER
        self.memo_stats = {"hits": 0, "misses": 0}
        self.inference_stats: Dict[str, int] = {}
        self.sessions_active = 0
        self._next_session_id = 0
        self._next_lane = 1  # lane 0 is the server's own spans
        self._pool: Optional[WorkerPool] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[int, _Connection] = {}

    # ------------------------------------------------------------ lifecycle

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`; useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._pool = WorkerPool("thread", max(1, self.config.analysis_workers))
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            backlog=max(100, self.config.max_sessions),
            reuse_port=self.config.reuse_port or None,
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    async def drain(self, poll_interval: float = 0.02) -> None:
        """Graceful shutdown, phase one: refuse new work, finish old.

        Closes the listener (no further accepts) and waits for every live
        session to run to completion — the SIGTERM half of a shard's
        drain-then-exit sequence.  :meth:`stop` afterwards tears down the
        worker pool.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self.sessions_active > 0:
            await asyncio.sleep(poll_interval)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def __aenter__(self) -> "DiagnosticServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------ metrics

    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def snapshot(self) -> dict:
        """Canonical metrics snapshot (PR 5 export schema + gauges)."""
        return build_snapshot(
            registry=self.metrics,
            memo_stats=self.memo_stats,
            inference_stats=self.inference_stats or None,
            tracer=self.tracer if self.tracer.enabled else None,
            gauges={"service.sessions_active": float(self.sessions_active)},
        )

    # ----------------------------------------------------------- offload

    async def _offload(self, fn, *args):
        """Run CPU-bound work on the pool without blocking the loop."""
        return await asyncio.wrap_future(self._pool.submit(fn, *args))

    def _build_reverser(self, session: VehicleSession) -> DPReverser:
        backend = self.config.gp_backend
        if backend == "auto":
            backend = "island"
        return DPReverser(
            ReverserConfig(
                gp_config=self.config.gp_config,
                ocr_seed=self.config.ocr_seed,
                gp_workers=self.config.gp_workers,
                gp_backend=backend,
                gp_batch=self.config.gp_batch,
                gp_memo_dir=self.config.gp_memo_dir,
                formula_backend=self.config.formula_backend,
                trace=session.tracer if session.tracer.enabled else None,
            )
        )

    # ------------------------------------------------------- backpressure

    async def _throttle(self, conn: _Connection, cost: float = 1.0) -> None:
        """Token-bucket ingest limit: no token → the reader sleeps.

        Sleeping here is the backpressure mechanism, not just accounting —
        while the handler sleeps it is not reading the socket, the kernel
        buffer fills, and TCP flow control pushes back on the sender.
        ``cost`` is the records in the arriving message, so a 256-frame
        batch spends 256 tokens: the rate limit is per record, however the
        client framed them.
        """
        rate = self.config.rate_limit
        if rate <= 0 or cost <= 0:
            return
        now = time.monotonic()
        conn.tokens = min(rate, conn.tokens + (now - conn.last_refill) * rate)
        conn.last_refill = now
        if conn.tokens >= cost:
            conn.tokens -= cost
            return
        deficit = (cost - conn.tokens) / rate
        conn.tokens = 0.0
        self._count("service.backpressure_stalls")
        conn.stalls += 1
        await asyncio.sleep(deficit)

    async def _send(
        self, writer: asyncio.StreamWriter, message: dict, conn: Optional[_Connection]
    ) -> None:
        write_message(writer, message)
        if writer.transport.get_write_buffer_size() > WRITE_HIGH_WATER:
            self._count("service.backpressure_stalls")
            if conn is not None:
                conn.stalls += 1
            await writer.drain()

    # ----------------------------------------------------------- handler

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn: Optional[_Connection] = None
        try:
            conn = await self._handshake(reader, writer)
            if conn is None:
                return
            await self._serve_session(reader, writer, conn)
        except (ProtocolError, SessionError) as error:
            self._count("service.protocol_errors")
            if conn is not None:
                conn.error = str(error)
            try:
                write_message(writer, {"type": "error", "error": str(error)})
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except ConnectionError:
            pass
        finally:
            if conn is not None:
                self._close_session(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[_Connection]:
        hello = await read_message(reader, self.config.max_message_bytes)
        if hello is None:
            return None
        if hello.get("type") != "hello":
            raise ProtocolError(f"expected hello, got {hello.get('type')!r}")
        if hello.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version {hello.get('version')!r} unsupported "
                f"(server speaks {PROTOCOL_VERSION})"
            )
        transport = str(hello.get("transport", "auto"))
        if transport not in HELLO_TRANSPORTS:
            raise ProtocolError(f"unknown transport {transport!r}")
        if self.sessions_active >= self.config.max_sessions:
            self._count("service.sessions_rejected")
            write_message(
                writer,
                {
                    "type": "error",
                    "error": f"server full ({self.config.max_sessions} sessions)",
                },
            )
            await writer.drain()
            return None
        session_id = self._next_session_id
        self._next_session_id += 1
        session = VehicleSession(
            session_id=session_id,
            tenant=str(hello.get("tenant", "anonymous")),
            transport=transport,
            meta=hello.get("meta") or {},
            detect_window=self.config.detect_window,
            max_capture_frames=self.config.max_capture_frames,
            tracer=Tracer() if self.tracer.enabled else None,
            hardening=self.config.hardening,
        )
        conn = _Connection(session=session, last_refill=time.monotonic())
        if self.tracer.enabled:
            conn.spans_lane = self._next_lane
            self._next_lane += 1
        self._connections[session_id] = conn
        self.sessions_active += 1
        self._count("service.sessions_started")
        welcome = {
            "type": "welcome",
            "version": PROTOCOL_VERSION,
            "session": session_id,
        }
        if self.config.shard_index is not None:
            welcome["shard"] = self.config.shard_index
        write_message(writer, welcome)
        await writer.drain()
        return conn

    async def _serve_session(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        conn: _Connection,
    ) -> None:
        session = conn.session
        ingest_hist = self.metrics.histogram("service.ingest_seconds")
        idle_timeout = self.config.session_idle_timeout
        while True:
            if idle_timeout > 0:
                try:
                    message = await asyncio.wait_for(
                        read_message(reader, self.config.max_message_bytes),
                        idle_timeout,
                    )
                except asyncio.TimeoutError:
                    # Slowloris defense: an idle session frees its slot
                    # instead of starving other tenants at max_sessions.
                    self._count("service.sessions_evicted_idle")
                    await self._send(
                        writer,
                        {
                            "type": "error",
                            "error": (
                                f"session idle for {idle_timeout:g}s; evicted"
                            ),
                        },
                        conn,
                    )
                    return
            else:
                message = await read_message(reader, self.config.max_message_bytes)
            if message is None:
                return  # client went away without finish: drop silently
            kind = message["type"]
            if kind == "finish":
                await self._finish(writer, conn)
                return
            if kind == FRAME_BATCH:
                # Columnar decode: the packed records become numpy columns
                # directly, and clean streams never build frame objects.
                frames = arrays_from_batch(message)
                await self._throttle(conn, cost=len(frames))
                start = time.perf_counter()
                completed, dropped = session.ingest_frames(frames)
                ingest_hist.observe(time.perf_counter() - start)
                if dropped:
                    self._count("service.frames_dropped", dropped)
                if len(frames) > dropped:
                    self._count("service.frames_ingested", len(frames) - dropped)
                if completed:
                    self._count("service.messages_assembled", completed)
                    conn.since_status += completed
                interval = self.config.status_interval
                if interval and conn.since_status >= interval:
                    conn.since_status = 0
                    await self._interim(writer, conn)
            elif kind in ("frame", "kbyte"):
                await self._throttle(conn)
                start = time.perf_counter()
                if kind == "frame":
                    completed = session.ingest_frame(frame_from_wire(message))
                else:
                    completed = session.ingest_kline_byte(
                        kline_byte_from_wire(message)
                    )
                ingest_hist.observe(time.perf_counter() - start)
                if completed < 0:
                    self._count("service.frames_dropped")
                    continue
                self._count("service.frames_ingested")
                if completed:
                    self._count("service.messages_assembled", completed)
                    conn.since_status += completed
                interval = self.config.status_interval
                if interval and conn.since_status >= interval:
                    conn.since_status = 0
                    await self._interim(writer, conn)
            elif kind == "video":
                session.ingest_video(video_from_wire(message))
            elif kind == "click":
                session.ingest_click(click_from_wire(message))
            elif kind == "segment":
                session.ingest_segment(segment_from_wire(message))
            else:
                raise ProtocolError(f"unknown message type {kind!r}")

    async def _interim(
        self, writer: asyncio.StreamWriter, conn: _Connection
    ) -> None:
        """Offload a staged re-analysis and stream the snapshot back."""
        if conn.interim_running:
            return  # coalesce: never queue re-analyses faster than they run
        conn.interim_running = True
        try:
            snapshot = await self._offload(conn.session.interim_snapshot)
            await self._send(writer, snapshot, conn)
        finally:
            conn.interim_running = False

    async def _finish(
        self, writer: asyncio.StreamWriter, conn: _Connection
    ) -> None:
        session = conn.session
        reverser = self._build_reverser(session)
        start = time.perf_counter()
        report = await self._offload(session.finalize, reverser)
        self.metrics.histogram("service.finalize_seconds").observe(
            time.perf_counter() - start
        )
        for key, value in reverser.memo_stats.items():
            self.memo_stats[key] = self.memo_stats.get(key, 0) + value
        for key, value in reverser.inference_stats.items():
            self.inference_stats[key] = self.inference_stats.get(key, 0) + value
        report_json = report.to_json()
        conn.report_json = report_json
        self._count("service.reports_emitted")
        await self._send(
            writer,
            {
                "type": "report",
                "session": session.session_id,
                "report": report.to_dict(),
                "report_json": report_json,
                "digest": hashlib.sha256(report_json.encode()).hexdigest(),
            },
            conn,
        )
        await writer.drain()
        self._count("service.sessions_completed")

    def _close_session(self, conn: _Connection) -> None:
        session = conn.session
        if session.tracer.enabled and self.tracer.enabled:
            self.tracer.absorb(
                session.tracer.export_payload(), tid=conn.spans_lane
            )
        # Fold the session's adversarial-shape counters into the service
        # metrics before its decoders are released: an attacked fleet
        # lights up ``service.anomaly.*`` in the Prometheus export.
        for name, value in session.anomaly_counts().items():
            if value:
                self._count(f"service.anomaly.{name}", value)
        session.release()
        self._connections.pop(session.session_id, None)
        self.sessions_active -= 1


async def run_server(config: ServiceConfig, sessions: int = 0) -> DiagnosticServer:
    """Start a server and serve until stopped.

    With ``sessions > 0`` the server exits once that many sessions have
    completed — the shape tests and demos want.  Returns the (stopped)
    server so callers can inspect its metrics.
    """
    server = DiagnosticServer(config)
    await server.start()
    try:
        if sessions <= 0:
            await server.serve_forever()
        else:
            while (
                server.metrics.counter("service.sessions_completed").value
                + server.metrics.counter("service.sessions_rejected").value
                < sessions
            ):
                await asyncio.sleep(0.05)
    finally:
        await server.stop()
    return server
