"""Per-tenant session state of the streaming diagnostic service.

A :class:`VehicleSession` is the incremental twin of one batch
``repro reverse`` run.  It consumes capture records one at a time — CAN
frames through a :class:`~repro.core.assembly.StreamAssembler`, K-Line
bytes through a :class:`~repro.transport.kline.KLineEventDecoder` — keeps
a rolling view of the request/response pairs recovered so far (cheap
re-runs of field extraction as evidence accumulates), and on ``finish``
rebuilds the exact :class:`~repro.cps.collector.Capture` a batch run
would have seen and re-joins the batch pipeline through
:meth:`~repro.core.reverser.DPReverser.analyze_assembled`.  Because both
paths run the literal same assembly and analysis code over the same
inputs, the streamed report is byte-identical to the batch one.

The session is transport-agnostic until told otherwise: a ``hello`` with
``transport="auto"`` buffers the first :attr:`detect_window` frames, runs
the batch :func:`~repro.core.screening.detect_transport` heuristic over
them, then locks the transport and replays the buffer through the
assembler.  Memory is bounded: at most :attr:`max_capture_frames` frames
are retained (the final report needs the full frame log for its
``n_frames`` accounting); overflow frames are counted and dropped rather
than buffered.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..can import CanFrame, CanLog
from ..core.assembly import AssembledMessage, StreamAssembler
from ..core.fields import extract_fields
from ..core.reverser import DPReverser, ReverseReport
from ..core.screening import detect_transport
from ..cps.collector import Capture
from ..observability.trace import NULL_TRACER, Tracer, activated
from ..transport.arrays import FrameArrays
from ..transport.base import (
    EVENT_ERROR,
    EVENT_PAYLOAD,
    EVENT_RESYNC,
    DecoderStats,
    HardeningPolicy,
)
from ..transport.kline import KLineByte, KLineEventDecoder

#: Frames buffered before the transport heuristic runs on an ``auto``
#: session.  VW TP 2.0 channel setup and the BMW addressing pattern both
#: show up within the first few exchanges of a diagnostic session.
DETECT_WINDOW = 64

#: Default retention bound: enough for every simulated capture in the
#: fleet (tens of thousands of frames) while keeping a runaway client
#: from holding gigabytes of frame log.
MAX_CAPTURE_FRAMES = 200_000

TRANSPORT_KLINE = "kline"


class SessionError(Exception):
    """A record that cannot be accepted in the session's current state."""


class VehicleSession:
    """One tenant's in-progress reverse-engineering run.

    Pure state machine — no sockets, no event loop — so it is testable
    directly and reusable by any front-end (the asyncio server, a replay
    tool, a notebook).
    """

    def __init__(
        self,
        session_id: int,
        tenant: str = "anonymous",
        transport: str = "auto",
        meta: Optional[dict] = None,
        detect_window: int = DETECT_WINDOW,
        max_capture_frames: int = MAX_CAPTURE_FRAMES,
        tracer: Optional[Tracer] = None,
        hardening: Optional[HardeningPolicy] = None,
    ) -> None:
        meta = meta or {}
        self.session_id = session_id
        self.tenant = tenant
        self.transport = transport  # "auto" until resolved
        #: Transport hardening handed to every decoder this session builds;
        #: ``None`` keeps the legacy single-context stack.
        self.hardening = hardening
        self.model = str(meta.get("model", tenant))
        self.tool_name = str(meta.get("tool_name", "live-stream"))
        self.tool_error_rate = float(meta.get("tool_error_rate", 0.0))
        self.camera_offset_s = float(meta.get("camera_offset_s", 0.0))
        self.detect_window = detect_window
        self.max_capture_frames = max_capture_frames
        #: The session's private tracer; per-session because span stacks
        #: are per-thread and thousands of sessions interleave on one event
        #: loop thread.  The server absorbs it into its own tracer, one tid
        #: lane per session.
        self.tracer = tracer or NULL_TRACER

        #: Full frame log, for ``Capture.can_log``: arrival-ordered entries,
        #: each either one :class:`CanFrame` or a whole columnar
        #: :class:`FrameArrays` chunk (binary wire batches stay columnar —
        #: their frame objects materialise only at :meth:`build_capture`).
        self._log: List[object] = []
        self._log_frames = 0  # frames across all log entries
        self._pending: List[CanFrame] = []  # awaiting transport detection
        self._assembler: Optional[StreamAssembler] = None
        self._kline: Optional[KLineEventDecoder] = None
        self._kline_bytes = 0
        self._messages: List[AssembledMessage] = []  # K-Line only
        self.video: List = []
        self.clicks: List = []
        self.segments: List = []
        self.frames_received = 0
        self.frames_dropped = 0
        self.decode_errors = 0
        self.decode_resyncs = 0
        self.finished = False

    # ------------------------------------------------------------- ingest

    @property
    def messages_assembled(self) -> int:
        if self._assembler is not None:
            return len(self._assembler.messages)
        return len(self._messages)

    def _resolve_transport(self, frames: List[CanFrame]) -> None:
        """Lock the transport and replay the detection buffer through it.

        Detection only looks at the first :attr:`detect_window` frames —
        batched arrivals can overshoot the window, and the locked
        transport must not depend on how the stream was chunked.
        """
        self.transport = detect_transport(frames[: self.detect_window])
        self._assembler = StreamAssembler(self.transport, hardening=self.hardening)
        self._feed_chunk(frames)

    def _feed_assembler(self, frame: CanFrame) -> int:
        before_e = self._assembler.diagnostics.stats.errors
        before_r = self._assembler.diagnostics.stats.resyncs
        completed = self._assembler.feed(frame)
        # Per-frame error deltas are only folded into the aggregate stats
        # at finish(); track running totals for interim status here.
        stats = self._assembler.diagnostics.stats
        self.decode_errors += stats.errors - before_e
        self.decode_resyncs += stats.resyncs - before_r
        return len(completed)

    def _feed_chunk(self, frames) -> int:
        before_e = self._assembler.diagnostics.stats.errors
        before_r = self._assembler.diagnostics.stats.resyncs
        completed = self._assembler.feed_chunk(frames)
        stats = self._assembler.diagnostics.stats
        self.decode_errors += stats.errors - before_e
        self.decode_resyncs += stats.resyncs - before_r
        return len(completed)

    def ingest_frames(self, frames) -> Tuple[int, int]:
        """Accept a batch of CAN frames in one chunked decode pass.

        ``frames`` is an iterable of :class:`CanFrame` or a columnar
        :class:`FrameArrays` (what
        :func:`~repro.service.protocol.arrays_from_batch` decodes the
        binary wire into) — the latter flows through assembly without any
        per-frame object ever being built.  Returns
        ``(completed, dropped)`` — messages the batch completed and
        frames shed by the retention bound.  Clean single-frame streams
        take the vectorised
        :meth:`~repro.core.assembly.StreamAssembler.feed_chunk` fast path;
        state and output are identical to calling :meth:`ingest_frame`
        per frame.
        """
        if self.finished:
            raise SessionError("session already finished")
        if self.transport == TRANSPORT_KLINE or self._kline is not None:
            raise SessionError("CAN frame on a K-Line session")
        arrays = frames if isinstance(frames, FrameArrays) else None
        if arrays is None:
            frames = list(frames)
        # Degenerate chunks (over the retention bound, or still inside the
        # auto-detect window, which needs real frames for the heuristic)
        # drop to the materialised list path.
        room = max(self.max_capture_frames - self._log_frames, 0)
        over_bound = (len(arrays) if arrays is not None else len(frames)) > room
        detecting = self._assembler is None and self.transport == "auto"
        if arrays is not None and (over_bound or detecting):
            frames = list(arrays.frames)
            arrays = None
        dropped = 0
        if arrays is None and len(frames) > room:
            dropped = len(frames) - room
            self.frames_dropped += dropped
            frames = frames[:room]
        count = len(arrays) if arrays is not None else len(frames)
        if not count:
            return 0, dropped
        self.frames_received += count
        self._log_frames += count
        if arrays is not None:
            self._log.append(arrays)
        else:
            self._log.extend(frames)
        before = self.messages_assembled
        if self._assembler is None:
            if self.transport == "auto":
                self._pending.extend(frames)
                if len(self._pending) < self.detect_window:
                    return 0, dropped
                pending, self._pending = self._pending, []
                self._resolve_transport(pending)
                return self.messages_assembled - before, dropped
            self._assembler = StreamAssembler(self.transport, hardening=self.hardening)
        self._feed_chunk(arrays if arrays is not None else frames)
        return self.messages_assembled - before, dropped

    def ingest_frame(self, frame: CanFrame) -> int:
        """Accept one CAN frame; return how many messages it completed.

        Returns ``-1`` when the frame was dropped by the retention bound
        (the caller counts those against its ``frames_dropped`` metric).
        """
        if self.finished:
            raise SessionError("session already finished")
        if self.transport == TRANSPORT_KLINE or self._kline is not None:
            raise SessionError("CAN frame on a K-Line session")
        if self._log_frames >= self.max_capture_frames:
            self.frames_dropped += 1
            return -1
        self.frames_received += 1
        self._log.append(frame)
        self._log_frames += 1
        if self._assembler is None:
            if self.transport == "auto":
                self._pending.append(frame)
                if len(self._pending) < self.detect_window:
                    return 0
                pending, self._pending = self._pending, []
                before = self.messages_assembled
                self._resolve_transport(pending)
                return self.messages_assembled - before
            self._assembler = StreamAssembler(self.transport, hardening=self.hardening)
        return self._feed_assembler(frame)

    def ingest_kline_byte(self, byte: KLineByte) -> int:
        """Accept one sniffed K-Line byte; return messages it completed."""
        if self.finished:
            raise SessionError("session already finished")
        if self._assembler is not None or self._pending or self._log:
            raise SessionError("K-Line byte on a CAN session")
        if self.transport == "auto":
            self.transport = TRANSPORT_KLINE
        elif self.transport != TRANSPORT_KLINE:
            raise SessionError(
                f"K-Line byte on a {self.transport!r} session"
            )
        if self._kline is None:
            self._kline = KLineEventDecoder(hardening=self.hardening)
        if self._kline_bytes >= self.max_capture_frames:
            self.frames_dropped += 1
            return -1
        self._kline_bytes += 1
        completed = 0
        for event in self._kline.feed(CanFrame(0, bytes([byte.value]), byte.timestamp)):
            if event.kind == EVENT_PAYLOAD:
                # Mirror transport.kline.to_assembled_messages exactly.
                message = self._kline.last_message
                self._messages.append(
                    AssembledMessage(
                        payload=message.payload,
                        can_id=message.source,
                        t_first=message.t_first,
                        t_last=message.t_last,
                        n_frames=1,
                        ecu_address=message.target,
                    )
                )
                completed += 1
            elif event.kind == EVENT_ERROR:
                self.decode_errors += 1
            elif event.kind == EVENT_RESYNC:
                self.decode_resyncs += 1
        return completed

    def ingest_video(self, frame) -> None:
        self.video.append(frame)

    def ingest_click(self, click) -> None:
        self.clicks.append(click)

    def ingest_segment(self, segment) -> None:
        self.segments.append(segment)

    # ------------------------------------------------------------- status

    def anomaly_counts(self) -> Dict[str, int]:
        """Adversarial-shape counters accumulated by this session's
        decoders (:data:`~repro.transport.base.ANOMALY_FIELDS`)."""
        if self._assembler is not None:
            return self._assembler.anomaly_counts()
        if self._kline is not None:
            return self._kline.stats.anomaly_counts()
        return DecoderStats().anomaly_counts()

    def status(self) -> dict:
        """Cheap counters-only snapshot (safe to compute on every record)."""
        return {
            "type": "status",
            "session": self.session_id,
            "transport": self.transport,
            "frames": self.frames_received + self._kline_bytes,
            "messages": self.messages_assembled,
            "errors": self.decode_errors,
            "resyncs": self.decode_resyncs,
        }

    def interim_snapshot(self) -> dict:
        """Staged re-analysis over the evidence accumulated so far.

        Re-runs request/response pairing and field extraction on the
        messages assembled to date — the ESV identifiers and observation
        counts a client sees firming up while the capture is still
        streaming.  CPU-bound (linear in messages), so the server runs it
        on a worker pool, never on the event loop.
        """
        with activated(self.tracer):
            with self.tracer.span("service.interim", session=self.session_id):
                if self._assembler is not None:
                    messages = sorted(
                        self._assembler.messages, key=lambda m: m.t_last
                    )
                else:
                    messages = sorted(self._messages, key=lambda m: m.t_last)
                fields = extract_fields(messages)
                grouped = fields.by_identifier()
        snapshot = self.status()
        snapshot["esvs"] = [
            {
                "identifier": identifier,
                "protocol": observations[0].protocol,
                "observations": len(observations),
            }
            for identifier, observations in sorted(grouped.items())
        ]
        return snapshot

    # ----------------------------------------------------------- finalise

    def _frame_log(self) -> List[CanFrame]:
        """Flatten the log: columnar chunks materialise their frames here,
        once, off the ingest hot path."""
        log: List[CanFrame] = []
        for entry in self._log:
            if isinstance(entry, FrameArrays):
                log.extend(entry.frames)
            else:
                log.append(entry)
        return log

    def build_capture(self) -> Capture:
        """The capture a batch collection of this stream would have built."""
        return Capture(
            model=self.model,
            tool_name=self.tool_name,
            can_log=CanLog(self._frame_log()),
            video=self.video,
            clicks=self.clicks,
            segments=self.segments,
            tool_error_rate=self.tool_error_rate,
            camera_offset_s=self.camera_offset_s,
        )

    def finalize(self, reverser: DPReverser) -> ReverseReport:
        """Close the stream and produce the final report.

        The CAN path hands the assembler's ``(messages, diagnostics)`` to
        :meth:`~repro.core.reverser.DPReverser.analyze_assembled`; the
        K-Line path hands pre-assembled messages to
        :meth:`~repro.core.reverser.DPReverser.analyze` — each re-joining
        the same code the batch pipeline runs, which is what makes the
        result byte-identical to ``repro reverse`` on the same capture.
        """
        if self.finished:
            raise SessionError("session already finished")
        self.finished = True
        capture = self.build_capture()
        if self._kline is not None or self.transport == TRANSPORT_KLINE:
            if self._kline is not None:
                self._kline.finish()
            context = reverser.analyze(
                capture, messages=self._messages, transport=TRANSPORT_KLINE
            )
            return reverser.infer(context)
        if self._assembler is None:
            if self.transport == "auto":
                # Stream ended before the detection window filled: detect
                # on whatever arrived, exactly as batch would.
                pending, self._pending = self._pending, []
                self._resolve_transport(pending)
            else:
                # Declared transport, zero frames: empty assembly pass.
                self._assembler = StreamAssembler(self.transport, hardening=self.hardening)
        messages, diagnostics = self._assembler.finish()
        context = reverser.analyze_assembled(
            capture, messages, self.transport, diagnostics, None
        )
        return reverser.infer(context)

    def release(self) -> Dict[str, int]:
        """Drop buffered state, returning final counters for metrics."""
        counters = {
            "frames": self.frames_received + self._kline_bytes,
            "messages": self.messages_assembled,
            "dropped": self.frames_dropped,
            "errors": self.decode_errors,
        }
        self._log = []
        self._pending = []
        self._messages = []
        self.video = []
        self.clicks = []
        self.segments = []
        return counters
