"""Streaming diagnostic service: live captures in, reverse reports out.

The batch pipeline (``repro reverse``) assumes the whole capture exists
before analysis starts.  This subsystem turns the same pipeline into a
long-running multi-tenant server: clients stream CAN frames or K-Line
bytes (plus UI video, clicks and segments) over a length-prefixed
JSON-lines wire protocol, the server decodes incrementally per session,
re-runs staged analysis as evidence accumulates, and on ``finish``
produces a :class:`~repro.core.reverser.ReverseReport` byte-identical to
the batch run over the same capture.

Layers:

- :mod:`~repro.service.protocol` — wire framing and message vocabulary;
- :mod:`~repro.service.session` — :class:`VehicleSession`, the per-tenant
  incremental pipeline state (pure, event-loop-free);
- :mod:`~repro.service.server` — :class:`DiagnosticServer`, the asyncio
  front-end with rate limits, bounded buffers, backpressure, worker-pool
  offload and ``service.*`` observability;
- :mod:`~repro.service.client` — the reference streaming client.

Entry points: ``repro serve`` on the command line, or::

    from repro.service import DiagnosticServer, ServiceConfig, stream_capture

    async with DiagnosticServer(ServiceConfig(port=0)) as server:
        result = await stream_capture_async("127.0.0.1", server.port, capture)
"""

from .client import (
    FrameBatcher,
    ServiceClientError,
    StreamResult,
    stream_capture,
    stream_capture_async,
)
from .protocol import (
    MAX_BATCH_FRAMES,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    MessageDecoder,
    ProtocolError,
    capture_to_wire,
    encode_message,
    frame_batch_to_wire,
    arrays_from_batch,
    frames_from_batch,
    read_message,
    write_message,
)
from .server import DiagnosticServer, ServiceConfig, run_server
from .session import SessionError, VehicleSession
from .shards import ShardSupervisor

__all__ = [
    "FrameBatcher",
    "ServiceClientError",
    "StreamResult",
    "stream_capture",
    "stream_capture_async",
    "MAX_BATCH_FRAMES",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "MessageDecoder",
    "ProtocolError",
    "capture_to_wire",
    "encode_message",
    "frame_batch_to_wire",
    "arrays_from_batch",
    "frames_from_batch",
    "read_message",
    "write_message",
    "DiagnosticServer",
    "ServiceConfig",
    "run_server",
    "SessionError",
    "VehicleSession",
    "ShardSupervisor",
]
