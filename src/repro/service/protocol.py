"""Wire protocol of the streaming diagnostic service.

One connection carries one vehicle session.  Every message — both
directions — is a *length-prefixed JSON object*: a 4-byte big-endian
unsigned length followed by that many bytes of UTF-8 JSON.  JSON keeps the
protocol debuggable from a shell (``xxd`` + eyeballs) and trivially
implementable on an ELM327-adapter bridge; the length prefix keeps framing
independent of JSON whitespace and lets the reader enforce a hard
per-message size bound *before* parsing (a malicious length field fails
fast instead of buffering unboundedly).

Message vocabulary (``type`` field):

========== =========== =====================================================
direction  type        payload
========== =========== =====================================================
client →   ``hello``   ``version``, ``tenant``, ``transport``
                       (``auto``/``isotp``/``vwtp``/``bmw``/``kline``) and
                       the capture ``meta`` (model, tool name, OCR error
                       rate, camera offset)
client →   ``frame``   one CAN frame: ``t``, ``id``, ``data`` (hex),
                       optional ``ext``/``ch``
client →   ``kbyte``   one K-Line wire byte: ``t``, ``b``
client →   ``video``   one captured UI frame (same region schema as
                       ``video.jsonl`` in :mod:`repro.persistence`)
client →   ``click``   one robotic-clicker record
client →   ``segment`` one per-action activity window
client →   ``finish``  end of stream; ask for the final report
server →   ``welcome`` accepted: ``session`` id, protocol ``version``
server →   ``status``  incremental diagnosis snapshot (sent every
                       ``status_interval`` assembled messages)
server →   ``report``  the final report: ``report`` (dict form),
                       ``report_json`` (exact ``ReverseReport.to_json()``
                       bytes) and its sha-256 ``digest``
server →   ``error``   terminal failure; the server closes after sending
========== =========== =====================================================
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Iterable, Iterator, List, Optional

from ..can import CanFrame
from ..cps.arm import ClickRecord
from ..cps.camera import CapturedFrame, TextRegion
from ..cps.collector import Capture, Segment
from ..transport.kline import KLineByte

PROTOCOL_VERSION = 1

#: Hard bound on one wire message.  A video frame of a busy screen is a few
#: tens of kilobytes; anything near a megabyte is a corrupt length field.
MAX_MESSAGE_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

#: Transports a ``hello`` may declare (``auto`` = sniff from the stream).
HELLO_TRANSPORTS = ("auto", "isotp", "vwtp", "bmw", "kline")


class ProtocolError(Exception):
    """Malformed framing or message content; the connection is unusable."""


def encode_message(message: dict) -> bytes:
    """One message as its on-wire bytes (length prefix + compact JSON)."""
    body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode()
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the {MAX_MESSAGE_BYTES} bound"
        )
    return _LENGTH.pack(len(body)) + body


class MessageDecoder:
    """Incremental wire-to-message decoding with a bounded buffer.

    Feed arbitrary byte chunks (TCP segmentation is not message
    segmentation); complete messages come back in order.  The declared
    length is validated *before* the body is buffered, so a corrupt or
    hostile length field raises :class:`ProtocolError` instead of growing
    the buffer without bound.
    """

    def __init__(self, max_message_bytes: int = MAX_MESSAGE_BYTES) -> None:
        self.max_message_bytes = max_message_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[dict]:
        self._buffer.extend(data)
        messages: List[dict] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return messages
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > self.max_message_bytes:
                raise ProtocolError(
                    f"declared message length {length} exceeds the "
                    f"{self.max_message_bytes} bound"
                )
            if len(self._buffer) < _LENGTH.size + length:
                return messages
            body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
            del self._buffer[: _LENGTH.size + length]
            messages.append(_parse_body(body))


def _parse_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError(f"message body is not JSON: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be an object with a 'type' field")
    return message


# ------------------------------------------------------------ async framing


async def read_message(
    reader: asyncio.StreamReader, max_message_bytes: int = MAX_MESSAGE_BYTES
) -> Optional[dict]:
    """Read one message from a stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > max_message_bytes:
        raise ProtocolError(
            f"declared message length {length} exceeds the {max_message_bytes} bound"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-message") from None
    return _parse_body(body)


def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one message on a stream writer (caller decides when to drain)."""
    writer.write(encode_message(message))


# ----------------------------------------------------- capture <-> messages


def frame_to_wire(frame: CanFrame) -> dict:
    message = {"type": "frame", "t": frame.timestamp, "id": frame.can_id, "data": frame.data.hex()}
    if frame.extended:
        message["ext"] = True
    if frame.channel != "can0":
        message["ch"] = frame.channel
    return message


def frame_from_wire(message: dict) -> CanFrame:
    try:
        return CanFrame(
            can_id=int(message["id"]),
            data=bytes.fromhex(message.get("data", "")),
            timestamp=float(message["t"]),
            extended=bool(message.get("ext", False)),
            channel=str(message.get("ch", "can0")),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad frame message: {error}") from None


def kline_byte_to_wire(byte: KLineByte) -> dict:
    return {"type": "kbyte", "t": byte.timestamp, "b": byte.value}


def kline_byte_from_wire(message: dict) -> KLineByte:
    try:
        value = int(message["b"])
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte value {value} out of range")
        return KLineByte(timestamp=float(message["t"]), value=value)
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad kbyte message: {error}") from None


def video_to_wire(frame: CapturedFrame) -> dict:
    return {
        "type": "video",
        "t": frame.timestamp,
        "screen": frame.screen_name,
        "regions": [
            {
                "text": r.text,
                "x": r.x,
                "y": r.y,
                "width": r.width,
                "height": r.height,
                "kind": r.kind,
                "icon": r.icon,
            }
            for r in frame.regions
        ],
    }


def video_from_wire(message: dict) -> CapturedFrame:
    try:
        return CapturedFrame(
            timestamp=float(message["t"]),
            screen_name=str(message["screen"]),
            regions=[TextRegion(**region) for region in message.get("regions", [])],
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad video message: {error}") from None


def click_to_wire(click: ClickRecord) -> dict:
    return {
        "type": "click",
        "t": click.timestamp,
        "x": click.x,
        "y": click.y,
        "label": click.label,
        "hit": click.hit,
    }


def click_from_wire(message: dict) -> ClickRecord:
    try:
        return ClickRecord(
            timestamp=float(message["t"]),
            x=message["x"],
            y=message["y"],
            label=str(message.get("label", "")),
            hit=bool(message.get("hit", True)),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad click message: {error}") from None


def segment_to_wire(segment: Segment) -> dict:
    return {
        "type": "segment",
        "kind": segment.kind,
        "ecu": segment.ecu,
        "label": segment.label,
        "t_start": segment.t_start,
        "t_end": segment.t_end,
    }


def segment_from_wire(message: dict) -> Segment:
    try:
        return Segment(
            kind=str(message["kind"]),
            ecu=str(message["ecu"]),
            label=str(message["label"]),
            t_start=float(message["t_start"]),
            t_end=float(message["t_end"]),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad segment message: {error}") from None


def hello_message(
    capture: Capture, tenant: str = "anonymous", transport: str = "auto"
) -> dict:
    if transport not in HELLO_TRANSPORTS:
        raise ProtocolError(
            f"unknown transport {transport!r}; expected one of {HELLO_TRANSPORTS}"
        )
    return {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "tenant": tenant,
        "transport": transport,
        "meta": {
            "model": capture.model,
            "tool_name": capture.tool_name,
            "tool_error_rate": capture.tool_error_rate,
            "camera_offset_s": capture.camera_offset_s,
        },
    }


def capture_to_wire(
    capture: Capture,
    tenant: str = "anonymous",
    transport: str = "auto",
    kline_bytes: Optional[Iterable[KLineByte]] = None,
) -> Iterator[dict]:
    """The full message sequence that streams one recorded capture.

    Yields ``hello``, then every capture record *in timestamp order across
    record kinds* (the interleaving a live adapter would produce), then
    ``finish``.  For a K-Line capture pass the sniffed ``kline_bytes``;
    CAN frames and K-Line bytes may not be mixed in one session.
    """
    yield hello_message(capture, tenant=tenant, transport=transport)
    records: List[Dict] = []
    for frame in capture.can_log:
        records.append(frame_to_wire(frame))
    for byte in kline_bytes or ():
        records.append(kline_byte_to_wire(byte))
    for video in capture.video:
        records.append(video_to_wire(video))
    for click in capture.clicks:
        records.append(click_to_wire(click))
    records.sort(key=lambda r: r["t"])
    yield from records
    for segment in capture.segments:
        yield segment_to_wire(segment)
    yield {"type": "finish"}
