"""Wire protocol of the streaming diagnostic service.

One connection carries one vehicle session.  Every message — both
directions — travels in the same *length-prefixed envelope*: a 4-byte
big-endian unsigned length followed by that many body bytes.  Two body
formats share the envelope:

* **JSON** (the default) — the body is one compact UTF-8 JSON object.
  JSON keeps the protocol debuggable from a shell (``xxd`` + eyeballs)
  and trivially implementable on an ELM327-adapter bridge; the length
  prefix keeps framing independent of JSON whitespace and lets the
  reader enforce a hard per-message size bound *before* parsing (a
  malicious length field fails fast instead of buffering unboundedly).
* **binary** — the body starts with a NUL byte (no JSON body can: JSON
  must open with ``{``), then a 2-byte big-endian header length, a
  compact JSON header, and a packed payload.  The only binary message is
  ``frame-batch``: N CAN frames at a fixed :data:`FRAME_RECORD` stride
  (little-endian ``f64`` timestamp, ``u32`` CAN id, ``u8`` flags, ``u8``
  DLC, 8 zero-padded payload bytes — 22 bytes per frame), which the
  codecs encode and decode in one :mod:`struct` pass instead of one JSON
  dict round-trip per frame.

Message vocabulary (``type`` field):

========== =============== =================================================
direction  type            payload
========== =============== =================================================
client →   ``hello``       ``version``, ``tenant``, ``transport``
                           (``auto``/``isotp``/``vwtp``/``bmw``/``kline``)
                           and the capture ``meta`` (model, tool name, OCR
                           error rate, camera offset)
client →   ``frame``       one CAN frame: ``t``, ``id``, ``data`` (hex),
                           optional ``ext``/``ch``
client →   ``frame-batch`` N CAN frames in one binary envelope: JSON
                           header ``n`` (+ ``channels`` table for
                           non-``can0`` buses) followed by the packed
                           fixed-stride records
client →   ``kbyte``       one K-Line wire byte: ``t``, ``b``
client →   ``video``       one captured UI frame (same region schema as
                           ``video.jsonl`` in :mod:`repro.persistence`)
client →   ``click``       one robotic-clicker record
client →   ``segment``     one per-action activity window
client →   ``finish``      end of stream; ask for the final report
server →   ``welcome``     accepted: ``session`` id, protocol ``version``
                           (+ ``shard`` when the server is sharded)
server →   ``status``      incremental diagnosis snapshot (sent every
                           ``status_interval`` assembled messages)
server →   ``report``      the final report: ``report`` (dict form),
                           ``report_json`` (exact ``ReverseReport.to_json()``
                           bytes) and its sha-256 ``digest``
server →   ``error``       terminal failure; the server closes after sending
========== =============== =================================================

The per-frame JSON ``frame`` message remains fully supported — a v1
client that has never heard of batches interoperates unchanged; batching
is a purely additive fast path.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..can import MAX_DATA_LENGTH, CanFrame, InvalidFrameError
from ..cps.arm import ClickRecord
from ..cps.camera import CapturedFrame, TextRegion
from ..cps.collector import Capture, Segment
from ..transport.arrays import HAVE_NUMPY, FrameArrays
from ..transport.kline import KLineByte

if HAVE_NUMPY:
    import numpy as np

PROTOCOL_VERSION = 1

#: Hard bound on one wire message.  A video frame of a busy screen is a few
#: tens of kilobytes; anything near a megabyte is a corrupt length field.
MAX_MESSAGE_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

#: Transports a ``hello`` may declare (``auto`` = sniff from the stream).
HELLO_TRANSPORTS = ("auto", "isotp", "vwtp", "bmw", "kline")

# ------------------------------------------------------- binary frame batch

FRAME_BATCH = "frame-batch"

#: One packed CAN frame: timestamp f64, can_id u32, flags u8, dlc u8,
#: 8 payload bytes (zero-padded past the DLC).  Little-endian, unaligned.
FRAME_RECORD = struct.Struct("<dIBB8s")

#: ``flags`` bit 0: 29-bit extended identifier.
FLAG_EXTENDED = 0x01
#: ``flags`` bits 1-7: index into the header's channel table (0 = can0).
_CHANNEL_SHIFT = 1
_MAX_CHANNELS = 0x7F

_BINARY_MAGIC = b"\x00"
_HEADER_LENGTH = struct.Struct(">H")

#: Frames one batch may carry: the packed records plus a worst-case JSON
#: header (magic + length + ``n`` + a full channel table) must fit the
#: per-message envelope bound.
_HEADER_SLACK = 4096
MAX_BATCH_FRAMES = (MAX_MESSAGE_BYTES - _HEADER_SLACK) // FRAME_RECORD.size


class ProtocolError(Exception):
    """Malformed framing or message content; the connection is unusable."""


def encode_message(message: dict) -> bytes:
    """One message as its on-wire bytes (length prefix + body).

    ``frame-batch`` messages (as produced by :func:`frame_batch_to_wire`)
    take the binary envelope; everything else is compact JSON.
    """
    if message.get("type") == FRAME_BATCH:
        return _encode_binary_message(message)
    body = json.dumps(message, separators=(",", ":"), sort_keys=True).encode()
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(body)} bytes exceeds the {MAX_MESSAGE_BYTES} bound"
        )
    return _LENGTH.pack(len(body)) + body


def _encode_binary_message(message: dict) -> bytes:
    packed = message.get("_packed")
    if not isinstance(packed, (bytes, bytearray, memoryview)):
        raise ProtocolError("frame-batch message carries no packed records")
    header = {key: value for key, value in message.items() if key != "_packed"}
    header_bytes = json.dumps(header, separators=(",", ":"), sort_keys=True).encode()
    if len(header_bytes) > 0xFFFF:
        raise ProtocolError(f"binary header of {len(header_bytes)} bytes too large")
    body_length = (
        len(_BINARY_MAGIC) + _HEADER_LENGTH.size + len(header_bytes) + len(packed)
    )
    if body_length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"frame batch of {body_length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES} bound"
        )
    return b"".join(
        (
            _LENGTH.pack(body_length),
            _BINARY_MAGIC,
            _HEADER_LENGTH.pack(len(header_bytes)),
            header_bytes,
            bytes(packed),
        )
    )


class MessageDecoder:
    """Incremental wire-to-message decoding with a bounded buffer.

    Feed arbitrary byte chunks (TCP segmentation is not message
    segmentation); complete messages come back in order.  The declared
    length is validated *before* the body is buffered, so a corrupt or
    hostile length field raises :class:`ProtocolError` instead of growing
    the buffer without bound.

    Parsing walks a :class:`memoryview` over the buffer and compacts the
    consumed prefix once per :meth:`feed` call — a TCP chunk carrying many
    small messages costs O(bytes), not the O(bytes²) a per-message
    ``del buffer[:length]`` shift would.
    """

    def __init__(self, max_message_bytes: int = MAX_MESSAGE_BYTES) -> None:
        self.max_message_bytes = max_message_bytes
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[dict]:
        self._buffer.extend(data)
        messages: List[dict] = []
        consumed = 0
        total = len(self._buffer)
        view = memoryview(self._buffer)
        try:
            while total - consumed >= _LENGTH.size:
                (length,) = _LENGTH.unpack_from(view, consumed)
                if length > self.max_message_bytes:
                    raise ProtocolError(
                        f"declared message length {length} exceeds the "
                        f"{self.max_message_bytes} bound"
                    )
                if total - consumed - _LENGTH.size < length:
                    break
                start = consumed + _LENGTH.size
                body = bytes(view[start : start + length])
                consumed = start + length
                messages.append(_parse_body(body))
        finally:
            # Release before compacting: a bytearray with an exported
            # memoryview refuses to resize.
            view.release()
            if consumed:
                del self._buffer[:consumed]
        return messages


def _parse_body(body: bytes) -> dict:
    if body[:1] == _BINARY_MAGIC:
        return _parse_binary_body(body)
    try:
        message = json.loads(body.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError(f"message body is not JSON: {error}") from None
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("message must be an object with a 'type' field")
    return message


def _parse_binary_body(body: bytes) -> dict:
    if len(body) < len(_BINARY_MAGIC) + _HEADER_LENGTH.size:
        raise ProtocolError("truncated binary envelope")
    (header_length,) = _HEADER_LENGTH.unpack_from(body, len(_BINARY_MAGIC))
    start = len(_BINARY_MAGIC) + _HEADER_LENGTH.size
    if start + header_length > len(body):
        raise ProtocolError("binary header overruns the message body")
    try:
        header = json.loads(body[start : start + header_length].decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise ProtocolError(f"binary header is not JSON: {error}") from None
    if not isinstance(header, dict) or header.get("type") != FRAME_BATCH:
        raise ProtocolError("binary envelope must carry a frame-batch header")
    packed = body[start + header_length :]
    count = header.get("n")
    if not isinstance(count, int) or count < 0:
        raise ProtocolError("frame-batch header needs a non-negative 'n'")
    if count * FRAME_RECORD.size != len(packed):
        raise ProtocolError(
            f"frame-batch declares {count} frames but carries "
            f"{len(packed)} payload bytes"
        )
    header["_packed"] = packed
    return header


# ------------------------------------------------------------ async framing


async def read_message(
    reader: asyncio.StreamReader, max_message_bytes: int = MAX_MESSAGE_BYTES
) -> Optional[dict]:
    """Read one message from a stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("connection closed mid-prefix") from None
    (length,) = _LENGTH.unpack(prefix)
    if length > max_message_bytes:
        raise ProtocolError(
            f"declared message length {length} exceeds the {max_message_bytes} bound"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-message") from None
    return _parse_body(body)


def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    """Queue one message on a stream writer (caller decides when to drain)."""
    writer.write(encode_message(message))


# ----------------------------------------------------- capture <-> messages


def frame_to_wire(frame: CanFrame) -> dict:
    message = {"type": "frame", "t": frame.timestamp, "id": frame.can_id, "data": frame.data.hex()}
    if frame.extended:
        message["ext"] = True
    if frame.channel != "can0":
        message["ch"] = frame.channel
    return message


def frame_from_wire(message: dict) -> CanFrame:
    try:
        return CanFrame(
            can_id=int(message["id"]),
            data=bytes.fromhex(message.get("data", "")),
            timestamp=float(message["t"]),
            extended=bool(message.get("ext", False)),
            channel=str(message.get("ch", "can0")),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad frame message: {error}") from None


def frame_batch_to_wire(frames: Sequence[CanFrame]) -> dict:
    """N CAN frames as one binary ``frame-batch`` message.

    The returned dict is the parsed form (header fields + ``_packed``
    record bytes), exactly what :class:`MessageDecoder` hands back for a
    batch, so a round-trip through :func:`encode_message` is lossless.
    """
    if len(frames) > MAX_BATCH_FRAMES:
        raise ProtocolError(
            f"batch of {len(frames)} frames exceeds the {MAX_BATCH_FRAMES} bound"
        )
    channels: List[str] = []
    channel_index: Dict[str, int] = {"can0": 0}
    packed = bytearray(len(frames) * FRAME_RECORD.size)
    for position, frame in enumerate(frames):
        index = channel_index.get(frame.channel)
        if index is None:
            channels.append(frame.channel)
            index = len(channels)
            if index > _MAX_CHANNELS:
                raise ProtocolError(
                    f"batch spans more than {_MAX_CHANNELS} distinct channels"
                )
            channel_index[frame.channel] = index
        flags = index << _CHANNEL_SHIFT
        if frame.extended:
            flags |= FLAG_EXTENDED
        FRAME_RECORD.pack_into(
            packed,
            position * FRAME_RECORD.size,
            frame.timestamp,
            frame.can_id,
            flags,
            len(frame.data),
            frame.data,
        )
    message: Dict = {"type": FRAME_BATCH, "n": len(frames), "_packed": bytes(packed)}
    if channels:
        message["channels"] = channels
    return message


def frames_from_batch(message: dict) -> List[CanFrame]:
    """Decode one ``frame-batch`` message back into its CAN frames."""
    packed = message.get("_packed")
    if not isinstance(packed, (bytes, bytearray, memoryview)):
        raise ProtocolError("frame-batch message carries no packed records")
    channels = message.get("channels", [])
    if not isinstance(channels, list) or not all(
        isinstance(name, str) for name in channels
    ):
        raise ProtocolError("frame-batch channel table must be a list of names")
    channel_table: Tuple[str, ...] = ("can0", *channels)
    frames: List[CanFrame] = []
    try:
        for timestamp, can_id, flags, dlc, data in FRAME_RECORD.iter_unpack(packed):
            if dlc > MAX_DATA_LENGTH:
                raise ProtocolError(f"frame record declares DLC {dlc}")
            frames.append(
                CanFrame(
                    can_id=can_id,
                    data=data[:dlc],
                    timestamp=timestamp,
                    extended=bool(flags & FLAG_EXTENDED),
                    channel=channel_table[flags >> _CHANNEL_SHIFT],
                )
            )
    except struct.error as error:
        raise ProtocolError(f"bad frame-batch records: {error}") from None
    except IndexError:
        raise ProtocolError("frame record names a channel outside the table") from None
    except InvalidFrameError as error:
        raise ProtocolError(f"bad frame record: {error}") from None
    return frames


class _LazyBatchFrames:
    """The :class:`CanFrame` list of a batch, materialised on first touch.

    The columnar ingest path never needs frame *objects* — only the
    fallback event decoders and the final ``Capture`` rebuild do.  This
    sequence defers the 5-figure object construction until one of those
    actually indexes or iterates it.
    """

    __slots__ = ("_message", "_frames")

    def __init__(self, message: dict) -> None:
        self._message = message
        self._frames: Optional[List[CanFrame]] = None

    def _force(self) -> List[CanFrame]:
        if self._frames is None:
            self._frames = frames_from_batch(self._message)
        return self._frames

    def __len__(self) -> int:
        return len(self._message["_packed"]) // FRAME_RECORD.size

    def __getitem__(self, index):
        return self._force()[index]

    def __iter__(self) -> Iterator[CanFrame]:
        return iter(self._force())


#: The packed record as a numpy structured dtype — field-for-field the
#: layout of :data:`FRAME_RECORD`, so a batch body *is* a record array.
if HAVE_NUMPY:
    _RECORD_DTYPE = np.dtype(
        [
            ("t", "<f8"),
            ("id", "<u4"),
            ("flags", "u1"),
            ("dlc", "u1"),
            ("data", "u1", (MAX_DATA_LENGTH,)),
        ]
    )
    assert _RECORD_DTYPE.itemsize == FRAME_RECORD.size


def arrays_from_batch(message: dict):
    """Decode one ``frame-batch`` straight into a columnar view.

    Validates the same invariants as :func:`frames_from_batch` (record
    stride, DLC bound, channel-table bounds) but reinterprets the packed
    body as a numpy record array instead of looping — no per-frame Python
    object is built.  The returned :class:`FrameArrays` carries a lazy
    ``frames`` sequence that materialises real :class:`CanFrame` objects
    only if a fallback path (noisy stream, capture rebuild) asks for
    them.  Without numpy this degrades to :func:`frames_from_batch`.
    """
    if not HAVE_NUMPY:
        return frames_from_batch(message)
    packed = message.get("_packed")
    if not isinstance(packed, (bytes, bytearray, memoryview)):
        raise ProtocolError("frame-batch message carries no packed records")
    channels = message.get("channels", [])
    if not isinstance(channels, list) or not all(
        isinstance(name, str) for name in channels
    ):
        raise ProtocolError("frame-batch channel table must be a list of names")
    try:
        records = np.frombuffer(packed, dtype=_RECORD_DTYPE)
    except ValueError as error:
        raise ProtocolError(f"bad frame-batch records: {error}") from None
    dlcs = records["dlc"].astype(np.int16)
    if records.size:
        if int(dlcs.max()) > MAX_DATA_LENGTH:
            raise ProtocolError(f"frame record declares DLC {int(dlcs.max())}")
        if int(records["flags"].max()) >> _CHANNEL_SHIFT > len(channels):
            raise ProtocolError("frame record names a channel outside the table")
    payloads = records["data"].copy()
    columns = np.arange(MAX_DATA_LENGTH, dtype=np.int16)
    payloads[columns[None, :] >= dlcs[:, None]] = 0  # pad bytes are not data
    return FrameArrays(
        can_ids=np.ascontiguousarray(records["id"]),
        timestamps=np.ascontiguousarray(records["t"]),
        dlcs=dlcs,
        payloads=payloads,
        frames=_LazyBatchFrames(message),
    )


def kline_byte_to_wire(byte: KLineByte) -> dict:
    return {"type": "kbyte", "t": byte.timestamp, "b": byte.value}


def kline_byte_from_wire(message: dict) -> KLineByte:
    try:
        value = int(message["b"])
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte value {value} out of range")
        return KLineByte(timestamp=float(message["t"]), value=value)
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad kbyte message: {error}") from None


def video_to_wire(frame: CapturedFrame) -> dict:
    return {
        "type": "video",
        "t": frame.timestamp,
        "screen": frame.screen_name,
        "regions": [
            {
                "text": r.text,
                "x": r.x,
                "y": r.y,
                "width": r.width,
                "height": r.height,
                "kind": r.kind,
                "icon": r.icon,
            }
            for r in frame.regions
        ],
    }


def video_from_wire(message: dict) -> CapturedFrame:
    try:
        return CapturedFrame(
            timestamp=float(message["t"]),
            screen_name=str(message["screen"]),
            regions=[TextRegion(**region) for region in message.get("regions", [])],
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad video message: {error}") from None


def click_to_wire(click: ClickRecord) -> dict:
    return {
        "type": "click",
        "t": click.timestamp,
        "x": click.x,
        "y": click.y,
        "label": click.label,
        "hit": click.hit,
    }


def click_from_wire(message: dict) -> ClickRecord:
    try:
        return ClickRecord(
            timestamp=float(message["t"]),
            x=message["x"],
            y=message["y"],
            label=str(message.get("label", "")),
            hit=bool(message.get("hit", True)),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad click message: {error}") from None


def segment_to_wire(segment: Segment) -> dict:
    return {
        "type": "segment",
        "kind": segment.kind,
        "ecu": segment.ecu,
        "label": segment.label,
        "t_start": segment.t_start,
        "t_end": segment.t_end,
    }


def segment_from_wire(message: dict) -> Segment:
    try:
        return Segment(
            kind=str(message["kind"]),
            ecu=str(message["ecu"]),
            label=str(message["label"]),
            t_start=float(message["t_start"]),
            t_end=float(message["t_end"]),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise ProtocolError(f"bad segment message: {error}") from None


def hello_message(
    capture: Capture, tenant: str = "anonymous", transport: str = "auto"
) -> dict:
    if transport not in HELLO_TRANSPORTS:
        raise ProtocolError(
            f"unknown transport {transport!r}; expected one of {HELLO_TRANSPORTS}"
        )
    return {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "tenant": tenant,
        "transport": transport,
        "meta": {
            "model": capture.model,
            "tool_name": capture.tool_name,
            "tool_error_rate": capture.tool_error_rate,
            "camera_offset_s": capture.camera_offset_s,
        },
    }


def capture_to_wire(
    capture: Capture,
    tenant: str = "anonymous",
    transport: str = "auto",
    kline_bytes: Optional[Iterable[KLineByte]] = None,
    batch_size: int = 0,
) -> Iterator[dict]:
    """The full message sequence that streams one recorded capture.

    Yields ``hello``, then every capture record *in timestamp order across
    record kinds* (the interleaving a live adapter would produce), then
    ``finish``.  For a K-Line capture pass the sniffed ``kline_bytes``;
    CAN frames and K-Line bytes may not be mixed in one session.

    With ``batch_size > 0`` consecutive CAN frames in that interleaving
    coalesce into binary ``frame-batch`` messages of at most that many
    frames; non-frame records (video, clicks) flush the pending run so
    the server observes the records in the identical order either way.
    ``batch_size=0`` keeps the v1 per-frame JSON wire format.
    """
    yield hello_message(capture, tenant=tenant, transport=transport)
    records: List[Tuple[Dict, Optional[CanFrame]]] = []
    for frame in capture.can_log:
        records.append((frame_to_wire(frame), frame))
    for byte in kline_bytes or ():
        records.append((kline_byte_to_wire(byte), None))
    for video in capture.video:
        records.append((video_to_wire(video), None))
    for click in capture.clicks:
        records.append((click_to_wire(click), None))
    records.sort(key=lambda r: r[0]["t"])
    if batch_size <= 0:
        for message, _frame in records:
            yield message
    else:
        run: List[CanFrame] = []
        for message, frame in records:
            if frame is not None:
                run.append(frame)
                if len(run) >= batch_size:
                    yield frame_batch_to_wire(run)
                    run = []
            else:
                if run:
                    yield frame_batch_to_wire(run)
                    run = []
                yield message
        if run:
            yield frame_batch_to_wire(run)
    for segment in capture.segments:
        yield segment_to_wire(segment)
    yield {"type": "finish"}
