"""CAN frame primitives.

A CAN 2.0 data frame carries an 11-bit (standard) or 29-bit (extended)
identifier and up to eight data bytes.  Lower identifier values win bus
arbitration, i.e. they have higher priority.  This module defines the frame
value object used throughout the simulator and the reverse-engineering
pipeline, together with a few helpers for rendering frames in the familiar
``candump`` style.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MAX_STANDARD_ID = 0x7FF
MAX_EXTENDED_ID = 0x1FFFFFFF
MAX_DATA_LENGTH = 8


class CanError(Exception):
    """Base class for errors raised by the CAN layer."""


class InvalidFrameError(CanError):
    """Raised when a frame violates the CAN 2.0 specification."""


@dataclass(frozen=True)
class CanFrame:
    """An immutable CAN 2.0 data frame.

    Attributes:
        can_id: Arbitration identifier.  Must fit in 11 bits unless
            ``extended`` is true, in which case 29 bits are allowed.
        data: Zero to eight payload bytes.
        timestamp: Seconds since the start of the capture (simulated time).
        extended: Whether the identifier uses the 29-bit extended format.
        channel: Name of the bus the frame was observed on.
    """

    can_id: int
    data: bytes
    timestamp: float = 0.0
    extended: bool = False
    channel: str = "can0"

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            raise InvalidFrameError(
                f"CAN id {self.can_id:#x} out of range for "
                f"{'extended' if self.extended else 'standard'} frame"
            )
        if len(self.data) > MAX_DATA_LENGTH:
            raise InvalidFrameError(
                f"CAN data field holds at most {MAX_DATA_LENGTH} bytes, "
                f"got {len(self.data)}"
            )
        # dataclass(frozen=True) forbids plain assignment; normalise via
        # object.__setattr__ so callers may pass bytearray or list.
        object.__setattr__(self, "data", bytes(self.data))

    @property
    def dlc(self) -> int:
        """Data length code (number of payload bytes)."""
        return len(self.data)

    def priority_beats(self, other: "CanFrame") -> bool:
        """Return True when this frame wins arbitration against ``other``."""
        return self.can_id < other.can_id

    def hex_data(self) -> str:
        """Payload as uppercase space-separated hex, e.g. ``"02 10 03"``."""
        return " ".join(f"{b:02X}" for b in self.data)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ident = f"{self.can_id:08X}" if self.extended else f"{self.can_id:03X}"
        return f"({self.timestamp:012.6f}) {self.channel} {ident}#{self.data.hex().upper()}"

    def with_timestamp(self, timestamp: float) -> "CanFrame":
        """Return a copy of this frame stamped at ``timestamp``."""
        return CanFrame(
            can_id=self.can_id,
            data=self.data,
            timestamp=timestamp,
            extended=self.extended,
            channel=self.channel,
        )


def frame_from_candump(line: str) -> CanFrame:
    """Parse one line in ``candump -L`` format.

    Format: ``(1617000000.123456) can0 7E0#0210030000000000``
    """
    line = line.strip()
    if not line:
        raise InvalidFrameError("empty candump line")
    try:
        ts_part, channel, id_data = line.split()
        timestamp = float(ts_part.strip("()"))
        id_text, __, data_text = id_data.partition("#")
        can_id = int(id_text, 16)
        data = bytes.fromhex(data_text) if data_text else b""
    except ValueError as exc:
        raise InvalidFrameError(f"malformed candump line: {line!r}") from exc
    extended = len(id_text) > 3
    return CanFrame(can_id, data, timestamp=timestamp, extended=extended, channel=channel)


def frame_to_candump(frame: CanFrame) -> str:
    """Render ``frame`` as one ``candump -L`` style line."""
    ident = f"{frame.can_id:08X}" if frame.extended else f"{frame.can_id:03X}"
    return f"({frame.timestamp:.6f}) {frame.channel} {ident}#{frame.data.hex().upper()}"
