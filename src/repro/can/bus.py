"""A software CAN bus.

The bus connects *nodes* (ECUs, diagnostic testers) and delivers every frame
to every node except the sender, after winning arbitration.  Arbitration is
modelled per delivery slot: when several nodes have frames pending, the frame
with the numerically lowest identifier transmits first, exactly as the
dominant/recessive bit arbitration of CAN 2.0 resolves contention.

*Taps* model the paper's OBD-port sniffer: a tap receives a timestamped copy
of every frame that crosses the bus without participating in arbitration.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from ..simtime import SimClock
from .frame import CanFrame
from .noise import FaultInjector, NoiseProfile

FrameHandler = Callable[[CanFrame], None]

# Nominal time to serialise one classic CAN 2.0 frame at 500 kbit/s.  A full
# 8-byte frame is roughly 111-135 bits after stuffing; 0.25 ms is a good
# single-figure approximation and keeps timestamps realistic.
FRAME_TIME_S = 0.00025


class BusNode:
    """A device attached to the bus.

    Subclasses (or users of :meth:`SimulatedCanBus.attach`) receive frames
    through the registered handler and send through the bus reference.
    """

    def __init__(self, name: str, handler: Optional[FrameHandler] = None) -> None:
        self.name = name
        self._handler = handler
        self.bus: Optional["SimulatedCanBus"] = None
        self.received: List[CanFrame] = []

    def deliver(self, frame: CanFrame) -> None:
        """Called by the bus when a frame addressed to the bus arrives."""
        self.received.append(frame)
        if self._handler is not None:
            self._handler(frame)

    def send(self, frame: CanFrame) -> CanFrame:
        """Transmit ``frame`` on the attached bus."""
        if self.bus is None:
            raise RuntimeError(f"node {self.name!r} is not attached to a bus")
        return self.bus.transmit(self.name, frame)


class SimulatedCanBus:
    """Broadcast medium with priority arbitration and sniffer taps.

    Two usage styles are supported:

    * *Immediate*: :meth:`transmit` delivers the frame at the current
      simulated time plus one frame time.  This is what the diagnostic
      request/response flows use.
    * *Queued*: :meth:`enqueue` stages frames from several nodes, then
      :meth:`arbitrate` drains them in priority order.  This exists so tests
      can assert the arbitration rule directly.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        name: str = "can0",
        noise: Optional[NoiseProfile] = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.name = name
        self._nodes: Dict[str, BusNode] = {}
        self._taps: List[FrameHandler] = []
        self._pending: List[tuple] = []  # heap of (can_id, seq, sender, frame)
        self._seq = 0
        self.frames_transmitted = 0
        #: Fault injection corrupts only the *taps'* view (the sniffer):
        #: nodes always receive faithful frames, modelling a lossy passive
        #: tap on a healthy bus.  ``None`` / null profile = clean path.
        self.noise = noise if noise is not None and not noise.is_null else None
        self._injector = FaultInjector(self.noise) if self.noise else None

    # ------------------------------------------------------------------ nodes

    def attach(self, node: BusNode) -> BusNode:
        """Attach ``node``; its name must be unique on this bus."""
        if node.name in self._nodes:
            raise ValueError(f"duplicate node name {node.name!r} on bus {self.name}")
        node.bus = self
        self._nodes[node.name] = node
        return node

    def detach(self, name: str) -> None:
        node = self._nodes.pop(name, None)
        if node is not None:
            node.bus = None

    def node(self, name: str) -> BusNode:
        return self._nodes[name]

    # ------------------------------------------------------------------- taps

    def add_tap(self, handler: FrameHandler) -> None:
        """Register a sniffer that sees every transmitted frame."""
        self._taps.append(handler)

    def flush_noise(self) -> int:
        """Drain any frames held in the fault injector's reorder window.

        Only relevant when the bus was built with a reordering
        :class:`NoiseProfile`; call at end of capture so the sniffer does
        not silently lose the buffered tail.  Returns the number of frames
        delivered to taps.
        """
        if self._injector is None:
            return 0
        tail = self._injector.flush()
        for noisy in tail:
            for tap in self._taps:
                tap(noisy)
        return len(tail)

    @property
    def noise_counts(self):
        """Injection accounting (:class:`~repro.can.noise.FaultCounts`)."""
        return self._injector.counts if self._injector is not None else None

    # ------------------------------------------------------------- immediate

    def transmit(self, sender: str, frame: CanFrame) -> CanFrame:
        """Broadcast ``frame`` from ``sender`` immediately.

        The frame is stamped with the simulated time after one frame-time of
        bus occupancy, delivered to every other node, then to every tap.
        Returns the stamped frame.
        """
        self.clock.advance(FRAME_TIME_S)
        stamped = frame.with_timestamp(self.clock.now())
        self.frames_transmitted += 1
        # Taps observe the wire before receivers react: a receiver's handler
        # may transmit a response *within* this call (nested delivery), and
        # the sniffer must still record frames in wire order.
        if self._injector is None:
            for tap in self._taps:
                tap(stamped)
        else:
            for noisy in self._injector.feed(stamped):
                for tap in self._taps:
                    tap(noisy)
        for name, node in self._nodes.items():
            if name != sender:
                node.deliver(stamped)
        return stamped

    # ---------------------------------------------------------------- queued

    def enqueue(self, sender: str, frame: CanFrame) -> None:
        """Stage a frame for arbitration without transmitting it yet."""
        heapq.heappush(self._pending, (frame.can_id, self._seq, sender, frame))
        self._seq += 1

    def arbitrate(self) -> List[CanFrame]:
        """Drain staged frames in arbitration (priority) order.

        Frames with lower CAN ids transmit first; ties break by enqueue
        order, mirroring a node's FIFO transmit mailbox.
        """
        sent: List[CanFrame] = []
        while self._pending:
            __, __, sender, frame = heapq.heappop(self._pending)
            sent.append(self.transmit(sender, frame))
        return sent
