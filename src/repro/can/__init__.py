"""CAN bus substrate: frames, a simulated broadcast bus, and capture logs."""

from .frame import (
    MAX_DATA_LENGTH,
    MAX_EXTENDED_ID,
    MAX_STANDARD_ID,
    CanError,
    CanFrame,
    InvalidFrameError,
    frame_from_candump,
    frame_to_candump,
)
from .bus import FRAME_TIME_S, BusNode, SimulatedCanBus
from .log import CanLog, Sniffer
from .noise import FOREIGN_IDS, FaultCounts, FaultInjector, NoiseProfile, apply_noise

__all__ = [
    "MAX_DATA_LENGTH",
    "MAX_EXTENDED_ID",
    "MAX_STANDARD_ID",
    "CanError",
    "CanFrame",
    "InvalidFrameError",
    "frame_from_candump",
    "frame_to_candump",
    "FRAME_TIME_S",
    "BusNode",
    "SimulatedCanBus",
    "CanLog",
    "Sniffer",
    "FOREIGN_IDS",
    "FaultCounts",
    "FaultInjector",
    "NoiseProfile",
    "apply_noise",
]
