"""Deterministic bus fault injection: the sniffer's imperfect view.

Real OBD-port captures are lossy: the sniffer drops frames under load,
cheap interfaces duplicate receive interrupts, frames queued in the same
arbitration window come out of the driver reordered, electrical noise
flips payload bits, captures stop mid-message, and the diagnostic session
shares the wire with unrelated broadcast traffic.  The reverse-engineering
pipeline must degrade gracefully under all of it.

This module models that degradation as a seeded, reproducible transform:

* :class:`NoiseProfile` — the fault taxonomy, one probability per fault
  class plus a seed.  The same profile applied to the same frames always
  produces the byte-identical noisy capture.
* :class:`FaultInjector` — the stateful stream transform.  It can run
  offline over a recorded capture (:func:`apply_noise`) or inline on a
  :class:`~repro.can.bus.SimulatedCanBus` tap, where it corrupts only the
  *sniffer's* view: nodes keep receiving faithful frames, exactly like a
  lossy passive tap on a healthy bus.

Faults are applied per frame in a fixed order (drop → truncate → bit
error → duplicate → reorder → foreign interleave) from a single
``random.Random(seed)`` stream, so any two runs with the same profile and
input agree byte for byte — the property the determinism tests assert.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, List, Optional, Tuple

from .frame import CanFrame

#: CAN ids used for interleaved foreign traffic: normal broadcast ids
#: (powertrain/chassis style) that never collide with diagnostic request or
#: response ids in the simulated fleet.
FOREIGN_IDS: Tuple[int, ...] = (0x0A8, 0x1D0, 0x3B4, 0x510)


@dataclass(frozen=True)
class NoiseProfile:
    """Seeded fault-injection rates for one capture.

    All probabilities are per captured frame.  The null profile (all rates
    zero, ``capture_fraction`` 1.0) is the default everywhere: fault
    injection is strictly opt-in and a null profile leaves a capture
    byte-identical to the clean one.
    """

    seed: int = 0
    #: Probability the sniffer misses a frame entirely.
    p_drop: float = 0.0
    #: Probability a frame appears twice in the capture.
    p_duplicate: float = 0.0
    #: Probability a frame swaps position with a neighbour inside the
    #: reorder window (driver queue reordering within an arbitration slot).
    p_reorder: float = 0.0
    #: Neighbourhood (in frames) inside which reordering may occur.
    reorder_window: int = 3
    #: Probability one random payload bit flips.
    p_bit_error: float = 0.0
    #: Probability the data field is cut short (truncated DMA transfer).
    p_truncate: float = 0.0
    #: Probability an unrelated broadcast frame is interleaved before the
    #: current frame.
    p_foreign: float = 0.0
    foreign_ids: Tuple[int, ...] = FOREIGN_IDS
    #: Keep only this leading fraction of the capture (1.0 = everything);
    #: models a capture that stops mid-session.
    capture_fraction: float = 1.0

    #: Rates of :meth:`default`, kept as a class attribute so callers and
    #: docs agree on what "the default noise profile" means.
    DEFAULT_RATES = {"p_drop": 0.02, "p_duplicate": 0.01, "p_bit_error": 0.005}

    def __post_init__(self) -> None:
        for name in (
            "p_drop",
            "p_duplicate",
            "p_reorder",
            "p_bit_error",
            "p_truncate",
            "p_foreign",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if not 0.0 < self.capture_fraction <= 1.0:
            raise ValueError(
                f"capture_fraction={self.capture_fraction} outside (0, 1]"
            )
        if self.reorder_window < 1:
            raise ValueError(f"reorder_window must be >= 1, got {self.reorder_window}")

    # ------------------------------------------------------------- factories

    @classmethod
    def default(cls, seed: int = 0) -> "NoiseProfile":
        """The paper-motivated default: 2% drop, 1% dup, 0.5% bit errors."""
        return cls(seed=seed, **cls.DEFAULT_RATES)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> Optional["NoiseProfile"]:
        """Parse a CLI spec: ``off``, ``default``, or ``k=v[,k=v...]``.

        Recognised keys: ``drop``, ``dup``, ``reorder``, ``window``,
        ``bit``, ``truncate``, ``foreign``, ``fraction``, ``seed``.
        Example: ``drop=0.02,dup=0.01,bit=0.005,seed=7``.
        """
        spec = spec.strip().lower()
        if spec in ("", "off", "none", "0"):
            return None
        if spec == "default":
            return cls.default(seed=seed)
        aliases = {
            "drop": "p_drop",
            "dup": "p_duplicate",
            "duplicate": "p_duplicate",
            "reorder": "p_reorder",
            "window": "reorder_window",
            "bit": "p_bit_error",
            "truncate": "p_truncate",
            "foreign": "p_foreign",
            "fraction": "capture_fraction",
        }
        kwargs: Dict[str, object] = {"seed": seed}
        for item in spec.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"noise spec item {item!r} is not key=value")
            if key == "seed":
                kwargs["seed"] = int(value)
            elif key == "window":
                kwargs["reorder_window"] = int(value)
            elif key in aliases:
                kwargs[aliases[key]] = float(value)
            else:
                raise ValueError(
                    f"unknown noise spec key {key!r}; expected one of "
                    f"{sorted(aliases) + ['seed']}"
                )
        return cls(**kwargs)  # type: ignore[arg-type]

    # -------------------------------------------------------------- queries

    @property
    def is_null(self) -> bool:
        """True when this profile cannot alter a capture."""
        return (
            self.p_drop == 0.0
            and self.p_duplicate == 0.0
            and self.p_reorder == 0.0
            and self.p_bit_error == 0.0
            and self.p_truncate == 0.0
            and self.p_foreign == 0.0
            and self.capture_fraction == 1.0
        )

    def scaled(self, factor: float) -> "NoiseProfile":
        """Scale every fault rate by ``factor`` (rates capped at 1.0).

        Used by the degradation benchmark to sweep a recovery-vs-noise
        curve off a single base profile.
        """
        if factor < 0:
            raise ValueError(f"noise scale factor must be >= 0, got {factor}")

        def cap(p: float) -> float:
            return min(1.0, p * factor)

        return replace(
            self,
            p_drop=cap(self.p_drop),
            p_duplicate=cap(self.p_duplicate),
            p_reorder=cap(self.p_reorder),
            p_bit_error=cap(self.p_bit_error),
            p_truncate=cap(self.p_truncate),
            p_foreign=cap(self.p_foreign),
        )

    def with_seed(self, seed: int) -> "NoiseProfile":
        return replace(self, seed=seed)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "p_drop": self.p_drop,
            "p_duplicate": self.p_duplicate,
            "p_reorder": self.p_reorder,
            "reorder_window": self.reorder_window,
            "p_bit_error": self.p_bit_error,
            "p_truncate": self.p_truncate,
            "p_foreign": self.p_foreign,
            "foreign_ids": list(self.foreign_ids),
            "capture_fraction": self.capture_fraction,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NoiseProfile":
        payload = dict(payload)
        valid = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - valid)
        if unknown:
            # A typo'd key silently ignored here would make an attack or
            # noise profile weaker than its author believes; fail loudly.
            raise ValueError(
                f"unknown noise profile key {unknown[0]!r}; "
                f"valid keys: {sorted(valid)}"
            )
        payload["foreign_ids"] = tuple(payload.get("foreign_ids", FOREIGN_IDS))
        return cls(**payload)


@dataclass
class FaultCounts:
    """What the injector actually did to one capture (accounting)."""

    frames_in: int = 0
    frames_out: int = 0
    dropped: int = 0
    duplicated: int = 0
    reordered: int = 0
    bit_errors: int = 0
    truncated: int = 0
    foreign: int = 0

    def to_dict(self) -> dict:
        return {
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "bit_errors": self.bit_errors,
            "truncated": self.truncated,
            "foreign": self.foreign,
        }


class FaultInjector:
    """Stateful, seeded frame-stream corrupter.

    Feed clean frames in capture order; collect the noisy stream from the
    return values plus a final :meth:`flush` (the reorder stage buffers up
    to ``reorder_window`` frames).  Emitted frames always carry
    non-decreasing timestamps — reordering swaps frame *contents* across
    the window's timestamp slots, the way a timestamping capture card
    presents driver-queue reordering — so noisy streams still satisfy
    :class:`~repro.can.log.CanLog`'s monotonicity invariant.
    """

    def __init__(self, profile: NoiseProfile) -> None:
        self.profile = profile
        self.rng = random.Random(profile.seed)
        self.counts = FaultCounts()
        #: Reorder window: ``(timestamp_slot, frame)`` pairs.  Swaps exchange
        #: frames between slots while the slot timestamps keep arrival
        #: order, so emission is always monotonic in time.
        self._window: List[Tuple[float, CanFrame]] = []

    # ------------------------------------------------------------ per frame

    def feed(self, frame: CanFrame) -> List[CanFrame]:
        """Apply per-frame faults; return zero or more frames to emit now."""
        profile = self.profile
        rng = self.rng
        self.counts.frames_in += 1

        staged: List[CanFrame] = []
        if profile.p_foreign and rng.random() < profile.p_foreign:
            staged.append(self._foreign_frame(frame.timestamp, frame.channel))
            self.counts.foreign += 1

        if profile.p_drop and rng.random() < profile.p_drop:
            self.counts.dropped += 1
            return self._stage(staged)

        if profile.p_truncate and rng.random() < profile.p_truncate and frame.data:
            keep = rng.randrange(0, len(frame.data))
            frame = replace_data(frame, frame.data[:keep])
            self.counts.truncated += 1

        if profile.p_bit_error and rng.random() < profile.p_bit_error and frame.data:
            index = rng.randrange(len(frame.data))
            bit = 1 << rng.randrange(8)
            mutated = bytearray(frame.data)
            mutated[index] ^= bit
            frame = replace_data(frame, bytes(mutated))
            self.counts.bit_errors += 1

        staged.append(frame)
        if profile.p_duplicate and rng.random() < profile.p_duplicate:
            staged.append(frame)
            self.counts.duplicated += 1
        return self._stage(staged)

    def flush(self) -> List[CanFrame]:
        """Drain the reorder window at end of capture."""
        emitted = [self._emit_slot(slot) for slot in self._window]
        self._window = []
        return emitted

    # -------------------------------------------------------------- helpers

    def _stage(self, frames: List[CanFrame]) -> List[CanFrame]:
        """Push frames through the bounded reorder window."""
        profile = self.profile
        if not profile.p_reorder:
            self.counts.frames_out += len(frames)
            return frames
        self._window.extend((frame.timestamp, frame) for frame in frames)
        emitted: List[CanFrame] = []
        while len(self._window) > profile.reorder_window:
            if len(self._window) >= 2 and self.rng.random() < profile.p_reorder:
                swap = self.rng.randrange(
                    1, min(len(self._window), profile.reorder_window + 1)
                )
                stamp_a, frame_a = self._window[0]
                stamp_b, frame_b = self._window[swap]
                self._window[0] = (stamp_a, frame_b)
                self._window[swap] = (stamp_b, frame_a)
                self.counts.reordered += 1
            emitted.append(self._emit_slot(self._window.pop(0)))
        self.counts.frames_out += len(emitted)
        return emitted

    @staticmethod
    def _emit_slot(slot: Tuple[float, CanFrame]) -> CanFrame:
        stamp, frame = slot
        return frame if frame.timestamp == stamp else frame.with_timestamp(stamp)

    def _foreign_frame(self, timestamp: float, channel: str) -> CanFrame:
        can_id = self.rng.choice(self.profile.foreign_ids)
        data = bytes(self.rng.randrange(256) for __ in range(8))
        return CanFrame(can_id, data, timestamp=timestamp, channel=channel)


def replace_data(frame: CanFrame, data: bytes) -> CanFrame:
    """Copy ``frame`` with a different data field (frames are frozen)."""
    return CanFrame(
        can_id=frame.can_id,
        data=data,
        timestamp=frame.timestamp,
        extended=frame.extended,
        channel=frame.channel,
    )


def apply_noise(
    frames: Iterable[CanFrame],
    profile: Optional[NoiseProfile],
    counts: Optional[FaultCounts] = None,
) -> List[CanFrame]:
    """Apply ``profile`` to a recorded capture, offline.

    ``None`` or a null profile is the identity (the clean frames come back
    in a new list, untouched), so zero-noise pipelines stay byte-identical.
    Pass a :class:`FaultCounts` to receive the injection accounting.
    """
    frames = list(frames)
    if profile is None or profile.is_null:
        return frames
    if profile.capture_fraction < 1.0:
        frames = frames[: max(1, int(len(frames) * profile.capture_fraction))]
    injector = FaultInjector(profile)
    noisy: List[CanFrame] = []
    for frame in frames:
        noisy.extend(injector.feed(frame))
    noisy.extend(injector.flush())
    if counts is not None:
        injector.counts.frames_out = len(noisy)
        counts.__dict__.update(injector.counts.__dict__)
    return noisy
