"""CAN capture logs.

The sniffer attached to the OBD port produces a :class:`CanLog` — an ordered
list of timestamped frames.  Logs can be saved to and loaded from the
``candump -L`` text format so captures survive between pipeline stages (and
so users can feed real candump captures into the reverse-engineering
pipeline).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Union

from .frame import CanFrame, frame_from_candump, frame_to_candump


class CanLog:
    """An append-only, time-ordered sequence of captured CAN frames."""

    def __init__(self, frames: Optional[Iterable[CanFrame]] = None) -> None:
        self._frames: List[CanFrame] = list(frames) if frames else []

    # --------------------------------------------------------------- mutation

    def append(self, frame: CanFrame) -> None:
        """Record one frame.  Frames must arrive in non-decreasing time."""
        if self._frames and frame.timestamp < self._frames[-1].timestamp:
            raise ValueError(
                f"frame at t={frame.timestamp} arrived after t="
                f"{self._frames[-1].timestamp}; captures must be ordered"
            )
        self._frames.append(frame)

    def extend(self, frames: Iterable[CanFrame]) -> None:
        for frame in frames:
            self.append(frame)

    # ---------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[CanFrame]:
        return iter(self._frames)

    def __getitem__(self, index):
        return self._frames[index]

    @property
    def frames(self) -> List[CanFrame]:
        """The captured frames (shared list; treat as read-only)."""
        return self._frames

    def between(self, start: float, end: float) -> "CanLog":
        """Frames with ``start <= timestamp < end`` (a capture split)."""
        return CanLog(f for f in self._frames if start <= f.timestamp < end)

    def with_id(self, can_id: int) -> "CanLog":
        """Frames carrying the given arbitration id."""
        return CanLog(f for f in self._frames if f.can_id == can_id)

    def ids(self) -> List[int]:
        """Distinct CAN ids in first-seen order."""
        seen: List[int] = []
        known = set()
        for frame in self._frames:
            if frame.can_id not in known:
                known.add(frame.can_id)
                seen.append(frame.can_id)
        return seen

    # -------------------------------------------------------------------- I/O

    def save(self, path: Union[str, Path]) -> None:
        """Write the log in ``candump -L`` format."""
        text = "\n".join(frame_to_candump(f) for f in self._frames)
        Path(path).write_text(text + ("\n" if text else ""))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CanLog":
        """Read a log previously written by :meth:`save` (or candump)."""
        log = cls()
        for line in Path(path).read_text().splitlines():
            if line.strip():
                log.append(frame_from_candump(line))
        return log


class Sniffer:
    """An OBD-port sniffer: a bus tap that accumulates a :class:`CanLog`."""

    def __init__(self) -> None:
        self.log = CanLog()

    def __call__(self, frame: CanFrame) -> None:
        self.log.append(frame)

    def attach_to(self, bus) -> "Sniffer":
        """Register on ``bus`` and return self for chaining."""
        bus.add_tap(self)
        return self
