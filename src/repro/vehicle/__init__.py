"""Virtual-vehicle substrate: ECUs, signals, the bus wiring and the fleet."""

from .signals import (
    ConstantSignal,
    RampSignal,
    RandomWalkSignal,
    SignalSource,
    SineSignal,
    ToggleSignal,
)
from .ecu import (
    Actuator,
    ActuatorAction,
    ActuatorState,
    KwpDataGroup,
    KwpMeasurement,
    Routine,
    SecurityAccessPolicy,
    SimulatedEcu,
    UdsDataPoint,
)
from .vehicle import EcuBinding, TESTER_ADDRESS, TransportKind, Vehicle
from .obd_sim import (
    OBD_FUNCTIONAL_ID,
    OBD_PHYSICAL_REQUEST_ID,
    OBD_RESPONSE_ID,
    ObdVehicleSimulator,
)
from .broadcast import (
    BroadcastEmitter,
    BroadcastFrameSpec,
    SignalSpec,
    crc8,
    default_broadcast_vehicle,
)
from .gateway import Gateway, GatewayVehicle
from .fleet import (
    CAR_SPECS,
    CarSpec,
    build_car,
    build_fleet,
    expected_ecr_counts,
    expected_esv_counts,
    ground_truth_formulas,
)

__all__ = [
    "ConstantSignal",
    "RampSignal",
    "RandomWalkSignal",
    "SignalSource",
    "SineSignal",
    "ToggleSignal",
    "Actuator",
    "ActuatorAction",
    "ActuatorState",
    "KwpDataGroup",
    "KwpMeasurement",
    "Routine",
    "SecurityAccessPolicy",
    "SimulatedEcu",
    "UdsDataPoint",
    "EcuBinding",
    "TESTER_ADDRESS",
    "TransportKind",
    "Vehicle",
    "OBD_FUNCTIONAL_ID",
    "OBD_PHYSICAL_REQUEST_ID",
    "OBD_RESPONSE_ID",
    "ObdVehicleSimulator",
    "BroadcastEmitter",
    "BroadcastFrameSpec",
    "SignalSpec",
    "crc8",
    "default_broadcast_vehicle",
    "Gateway",
    "GatewayVehicle",
    "CAR_SPECS",
    "CarSpec",
    "build_car",
    "build_fleet",
    "expected_ecr_counts",
    "expected_esv_counts",
    "ground_truth_formulas",
]
