"""Simulated ECUs.

An ECU owns a set of *data points* (sensor values readable over UDS or
KWP 2000), a set of *actuators* (components controllable via IO-control
services), and a request handler implementing the diagnostic services of
§2.3.  The manufacturer-proprietary parts — which DID/local id maps to which
quantity, and which formula converts raw bytes to physical values — live in
the data-point definitions and are *not* exposed over the wire; only the
diagnostic-tool simulator is given the same tables, mirroring reality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from ..diagnostics import kwp2000, uds
from ..diagnostics.messages import Nrc, negative_response
from ..formulas import EnumFormula, Formula
from .signals import SignalSource


@dataclass
class UdsDataPoint:
    """One readable quantity behind a UDS DID.

    ``signals`` holds one generator per raw variable.  Single-variable
    points may span ``bytes_per_var`` bytes (a 16-bit X); two-variable
    points encode one byte per variable (the paper's Car R engine speed,
    ``Y = 64.1*X0 + 0.241*X1``).
    """

    did: int
    name: str
    signals: List[SignalSource]
    formula: Formula
    bytes_per_var: int = 1
    unit: str = ""
    on_dashboard: bool = False

    def __post_init__(self) -> None:
        if self.formula.arity != len(self.signals):
            raise ValueError(
                f"{self.name}: formula arity {self.formula.arity} != "
                f"{len(self.signals)} signals"
            )
        if len(self.signals) > 1 and self.bytes_per_var != 1:
            raise ValueError("multi-variable points must use one byte per variable")

    @property
    def is_enum(self) -> bool:
        return isinstance(self.formula, EnumFormula)

    def raw(self, t: float) -> Tuple[int, ...]:
        return tuple(signal.sample(t) for signal in self.signals)

    def encode(self, t: float) -> bytes:
        out = bytearray()
        for value in self.raw(t):
            out += int(value).to_bytes(self.bytes_per_var, "big")
        return bytes(out)

    def physical(self, t: float) -> float:
        """Ground-truth displayed value at time ``t`` (simulation only)."""
        return self.formula(self.raw(t))


@dataclass
class KwpMeasurement:
    """One slot of a KWP 2000 measuring block (3-byte ESV record)."""

    name: str
    formula_type: int
    x0: SignalSource
    x1: SignalSource
    unit: str = ""
    on_dashboard: bool = False

    @property
    def formula(self) -> Formula:
        return kwp2000.formula_for_type(self.formula_type)

    @property
    def is_enum(self) -> bool:
        return self.formula_type in kwp2000.ENUM_FORMULA_TYPES

    def raw(self, t: float) -> Tuple[int, int]:
        return (self.x0.sample(t), self.x1.sample(t))

    def physical(self, t: float) -> float:
        return self.formula(self.raw(t))


@dataclass
class KwpDataGroup:
    """A KWP 2000 measuring block: a local identifier and its slots."""

    local_id: int
    name: str
    measurements: List[KwpMeasurement] = field(default_factory=list)


class ActuatorState(Enum):
    """IO-control state machine (ISO 14229 Annex E semantics)."""

    IDLE = "idle"
    FROZEN = "frozen"
    ADJUSTING = "adjusting"


@dataclass
class ActuatorAction:
    """One observed actuation, for attack-replay verification (Tab. 13)."""

    timestamp: float
    action: str
    control_state: bytes


class Actuator:
    """A controllable component with the freeze/adjust/return FSM.

    The paper's §4.5 finding: controlling a component takes exactly three
    requests — freeze current state (0x02), short-term adjustment (0x03,
    with control-state bytes), return control to ECU (0x00).  Sending an
    adjustment without first freezing is rejected with
    ``conditionsNotCorrect``, which is what forces the tool (and any
    attacker replaying messages) to follow the full procedure.
    """

    def __init__(self, identifier: int, name: str, state_length: int = 4) -> None:
        self.identifier = identifier
        self.name = name
        self.state_length = state_length
        self.state = ActuatorState.IDLE
        self.actions: List[ActuatorAction] = []

    def handle(self, io_parameter: int, control_state: bytes, t: float) -> Optional[Nrc]:
        """Apply one IO-control request; return an NRC on failure."""
        param = io_parameter
        if param == uds.IoControlParameter.FREEZE_CURRENT_STATE:
            self.state = ActuatorState.FROZEN
            self.actions.append(ActuatorAction(t, "freeze", bytes(control_state)))
            return None
        if param == uds.IoControlParameter.SHORT_TERM_ADJUSTMENT:
            if self.state == ActuatorState.IDLE:
                return Nrc.CONDITIONS_NOT_CORRECT
            self.state = ActuatorState.ADJUSTING
            self.actions.append(ActuatorAction(t, "adjust", bytes(control_state)))
            return None
        if param == uds.IoControlParameter.RETURN_CONTROL_TO_ECU:
            self.state = ActuatorState.IDLE
            self.actions.append(ActuatorAction(t, "return", bytes(control_state)))
            return None
        if param == uds.IoControlParameter.RESET_TO_DEFAULT:
            self.state = ActuatorState.IDLE
            self.actions.append(ActuatorAction(t, "reset", bytes(control_state)))
            return None
        return Nrc.REQUEST_OUT_OF_RANGE

    def adjustments(self) -> List[ActuatorAction]:
        return [a for a in self.actions if a.action == "adjust"]


@dataclass
class Routine:
    """A routine controllable via UDS RoutineControl (0x31).

    BMW-style actuation in Tab. 13 uses routine control rather than IO
    control (e.g. ``31 01 03`` = start routine 0x03xx).  Starting a routine
    records an action just like an actuator adjustment.
    """

    routine_id: int
    name: str
    runs: List[ActuatorAction] = field(default_factory=list)


ROUTINE_CONTROL_SID = 0x31
ROUTINE_START = 0x01
ROUTINE_STOP = 0x02
ROUTINE_RESULTS = 0x03

KWP_READ_ECU_IDENTIFICATION = 0x1A
#: Standard UDS identification DIDs answered from ``identification``.
UDS_IDENT_DIDS = (0xF190, 0xF189)

UDS_WRITE_DATA_BY_IDENTIFIER = 0x2E
#: The coding word DID (VAG-style "long coding" lives at a fixed DID).
CODING_DID = 0x0600


class SecurityAccessPolicy:
    """Seed/key security access with a simple XOR-mask key function."""

    def __init__(self, mask: int = 0x5A5A, required: bool = False) -> None:
        self.mask = mask
        self.required = required
        self.unlocked = not required
        self._last_seed: Optional[int] = None

    def request_seed(self, rng_value: int) -> int:
        self._last_seed = rng_value & 0xFFFF
        return self._last_seed

    def expected_key(self, seed: int) -> int:
        return (seed ^ self.mask) & 0xFFFF

    def try_unlock(self, key: int) -> bool:
        if self._last_seed is None:
            return False
        if key == self.expected_key(self._last_seed):
            self.unlocked = True
        return self.unlocked


class SimulatedEcu:
    """A diagnostic-capable ECU.

    Parameters:
        name: ECU name as shown in diagnostic-tool menus (e.g. "Engine").
        clock: shared :class:`~repro.simtime.SimClock`.
        ecr_service: which IO-control service this ECU implements —
            ``0x2F`` (UDS, 2-byte DID) or ``0x30`` (KWP-style, 1-byte
            local id); Tab. 11 shows both occur on UDS vehicles.
        security: optional seed/key gate protecting IO control.
    """

    def __init__(
        self,
        name: str,
        clock,
        ecr_service: int = uds.UdsService.IO_CONTROL_BY_IDENTIFIER,
        security: Optional[SecurityAccessPolicy] = None,
        slow_services: Optional[set] = None,
    ) -> None:
        self.name = name
        self.clock = clock
        self.ecr_service = ecr_service
        #: services that first answer NRC 0x78 (responsePending) and only
        #: then the real response — common on slow routines/IO control.
        self.slow_services = slow_services or set()
        self.pending_responses_sent = 0
        self.security = security or SecurityAccessPolicy(required=False)
        self.uds_data_points: Dict[int, UdsDataPoint] = {}
        self.kwp_groups: Dict[int, KwpDataGroup] = {}
        self.actuators: Dict[int, Actuator] = {}
        self.routines: Dict[int, Routine] = {}
        self.dtcs: List = []  # stored trouble codes (diagnostics.dtc.Dtc)
        self.dtc_clear_count = 0
        self.coding = bytes([0x00, 0x11, 0x77, 0x01])  # adaptive config word
        # Legislated OBD-II support (SAE J1979 mode 01): pid -> signal list.
        # Real engines answer these beside the proprietary services; the
        # paper's §9.4 alignment anchors on them.
        self.obd_pids: Dict[int, List[SignalSource]] = {}
        self.session = uds.SessionType.DEFAULT
        self.reset_count = 0
        self._seed_counter = 0x1234
        # Identification data returned by readEcuIdentification (KWP 0x1A)
        # and the standard UDS identification DIDs; real tools read these on
        # connect, producing the long multi-frame transfers Tab. 9 counts.
        self.identification = (
            f"{name.upper().replace(' ', '-')}-8E0907115H HW 04 SW 0040 "
            f"Coding 0011771 WSC 06325"
        )

    # -------------------------------------------------------------- configure

    def add_data_point(self, point: UdsDataPoint) -> None:
        if point.did in self.uds_data_points:
            raise ValueError(f"duplicate DID {point.did:#06x} on {self.name}")
        self.uds_data_points[point.did] = point

    def add_kwp_group(self, group: KwpDataGroup) -> None:
        if group.local_id in self.kwp_groups:
            raise ValueError(f"duplicate local id {group.local_id:#04x} on {self.name}")
        self.kwp_groups[group.local_id] = group

    def add_routine(self, routine: Routine) -> None:
        if routine.routine_id in self.routines:
            raise ValueError(
                f"duplicate routine id {routine.routine_id:#x} on {self.name}"
            )
        self.routines[routine.routine_id] = routine

    def add_actuator(self, actuator: Actuator) -> None:
        if actuator.identifier in self.actuators:
            raise ValueError(
                f"duplicate actuator id {actuator.identifier:#x} on {self.name}"
            )
        self.actuators[actuator.identifier] = actuator

    # ---------------------------------------------------------------- dispatch

    def handle_request(self, payload: bytes) -> Optional[bytes]:
        """Process one assembled request payload; return the response payload.

        Returns ``None`` only for suppressed-response TesterPresent.
        """
        if not payload:
            return negative_response(0x00, Nrc.GENERAL_REJECT)
        sid = payload[0]
        t = self.clock.now()
        if sid == uds.UdsService.DIAGNOSTIC_SESSION_CONTROL:
            return self._handle_session_control(payload)
        if sid == uds.UdsService.TESTER_PRESENT:
            if len(payload) >= 2 and payload[1] & 0x80:
                return None
            return bytes([sid + 0x40, 0x00])
        if sid == uds.UdsService.ECU_RESET:
            self.reset_count += 1
            self.session = uds.SessionType.DEFAULT
            return bytes([sid + 0x40, payload[1] if len(payload) > 1 else 0x01])
        if sid == uds.UdsService.SECURITY_ACCESS:
            return self._handle_security_access(payload)
        if sid == uds.UdsService.READ_DATA_BY_IDENTIFIER:
            return self._handle_read_dids(payload, t)
        if sid == KWP_READ_ECU_IDENTIFICATION:
            option = payload[1] if len(payload) > 1 else 0x9B
            return bytes([sid + 0x40, option]) + self.identification.encode("ascii")
        if sid == kwp2000.KwpService.READ_DATA_BY_LOCAL_IDENTIFIER:
            return self._handle_read_local(payload, t)
        if sid in (
            uds.UdsService.IO_CONTROL_BY_IDENTIFIER,
            kwp2000.KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER,
        ):
            return self._handle_io_control(payload, t)
        if sid == ROUTINE_CONTROL_SID:
            return self._handle_routine_control(payload, t)
        if sid in (0x19, 0x18, 0x14):
            return self._handle_dtc_service(payload)
        if sid == 0x01 and len(payload) == 2 and self.obd_pids:
            return self._handle_obd_mode01(payload[1], t)
        if sid == UDS_WRITE_DATA_BY_IDENTIFIER:
            return self._handle_write_did(payload)
        return negative_response(sid, Nrc.SERVICE_NOT_SUPPORTED)

    def _handle_write_did(self, payload: bytes) -> bytes:
        """WriteDataByIdentifier — ECU (re)coding (§9.1's "ECU coding")."""
        if len(payload) < 4:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        did = int.from_bytes(payload[1:3], "big")
        if did != CODING_DID:
            return negative_response(payload[0], Nrc.REQUEST_OUT_OF_RANGE)
        if self.session != uds.SessionType.EXTENDED:
            return negative_response(payload[0], Nrc.CONDITIONS_NOT_CORRECT)
        if not self.security.unlocked:
            return negative_response(payload[0], Nrc.SECURITY_ACCESS_DENIED)
        self.coding = bytes(payload[3:])
        return bytes([payload[0] + 0x40]) + did.to_bytes(2, "big")

    def _handle_obd_mode01(self, pid: int, t: float) -> Optional[bytes]:
        """SAE J1979 mode 01 — legislated current-data reads."""
        from ..diagnostics import obd2

        if pid in (0x00, 0x20, 0x40, 0x60):
            bitmap = obd2.encode_supported_pids(sorted(self.obd_pids), pid)
            return obd2.encode_response(pid, bitmap)
        signals = self.obd_pids.get(pid)
        if signals is None:
            return None  # unsupported PIDs go unanswered in OBD-II
        data = bytes(signal.sample(t) & 0xFF for signal in signals)
        return obd2.encode_response(pid, data)

    def _handle_dtc_service(self, payload: bytes) -> bytes:
        from ..diagnostics import dtc as dtc_codec

        sid = payload[0]
        if sid == dtc_codec.UDS_READ_DTC_INFORMATION:
            if len(payload) < 2 or payload[1] != dtc_codec.REPORT_DTC_BY_STATUS_MASK:
                return negative_response(sid, Nrc.SUBFUNCTION_NOT_SUPPORTED)
            mask = payload[2] if len(payload) > 2 else 0xFF
            matching = [d for d in self.dtcs if d.status & mask]
            return dtc_codec.encode_uds_dtc_response(matching)
        if sid == dtc_codec.KWP_READ_DTCS_BY_STATUS:
            return dtc_codec.encode_kwp_dtc_response(self.dtcs)
        # 0x14 clears in both UDS (3-byte group) and KWP (2-byte group).
        self.dtcs = []
        self.dtc_clear_count += 1
        return bytes([sid + 0x40])

    def _handle_routine_control(self, payload: bytes, t: float) -> bytes:
        if len(payload) < 3:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        sub = payload[1]
        # BMW-style short form uses a 1-byte routine id (Tab. 13, "31 01 03");
        # standard UDS uses 2 bytes.  Accept both.
        if len(payload) >= 4:
            routine_id = int.from_bytes(payload[2:4], "big")
            echo = payload[1:4]
        else:
            routine_id = payload[2]
            echo = payload[1:3]
        routine = self.routines.get(routine_id)
        if routine is None:
            return negative_response(payload[0], Nrc.REQUEST_OUT_OF_RANGE)
        if sub == ROUTINE_START:
            routine.runs.append(ActuatorAction(t, "start", bytes(payload[4:])))
        elif sub == ROUTINE_STOP:
            routine.runs.append(ActuatorAction(t, "stop", b""))
        elif sub != ROUTINE_RESULTS:
            return negative_response(payload[0], Nrc.SUBFUNCTION_NOT_SUPPORTED)
        return bytes([payload[0] + 0x40]) + bytes(echo)

    # ---------------------------------------------------------------- services

    def _handle_session_control(self, payload: bytes) -> bytes:
        if len(payload) < 2:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        try:
            self.session = uds.SessionType(payload[1] & 0x7F)
        except ValueError:
            return negative_response(payload[0], Nrc.SUBFUNCTION_NOT_SUPPORTED)
        # P2/P2* timing parameters follow in a real response.
        return bytes([payload[0] + 0x40, payload[1], 0x00, 0x32, 0x01, 0xF4])

    def _handle_security_access(self, payload: bytes) -> bytes:
        if len(payload) < 2:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        level = payload[1]
        if level % 2:  # odd sub-function: request seed
            if self.security.unlocked:
                return bytes([payload[0] + 0x40, level, 0x00, 0x00])
            self._seed_counter = (self._seed_counter * 0x9E37 + 0x79B9) & 0xFFFF
            seed = self.security.request_seed(self._seed_counter)
            return bytes([payload[0] + 0x40, level]) + seed.to_bytes(2, "big")
        if len(payload) < 4:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        key = int.from_bytes(payload[2:4], "big")
        if self.security.try_unlock(key):
            return bytes([payload[0] + 0x40, level])
        return negative_response(payload[0], Nrc.INVALID_KEY)

    def _handle_read_dids(self, payload: bytes, t: float) -> bytes:
        try:
            request = uds.decode_request_dids(payload)
        except Exception:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        specials = set(UDS_IDENT_DIDS) | {CODING_DID}
        unknown = [
            d
            for d in request.dids
            if d not in self.uds_data_points and d not in specials
        ]
        if unknown:
            return negative_response(payload[0], Nrc.REQUEST_OUT_OF_RANGE)
        out = bytearray([payload[0] + 0x40])
        for did in request.dids:
            out += did.to_bytes(2, "big")
            if did in UDS_IDENT_DIDS:
                out += self.identification.encode("ascii")
            elif did == CODING_DID:
                out += self.coding
            else:
                out += self.uds_data_points[did].encode(t)
        return bytes(out)

    def _handle_read_local(self, payload: bytes, t: float) -> bytes:
        try:
            local_id = kwp2000.decode_read_request(payload)
        except Exception:
            return negative_response(payload[0], Nrc.INCORRECT_MESSAGE_LENGTH)
        group = self.kwp_groups.get(local_id)
        if group is None:
            return negative_response(payload[0], Nrc.REQUEST_OUT_OF_RANGE)
        records = [
            (m.formula_type, m.raw(t)[0], m.raw(t)[1]) for m in group.measurements
        ]
        return kwp2000.encode_read_response(local_id, records)

    def _handle_io_control(self, payload: bytes, t: float) -> bytes:
        sid = payload[0]
        if sid != self.ecr_service:
            return negative_response(sid, Nrc.SERVICE_NOT_SUPPORTED)
        if not self.security.unlocked:
            return negative_response(sid, Nrc.SECURITY_ACCESS_DENIED)
        try:
            if sid == uds.UdsService.IO_CONTROL_BY_IDENTIFIER:
                request = uds.decode_io_control_request(payload)
                identifier, io_param, state = (
                    request.did,
                    request.io_parameter,
                    request.control_state,
                )
            else:
                identifier, ecr = kwp2000.decode_io_control_request(payload)
                if not ecr:
                    return negative_response(sid, Nrc.INCORRECT_MESSAGE_LENGTH)
                io_param, state = ecr[0], ecr[1:]
        except Exception:
            return negative_response(sid, Nrc.INCORRECT_MESSAGE_LENGTH)
        actuator = self.actuators.get(identifier)
        if actuator is None:
            return negative_response(sid, Nrc.REQUEST_OUT_OF_RANGE)
        nrc = actuator.handle(io_param, state, t)
        if nrc is not None:
            return negative_response(sid, nrc)
        if sid == uds.UdsService.IO_CONTROL_BY_IDENTIFIER:
            return (
                bytes([sid + 0x40])
                + identifier.to_bytes(2, "big")
                + bytes([io_param])
                + bytes(state)
            )
        return bytes([sid + 0x40, identifier, io_param]) + bytes(state[:1])

    # ----------------------------------------------------------------- queries

    def dashboard_values(self, t: float) -> Dict[str, float]:
        """Physical values of data points shown on the instrument cluster."""
        values: Dict[str, float] = {}
        for point in self.uds_data_points.values():
            if point.on_dashboard:
                values[point.name] = point.physical(t)
        for group in self.kwp_groups.values():
            for measurement in group.measurements:
                if measurement.on_dashboard:
                    values[measurement.name] = measurement.physical(t)
        return values
