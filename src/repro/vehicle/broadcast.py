"""Periodic CAN broadcast traffic (normal in-vehicle communication).

The CAN reverse-engineering literature the paper positions against (READ,
LibreCAN) targets *broadcast* frames: ECUs periodically transmitting fixed
frame layouts in which signals occupy bit ranges, often alongside message
counters and CRC bytes.  This module generates such traffic so the
READ-style baseline in :mod:`repro.core.read_baseline` has its native prey
— and so the contrast with transport-layer diagnostic traffic (the paper's
§4.4 argument) can be demonstrated on real captures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..can import CanFrame, CanLog
from ..simtime import SimClock
from .signals import SignalSource


def crc8(data: bytes, poly: int = 0x1D, init: int = 0xFF) -> int:
    """SAE J1850-style CRC-8 over the frame's other bytes."""
    crc = init
    for byte in data:
        crc ^= byte
        for __ in range(8):
            crc = ((crc << 1) ^ poly) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


@dataclass(frozen=True)
class SignalSpec:
    """One physical signal packed into a broadcast frame."""

    name: str
    start_bit: int  # MSB-first bit offset within the 64-bit data field
    length: int  # bits
    source: SignalSource
    scale: float = 1.0  # physical = raw * scale + offset (ground truth)
    offset: float = 0.0

    def raw(self, t: float) -> int:
        value = self.source.sample(t)
        return max(0, min((1 << self.length) - 1, int(value)))


@dataclass
class BroadcastFrameSpec:
    """Layout of one periodic frame: signals + optional counter + CRC."""

    can_id: int
    period_s: float
    signals: List[SignalSpec] = field(default_factory=list)
    counter_bits: int = 0  # 0 = no counter; else a rolling counter width
    counter_start_bit: int = 48
    crc_byte: Optional[int] = None  # byte index holding a CRC-8, or None

    def encode(self, t: float, counter: int) -> bytes:
        bits = 0
        for spec in self.signals:
            raw = spec.raw(t)
            shift = 64 - spec.start_bit - spec.length
            bits |= (raw & ((1 << spec.length) - 1)) << shift
        if self.counter_bits:
            shift = 64 - self.counter_start_bit - self.counter_bits
            bits |= (counter & ((1 << self.counter_bits) - 1)) << shift
        data = bytearray(bits.to_bytes(8, "big"))
        if self.crc_byte is not None:
            others = bytes(b for i, b in enumerate(data) if i != self.crc_byte)
            data[self.crc_byte] = crc8(others)
        return bytes(data)


class BroadcastEmitter:
    """Emits scheduled broadcast frames into a capture log."""

    def __init__(self, specs: Sequence[BroadcastFrameSpec], clock: Optional[SimClock] = None):
        self.specs = list(specs)
        self.clock = clock or SimClock()
        self._counters = {spec.can_id: 0 for spec in self.specs}

    def run(self, duration_s: float) -> CanLog:
        """Generate ``duration_s`` worth of traffic, time-multiplexed."""
        log = CanLog()
        events = []
        for spec in self.specs:
            t = self.clock.now() + spec.period_s
            while t <= self.clock.now() + duration_s:
                events.append((t, spec))
                t += spec.period_s
        events.sort(key=lambda item: item[0])
        for t, spec in events:
            counter = self._counters[spec.can_id]
            self._counters[spec.can_id] = counter + 1
            log.append(CanFrame(spec.can_id, spec.encode(t, counter), timestamp=t))
        if events:
            self.clock.advance(duration_s)
        return log


def default_broadcast_vehicle(seed: int = 9) -> List[BroadcastFrameSpec]:
    """A realistic powertrain/chassis broadcast schedule."""
    from .signals import RampSignal, SineSignal

    rng = random.Random(seed)
    return [
        BroadcastFrameSpec(
            can_id=0x280,  # engine: rpm + throttle + coolant
            period_s=0.01,
            signals=[
                SignalSpec("engine_rpm", 0, 16, SineSignal(800, 6000, 11.0), scale=0.25),
                SignalSpec("throttle", 16, 8, SineSignal(0, 255, 7.0), scale=100 / 255),
                SignalSpec("coolant", 24, 8, RampSignal(120, 220, 60.0), scale=1.0, offset=-40),
            ],
            counter_bits=4,
            counter_start_bit=44,
            crc_byte=7,
        ),
        BroadcastFrameSpec(
            can_id=0x1A0,  # brakes: speed + pressure
            period_s=0.02,
            signals=[
                SignalSpec("vehicle_speed", 0, 16, SineSignal(0, 25000, 19.0), scale=0.01),
                SignalSpec("brake_pressure", 16, 8, SineSignal(0, 250, 5.0)),
            ],
            counter_bits=8,
            counter_start_bit=32,
        ),
        BroadcastFrameSpec(
            can_id=0x4A8,  # body: constant config + door bits
            period_s=0.1,
            signals=[
                SignalSpec("config", 0, 16, _Constant(0x1234), scale=1.0),
                SignalSpec("doors", 16, 4, SineSignal(0, 15, 13.0)),
            ],
        ),
    ]


class _Constant(SignalSource):
    def __init__(self, value: int) -> None:
        super().__init__(value, value)
        self.value = value

    def sample(self, t: float) -> int:
        return self.value
