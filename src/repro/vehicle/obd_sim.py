"""Standalone OBD-II vehicle simulator.

§4.2 of the paper evaluates formula recovery against ground truth using "one
vehicle simulator, which supports OBD-II protocol" driven by a telematics
app.  This module is that simulator: a single node answering SAE J1979
mode-01 requests on the conventional functional/physical id pair
``0x7DF/0x7E0 → 0x7E8`` over ISO-TP.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..can import SimulatedCanBus
from ..diagnostics import obd2
from ..simtime import SimClock
from ..transport import IsoTpEndpoint
from .signals import RampSignal, SignalSource, SineSignal

OBD_FUNCTIONAL_ID = 0x7DF
OBD_PHYSICAL_REQUEST_ID = 0x7E0
OBD_RESPONSE_ID = 0x7E8


def default_signal_for(pid: int, seed_phase: float = 0.0) -> List[SignalSource]:
    """A plausible raw-value generator for a standard PID."""
    definition = obd2.pid_definition(pid)
    if definition.num_bytes == 1:
        return [SineSignal(10, 250, period_s=17.0 + pid % 7, phase=seed_phase + pid)]
    # Two-byte PIDs: high byte sweeps, low byte sweeps faster.
    return [
        SineSignal(5, 120, period_s=23.0, phase=seed_phase + pid),
        RampSignal(0, 255, period_s=7.0, phase=seed_phase),
    ]


class ObdVehicleSimulator:
    """An ECU-in-a-box answering OBD-II mode-01 requests."""

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        pids: Optional[Iterable[int]] = None,
        bus: Optional[SimulatedCanBus] = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.bus = bus or SimulatedCanBus(self.clock, name="obd-sim")
        self.pids = list(pids) if pids is not None else list(obd2.TABLE5_PIDS)
        self.signals: Dict[int, List[SignalSource]] = {
            pid: default_signal_for(pid) for pid in self.pids
        }
        self.endpoint = IsoTpEndpoint(
            self.bus,
            "obd-vehicle",
            tx_id=OBD_RESPONSE_ID,
            rx_id=OBD_PHYSICAL_REQUEST_ID,
            on_message=self._on_request,
        )
        # Also answer functionally addressed requests (0x7DF broadcasts).
        self.functional_endpoint = IsoTpEndpoint(
            self.bus,
            "obd-vehicle-functional",
            tx_id=OBD_RESPONSE_ID,
            rx_id=OBD_FUNCTIONAL_ID,
            on_message=self._on_request,
        )

    # ----------------------------------------------------------------- server

    def raw_values(self, pid: int, t: float) -> bytes:
        definition = obd2.pid_definition(pid)
        samples = [s.sample(t) for s in self.signals[pid]]
        if definition.num_bytes == 1:
            return bytes([samples[0] & 0xFF])
        return bytes(s & 0xFF for s in samples[: definition.num_bytes])

    def _on_request(self, payload: bytes) -> None:
        try:
            mode, pid = obd2.decode_request(payload)
        except Exception:
            return
        if mode != obd2.MODE_CURRENT_DATA:
            return
        if pid in (0x00, 0x20, 0x40, 0x60):
            bitmap = obd2.encode_supported_pids(self.pids, pid)
            self.endpoint.send(obd2.encode_response(pid, bitmap))
            return
        if pid not in self.signals:
            return  # unsupported PIDs are simply not answered in OBD-II
        data = self.raw_values(pid, self.clock.now())
        self.endpoint.send(obd2.encode_response(pid, data))

    # ----------------------------------------------------------------- client

    def tester_endpoint(self, name: str = "obd-app") -> IsoTpEndpoint:
        """Endpoint a telematics app uses to query this simulator."""
        return IsoTpEndpoint(
            self.bus, name, tx_id=OBD_PHYSICAL_REQUEST_ID, rx_id=OBD_RESPONSE_ID
        )

    def ground_truth(self, pid: int, t: float, imperial: bool = False) -> float:
        """The physical value the SAE formula yields for the raw bytes at t."""
        return obd2.physical_value(pid, self.raw_values(pid, t), imperial=imperial)
