"""The 18-vehicle evaluation fleet (Tab. 3 of the paper).

Each car is generated deterministically from its :class:`CarSpec`: the
per-car ESV counts match Tab. 6 (formula vs enum ESVs), the ECR counts and
IO-control service match Tab. 11, and the transport stack matches the
manufacturer (VW → TP 2.0, BMW/Mini → extended addressing, everything else
→ ISO-TP).  The dashboard-visible ESVs of Tab. 7 (Cars F, K, L, R) are
pinned to the exact formulas the paper lists.

The formulas assigned to ESVs are drawn from a realistic manufacturer pool —
mostly affine scalings, a few two-variable and non-linear shapes — seeded
per car so the whole fleet is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..diagnostics import kwp2000, uds
from ..diagnostics.messages import Protocol
from ..formulas import (
    AffineFormula,
    EnumFormula,
    ExpressionFormula,
    Formula,
    ProductFormula,
    TwoVarAffineFormula,
)
from ..simtime import SimClock
from .ecu import (
    Actuator,
    KwpDataGroup,
    KwpMeasurement,
    Routine,
    SecurityAccessPolicy,
    SimulatedEcu,
    UdsDataPoint,
)
from .signals import (
    ConstantSignal,
    RampSignal,
    RandomWalkSignal,
    SignalSource,
    SineSignal,
    ToggleSignal,
)
from .vehicle import TransportKind, Vehicle


@dataclass(frozen=True)
class CarSpec:
    """Static description of one evaluation vehicle."""

    key: str  # "A" .. "R"
    model: str
    protocol: Protocol
    tool: str
    transport: TransportKind
    formula_esvs: int  # Tab. 6 "#ESV (formula)"
    enum_esvs: int  # Tab. 6 "#ESV (Enum)"
    ecrs: int  # Tab. 11 "#ECR"
    ecr_service: Optional[int]  # 0x2F / 0x30 per Tab. 11, None if no active test
    seed: int

    @property
    def name(self) -> str:
        return f"Car {self.key}"


_2F = uds.UdsService.IO_CONTROL_BY_IDENTIFIER
_30 = kwp2000.KwpService.IO_CONTROL_BY_LOCAL_IDENTIFIER

#: Tab. 3 + Tab. 6 + Tab. 11, merged.
CAR_SPECS: Dict[str, CarSpec] = {
    spec.key: spec
    for spec in [
        CarSpec("A", "Skoda Octavia", Protocol.UDS, "LAUNCH X431", TransportKind.ISOTP, 28, 0, 11, _2F, 1001),
        CarSpec("B", "Volkswagen Magotan", Protocol.KWP2000, "VCDS", TransportKind.VWTP, 8, 0, 0, None, 1002),
        CarSpec("C", "Volkswagen Lavida", Protocol.KWP2000, "LAUNCH X431", TransportKind.VWTP, 5, 0, 0, None, 1003),
        CarSpec("D", "Lexus NX300", Protocol.UDS, "Techstream", TransportKind.ISOTP, 12, 5, 5, _30, 1004),
        CarSpec("E", "Mini Cooper R56", Protocol.UDS, "AUTEL 919", TransportKind.BMW, 5, 4, 3, _30, 1005),
        CarSpec("F", "Mini Cooper R59", Protocol.UDS, "AUTEL 919", TransportKind.BMW, 8, 5, 5, _30, 1006),
        CarSpec("G", "BMW i3", Protocol.UDS, "AUTEL 919", TransportKind.BMW, 5, 22, 0, None, 1007),
        CarSpec("H", "RongWei MARVEL X", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 5, 13, 6, _2F, 1008),
        CarSpec("I", "Changan Eado", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 11, 0, 10, _2F, 1009),
        CarSpec("J", "BMW 532Li", Protocol.UDS, "AUTEL 919", TransportKind.BMW, 20, 20, 27, _30, 1010),
        CarSpec("K", "Volkswagen Passat", Protocol.KWP2000, "AUTEL 919", TransportKind.VWTP, 41, 0, 0, None, 1011),
        CarSpec("L", "Toyota Corolla", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 29, 20, 0, None, 1012),
        CarSpec("M", "Peugeot 308", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 4, 14, 0, None, 1013),
        CarSpec("N", "Kia k2 (UC)", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 26, 19, 21, _2F, 1014),
        CarSpec("O", "Ford Kuga", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 18, 9, 4, _2F, 1015),
        CarSpec("P", "Honda Accord", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 7, 6, 0, None, 1016),
        CarSpec("Q", "Nissan Teana", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 18, 17, 32, _30, 1017),
        CarSpec("R", "Audi A4L", Protocol.UDS, "AUTEL 919", TransportKind.ISOTP, 40, 2, 0, None, 1018),
    ]
}

#: ESV name pool, combined with per-car suffixes when exhausted.
ESV_NAMES: Tuple[str, ...] = (
    "Engine Speed", "Vehicle Speed", "Coolant Temperature", "Intake Air Temperature",
    "Battery Voltage", "Fuel Rail Pressure", "Throttle Position", "Boost Pressure",
    "Oil Temperature", "Lambda Bank 1", "Injection Quantity Cyl 1", "Steering Angle",
    "Brake Pressure", "Torque Assistance", "Lateral Acceleration", "Fuel Level",
    "Manifold Pressure", "EGR Duty Cycle", "Ignition Advance", "Gearbox Oil Temperature",
    "Transmission Input Speed", "Wheel Speed FL", "Wheel Speed FR", "Wheel Speed RL",
    "Wheel Speed RR", "Yaw Rate", "AC Refrigerant Pressure", "Ambient Temperature",
    "Alternator Load", "Rail Voltage", "Mass Air Flow", "Accelerator Position",
    "Turbo Speed", "Exhaust Gas Temperature", "Fuel Consumption Rate",
    "Knock Sensor Level", "Cam Position", "Crank Position", "Clutch Pressure",
    "Brake Pedal Position", "Engine Load", "Oil Pressure", "Coolant Flow",
    "DPF Soot Load", "NOx Concentration", "Charge Current", "Battery SOC",
    "Inverter Temperature", "Motor Torque", "Regen Braking Level",
)

ENUM_NAMES: Tuple[str, ...] = (
    "Driver Door Status", "Passenger Door Status", "Rear Left Door Status",
    "Rear Right Door Status", "Trunk Status", "Hood Status", "Gear Position",
    "Headlight Switch", "Wiper Switch", "Brake Light Switch", "Clutch Switch",
    "Cruise Control State", "Seat Belt Driver", "Seat Belt Passenger",
    "Handbrake Status", "AC Switch", "Defrost Switch", "Fog Light Switch",
    "Ignition State", "Key Position", "Central Lock State", "Window FL State",
    "Window FR State", "Sunroof State", "Interior Light State", "Hazard Switch",
)

ACTUATOR_NAMES: Tuple[str, ...] = (
    "Fog Light Left", "Fog Light Right", "Central Lock", "Trunk Release",
    "Wiper Front", "Wiper Rear", "Horn", "Fuel Pump", "Turn Light Left",
    "Turn Light Right", "Window FL", "Window FR", "Window RL", "Window RR",
    "Mirror Fold", "Seat Heater Left", "Seat Heater Right", "AC Compressor",
    "Radiator Fan", "High Beam", "Low Beam", "Brake Light", "Reverse Light",
    "Interior Light", "Sunroof", "Door Lock FL", "Door Lock FR", "Door Lock RL",
    "Door Lock RR", "Hazard Light", "Headlight Washer", "Tailgate",
)

#: KWP formula types used when generating measuring blocks (non-enum only).
_KWP_GEN_TYPES: Tuple[int, ...] = (
    0x01, 0x02, 0x05, 0x06, 0x07, 0x12, 0x14, 0x16, 0x17, 0x22, 0x23, 0x31,
)

ECU_NAMES: Tuple[str, ...] = ("Engine", "ABS", "Body Control", "Instrument Cluster")


def _unique_names(pool: Tuple[str, ...], count: int) -> List[str]:
    """First ``count`` names from ``pool``, suffixing on wrap-around."""
    names: List[str] = []
    for index in range(count):
        base = pool[index % len(pool)]
        round_no = index // len(pool)
        names.append(base if round_no == 0 else f"{base} #{round_no + 1}")
    return names


def _make_signal(rng: random.Random, lo: int, hi: int) -> SignalSource:
    kind = rng.random()
    period = rng.uniform(9.0, 31.0)
    phase = rng.uniform(0.0, 10.0)
    if kind < 0.45:
        return SineSignal(lo, hi, period_s=period, phase=phase)
    if kind < 0.8:
        return RampSignal(lo, hi, period_s=period, phase=phase)
    return RandomWalkSignal(lo, hi, seed=rng.randrange(1 << 30), step_size=max(2, (hi - lo) // 20))


def _uds_formula_and_signals(
    rng: random.Random,
) -> Tuple[Formula, List[SignalSource], int]:
    """Draw one proprietary formula with matching raw-signal generators.

    Returns ``(formula, signals, bytes_per_var)``.
    """
    roll = rng.random()
    if roll < 0.35:  # pure scaling, one byte
        a = rng.choice([0.01, 0.1, 0.25, 0.392, 0.5, 0.75, 1.0, 2.0, 4.0, 100.0 / 255.0])
        return AffineFormula(a), [_make_signal(rng, 5, 250)], 1
    if roll < 0.60:  # affine with offset (temperature style)
        a = rng.choice([0.1, 0.5, 0.75, 1.0, 1.5, 2.0])
        b = rng.choice([-64.0, -48.0, -40.0, -32.0, -22.0, 10.0, 48.0])
        return AffineFormula(a, b), [_make_signal(rng, 20, 240)], 1
    if roll < 0.75:  # one 16-bit variable
        a = rng.choice([0.01, 0.1, 0.125, 0.25, 1.0])
        return AffineFormula(a), [_make_signal(rng, 100, 6000)], 2
    if roll < 0.88:  # two bytes, independent weights (RPM style)
        a0 = rng.choice([2.56, 10.0, 64.0, 64.1, 256.0 * 0.05])
        a1 = rng.choice([0.01, 0.05, 0.241, 0.25, 1.0])
        return (
            TwoVarAffineFormula(a0, a1),
            [_make_signal(rng, 2, 120), _make_signal(rng, 0, 255)],
            1,
        )
    if roll < 0.95:  # two-byte product
        c = rng.choice([0.002, 0.01, 0.04, 0.2])
        return (
            ProductFormula(c),
            [_make_signal(rng, 10, 200), _make_signal(rng, 10, 200)],
            1,
        )
    # non-linear: quadratic
    c = rng.choice([0.001, 0.01, 0.05])
    return (
        ExpressionFormula(
            lambda xs, c=c: c * xs[0] * xs[0], arity=1, description=f"Y = {c:g}*X*X"
        ),
        [_make_signal(rng, 10, 220)],
        1,
    )


def _enum_point(rng: random.Random, did: int, name: str) -> UdsDataPoint:
    n_states = rng.choice([2, 2, 2, 3, 4])
    states = list(range(n_states))
    labels = {0: "Off", 1: "On", 2: "Auto", 3: "Fault"}
    return UdsDataPoint(
        did=did,
        name=name,
        signals=[ToggleSignal(states, dwell_s=rng.uniform(3.0, 9.0))],
        formula=EnumFormula({s: labels.get(s, f"state {s}") for s in states}),
    )


# ---------------------------------------------------------------------- build


def build_car(key: str, clock: Optional[SimClock] = None) -> Vehicle:
    """Instantiate one fleet vehicle by its Tab. 3 key (``"A"``..``"R"``)."""
    spec = CAR_SPECS[key]
    rng = random.Random(spec.seed)
    vehicle = Vehicle(spec.name, transport=spec.transport, clock=clock)

    ecus: List[SimulatedEcu] = []
    security = SecurityAccessPolicy(mask=0x5A00 | spec.seed & 0xFF, required=spec.ecrs > 0)
    for index, ecu_name in enumerate(ECU_NAMES):
        ecu = SimulatedEcu(
            ecu_name,
            vehicle.clock,
            ecr_service=spec.ecr_service or _2F,
            security=security if ecu_name == "Body Control" else SecurityAccessPolicy(required=False),
        )
        ecus.append(ecu)

    if spec.protocol == Protocol.KWP2000:
        _populate_kwp(spec, rng, ecus)
    else:
        _populate_uds(spec, rng, ecus)
    _populate_actuators(spec, rng, ecus)
    _populate_dtcs(rng, ecus)
    _populate_obd(rng, ecus)
    if spec.key == "Q":
        # The Nissan's body ECU answers IO control with responsePending
        # first (slow relay hardware) — exercises the NRC-0x78 path.
        body = next(e for e in ecus if e.name == "Body Control")
        body.slow_services = {int(spec.ecr_service)}
    if spec.transport == TransportKind.BMW:
        _populate_bmw_routines(ecus)

    for index, ecu in enumerate(ecus):
        if spec.transport == TransportKind.VWTP:
            vehicle.add_ecu(
                ecu,
                ecu_tx_id=0x300 + index,
                ecu_rx_id=0x740 + index,
                ecu_address=index + 1,
            )
        elif spec.transport == TransportKind.BMW:
            vehicle.add_ecu(
                ecu,
                ecu_tx_id=0x600 + index,
                ecu_rx_id=0x6F0 + index,
                ecu_address=(0x12, 0x29, 0x40, 0x60)[index],
            )
        else:
            base = 0x710 + 0x10 * index
            vehicle.add_ecu(ecu, ecu_tx_id=base + 8, ecu_rx_id=base)
    return vehicle


def _populate_uds(spec: CarSpec, rng: random.Random, ecus: List[SimulatedEcu]) -> None:
    names = _unique_names(ESV_NAMES, spec.formula_esvs)
    did_bases = [0xF400, 0x2400, 0x0940, 0xD100]
    counters = [0, 0, 0, 0]

    pinned = _pinned_dashboard_points(spec)
    for name in pinned:
        # Pinned points count toward the Tab. 6 formula-ESV total.
        if name in names:
            names.remove(name)
        elif names:
            names.pop()

    points: List[UdsDataPoint] = []
    for ecu_index, (name, builder) in enumerate(pinned.items()):
        did = did_bases[0] + counters[0]
        counters[0] += 1
        points.append(builder(did))
    for name in names:
        ecu_index = rng.randrange(len(ecus))
        did = did_bases[ecu_index] + counters[ecu_index]
        counters[ecu_index] += 1
        formula, signals, bytes_per_var = _uds_formula_and_signals(rng)
        points.append(
            UdsDataPoint(
                did=did,
                name=name,
                signals=signals,
                formula=formula,
                bytes_per_var=bytes_per_var,
            )
        )
    enum_names = _unique_names(ENUM_NAMES, spec.enum_esvs)
    for name in enum_names:
        ecu_index = rng.randrange(len(ecus))
        did = did_bases[ecu_index] + counters[ecu_index]
        counters[ecu_index] += 1
        points.append(_enum_point(rng, did, name))

    for point in points:
        ecu_index = next(
            i for i, base in enumerate(did_bases) if base <= point.did < base + 0x100
        )
        ecus[ecu_index].add_data_point(point)


def _pinned_dashboard_points(spec: CarSpec) -> Dict[str, object]:
    """Tab. 7's dashboard ESVs with the paper's exact formulas."""
    pinned: Dict[str, object] = {}
    if spec.key == "F":  # Mini R59: engine speed, Y = X (16-bit raw)
        pinned["Engine Speed"] = lambda did: UdsDataPoint(
            did=did,
            name="Engine Speed",
            signals=[SineSignal(800, 4500, period_s=19.0)],
            formula=AffineFormula(1.0, unit="rpm"),
            bytes_per_var=2,
            on_dashboard=True,
        )
    if spec.key == "L":  # Toyota Corolla: coolant temperature, Y = 0.5*X
        pinned["Coolant Temperature"] = lambda did: UdsDataPoint(
            did=did,
            name="Coolant Temperature",
            signals=[SineSignal(120, 240, period_s=27.0)],
            formula=AffineFormula(0.5, unit="degC"),
            on_dashboard=True,
        )
    if spec.key == "R":  # Audi A4L: engine speed, Y = 64.1*X0 + 0.241*X1
        pinned["Engine Speed"] = lambda did: UdsDataPoint(
            did=did,
            name="Engine Speed",
            signals=[SineSignal(10, 80, period_s=19.0), RampSignal(0, 255, period_s=5.0)],
            formula=TwoVarAffineFormula(64.1, 0.241, unit="rpm"),
            on_dashboard=True,
        )
    return pinned


def _populate_kwp(spec: CarSpec, rng: random.Random, ecus: List[SimulatedEcu]) -> None:
    names = _unique_names(ESV_NAMES, spec.formula_esvs)
    measurements: List[KwpMeasurement] = []

    def _reserve(name: str) -> None:
        # Pinned measurements count toward the Tab. 6 formula-ESV total.
        if name in names:
            names.remove(name)
        elif names:
            names.pop()

    if spec.key == "K":
        # Tab. 7: Passat engine speed via formula type 0x01 (Y = X0*X1/5);
        # §4.3: vehicle speed whose X0 is the constant 100 in traffic.
        _reserve("Engine Speed")
        _reserve("Vehicle Speed")
        measurements.append(
            KwpMeasurement(
                "Engine Speed",
                formula_type=0x01,
                x0=ConstantSignal(40),
                x1=SineSignal(20, 240, period_s=19.0),
                unit="rpm",
                on_dashboard=True,
            )
        )
        measurements.append(
            KwpMeasurement(
                "Vehicle Speed",
                formula_type=0x07,
                x0=ConstantSignal(100),
                x1=SineSignal(0, 180, period_s=23.0),
                unit="km/h",
            )
        )
    if spec.key == "B":
        # §4.3: torque assistance where X1 toggles between 0x7F and 0x81.
        _reserve("Torque Assistance")
        measurements.append(
            KwpMeasurement(
                "Torque Assistance",
                formula_type=0x22,
                x0=SineSignal(10, 220, period_s=13.0),
                x1=ToggleSignal([0x7F, 0x81], dwell_s=7.0),
                unit="Nm",
            )
        )

    for name in names:
        formula_type = rng.choice(_KWP_GEN_TYPES)
        x0 = _make_signal(rng, 5, 250)
        x1 = _make_signal(rng, 5, 250)
        if rng.random() < 0.12:  # occasional constant variable (paper §4.3)
            x0 = ConstantSignal(rng.randrange(1, 200))
        measurements.append(
            KwpMeasurement(name, formula_type=formula_type, x0=x0, x1=x1)
        )

    # Pack measurements into measuring blocks of up to 8 slots.  Real VAG
    # blocks hold 4 values, but tools read several related blocks in one
    # request; larger groups reproduce the multi-frame-heavy KWP traffic of
    # Tab. 9 (75.2 % of frames waiting for successors).
    local_id = 0x01
    cursor = 0
    while cursor < len(measurements):
        size = min(rng.choice([6, 7, 8, 8]), len(measurements) - cursor)
        group = KwpDataGroup(local_id, f"Measuring Block {local_id:02X}")
        group.measurements = measurements[cursor : cursor + size]
        ecu = ecus[local_id % 2]  # spread blocks over Engine and ABS
        ecu.add_kwp_group(group)
        cursor += size
        local_id += 1


def _populate_actuators(spec: CarSpec, rng: random.Random, ecus: List[SimulatedEcu]) -> None:
    if not spec.ecrs:
        return
    body = next(e for e in ecus if e.name == "Body Control")
    names = _unique_names(ACTUATOR_NAMES, spec.ecrs)
    for index, name in enumerate(names):
        if spec.ecr_service == _30:
            identifier = 0x10 + index  # 1-byte local identifier
        else:
            identifier = 0x0950 + index  # 2-byte DID
        body.add_actuator(Actuator(identifier, name, state_length=rng.choice([2, 4, 5])))


def _populate_obd(rng: random.Random, ecus: List[SimulatedEcu]) -> None:
    """Legislated OBD-II PIDs on the engine ECU (every car has them).

    These are the §9.4 alignment anchors: their formulas are public, so
    the pipeline can compute each response's true value and find it on the
    screen to estimate the camera-vs-sniffer clock offset.
    """
    engine = next(e for e in ecus if e.name == "Engine")
    engine.obd_pids = {
        0x05: [SineSignal(100, 180, period_s=rng.uniform(20, 35))],  # coolant
        0x0C: [  # engine rpm, two bytes
            SineSignal(4, 90, period_s=rng.uniform(9, 16)),
            RampSignal(0, 255, period_s=rng.uniform(4, 8)),
        ],
        0x0D: [SineSignal(0, 180, period_s=rng.uniform(15, 25))],  # speed
    }


def _populate_dtcs(rng: random.Random, ecus: List[SimulatedEcu]) -> None:
    """Seed a few stored trouble codes (cars in repair shops have them)."""
    from ..diagnostics.dtc import Dtc, KNOWN_DTCS

    codes = list(KNOWN_DTCS)
    for ecu in ecus:
        for __ in range(rng.randrange(0, 3)):
            code = rng.choice(codes)
            if not any(d.code == code for d in ecu.dtcs):
                ecu.dtcs.append(Dtc(code, description=KNOWN_DTCS[code]))


def _populate_bmw_routines(ecus: List[SimulatedEcu]) -> None:
    """Routine-control targets used by the Tab. 13 BMW attack messages."""
    body = next(e for e in ecus if e.name == "Body Control")
    cluster = next(e for e in ecus if e.name == "Instrument Cluster")
    body.add_routine(Routine(0x03, "High Beam Test (FLEL)"))
    body.add_routine(Routine(0x01, "Low Beam Test (FLEL)"))
    cluster.add_routine(Routine(0x13, "Turn Light Test (KOMBI)"))


def ground_truth_formulas(vehicle: Vehicle) -> Dict[str, Formula]:
    """Hidden manufacturer formulas of a fleet car, keyed by pipeline id.

    Keys use the identifier scheme of the reverse-engineering reports
    (``"uds:F400"``, ``"kwp:01/0"``), so evaluation code — the CLI fleet
    table, :mod:`repro.runtime.job` and the examples — can look up each
    recovered ESV's ground truth directly.
    """
    truth: Dict[str, Formula] = {}
    for ecu in vehicle.ecus:
        for point in ecu.uds_data_points.values():
            truth[f"uds:{point.did:04X}"] = point.formula
        for group in ecu.kwp_groups.values():
            for index, measurement in enumerate(group.measurements):
                truth[f"kwp:{group.local_id:02X}/{index}"] = measurement.formula
    return truth


def build_fleet(clock: Optional[SimClock] = None) -> Dict[str, Vehicle]:
    """Instantiate all 18 vehicles (sharing ``clock`` when provided)."""
    return {key: build_car(key, clock) for key in CAR_SPECS}


def expected_esv_counts() -> Dict[str, Tuple[int, int]]:
    """Tab. 6 per-car (formula, enum) ESV counts, for benches and tests."""
    return {
        spec.key: (spec.formula_esvs, spec.enum_esvs) for spec in CAR_SPECS.values()
    }


def expected_ecr_counts() -> Dict[str, int]:
    """Tab. 11 per-car ECR counts (cars with active tests only)."""
    return {spec.key: spec.ecrs for spec in CAR_SPECS.values() if spec.ecrs}
