"""Gateway-segmented vehicle architecture (Fig. 1 of the paper).

Modern vehicles do not hang every ECU off the OBD connector: the ECUs live
on internal buses behind a *gateway* that forwards diagnostic conversations
and isolates everything else.  Two consequences matter for DP-Reverser:

* the OBD-port sniffer sees exactly the diagnostic request/response frames
  (internal broadcast chatter never crosses the gateway), and
* every forwarded frame picks up a small store-and-forward latency.

:class:`GatewayVehicle` builds this topology on top of the ordinary
:class:`~repro.vehicle.vehicle.Vehicle` wiring: testers attach to the OBD
bus, ECUs to the internal bus, and a :class:`Gateway` bridges the
diagnostic id ranges in both directions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..can import BusNode, CanFrame, SimulatedCanBus
from ..simtime import SimClock
from .vehicle import EcuBinding, TransportKind, Vehicle


class Gateway:
    """Bridges diagnostic traffic between the OBD bus and an internal bus."""

    def __init__(
        self,
        obd_bus: SimulatedCanBus,
        internal_bus: SimulatedCanBus,
        to_internal_ids: Iterable[int],
        to_obd_ids: Iterable[int],
        latency_s: float = 0.0005,
    ) -> None:
        self.obd_bus = obd_bus
        self.internal_bus = internal_bus
        self.to_internal_ids: Set[int] = set(to_internal_ids)
        self.to_obd_ids: Set[int] = set(to_obd_ids)
        self.latency_s = latency_s
        self.forwarded = 0
        self.dropped = 0
        self._obd_node = BusNode("gateway-obd", handler=self._from_obd)
        self._internal_node = BusNode("gateway-int", handler=self._from_internal)
        obd_bus.attach(self._obd_node)
        internal_bus.attach(self._internal_node)

    def allow(self, request_id: int, response_id: int) -> None:
        """Open a diagnostic conversation through the gateway."""
        self.to_internal_ids.add(request_id)
        self.to_obd_ids.add(response_id)

    def _from_obd(self, frame: CanFrame) -> None:
        if frame.can_id not in self.to_internal_ids:
            self.dropped += 1
            return
        self.forwarded += 1
        self.obd_bus.clock.advance(self.latency_s)
        self._internal_node.send(CanFrame(frame.can_id, frame.data))

    def _from_internal(self, frame: CanFrame) -> None:
        if frame.can_id not in self.to_obd_ids:
            self.dropped += 1
            return
        self.forwarded += 1
        self.internal_bus.clock.advance(self.latency_s)
        self._obd_node.send(CanFrame(frame.can_id, frame.data))


class GatewayVehicle(Vehicle):
    """A vehicle whose ECUs sit on an internal bus behind a gateway.

    The public interface matches :class:`Vehicle`: ``attach_sniffer`` taps
    the **OBD** bus (the paper's observation point) and ``tester_endpoint``
    attaches testers there; ``add_ecu`` places ECUs on the internal bus and
    opens their id pair through the gateway.
    """

    def __init__(self, model: str, clock: Optional[SimClock] = None) -> None:
        super().__init__(model, transport=TransportKind.ISOTP, clock=clock)
        # ``self.bus`` (from Vehicle) is the OBD-port bus.
        self.internal_bus = SimulatedCanBus(self.clock, name=f"{model}-internal")
        self.gateway = Gateway(self.bus, self.internal_bus, (), ())

    def add_ecu(self, ecu, ecu_tx_id: int, ecu_rx_id: int, ecu_address: int = 0):
        if ecu.name in self.bindings:
            raise ValueError(f"duplicate ECU name {ecu.name!r} in {self.model}")
        from ..transport import IsoTpEndpoint

        binding = EcuBinding(ecu, TransportKind.ISOTP, ecu_tx_id, ecu_rx_id, ecu_address)

        def respond(payload: bytes, _binding=binding) -> None:
            response = ecu.handle_request(payload)
            if response is not None:
                _binding.endpoint.send(response)

        binding.endpoint = IsoTpEndpoint(
            self.internal_bus,
            f"{self.model}/{ecu.name}",
            tx_id=ecu_tx_id,
            rx_id=ecu_rx_id,
            on_message=respond,
        )
        self.bindings[ecu.name] = binding
        self.gateway.allow(request_id=ecu_rx_id, response_id=ecu_tx_id)
        return binding

    def broadcast_internal(self, frame: CanFrame) -> CanFrame:
        """Inject internal-only chatter (never crosses to the OBD port)."""
        return self.internal_bus.transmit("internal-chatter", frame)
