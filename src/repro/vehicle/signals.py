"""Deterministic signal generators for simulated ECU data points.

A :class:`SignalSource` produces the *raw* integer value an ECU stores for a
sensor at a given simulated time.  The diagnostic tool later converts raw
values to physical ones with the manufacturer's proprietary formula; the
reverse-engineering pipeline must see the raw value *vary* to identify that
formula, so every generator here sweeps its range over time.

All generators are pure functions of ``(seed, time)`` — replaying a capture
is perfectly reproducible.
"""

from __future__ import annotations

import abc
import math
import random
from typing import Sequence


class SignalSource(abc.ABC):
    """Raw sensor value as a function of simulated time."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty signal range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi

    @abc.abstractmethod
    def sample(self, t: float) -> int:
        """Raw integer value at time ``t`` (always within [lo, hi])."""

    def _clamp(self, value: float) -> int:
        return int(max(self.lo, min(self.hi, round(value))))


class ConstantSignal(SignalSource):
    """A raw value that never changes.

    Constants are the degenerate case the paper discusses: when one variable
    of a two-variable formula is constant in traffic, GP folds it into the
    coefficients (the vehicle-speed X0=100 example, §4.3).
    """

    def __init__(self, value: int) -> None:
        super().__init__(value, value)
        self.value = value

    def sample(self, t: float) -> int:
        return self.value


class SineSignal(SignalSource):
    """Smooth oscillation across the range — engine-like quantities."""

    def __init__(self, lo: int, hi: int, period_s: float = 20.0, phase: float = 0.0) -> None:
        super().__init__(lo, hi)
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.period_s = period_s
        self.phase = phase

    def sample(self, t: float) -> int:
        mid = (self.lo + self.hi) / 2.0
        amp = (self.hi - self.lo) / 2.0
        return self._clamp(mid + amp * math.sin(2 * math.pi * t / self.period_s + self.phase))


class RampSignal(SignalSource):
    """Sawtooth sweep — odometer/level style quantities."""

    def __init__(self, lo: int, hi: int, period_s: float = 30.0, phase: float = 0.0) -> None:
        super().__init__(lo, hi)
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.period_s = period_s
        self.phase = phase

    def sample(self, t: float) -> int:
        frac = ((t + self.phase) % self.period_s) / self.period_s
        return self._clamp(self.lo + frac * (self.hi - self.lo))


class RandomWalkSignal(SignalSource):
    """A bounded random walk, deterministic per (seed, step).

    Values are generated on a fixed step grid so the same time always
    yields the same value regardless of sampling order.
    """

    def __init__(
        self, lo: int, hi: int, seed: int, step_s: float = 0.5, step_size: int = 3
    ) -> None:
        super().__init__(lo, hi)
        self.seed = seed
        self.step_s = step_s
        self.step_size = step_size
        self._cache = {0: (lo + hi) // 2}
        self._rng = random.Random(seed)
        self._last_step = 0

    def sample(self, t: float) -> int:
        step = max(0, int(t / self.step_s))
        while self._last_step < step:
            self._last_step += 1
            prev = self._cache[self._last_step - 1]
            delta = self._rng.randint(-self.step_size, self.step_size)
            self._cache[self._last_step] = self._clamp(prev + delta)
        return self._cache[min(step, self._last_step)]


class ToggleSignal(SignalSource):
    """Cycles through a small set of discrete states — enum ESVs.

    e.g. door open/closed, gear position.  These are the paper's
    ``#ESV (Enum)`` column: no numeric formula exists for them.
    """

    def __init__(self, states: Sequence[int], dwell_s: float = 5.0) -> None:
        if not states:
            raise ValueError("need at least one state")
        super().__init__(min(states), max(states))
        self.states = list(states)
        self.dwell_s = dwell_s

    def sample(self, t: float) -> int:
        index = int(t / self.dwell_s) % len(self.states)
        return self.states[index]
