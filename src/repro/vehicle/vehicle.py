"""The virtual vehicle: ECUs wired to a CAN bus through transport endpoints.

A :class:`Vehicle` owns one bus, a gateway-style address map, and any number
of :class:`~repro.vehicle.ecu.SimulatedEcu` instances.  Each ECU is bound to
the bus with one of the three transport flavours the paper encounters
(ISO-TP, VW TP 2.0, BMW extended addressing).  Diagnostic tools obtain a
tool-side endpoint from :meth:`Vehicle.tester_endpoint`; the OBD-port
sniffer attaches with :meth:`Vehicle.attach_sniffer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..can import SimulatedCanBus, Sniffer
from ..simtime import SimClock
from ..transport import BmwEndpoint, IsoTpEndpoint, VwTpEndpoint
from .ecu import SimulatedEcu

TESTER_ADDRESS = 0xF1  # conventional tester address for extended addressing


class TransportKind(Enum):
    """Which transport the vehicle's diagnostic stack uses."""

    ISOTP = "isotp"
    VWTP = "vwtp"
    BMW = "bmw"


@dataclass
class EcuBinding:
    """Bus addressing for one ECU."""

    ecu: SimulatedEcu
    kind: TransportKind
    ecu_tx_id: int  # CAN id the ECU transmits on (tool listens here)
    ecu_rx_id: int  # CAN id the ECU listens on (tool transmits here)
    ecu_address: int  # node address for VW TP 2.0 / BMW addressing
    endpoint: object = None


class Vehicle:
    """A simulated vehicle: bus + ECUs + transport bindings."""

    def __init__(
        self,
        model: str,
        transport: TransportKind = TransportKind.ISOTP,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.model = model
        self.transport = transport
        self.clock = clock or SimClock()
        self.bus = SimulatedCanBus(self.clock, name=f"{model}-can")
        self.bindings: Dict[str, EcuBinding] = {}
        self._tester_count = 0

    # ----------------------------------------------------------------- wiring

    def add_ecu(
        self,
        ecu: SimulatedEcu,
        ecu_tx_id: int,
        ecu_rx_id: int,
        ecu_address: int = 0,
    ) -> EcuBinding:
        """Attach ``ecu`` to the bus using this vehicle's transport."""
        if ecu.name in self.bindings:
            raise ValueError(f"duplicate ECU name {ecu.name!r} in {self.model}")
        binding = EcuBinding(ecu, self.transport, ecu_tx_id, ecu_rx_id, ecu_address)

        def respond(payload: bytes, _binding=binding) -> None:
            if payload and payload[0] in ecu.slow_services:
                # Slow operation: acknowledge with responsePending (NRC
                # 0x78) first, exactly like real ECUs running long
                # routines, then deliver the final response.
                from ..diagnostics.messages import Nrc, negative_response

                ecu.pending_responses_sent += 1
                _binding.endpoint.send(
                    negative_response(payload[0], Nrc.RESPONSE_PENDING)
                )
                self.clock.advance(0.05)
            response = ecu.handle_request(payload)
            if response is not None:
                _binding.endpoint.send(response)

        node_name = f"{self.model}/{ecu.name}"
        if self.transport == TransportKind.ISOTP:
            binding.endpoint = IsoTpEndpoint(
                self.bus, node_name, tx_id=ecu_tx_id, rx_id=ecu_rx_id, on_message=respond
            )
        elif self.transport == TransportKind.VWTP:
            binding.endpoint = VwTpEndpoint(
                self.bus,
                node_name,
                ecu_address=ecu_address,
                tx_id=ecu_tx_id,
                rx_id=ecu_rx_id,
                is_tester=False,
                on_message=respond,
            )
        else:
            binding.endpoint = BmwEndpoint(
                self.bus,
                node_name,
                tx_id=ecu_tx_id,
                rx_id=ecu_rx_id,
                ecu_address=TESTER_ADDRESS,  # ECU->tool frames carry tester addr
                on_message=respond,
            )
        self.bindings[ecu.name] = binding
        return binding

    # ----------------------------------------------------------------- access

    @property
    def ecus(self) -> List[SimulatedEcu]:
        return [binding.ecu for binding in self.bindings.values()]

    def ecu(self, name: str) -> SimulatedEcu:
        return self.bindings[name].ecu

    def attach_sniffer(self) -> Sniffer:
        """Attach an OBD-port sniffer capturing every frame on the bus."""
        return Sniffer().attach_to(self.bus)

    def tester_endpoint(self, ecu_name: str, tester: str = "tester"):
        """Create the tool-side endpoint for talking to ``ecu_name``.

        For VW TP 2.0 the channel-setup handshake is performed before the
        endpoint is returned.
        """
        binding = self.bindings[ecu_name]
        self._tester_count += 1
        node_name = f"{tester}#{self._tester_count}->{ecu_name}"
        if binding.kind == TransportKind.ISOTP:
            return IsoTpEndpoint(
                self.bus,
                node_name,
                tx_id=binding.ecu_rx_id,
                rx_id=binding.ecu_tx_id,
            )
        if binding.kind == TransportKind.VWTP:
            endpoint = VwTpEndpoint(
                self.bus,
                node_name,
                ecu_address=binding.ecu_address,
                tx_id=binding.ecu_rx_id,
                rx_id=binding.ecu_tx_id,
                is_tester=True,
            )
            endpoint.connect()
            return endpoint
        return BmwEndpoint(
            self.bus,
            node_name,
            tx_id=binding.ecu_rx_id,
            rx_id=binding.ecu_tx_id,
            ecu_address=binding.ecu_address,  # tool->ECU frames carry ECU addr
        )

    def release_tester(self, endpoint) -> None:
        """Detach a tester endpoint created by :meth:`tester_endpoint`."""
        self.bus.detach(endpoint.node.name)

    # -------------------------------------------------------------- dashboard

    def dashboard(self) -> Dict[str, float]:
        """Instrument-cluster readout at the current simulated time.

        Used as ground truth by the Tab. 7 validation experiment.
        """
        values: Dict[str, float] = {}
        now = self.clock.now()
        for binding in self.bindings.values():
            values.update(binding.ecu.dashboard_values(now))
        return values
