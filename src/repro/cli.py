"""Command-line interface.

The separable workflow a downstream user runs::

    python -m repro list-cars
    python -m repro collect --car D --out capture_d
    python -m repro reverse capture_d --report report_d.txt
    python -m repro fleet --cars A K R
    python -m repro attack --car D
    python -m repro apps

``collect`` and ``reverse`` round-trip through the on-disk capture format
of :mod:`repro.persistence`, so externally recorded candump + video data in
the same layout can be analysed too.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


def _add_gp_batch_args(
    parser: argparse.ArgumentParser, batch_default: bool = False
) -> None:
    """The shared ``--gp-batch`` / ``--gp-islands`` flags."""
    parser.add_argument(
        "--gp-batch",
        action=argparse.BooleanOptionalAction,
        default=batch_default,
        help="merge same-shape GP fitness evaluations across ESVs into "
        "single batched matrix passes (bit-identical results)",
    )
    parser.add_argument(
        "--gp-islands",
        type=int,
        metavar="N",
        default=0,
        help="shorthand for --gp-backend island --gp-workers N: N "
        "persistent island workers, each evolving its slice of the ESVs "
        "in one batched pass, reading datasets from shared memory",
    )


def _add_formula_backend_arg(parser: argparse.ArgumentParser) -> None:
    """The shared ``--formula-backend`` flag.

    Deliberately distinct from ``--gp-backend``: this picks *what solver*
    recovers each formula (GP search, closed-form least squares, or
    linear-first-GP-fallback), while ``--gp-backend`` picks *where* GP
    fitness evaluations execute (serial/thread/process/island).
    """
    parser.add_argument(
        "--formula-backend",
        choices=("gp", "linear", "hybrid"),
        default="gp",
        help="formula-inference backend: 'gp' is the paper's genetic "
        "search, 'linear' a closed-form least-squares dictionary (exact "
        "fits only), 'hybrid' tries linear first and falls back to GP "
        "for the hard tail (same formulas as gp, much faster); distinct "
        "from --gp-backend, which picks where GP evaluations *execute*",
    )


def _resolve_gp_flags(args: argparse.Namespace) -> None:
    """Expand the ``--gp-islands`` shorthand onto backend and workers."""
    islands = getattr(args, "gp_islands", 0)
    if islands:
        args.gp_backend = "island"
        args.gp_workers = max(getattr(args, "gp_workers", 1), islands)


def _add_observability_args(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace-out`` / ``--metrics-out`` / ``--profile`` flags."""
    parser.add_argument(
        "--trace-out",
        metavar="DIR",
        default="",
        help="record a span trace and write trace.json (Chrome trace "
        "format — open in Perfetto) plus spans.jsonl to this directory",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default="",
        help="write the unified metrics snapshot to this file: Prometheus "
        "text format when the name ends in .prom, canonical JSON otherwise",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage wall-clock profile table after the run",
    )


def _observability_requested(args: argparse.Namespace) -> bool:
    return bool(args.trace_out or args.metrics_out or args.profile)


def _emit_observability(args: argparse.Namespace, tracer, snapshot: dict) -> None:
    """Write the trace/metrics artifacts the flags asked for.

    Everything goes to stderr: stdout may be carrying the report itself
    (``reverse --format json``) and must stay machine-parseable.
    """
    from .observability import profile_table, prometheus_text, snapshot_json

    if args.trace_out:
        chrome_path, jsonl_path = tracer.save(args.trace_out)
        print(f"trace written to {chrome_path} (+ {jsonl_path.name})", file=sys.stderr)
    if args.metrics_out:
        path = Path(args.metrics_out)
        if path.suffix == ".prom":
            path.write_text(prometheus_text(snapshot))
        else:
            path.write_text(snapshot_json(snapshot) + "\n")
        print(f"metrics written to {path}", file=sys.stderr)
    if args.profile:
        print(profile_table(tracer), file=sys.stderr)


def _cmd_list_cars(args: argparse.Namespace) -> int:
    from .vehicle import CAR_SPECS

    print(f"{'Key':<5}{'Model':<24}{'Protocol':<10}{'Tool':<14}{'#ESV':>6}{'#Enum':>7}{'#ECR':>6}")
    for spec in CAR_SPECS.values():
        print(
            f"{spec.key:<5}{spec.model:<24}{spec.protocol.name:<10}"
            f"{spec.tool:<14}{spec.formula_esvs:>6}{spec.enum_esvs:>7}{spec.ecrs:>6}"
        )
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    from .cps import DataCollector
    from .persistence import save_capture
    from .tools import make_tool_for_car
    from .vehicle import CAR_SPECS, build_car

    key = args.car.upper()
    if key not in CAR_SPECS:
        print(f"unknown car {key!r}; see `list-cars`", file=sys.stderr)
        return 2
    car = build_car(key)
    tool = make_tool_for_car(key, car)
    collector = DataCollector(
        tool, read_duration_s=args.duration, camera_offset_s=args.camera_offset
    )
    capture = collector.collect()
    directory = save_capture(capture, args.out)
    print(
        f"collected {len(capture.can_log)} CAN frames, {len(capture.video)} "
        f"video frames, {len(capture.clicks)} clicks -> {directory}"
    )
    return 0


def _cmd_reverse(args: argparse.Namespace) -> int:
    from .can import NoiseProfile
    from .core import DPReverser, GpConfig, ReverserConfig
    from .observability import Tracer, build_snapshot
    from .persistence import load_capture
    from .transport import DEFAULT_HARDENING

    try:
        noise = NoiseProfile.parse(args.noise_profile, seed=args.noise_seed)
    except ValueError as error:
        print(f"bad --noise-profile: {error}", file=sys.stderr)
        return 2
    capture = load_capture(args.capture)
    _resolve_gp_flags(args)
    tracer = Tracer() if _observability_requested(args) else None
    start = time.perf_counter()
    config = ReverserConfig(
        gp_config=GpConfig(seed=args.seed, compiled=args.gp_compiled),
        gp_workers=args.gp_workers,
        gp_backend=args.gp_backend,
        gp_batch=args.gp_batch,
        gp_memo_dir=args.gp_memo,
        formula_backend=args.formula_backend,
        noise=noise,
        hardening=DEFAULT_HARDENING if args.harden else None,
        trace=tracer,
    )
    reverser = DPReverser(config)
    report = reverser.reverse_engineer(capture)
    elapsed = time.perf_counter() - start
    if tracer is not None:
        snapshot = build_snapshot(
            diagnostics=report.diagnostics,
            fault_counts=report.noise_counts,
            memo_stats=reverser.memo_stats if args.gp_memo else None,
            inference_stats=reverser.inference_stats or None,
            tracer=tracer,
        )
        _emit_observability(args, tracer, snapshot)
    if args.format == "json":
        text = report.to_json()
    elif args.format == "markdown":
        text = report.to_markdown()
    else:
        text = report.summary() + f"\n\nReverse engineering took {elapsed:.1f} s"
        if args.gp_memo:
            stats = reverser.memo_stats
            text += (
                f" (formula memo: {stats['hits']} hit(s), "
                f"{stats['misses']} miss(es))"
            )
    if args.report:
        Path(args.report).write_text(text + "\n")
        print(f"report written to {args.report}")
    else:
        print(text)
    return 0


def _cmd_scan(args: argparse.Namespace) -> int:
    from .scanner import scan_vehicle
    from .vehicle import CAR_SPECS, build_car

    key = args.car.upper()
    if key not in CAR_SPECS:
        print(f"unknown car {key!r}", file=sys.stderr)
        return 2
    car = build_car(key)
    reports = scan_vehicle(car)
    for ecu_name, report in reports.items():
        identifiers = ", ".join(
            f"{h.identifier:04X}" for h in report.hits[: args.limit]
        )
        suffix = " ..." if len(report.hits) > args.limit else ""
        print(
            f"{ecu_name}: {len(report.hits)} identifiers "
            f"({report.probes_sent} probes): {identifiers}{suffix}"
        )
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    from .core import DPReverser, GpConfig, ReverserConfig, check_formula
    from .cps import DataCollector
    from .tools import make_tool_for_car
    from .vehicle import CAR_SPECS, build_car, ground_truth_formulas

    keys = [k.upper() for k in (args.cars or sorted(CAR_SPECS))]
    total = correct_total = 0
    print(f"{'Car':<5}{'Model':<24}{'#ESV':>6}{'Correct':>9}{'Prec':>8}{'sec':>7}")
    for key in keys:
        start = time.perf_counter()
        car = build_car(key)
        tool = make_tool_for_car(key, car)
        capture = DataCollector(tool, read_duration_s=args.duration).collect()
        reverser = DPReverser(ReverserConfig(gp_config=GpConfig(seed=args.seed)))
        report = reverser.reverse_engineer(capture)
        truth = ground_truth_formulas(car)
        correct = sum(
            esv.identifier in truth
            and check_formula(esv.formula, truth[esv.identifier], esv.samples)
            for esv in report.formula_esvs
        )
        n = len(report.formula_esvs)
        total += n
        correct_total += correct
        print(
            f"{key:<5}{CAR_SPECS[key].model:<24}{n:>6}{correct:>9}"
            f"{correct / n if n else 1:>8.1%}{time.perf_counter() - start:>7.1f}"
        )
    if total:
        print(f"\nTotal precision: {correct_total}/{total} = {correct_total/total:.1%}")
    return 0


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from .can import NoiseProfile
    from .observability import Tracer, build_snapshot
    from .runtime import (
        CheckpointStore,
        EventLog,
        Scheduler,
        SchedulerConfig,
        fleet_job_specs,
    )

    noise_spec = args.noise_profile or ""
    try:
        # Normalise "off"/"none" to the empty spec so disabled noise keeps
        # job ids (and checkpoints) identical to a run without the flag.
        if noise_spec and NoiseProfile.parse(noise_spec) is None:
            noise_spec = ""
    except ValueError as error:
        print(f"bad --noise-profile: {error}", file=sys.stderr)
        return 2
    _resolve_gp_flags(args)
    tracer = Tracer() if _observability_requested(args) else None
    try:
        specs = fleet_job_specs(
            args.cars,
            seed=args.seed,
            read_duration_s=args.duration,
            gp_workers=args.gp_workers,
            gp_backend=args.gp_backend,
            gp_batch=args.gp_batch,
            gp_memo_dir=args.gp_memo,
            formula_backend=args.formula_backend,
            noise_spec=noise_spec,
            noise_seed=args.noise_seed,
            trace=tracer is not None,
        )
    except ValueError as error:
        print(f"{error}; see `list-cars`", file=sys.stderr)
        return 2

    pool = args.pool or ("process" if args.workers > 1 else "serial")
    checkpoint = events = None
    resume_dir = None
    if args.resume:
        resume_dir = Path(args.resume)
        try:
            checkpoint = CheckpointStore(resume_dir)
        except OSError as error:
            print(f"cannot use {resume_dir} as checkpoint directory: {error}", file=sys.stderr)
            return 2
        events = EventLog(resume_dir / "events.jsonl")

    try:
        config = SchedulerConfig(
            workers=args.workers,
            pool=pool,
            max_retries=args.retries,
            timeout_s=args.timeout,
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    scheduler = Scheduler(config, checkpoint=checkpoint, events=events, tracer=tracer)
    report = scheduler.run(specs)
    print(report.summary())
    if tracer is not None:
        snapshot = build_snapshot(registry=scheduler.metrics, tracer=tracer)
        _emit_observability(args, tracer, snapshot)
    if events is not None:
        events.close()
    if resume_dir is not None:
        path = report.save(resume_dir / "run_report.json")
        print(f"run report written to {path}")
    return 0 if not report.failed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .core import GpConfig
    from .service import DiagnosticServer, ServiceConfig

    _resolve_gp_flags(args)
    # `kill <pid>` must drain like Ctrl-C: route SIGTERM through the same
    # KeyboardInterrupt path so shards stop cleanly and --metrics-out /
    # --trace-out still emit (the default handler would skip the finally).
    def _drain(_signo: int, _frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _drain)
    from .transport import DEFAULT_HARDENING

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        rate_limit=args.rate_limit,
        status_interval=args.status_interval,
        analysis_workers=args.analysis_workers,
        gp_config=GpConfig(seed=args.seed),
        gp_workers=args.gp_workers,
        gp_backend=args.gp_backend,
        gp_batch=args.gp_batch,
        gp_memo_dir=args.gp_memo,
        formula_backend=args.formula_backend,
        trace=_observability_requested(args),
        session_idle_timeout=args.idle_timeout,
        hardening=DEFAULT_HARDENING if args.harden else None,
    )

    if args.shards > 1:
        from .service.shards import ShardSupervisor

        supervisor = ShardSupervisor(config, args.shards)
        supervisor.start()
        print(
            f"listening on {config.host}:{supervisor.port} "
            f"({args.shards} shards)",
            flush=True,
        )
        try:
            if args.sessions > 0:
                supervisor.wait_for_sessions(args.sessions)
            else:
                while True:
                    time.sleep(0.5)
        except KeyboardInterrupt:
            pass
        finally:
            supervisor.stop()
        if _observability_requested(args):
            _emit_observability(args, supervisor.tracer, supervisor.merged_snapshot())
        return 0

    server = DiagnosticServer(config)

    async def _run() -> None:
        await server.start()
        print(f"listening on {config.host}:{server.port}", flush=True)
        try:
            if args.sessions > 0:
                while (
                    server.metrics.counter("service.sessions_completed").value
                    + server.metrics.counter("service.sessions_rejected").value
                    < args.sessions
                ):
                    await asyncio.sleep(0.05)
            else:
                await server.serve_forever()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    if _observability_requested(args):
        _emit_observability(args, server.tracer, server.snapshot())
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from .attacks import run_table13
    from .vehicle import CAR_SPECS, build_car

    key = args.car.upper()
    if key not in CAR_SPECS:
        print(f"unknown car {key!r}", file=sys.stderr)
        return 2
    car = build_car(key)
    results = run_table13(car)
    for result in results:
        status = "OK" if result.success else "FAILED"
        print(f"[{status}] {result.description}: {result.messages[0]} -> {result.observed_effect}")
    print(f"\n{sum(r.success for r in results)}/{len(results)} attacks succeeded")
    return 0 if all(r.success for r in results) else 1


def _cmd_apps(args: argparse.Namespace) -> int:
    from .apps import analyze_corpus, build_corpus

    apps = build_corpus()
    analysis = analyze_corpus(apps)
    for name, counts in analysis.per_app.items():
        if counts:
            summary = ", ".join(f"{k}: {v}" for k, v in counts.items())
            print(f"{name:<32} {summary}")
    with_formulas = sum(1 for c in analysis.per_app.values() if c)
    print(f"\n{with_formulas} of {len(apps)} apps contain extractable formulas")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DP-Reverser reproduction toolkit"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list-cars", help="show the 18-vehicle fleet").set_defaults(
        func=_cmd_list_cars
    )

    collect = commands.add_parser("collect", help="run a data-collection campaign")
    collect.add_argument("--car", required=True, help="fleet key A..R")
    collect.add_argument("--out", required=True, help="capture output directory")
    collect.add_argument("--duration", type=float, default=30.0, help="seconds per live read")
    collect.add_argument("--camera-offset", type=float, default=0.0, help="camera clock offset")
    collect.set_defaults(func=_cmd_collect)

    reverse = commands.add_parser("reverse", help="reverse engineer a saved capture")
    reverse.add_argument("capture", help="capture directory from `collect`")
    reverse.add_argument("--report", help="write the report to this file")
    reverse.add_argument(
        "--format", choices=("text", "json", "markdown"), default="text"
    )
    reverse.add_argument("--seed", type=int, default=2)
    reverse.add_argument(
        "--gp-workers",
        type=int,
        default=1,
        help="workers for per-ESV formula inference (identical results)",
    )
    reverse.add_argument(
        "--gp-backend",
        choices=("auto", "serial", "thread", "process", "island"),
        default="auto",
        help="per-ESV GP *execution* backend (where fitness evaluations "
        "run, not which solver — see --formula-backend); auto uses a "
        "process pool when --gp-workers > 1, island keeps persistent "
        "workers fed over shared memory (results are identical on every "
        "backend)",
    )
    _add_formula_backend_arg(reverse)
    _add_gp_batch_args(reverse)
    reverse.add_argument(
        "--gp-memo",
        metavar="DIR",
        default="",
        help="formula memo directory: runs over already-solved ESV "
        "datasets recall the stored formulas instead of re-running GP",
    )
    reverse.add_argument(
        "--gp-compiled",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="use the compiled GP evaluator (--no-gp-compiled falls back "
        "to the recursive interpreter; results are bit-identical)",
    )
    reverse.add_argument(
        "--noise-profile",
        default="",
        help="inject capture faults before analysis: 'default' or "
        "'drop=0.02,dup=0.01,bit=0.005,reorder=0.01,truncate=0.001,"
        "foreign=0.01' (off when omitted)",
    )
    reverse.add_argument(
        "--noise-seed",
        type=int,
        default=0,
        help="seed of the fault-injection stream (deterministic per seed)",
    )
    reverse.add_argument(
        "--harden",
        action="store_true",
        help="decode with the hardened transport stack (bounded speculative "
        "reassembly, byte budgets, anomaly counters); clean captures "
        "produce byte-identical reports either way",
    )
    _add_observability_args(reverse)
    reverse.set_defaults(func=_cmd_reverse)

    scan = commands.add_parser("scan", help="actively enumerate a car's identifiers")
    scan.add_argument("--car", required=True)
    scan.add_argument("--limit", type=int, default=12, help="ids shown per ECU")
    scan.set_defaults(func=_cmd_scan)

    fleet = commands.add_parser("fleet", help="evaluate the whole fleet (Tab. 6)")
    fleet.add_argument("--cars", nargs="*", help="subset of fleet keys")
    fleet.add_argument("--duration", type=float, default=30.0)
    fleet.add_argument("--seed", type=int, default=2)
    fleet.set_defaults(func=_run_fleet)

    fleet_run = commands.add_parser(
        "fleet-run",
        help="orchestrated fleet sweep: worker pools, retries, checkpoint/resume",
    )
    fleet_run.add_argument("--cars", nargs="*", help="subset of fleet keys")
    fleet_run.add_argument("--workers", type=int, default=1, help="pool size")
    fleet_run.add_argument(
        "--pool",
        choices=("serial", "thread", "process"),
        help="worker backend (default: process when --workers > 1, else serial)",
    )
    fleet_run.add_argument(
        "--resume",
        metavar="DIR",
        help="checkpoint directory; completed cars found there are skipped "
        "and new results, events.jsonl and run_report.json are written to it",
    )
    fleet_run.add_argument("--retries", type=int, default=2, help="retries per job")
    fleet_run.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds"
    )
    fleet_run.add_argument("--duration", type=float, default=30.0)
    fleet_run.add_argument("--seed", type=int, default=2)
    fleet_run.add_argument(
        "--gp-workers",
        type=int,
        default=1,
        help="per-ESV inference workers inside each job (identical results)",
    )
    fleet_run.add_argument(
        "--gp-backend",
        choices=("auto", "serial", "thread", "process", "island"),
        default="auto",
        help="per-ESV GP *execution* backend inside each job (where "
        "fitness evaluations run — see --formula-backend for the solver); "
        "auto uses a process pool when --gp-workers > 1, island keeps "
        "persistent workers fed over shared memory",
    )
    _add_formula_backend_arg(fleet_run)
    _add_gp_batch_args(fleet_run)
    fleet_run.add_argument(
        "--gp-memo",
        metavar="DIR",
        default="",
        help="formula memo directory shared by every job: re-runs and "
        "resumed sweeps recall already-solved ESVs instead of re-running GP",
    )
    fleet_run.add_argument(
        "--noise-profile",
        default="",
        help="capture-fault profile applied inside every job (see `reverse "
        "--noise-profile`); changes job ids, so noisy sweeps checkpoint "
        "separately from clean ones",
    )
    fleet_run.add_argument(
        "--noise-seed",
        type=int,
        default=0,
        help="base fault seed; each car derives an independent stream",
    )
    _add_observability_args(fleet_run)
    fleet_run.set_defaults(func=_cmd_fleet_run)

    serve = commands.add_parser(
        "serve",
        help="run the streaming diagnostic server (live frame streams in, "
        "reverse reports out)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--max-sessions",
        type=int,
        default=1000,
        help="concurrent session cap; further connections are rejected",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="per-session ingest limit in records/second (0 = unlimited); "
        "enforced by stalling the reader, which flow-controls the client",
    )
    serve.add_argument(
        "--status-interval",
        type=int,
        default=0,
        help="push an interim status snapshot every N assembled messages "
        "(0 = only the final report)",
    )
    serve.add_argument(
        "--analysis-workers",
        type=int,
        default=2,
        help="worker threads the event loop offloads analysis onto",
    )
    serve.add_argument("--seed", type=int, default=2)
    serve.add_argument(
        "--gp-workers",
        type=int,
        default=1,
        help="workers for per-ESV formula inference (identical results)",
    )
    serve.add_argument(
        "--gp-backend",
        choices=("auto", "serial", "thread", "process", "island"),
        default="auto",
        help="per-ESV GP *execution* backend for finalize (where fitness "
        "evaluations run — see --formula-backend for the solver); auto "
        "resolves to island (persistent workers, shared-memory datasets)",
    )
    _add_formula_backend_arg(serve)
    _add_gp_batch_args(serve, batch_default=True)
    serve.add_argument(
        "--gp-memo",
        metavar="DIR",
        default="",
        help="formula memo directory shared across all sessions: tenants "
        "streaming the same model reuse each other's inferred formulas",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="pre-forked server processes sharing the port via SO_REUSEPORT "
        "(1 = single process); the parent supervises restarts and merges "
        "per-shard metrics/trace into the single observability artifacts",
    )
    serve.add_argument(
        "--sessions",
        type=int,
        default=0,
        help="exit after this many sessions complete (0 = serve forever)",
    )
    serve.add_argument(
        "--harden",
        action="store_true",
        help="run every session's decoders with the hardened transport "
        "stack (bounded reassembly, anomaly counters under "
        "service.anomaly.*)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=0.0,
        help="evict sessions idle longer than this many seconds "
        "(slowloris defense; 0 = never)",
    )
    _add_observability_args(serve)
    serve.set_defaults(func=_cmd_serve)

    attack = commands.add_parser("attack", help="run the Tab. 13 attack set")
    attack.add_argument("--car", required=True)
    attack.set_defaults(func=_cmd_attack)

    commands.add_parser("apps", help="mine the telematics-app corpus (Tab. 12)").set_defaults(
        func=_cmd_apps
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
