"""Attack replay (§9.3 / Tab. 13).

Demonstrates that reverse-engineered diagnostic messages are sufficient to
read data, actuate components and reset ECUs on a *running* vehicle: an
attacker node (a compromised OBD dongle / T-Box) injects the recovered
request messages and checks the vehicle's reaction.

``AttackReplayer`` works from raw payload bytes — exactly what DP-Reverser
outputs — with no access to the vehicle's internals; success is judged by
the response on the bus plus the actuator/routine action logs that a real
experimenter would observe physically (doors unlocking, wipers moving).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..diagnostics.messages import is_negative_response
from ..vehicle import Vehicle
from ..vehicle.ecu import SimulatedEcu


@dataclass
class AttackResult:
    """Outcome of injecting one diagnostic message (or sequence)."""

    description: str
    messages: List[str]  # hex payloads injected
    responses: List[str]
    success: bool
    observed_effect: str


class AttackReplayer:
    """Injects reverse-engineered messages into a running vehicle."""

    def __init__(self, vehicle: Vehicle, attacker_name: str = "obd-dongle") -> None:
        self.vehicle = vehicle
        self.attacker_name = attacker_name
        self._endpoints = {}

    def _endpoint(self, ecu_name: str):
        if ecu_name not in self._endpoints:
            self._endpoints[ecu_name] = self.vehicle.tester_endpoint(
                ecu_name, tester=self.attacker_name
            )
        return self._endpoints[ecu_name]

    def inject(self, ecu_name: str, payload: bytes) -> Optional[bytes]:
        """Send one payload and return the ECU's final response.

        Interim ``responsePending`` (NRC 0x78) answers are drained, as any
        real injection tool must.
        """
        endpoint = self._endpoint(ecu_name)
        endpoint.send(payload)
        response = endpoint.receive()
        retries = 0
        while (
            response is not None
            and len(response) >= 3
            and response[0] == 0x7F
            and response[2] == 0x78
            and retries < 8
        ):
            response = endpoint.receive()
            retries += 1
        return response

    # ------------------------------------------------------------- primitives

    def read_data(self, ecu_name: str, payload: bytes, description: str) -> AttackResult:
        """Replay a read request (e.g. ``22 DB E5`` — read brake pressure)."""
        response = self.inject(ecu_name, payload)
        ok = response is not None and not is_negative_response(response)
        return AttackResult(
            description=description,
            messages=[payload.hex(" ").upper()],
            responses=[response.hex(" ").upper() if response else "<none>"],
            success=ok,
            observed_effect=f"read {len(response) - 1} data bytes" if ok else "rejected",
        )

    def control_component(
        self,
        ecu_name: str,
        actuator_id: int,
        control_state: bytes,
        description: str,
        service: int,
        unlock_mask: Optional[int] = None,
    ) -> AttackResult:
        """Replay the full three-message IO-control procedure.

        The replayed sequence is exactly what ECR analysis recovered:
        freeze (0x02) → short-term adjustment (0x03 + state) → return
        control (0x00), preceded by the session/security handshake when
        the target ECU demands it.
        """
        messages: List[bytes] = []
        if service == 0x2F:
            did = actuator_id.to_bytes(2, "big")
            messages = [
                bytes([0x2F]) + did + bytes([0x02]),
                bytes([0x2F]) + did + bytes([0x03]) + control_state,
                bytes([0x2F]) + did + bytes([0x00]),
            ]
        else:
            messages = [
                bytes([0x30, actuator_id, 0x02]),
                bytes([0x30, actuator_id, 0x03]) + control_state,
                bytes([0x30, actuator_id, 0x00]),
            ]
        if unlock_mask is not None:
            self._unlock(ecu_name, unlock_mask)
        responses: List[Optional[bytes]] = []
        for message in messages:
            responses.append(self.inject(ecu_name, message))
            self.vehicle.clock.advance(0.3)
        ok = all(r is not None and not is_negative_response(r) for r in responses)
        actuator = self._find_actuator(ecu_name, actuator_id)
        effect = ""
        if actuator is not None and actuator.adjustments():
            effect = f"{actuator.name} actuated ({len(actuator.adjustments())} adjustments)"
        return AttackResult(
            description=description,
            messages=[m.hex(" ").upper() for m in messages],
            responses=[r.hex(" ").upper() if r else "<none>" for r in responses],
            success=ok and bool(effect),
            observed_effect=effect or "no physical effect observed",
        )

    def run_routine(
        self, ecu_name: str, routine_id: int, description: str
    ) -> AttackResult:
        """Replay a BMW-style routine-control actuation (``31 01 <id>``)."""
        payload = bytes([0x31, 0x01, routine_id])
        response = self.inject(ecu_name, payload)
        ok = response is not None and not is_negative_response(response)
        ecu = self.vehicle.ecu(ecu_name)
        routine = ecu.routines.get(routine_id)
        effect = ""
        if routine is not None and routine.runs:
            effect = f"{routine.name} started"
        return AttackResult(
            description=description,
            messages=[payload.hex(" ").upper()],
            responses=[response.hex(" ").upper() if response else "<none>"],
            success=ok and bool(effect),
            observed_effect=effect or "no effect",
        )

    def reset_ecu(self, ecu_name: str, description: str) -> AttackResult:
        """Replay an ECU reset (``11 01``)."""
        ecu = self.vehicle.ecu(ecu_name)
        before = ecu.reset_count
        response = self.inject(ecu_name, bytes([0x11, 0x01]))
        ok = response is not None and not is_negative_response(response)
        resetted = ecu.reset_count > before
        return AttackResult(
            description=description,
            messages=["11 01"],
            responses=[response.hex(" ").upper() if response else "<none>"],
            success=ok and resetted,
            observed_effect=f"{ecu_name} reset" if resetted else "no reset",
        )

    # --------------------------------------------------------------- helpers

    def _unlock(self, ecu_name: str, mask: int) -> bool:
        response = self.inject(ecu_name, bytes([0x10, 0x03]))
        response = self.inject(ecu_name, bytes([0x27, 0x01]))
        if response is None or is_negative_response(response) or len(response) < 4:
            return False
        seed = int.from_bytes(response[2:4], "big")
        if seed == 0:
            return True
        key = (seed ^ mask) & 0xFFFF
        response = self.inject(ecu_name, bytes([0x27, 0x02]) + key.to_bytes(2, "big"))
        return response is not None and not is_negative_response(response)

    def _find_actuator(self, ecu_name: str, actuator_id: int):
        ecu = self.vehicle.ecu(ecu_name)
        return ecu.actuators.get(actuator_id)
