"""Seeded TP-layer adversaries against our own transport stack.

PR 3's :class:`~repro.can.noise.FaultInjector` models *accidents* — a lossy
sniffer on a healthy bus.  This module models *adversaries*: deterministic,
seeded attack generators that weaponise exactly the protocol knowledge
DP-Reverser recovers (PCI layout, sequence numbering, flow control,
K-Line framing) against the reassembly stack itself.

Two attachment styles, mirroring how the attacks reach a real fleet:

* **capture attacks** (:class:`CaptureAttack` subclasses) transform a frame
  stream the way :class:`~repro.can.noise.FaultInjector` does —
  ``feed(frame) -> [frames]`` plus ``flush()`` — injecting hostile frames
  between the victim's.  They attack the *offline/streaming decode path*
  (``StreamAssembler`` and everything above it).
* **live attacks** (:class:`FcSpoofAttacker`) attach to a
  :class:`~repro.can.bus.SimulatedCanBus` as reactive nodes and race the
  genuine peer's flow control, attacking the *sender-side endpoint*.

Every attack takes a ``seed`` and is fully deterministic; the attack/defense
matrix in ``benchmarks/test_attack_defense_matrix.py`` runs each one against
the unhardened and hardened stacks and regression-gates the recovery floor.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..can import CanFrame
from ..transport.isotp import FlowControl, FlowStatus, PciType

#: CAN-id block the exhaustion attack spreads its spoofed streams over.
SPOOF_BASE_ID = 0x700


class CaptureAttack:
    """Base class for frame-stream attacks (FaultInjector-shaped).

    Subclasses implement :meth:`feed`; ``injected`` counts hostile frames
    emitted, which reports use to size the attack.
    """

    name = "attack"

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        self.injected = 0

    def feed(self, frame: CanFrame) -> List[CanFrame]:
        raise NotImplementedError

    def flush(self) -> List[CanFrame]:
        return []

    def apply(self, frames) -> List[CanFrame]:
        """Transform a whole capture: per-frame feed plus final flush."""
        out: List[CanFrame] = []
        for frame in frames:
            out.extend(self.feed(frame))
        out.extend(self.flush())
        return out

    def _hostile(self, can_id: int, data: bytes, like: CanFrame) -> CanFrame:
        self.injected += 1
        return CanFrame(can_id, data, timestamp=like.timestamp)


class ReassemblyExhaustion(CaptureAttack):
    """Never-completed multi-frame streams across many spoofed CAN ids.

    Every ``interval`` victim frames the attacker opens (or extends) a
    hostile stream on one of ``spoofed_ids`` ids: a first frame announcing
    the maximum 12-bit length, then consecutive frames that never reach
    it.  Unhardened assembly buffers every one of those streams forever;
    the hardened per-stream and global byte budgets shed them by LRU.
    The victim's own streams live on different ids, so recovery is
    unaffected — the damage axis is memory.
    """

    name = "exhaustion"

    def __init__(
        self,
        seed: int = 0,
        spoofed_ids: int = 32,
        interval: int = 2,
        base_id: int = SPOOF_BASE_ID,
    ) -> None:
        super().__init__(seed)
        self.spoofed_ids = spoofed_ids
        self.interval = interval
        self.base_id = base_id
        self._count = 0
        self._sequences: Dict[int, int] = {}  # started streams -> next CF seq

    def feed(self, frame: CanFrame) -> List[CanFrame]:
        out = [frame]
        self._count += 1
        if self._count % self.interval:
            return out
        can_id = self.base_id + self.rng.randrange(self.spoofed_ids)
        sequence = self._sequences.get(can_id)
        if sequence is None:
            # FF announcing 0xFFF bytes that will never all arrive.
            self._sequences[can_id] = 1
            out.append(self._hostile(can_id, bytes([0x1F, 0xFF]) + b"\xaa" * 6, frame))
        else:
            self._sequences[can_id] = (sequence + 1) % 16
            out.append(
                self._hostile(can_id, bytes([0x20 | sequence]) + b"\xaa" * 7, frame)
            )
        return out


class SessionStarvation(CaptureAttack):
    """Hostile first frames raced into the victim's own CAN-id space.

    Immediately after each victim first frame, the attacker injects its
    own first frame on the *same* id.  The unhardened single-context
    decoder abandons the victim's transfer and the hostile context then
    swallows the victim's consecutive frames, so the victim's message
    never completes.  Hardened speculative reassembly keeps both contexts
    and the victim's completes at its announced length.
    """

    name = "starvation"

    def __init__(self, seed: int = 0, offset: int = 0) -> None:
        super().__init__(seed)
        #: PCI byte offset: 0 for ISO-TP, 1 for BMW extended addressing.
        self.offset = offset

    def feed(self, frame: CanFrame) -> List[CanFrame]:
        out = [frame]
        data = frame.data
        if len(data) > self.offset + 1 and data[self.offset] >> 4 == PciType.FIRST:
            hostile = bytes([0x1F, 0xFF]) + b"\xbb" * 6
            if self.offset:
                # Same stream, spoofed peer address: the BMW starvation shape.
                hostile = bytes([0xEE]) + hostile[:-1]
            out.append(self._hostile(frame.can_id, hostile, frame))
        return out


class SequencePoisoning(CaptureAttack):
    """Alien consecutive frames injected into the victim's transfers.

    The attacker tracks the victim stream like any sniffer would and,
    mid-transfer, injects a consecutive frame whose sequence number is
    ``jump`` ahead of the expected one — far beyond plausible capture
    loss.  The unhardened decoder treats it as a sequence gap and abandons
    the message; the hardened decoder classifies and drops it.
    """

    name = "poisoning"

    def __init__(self, seed: int = 0, jump: int = 8, offset: int = 0) -> None:
        super().__init__(seed)
        self.jump = jump
        self.offset = offset
        self._expected: Dict[int, int] = {}

    def feed(self, frame: CanFrame) -> List[CanFrame]:
        out = [frame]
        data = frame.data
        if len(data) <= self.offset:
            return out
        nibble = data[self.offset] >> 4
        if nibble == PciType.FIRST:
            self._expected[frame.can_id] = 1
            alien = (1 + self.jump) % 16
            hostile = bytes([0x20 | alien]) + b"\xcc" * 7
            if self.offset:
                hostile = data[:1] + hostile[:-1]
            out.append(self._hostile(frame.can_id, hostile, frame))
        elif nibble == PciType.CONSECUTIVE and frame.can_id in self._expected:
            sequence = data[self.offset] & 0x0F
            self._expected[frame.can_id] = (sequence + 1) % 16
        return out


class FcInjection(CaptureAttack):
    """Flow-control frames sprayed onto the victim's data id mid-transfer.

    Offline decode ignores flow control, so this cannot corrupt payloads —
    it is the *detection* scenario: hardened assembly classifies an FC
    aimed at a mid-reassembly stream as ``fc_violations``.
    """

    name = "fc_flood"

    def __init__(self, seed: int = 0, offset: int = 0) -> None:
        super().__init__(seed)
        self.offset = offset
        self._busy: Dict[int, bool] = {}

    def feed(self, frame: CanFrame) -> List[CanFrame]:
        out = [frame]
        data = frame.data
        if len(data) <= self.offset:
            return out
        nibble = data[self.offset] >> 4
        if nibble == PciType.FIRST:
            self._busy[frame.can_id] = True
        elif nibble == PciType.SINGLE:
            self._busy[frame.can_id] = False
        if self._busy.get(frame.can_id):
            hostile = FlowControl(FlowStatus.WAIT).encode() + b"\x00" * 5
            if self.offset:
                hostile = data[:1] + hostile[:-1]
            out.append(self._hostile(frame.can_id, hostile, frame))
            if nibble == PciType.CONSECUTIVE:
                self._busy[frame.can_id] = False  # one burst per transfer leg
        return out


class KLineSlowloris:
    """Forged ISO 14230-2 headers dripped into K-Line idle gaps.

    Before each idle gap longer than ``gap_s`` the attacker transmits a
    header claiming a 63-byte payload that never arrives.  The unhardened
    parser buffers it and the *next* real messages' bytes are consumed
    into the forged frame (checksum fails, the format-byte rescan eats
    more), losing real messages.  The hardened parser's deadline eviction
    drops the stale forged bytes as soon as the next real byte arrives.

    Operates on ``KLineByte`` logs rather than CAN frames, hence not a
    :class:`CaptureAttack`.
    """

    name = "kline_slowloris"
    FORGED_HEADER = bytes([0x80 | 0x3F, 0x33, 0xF1])  # claims 63 payload bytes

    def __init__(self, seed: int = 0, gap_s: float = 0.5) -> None:
        self.rng = random.Random(seed)
        self.gap_s = gap_s
        self.injected = 0

    def apply(self, capture):
        from ..transport.kline import KLineByte

        out = []
        previous: Optional[float] = None
        for byte in capture:
            if previous is not None and byte.timestamp - previous > self.gap_s:
                for i, value in enumerate(self.FORGED_HEADER):
                    out.append(KLineByte(previous + 0.001 * (i + 1), value))
                    self.injected += 1
            out.append(byte)
            previous = byte.timestamp
        return out


class FcSpoofAttacker:
    """A reactive bus node racing the genuine peer's flow control.

    Watches ``watch_id`` (the victim sender's tx id) for first frames and
    answers each with a spoofed flow-control frame on ``fc_id`` (the id
    the victim listens on), delivered nested inside the same bus
    transaction as the genuine peer's FC.  Modes:

    ``overflow``
        Spoofs FC.OVERFLOW — the unhardened sender (*latest FC wins*)
        zeroes its window and the transfer dies with a
        :class:`~repro.transport.base.TransportError`; the hardened
        sender keeps the more permissive genuine grant.
    ``strangle``
        Spoofs CONTINUE with ``block_size=1`` and the ISO maximum
        ``STmin=127 ms`` — the unhardened victim's multi-frame latency
        balloons ~100x; the hardened sender clamps STmin and keeps the
        wider window.
    ``wait``
        Floods FC.WAIT — pure noise against our stack (detection-only:
        the hardened sender counts each as an ``fc_violation`` once its
        handshake is satisfied).
    """

    MODES = ("overflow", "strangle", "wait")

    def __init__(self, bus, watch_id: int, fc_id: int, mode: str = "overflow") -> None:
        from ..can import BusNode

        if mode not in self.MODES:
            raise ValueError(f"unknown FC spoof mode {mode!r}; one of {self.MODES}")
        self.watch_id = watch_id
        self.fc_id = fc_id
        self.mode = mode
        self.spoofs_sent = 0
        self.node = BusNode("fc-spoofer", handler=self._on_frame)
        bus.attach(self.node)

    def _control(self) -> FlowControl:
        if self.mode == "overflow":
            return FlowControl(FlowStatus.OVERFLOW)
        if self.mode == "strangle":
            return FlowControl(FlowStatus.CONTINUE, block_size=1, st_min_ms=127.0)
        return FlowControl(FlowStatus.WAIT)

    def _on_frame(self, frame: CanFrame) -> None:
        if frame.can_id != self.watch_id or not frame.data:
            return
        if frame.data[0] >> 4 != PciType.FIRST:
            return
        data = self._control().encode()
        self.spoofs_sent += 1
        self.node.send(CanFrame(self.fc_id, data + b"\x00" * (8 - len(data))))


#: Registry for CLI/bench specs: name -> capture-attack factory.
CAPTURE_ATTACKS: Dict[str, Callable[..., CaptureAttack]] = {
    ReassemblyExhaustion.name: ReassemblyExhaustion,
    SessionStarvation.name: SessionStarvation,
    SequencePoisoning.name: SequencePoisoning,
    FcInjection.name: FcInjection,
}


def parse_attack(spec: str) -> CaptureAttack:
    """Build a capture attack from ``name[:k=v,...]`` (keys type-checked).

    Unknown attack names and unknown parameter keys raise ``ValueError``
    naming the offender and listing the valid choices — the same loud
    failure :meth:`NoiseProfile.from_dict` gives profile typos.
    """
    name, _, params = spec.strip().partition(":")
    factory = CAPTURE_ATTACKS.get(name)
    if factory is None:
        raise ValueError(
            f"unknown attack {name!r}; valid attacks: {sorted(CAPTURE_ATTACKS)}"
        )
    import inspect

    valid = {
        p
        for p in inspect.signature(factory).parameters
        if p not in ("self",)
    }
    kwargs: Dict[str, object] = {}
    if params:
        for item in params.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep:
                raise ValueError(f"attack spec item {item!r} is not key=value")
            if key not in valid:
                raise ValueError(
                    f"unknown attack parameter {key!r} for {name!r}; "
                    f"valid parameters: {sorted(valid)}"
                )
            number = float(value)
            kwargs[key] = number if key.endswith("_s") else int(number)
    return factory(**kwargs)
