"""Tab. 13 attack scenarios.

The paper replays reverse-engineered messages against four running
vehicles — BMW i3 (Car G), Lexus NX300 (Car D), Toyota Corolla (Car L) and
Kia (Car N) — covering reads, component control, routine control and ECU
resets.  :func:`run_table13` reproduces the experiment per car; the
``from_report`` variant replays exactly what a DP-Reverser run recovered.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.reverser import ReverseReport
from ..vehicle import Vehicle
from ..vehicle.ecu import SimulatedEcu
from .replay import AttackReplayer, AttackResult


def _first_read_targets(vehicle: Vehicle, count: int = 2):
    """Pick readable DIDs (as an attacker who ran DP-Reverser would know)."""
    targets = []
    for ecu in vehicle.ecus:
        for point in ecu.uds_data_points.values():
            if not point.is_enum:
                targets.append((ecu.name, point))
    return targets[:count]


def _actuator_targets(vehicle: Vehicle, count: int = 3):
    targets = []
    for ecu in vehicle.ecus:
        for actuator in ecu.actuators.values():
            targets.append((ecu, actuator))
    return targets[:count]


def run_table13(vehicle: Vehicle) -> List[AttackResult]:
    """Run the Tab. 13 attack set against one (running) vehicle.

    Message content mirrors what DP-Reverser recovers: read requests for
    known DIDs, the three-message IO-control procedure for actuators,
    routine starts for BMW-style ECUs, and ECU resets.
    """
    replayer = AttackReplayer(vehicle)
    results: List[AttackResult] = []

    for ecu_name, point in _first_read_targets(vehicle):
        payload = bytes([0x22]) + point.did.to_bytes(2, "big")
        results.append(
            replayer.read_data(ecu_name, payload, f"Read {point.name} ({ecu_name})")
        )

    for ecu, actuator in _actuator_targets(vehicle):
        mask = ecu.security.mask if ecu.security.required else None
        results.append(
            replayer.control_component(
                ecu.name,
                actuator.identifier,
                bytes([0x05, 0x01, 0x00, 0x00]),
                f"Control {actuator.name} ({ecu.name})",
                service=ecu.ecr_service,
                unlock_mask=mask,
            )
        )

    for ecu in vehicle.ecus:
        for routine_id, routine in ecu.routines.items():
            results.append(
                replayer.run_routine(ecu.name, routine_id, f"Start {routine.name}")
            )

    results.append(replayer.reset_ecu(vehicle.ecus[-1].name, "Reset combination instrument"))
    return results


def replay_from_report(vehicle: Vehicle, report: ReverseReport) -> List[AttackResult]:
    """Replay what a DP-Reverser run actually recovered.

    This is the end-to-end attack story: the ECR procedures in ``report``
    (identifier, service, control state) are injected verbatim into a
    fresh session with the vehicle.
    """
    replayer = AttackReplayer(vehicle)
    results: List[AttackResult] = []
    for procedure in report.ecrs:
        if not procedure.complete:
            continue
        ecu = _ecu_with_actuator(vehicle, procedure.identifier)
        if ecu is None:
            continue
        mask = ecu.security.mask if ecu.security.required else None
        results.append(
            replayer.control_component(
                ecu.name,
                procedure.identifier,
                procedure.control_state,
                f"Replay {procedure.label or hex(procedure.identifier)}",
                service=procedure.service,
                unlock_mask=mask,
            )
        )
    return results


def _ecu_with_actuator(vehicle: Vehicle, identifier: int) -> Optional[SimulatedEcu]:
    for ecu in vehicle.ecus:
        if identifier in ecu.actuators:
            return ecu
    return None
