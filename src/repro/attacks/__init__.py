"""Attack replay with reverse-engineered diagnostic messages (Tab. 13)."""

from .replay import AttackReplayer, AttackResult
from .scenarios import replay_from_report, run_table13

__all__ = ["AttackReplayer", "AttackResult", "replay_from_report", "run_table13"]
