"""Attack replay with reverse-engineered diagnostic messages (Tab. 13)
and seeded TP-layer adversaries against our own stack (:mod:`transport`)."""

from .replay import AttackReplayer, AttackResult
from .scenarios import replay_from_report, run_table13
from .transport import (
    CAPTURE_ATTACKS,
    CaptureAttack,
    FcInjection,
    FcSpoofAttacker,
    KLineSlowloris,
    ReassemblyExhaustion,
    SequencePoisoning,
    SessionStarvation,
    parse_attack,
)

__all__ = [
    "AttackReplayer",
    "AttackResult",
    "replay_from_report",
    "run_table13",
    "CAPTURE_ATTACKS",
    "CaptureAttack",
    "FcInjection",
    "FcSpoofAttacker",
    "KLineSlowloris",
    "ReassemblyExhaustion",
    "SequencePoisoning",
    "SessionStarvation",
    "parse_attack",
]
