"""Active diagnostic enumeration.

DP-Reverser is *passive* — it watches a professional tool do the talking.
An attacker who has reverse engineered the protocol (or a pentester
validating coverage) also probes actively: sweeping DID ranges, local
identifiers and service ids and recording what answers.  This module
implements that scanner over any vehicle tester endpoint; the Tab. 6
benches use it to confirm the passive pipeline discovered everything the
ECU actually exposes.

Negative-response semantics drive the classification: ``requestOutOfRange``
means the service exists but the identifier doesn't; ``serviceNotSupported``
rules out the whole service; silence means no listener at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .diagnostics import kwp2000, uds
from .diagnostics.messages import NEGATIVE_RESPONSE_SID, Nrc


@dataclass(frozen=True)
class ScanHit:
    """One identifier that answered positively."""

    service: int
    identifier: int
    response: bytes

    @property
    def value_bytes(self) -> bytes:
        if self.service == uds.UdsService.READ_DATA_BY_IDENTIFIER:
            return self.response[3:]
        if self.service == kwp2000.KwpService.READ_DATA_BY_LOCAL_IDENTIFIER:
            return self.response[2:]
        return self.response[1:]


@dataclass
class ScanReport:
    """Everything a scan of one ECU discovered."""

    hits: List[ScanHit] = field(default_factory=list)
    supported_services: List[int] = field(default_factory=list)
    probes_sent: int = 0

    def identifiers(self, service: int) -> List[int]:
        return [h.identifier for h in self.hits if h.service == service]


class DiagnosticScanner:
    """Probes one ECU through a request/response endpoint.

    The endpoint needs ``send(payload)`` and ``receive() -> bytes | None``
    (any of the vehicle tester endpoints qualifies).
    """

    def __init__(self, endpoint, inter_probe_delay_s: float = 0.0, clock=None) -> None:
        self.endpoint = endpoint
        self.inter_probe_delay_s = inter_probe_delay_s
        self.clock = clock

    def _exchange(self, payload: bytes) -> Optional[bytes]:
        self.endpoint.send(payload)
        response = self.endpoint.receive()
        retries = 0
        while (
            response is not None
            and len(response) >= 3
            and response[0] == NEGATIVE_RESPONSE_SID
            and response[2] == Nrc.RESPONSE_PENDING
            and retries < 8
        ):
            response = self.endpoint.receive()
            retries += 1
        if self.clock is not None and self.inter_probe_delay_s:
            self.clock.advance(self.inter_probe_delay_s)
        return response

    # ------------------------------------------------------------------ scans

    def scan_dids(
        self, ranges: Sequence[Tuple[int, int]] = ((0x0100, 0x0A00), (0xF100, 0xF600))
    ) -> ScanReport:
        """Sweep ReadDataByIdentifier over DID ranges (end exclusive)."""
        report = ScanReport()
        for start, end in ranges:
            for did in range(start, end):
                report.probes_sent += 1
                response = self._exchange(uds.encode_read_data_by_identifier([did]))
                if response is None:
                    continue
                if response[0] == NEGATIVE_RESPONSE_SID:
                    if len(response) >= 3 and response[2] == Nrc.SERVICE_NOT_SUPPORTED:
                        return report  # the whole service is absent
                    continue
                report.hits.append(
                    ScanHit(uds.UdsService.READ_DATA_BY_IDENTIFIER, did, response)
                )
        return report

    def scan_local_ids(self, start: int = 0x01, end: int = 0x100) -> ScanReport:
        """Sweep KWP readDataByLocalIdentifier."""
        report = ScanReport()
        for local_id in range(start, end):
            report.probes_sent += 1
            response = self._exchange(kwp2000.encode_read_by_local_id(local_id))
            if response is None:
                continue
            if response[0] == NEGATIVE_RESPONSE_SID:
                if len(response) >= 3 and response[2] == Nrc.SERVICE_NOT_SUPPORTED:
                    return report
                continue
            report.hits.append(
                ScanHit(
                    kwp2000.KwpService.READ_DATA_BY_LOCAL_IDENTIFIER, local_id, response
                )
            )
        return report

    def scan_services(self, service_ids: Iterable[int] = range(0x10, 0x3F)) -> ScanReport:
        """Discover which service ids the ECU implements at all.

        A service answering anything other than ``serviceNotSupported``
        (including other NRCs — wrong length, out of range...) exists.
        """
        report = ScanReport()
        for sid in service_ids:
            report.probes_sent += 1
            response = self._exchange(bytes([sid]))
            if response is None:
                continue
            if (
                response[0] == NEGATIVE_RESPONSE_SID
                and len(response) >= 3
                and response[2] == Nrc.SERVICE_NOT_SUPPORTED
            ):
                continue
            report.supported_services.append(sid)
        return report


def scan_vehicle(vehicle, ranges=((0x0100, 0x0A00), (0xF100, 0xF600))) -> Dict[str, ScanReport]:
    """DID-scan every ECU of a simulated vehicle."""
    reports: Dict[str, ScanReport] = {}
    for ecu in vehicle.ecus:
        endpoint = vehicle.tester_endpoint(ecu.name, tester="scanner")
        scanner = DiagnosticScanner(endpoint, clock=vehicle.clock)
        if ecu.kwp_groups:
            reports[ecu.name] = scanner.scan_local_ids()
        else:
            reports[ecu.name] = scanner.scan_dids(ranges)
        vehicle.release_tester(endpoint)
    return reports
