"""Simulated time.

Every component in the reproduction shares a :class:`SimClock` instead of the
wall clock, so a full 18-vehicle data-collection campaign finishes in
milliseconds while still producing realistic, strictly ordered timestamps.

Clock *skew* between devices (the diagnostic-tool screen recorder and the CAN
sniffer in the paper run on different hosts) is modelled by
:class:`SkewedClock`, and §9.4's NTP synchronisation by
:func:`ntp_synchronise`.
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated clock.

    The clock only moves when a component calls :meth:`advance` (the analogue
    of work taking time) or :meth:`sleep`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by negative {seconds}")
        self._now += seconds
        return self._now

    # Alias used by components that conceptually "wait".
    sleep = advance

    def perf(self) -> float:
        """Monotonic performance counter in simulated seconds.

        Drop-in replacement for :func:`time.perf_counter` wherever runtime
        metrics are collected under simulation (:mod:`repro.runtime`), so
        deterministic tests never touch wall-clock APIs.  The reading is the
        simulated time itself: only differences are meaningful, exactly like
        the real performance counter.
        """
        return self._now


class SkewedClock:
    """A view of a :class:`SimClock` with a constant offset and drift rate.

    ``read()`` returns ``(true_time + offset) * (1 + drift)`` which models a
    device whose clock was set slightly wrong and ticks slightly fast/slow.
    """

    def __init__(self, base: SimClock, offset: float = 0.0, drift: float = 0.0) -> None:
        self.base = base
        self.offset = offset
        self.drift = drift

    def read(self) -> float:
        """Device-local timestamp for the current true time."""
        true = self.base.now()
        return (true + self.offset) * (1.0 + self.drift)

    def apply_correction(self, correction: float) -> None:
        """Shift the device clock by ``correction`` seconds (NTP step)."""
        self.offset += correction


def ntp_synchronise(client: SkewedClock, reference: SkewedClock) -> float:
    """Synchronise ``client`` to ``reference`` NTP-style.

    Returns the correction (seconds) that was applied.  With zero drift this
    brings the two clocks into exact agreement, matching §9.4 method (1).
    """
    correction = reference.read() - client.read()
    client.apply_correction(correction)
    return correction
