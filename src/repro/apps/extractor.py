"""Formula extraction from telematics apps (Alg. 1 of the paper).

For each method: find statements reading response messages, forward-taint
from them, pick tainted statements containing mathematical operators, then

* follow **data dependencies** backwards to build the formula, stopping at
  the ``Integer.parseInt`` calls that extract raw bytes from the response
  (those become the formula's variables ``v0, v1, ...``);
* follow **control dependencies** to the guarding branch statements and
  recover the condition under which the formula applies (e.g. *response
  starts with "41 0C"*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .ir import (
    App,
    ArrayRef,
    AssignStmt,
    BinopExpr,
    CastExpr,
    CondExpr,
    DoubleConst,
    IfStmt,
    IntConst,
    InvokeExpr,
    Local,
    Method,
    PARSE_INT_SIG,
    STARTSWITH_SIG,
    StringConst,
    Statement,
    Value,
)
from .taint import control_dependencies, data_dependencies, taint_method

MATH_OPS = ("+", "-", "*", "/")


@dataclass(frozen=True)
class ExtractedAppFormula:
    """One formula recovered from an app."""

    app_name: str
    method_name: str
    expression: str  # e.g. "v0 * 0.25 + 64.0 * v1"
    condition: str  # e.g. 'response.startsWith("41 0C")'
    response_prefix: str  # the constant checked, "" when none found
    variables: Tuple[str, ...]

    @property
    def protocol(self) -> str:
        """Classify by the response prefix (OBD-II 0x41 vs UDS 0x62 vs KWP 0x61)."""
        prefix = self.response_prefix.replace(" ", "")
        if prefix.startswith("41"):
            return "OBD-II"
        if prefix.startswith("62"):
            return "UDS"
        if prefix.startswith("61"):
            return "KWP 2000"
        return "unknown"


class FormulaExtractor:
    """Implements Alg. 1 over a MiniJimple app."""

    def extract(self, app: App) -> List[ExtractedAppFormula]:
        formulas: List[ExtractedAppFormula] = []
        for method in app.methods:
            formulas.extend(self._extract_method(app.name, method))
        return formulas

    # ------------------------------------------------------------- per method

    def _extract_method(self, app_name: str, method: Method) -> List[ExtractedAppFormula]:
        tainted_locals, tainted_statements = taint_method(method)
        if not tainted_locals:
            return []
        results: List[ExtractedAppFormula] = []
        # Alg. 1 lines 7-8: tainted statements with math operators.  Only
        # *final* results are reported: a math statement that feeds another
        # tainted math statement is an intermediate term (Fig. 9: line 14
        # is the result; lines 11 and 13 are parts of it).
        math_indices = [
            index
            for index in tainted_statements
            if self._is_math(method.statements[index])
        ]
        final_indices = [
            index
            for index in math_indices
            if not self._feeds_math(method, index, math_indices)
        ]
        for index in final_indices:
            formula = self._formula_at(app_name, method, index)
            if formula is not None:
                results.append(formula)
        return results

    @staticmethod
    def _is_math(statement: Statement) -> bool:
        return isinstance(statement, AssignStmt) and isinstance(
            statement.expr, BinopExpr
        ) and statement.expr.op in MATH_OPS

    @staticmethod
    def _feeds_math(method: Method, index: int, math_indices: Sequence[int]) -> bool:
        target = method.statements[index].target
        for other in math_indices:
            if other == index:
                continue
            expr = method.statements[other].expr
            if isinstance(expr, BinopExpr) and target in (expr.left, expr.right):
                return True
        return False

    # ------------------------------------------------------ formula building

    def _formula_at(
        self, app_name: str, method: Method, index: int
    ) -> Optional[ExtractedAppFormula]:
        slice_indices = set(data_dependencies(method, index))
        variables: Dict[str, str] = {}  # local name -> v0/v1/...

        def render(value: Value) -> str:
            if isinstance(value, (IntConst, DoubleConst)):
                return str(value)
            if isinstance(value, StringConst):
                return str(value)
            if not isinstance(value, Local):
                return str(value)
            def_index = self._definition_of(method, value.name)
            if def_index is None or def_index not in slice_indices:
                return value.name
            expr = method.statements[def_index].expr
            if isinstance(expr, InvokeExpr) and expr.signature == PARSE_INT_SIG:
                if value.name not in variables:
                    variables[value.name] = f"v{len(variables)}"
                return variables[value.name]
            if isinstance(expr, BinopExpr):
                return f"({render(expr.left)} {expr.op} {render(expr.right)})"
            if isinstance(expr, CastExpr):
                return render(expr.value)
            if isinstance(expr, ArrayRef):
                return render(expr.base) if isinstance(expr.base, Local) else str(expr)
            if isinstance(expr, (IntConst, DoubleConst)):
                return str(expr)
            return value.name

        statement = method.statements[index]
        assert isinstance(statement, AssignStmt) and isinstance(statement.expr, BinopExpr)
        expression = (
            f"{render(statement.expr.left)} {statement.expr.op} "
            f"{render(statement.expr.right)}"
        )
        if not variables:
            return None  # math over constants only — not a response formula

        condition, prefix = self._condition_at(method, index)
        return ExtractedAppFormula(
            app_name=app_name,
            method_name=method.name,
            expression=_strip_outer_parens(expression),
            condition=condition,
            response_prefix=prefix,
            variables=tuple(variables.values()),
        )

    @staticmethod
    def _definition_of(method: Method, local_name: str) -> Optional[int]:
        for i, statement in enumerate(method.statements):
            if isinstance(statement, AssignStmt) and statement.target.name == local_name:
                return i
        return None

    # ----------------------------------------------------------- conditions

    def _condition_at(self, method: Method, index: int) -> Tuple[str, str]:
        """Recover the guard condition (Alg. 1 lines 12-14)."""
        guards = control_dependencies(method, index)
        for guard_index in guards:
            guard = method.statements[guard_index]
            assert isinstance(guard, IfStmt)
            for value in (guard.cond.left, guard.cond.right):
                if not isinstance(value, Local):
                    continue
                def_index = self._definition_of(method, value.name)
                if def_index is None:
                    continue
                expr = method.statements[def_index].expr
                if (
                    isinstance(expr, InvokeExpr)
                    and expr.signature == STARTSWITH_SIG
                    and expr.args
                    and isinstance(expr.args[0], StringConst)
                ):
                    prefix = expr.args[0].value
                    return f'response.startsWith("{prefix}")', prefix
        return "", ""


def _strip_outer_parens(text: str) -> str:
    if not (text.startswith("(") and text.endswith(")")):
        return text
    depth = 0
    for i, ch in enumerate(text):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and i < len(text) - 1:
                return text
    return text[1:-1]
